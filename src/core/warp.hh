/**
 * @file
 * Dynamic state of one hardware warp slot on a SIMT core.
 */

#ifndef BSCHED_CORE_WARP_HH
#define BSCHED_CORE_WARP_HH

#include <cstdint>

#include "core/scoreboard.hh"
#include "kernel/kernel_info.hh"
#include "kernel/warp_program.hh"
#include "sim/types.hh"

namespace bsched {

/** One warp context. Invalid slots have valid == false. */
struct Warp
{
    bool valid = false;
    bool done = false;
    bool atBarrier = false;

    int hwCta = kInvalidId;          ///< index into the core's CTA table
    int kernelId = kInvalidId;
    std::uint32_t ctaId = 0;         ///< linearized global CTA id
    std::uint32_t warpInCta = 0;
    std::uint64_t ctaSeq = 0;        ///< core-local CTA arrival order (GTO age)
    std::uint64_t blockSeq = 0;      ///< BCS dispatch-block id (BAWS grouping)

    const KernelInfo* kernel = nullptr;
    ProgramCursor cursor;
    Scoreboard sb;

    std::uint64_t instrsIssued = 0;

    /** True if this warp can still issue instructions eventually. */
    bool live() const { return valid && !done; }

    void
    clear()
    {
        *this = Warp{};
    }
};

} // namespace bsched

#endif // BSCHED_CORE_WARP_HH
