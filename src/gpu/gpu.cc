#include "gpu/gpu.hh"

#include "sim/log.hh"

namespace bsched {

Gpu::Gpu(const GpuConfig& config)
    : config_(config), icnt_(config)
{
    config_.validate();
    for (std::uint32_t c = 0; c < config_.numCores; ++c)
        cores_.push_back(std::make_unique<SimtCore>(config_, c));
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p)
        partitions_.push_back(std::make_unique<MemPartition>(config_, p));
    ctaSched_ = CtaScheduler::create(config_);
}

int
Gpu::launchKernel(const KernelInfo& kernel, int core_begin, int core_end,
                  int priority)
{
    kernel.validate();
    if (core_begin < 0 || core_begin >= static_cast<int>(config_.numCores))
        fatal("launchKernel: bad core_begin ", core_begin);
    if (core_end > static_cast<int>(config_.numCores))
        fatal("launchKernel: bad core_end ", core_end);
    // Ensure at least one CTA can ever be placed.
    maxCtasPerCore(config_, kernel);

    KernelInstance inst;
    inst.info = &kernel;
    inst.id = static_cast<int>(kernels_.size());
    inst.launchCycle = cycle_;
    inst.coreBegin = core_begin;
    inst.coreEnd = core_end;
    inst.priority = priority;
    kernels_.push_back(inst);
    return inst.id;
}

bool
Gpu::finished() const
{
    for (const KernelInstance& kernel : kernels_) {
        if (!kernel.finished())
            return false;
    }
    return true;
}

void
Gpu::moveMemoryTraffic()
{
    const Cycle now = cycle_;

    // Partition replies -> interconnect (bounded injection per cycle).
    for (auto& part : partitions_) {
        for (std::uint32_t k = 0; k < config_.icntFlitsPerCycle; ++k) {
            if (!part->responseReady())
                break;
            const MemResponse& resp = part->peekResponse();
            if (!icnt_.canSendResponse(resp.coreId))
                break; // head-of-line blocked; retry next cycle
            icnt_.sendResponse(now, resp.coreId, resp);
            part->popResponse();
        }
    }

    // Interconnect -> partitions (ejection bandwidth + input capacity).
    for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
        while (icnt_.requestReady(p, now) &&
               partitions_[p]->canAcceptRequest() &&
               icnt_.ejectBudget(p, now)) {
            partitions_[p]->pushRequest(now, icnt_.popRequest(p, now));
        }
    }

    // Interconnect -> cores (fill responses).
    for (std::uint32_t c = 0; c < cores_.size(); ++c) {
        while (icnt_.responseReady(c, now) &&
               icnt_.responseEjectBudget(c, now)) {
            cores_[c]->deliverResponse(now, icnt_.popResponse(c, now));
        }
    }

    // Cores -> interconnect (requests).
    for (auto& core : cores_) {
        for (std::uint32_t k = 0; k < config_.icntFlitsPerCycle; ++k) {
            if (!core->hasOutgoing())
                break;
            const std::uint32_t p =
                icnt_.partitionFor(core->peekOutgoing().lineAddr);
            if (!icnt_.canSendRequest(p))
                break; // head-of-line blocked
            icnt_.sendRequest(now, core->popOutgoing());
        }
    }
}

bool
Gpu::stepCycle()
{
    const Cycle now = cycle_;

    for (auto& part : partitions_)
        part->tick(now);

    moveMemoryTraffic();

    for (auto& core : cores_)
        core->tick(now);

    // Collect CTA completions and update kernel instances.
    for (auto& core : cores_) {
        for (const CtaDoneEvent& event : core->drainCompletedCtas()) {
            KernelInstance& kernel =
                kernels_.at(static_cast<std::size_t>(event.kernelId));
            ++kernel.ctasDone;
            if (kernel.finished() && kernel.doneCycle == kCycleNever)
                kernel.doneCycle = now;
            ctaSched_->notifyCtaDone(now, event, cores_);
        }
    }

    ctaSched_->tick(now, kernels_, cores_);

    ++cycle_;
    if (cycle_ >= config_.maxCycles)
        fatal("gpu: exceeded maxCycles (", config_.maxCycles,
              ") — likely deadlock or undersized budget");
    return !finished();
}

bool
Gpu::drained() const
{
    for (const auto& core : cores_) {
        if (!core->idle())
            return false;
    }
    if (!icnt_.drained())
        return false;
    for (const auto& part : partitions_) {
        if (!part->drained())
            return false;
    }
    return true;
}

void
Gpu::run()
{
    if (kernels_.empty())
        fatal("gpu: run() without any launched kernel");
    while (stepCycle()) {
    }
    // Kernel-boundary fence: drain in-flight stores and write-backs so
    // statistics are conserved and a subsequent launch starts clean.
    while (!drained())
        stepCycle();
}

const KernelInstance&
Gpu::kernel(int id) const
{
    return kernels_.at(static_cast<std::size_t>(id));
}

Cycle
Gpu::kernelCycles(int id) const
{
    const KernelInstance& inst = kernel(id);
    if (inst.doneCycle == kCycleNever)
        fatal("gpu: kernel ", id, " has not finished");
    return inst.doneCycle - inst.launchCycle + 1;
}

std::uint64_t
Gpu::totalInstrsIssued() const
{
    std::uint64_t total = 0;
    for (const auto& core : cores_)
        total += core->instrsIssued();
    return total;
}

double
Gpu::ipc() const
{
    if (cycle_ == 0)
        return 0.0;
    return static_cast<double>(totalInstrsIssued()) /
        static_cast<double>(cycle_);
}

double
Gpu::kernelIpc(int id) const
{
    std::uint64_t issued = 0;
    for (const auto& core : cores_)
        issued += core->instrsIssued(id);
    return static_cast<double>(issued) /
        static_cast<double>(kernelCycles(id));
}

StatSet
Gpu::stats() const
{
    StatSet stats;
    stats.set("gpu.cycles", static_cast<double>(cycle_));
    stats.set("gpu.ipc", ipc());
    stats.set("gpu.instrs", static_cast<double>(totalInstrsIssued()));
    for (const auto& core : cores_)
        core->addStats(stats);
    for (const auto& part : partitions_)
        part->addStats(stats);
    icnt_.addStats(stats);
    ctaSched_->addStats(stats);
    for (const KernelInstance& kernel : kernels_) {
        const std::string prefix = "kernel" + std::to_string(kernel.id);
        stats.set(prefix + ".ctas", kernel.info->gridCtas());
        if (kernel.doneCycle != kCycleNever) {
            stats.set(prefix + ".cycles",
                      static_cast<double>(kernelCycles(kernel.id)));
            stats.set(prefix + ".ipc", kernelIpc(kernel.id));
        }
    }
    return stats;
}

} // namespace bsched
