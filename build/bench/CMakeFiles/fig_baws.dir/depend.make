# Empty dependencies file for fig_baws.
# This may be replaced when dependencies are built.
