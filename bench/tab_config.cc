/**
 * @file
 * E1 — the simulator-configuration table (the paper's "simulation
 * methodology" table): the GTX480-class machine every experiment uses.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/config.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    // No simulations here; parse anyway so every bench binary shares
    // the same CLI (a stray --jobs is accepted, a typo is rejected).
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const GpuConfig config = GpuConfig::gtx480();
    config.validate();
    std::printf("E1: simulated machine configuration (GTX480-class)\n\n%s",
                config.toString().c_str());

    BenchReport report("tab_config");
    report.addMetric("num_cores", config.numCores);
    report.addMetric("num_mem_partitions", config.numMemPartitions);
    report.addMetric("max_ctas_per_core", config.maxCtasPerCore);
    report.addMetric("l1d_size_bytes", config.l1d.sizeBytes);
    report.addMetric("l2_size_bytes", config.l2.sizeBytes);
    bench::writeReport(opts, report);
    bench::writeServeTraceArtifact(opts);
    return 0;
}
