/**
 * @file
 * E20 — why a one-shot N_opt is wrong for half the run: the "phased"
 * composite (compute-bound prologue into cache-thrashing epilogue)
 * run under GTO + Lazy-LCS with the phase telemetry attached. The
 * windowed metrics segment the run into phases online, and the
 * detected boundary lines up with the inflection of the E17
 * interference counters (cross-CTA eviction rate, DRAM-queue
 * occupancy) — direct evidence that the interference regime, and
 * hence the static-best CTA limit, changes mid-kernel. Sweeping each
 * regime standalone gives two different static optima; LCS's single
 * converged pick can match at most one of them.
 *
 * Reproduces: the paper's Section 6 observation that workload
 * behaviour is phasic and a single sampled decision goes stale, plus
 * the DynCTA motivation for continuous monitoring (PAPERS.md).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "kernel/occupancy.hh"
#include "obs/mem_profile.hh"
#include "obs/phase/phase.hh"
#include "sim/log.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

/**
 * The CTA limit LCS converges to for @p kernel: the median of the
 * per-core `lcs.coreC.k0.n_opt` decisions of one LCS run.
 */
std::uint32_t
lcsChosenLimit(const GpuConfig& base, const KernelInfo& kernel)
{
    GpuConfig config = base;
    config.ctaSched = CtaSchedKind::Lazy;
    const RunResult result = runKernel(config, kernel);
    std::vector<double> decisions;
    for (const auto& [name, value] : result.stats.entries()) {
        if (name.rfind("lcs.core", 0) == 0 &&
            name.size() >= 6 &&
            name.compare(name.size() - 6, 6, ".n_opt") == 0) {
            decisions.push_back(value);
        }
    }
    if (decisions.empty())
        return 0;
    std::sort(decisions.begin(), decisions.end());
    return static_cast<std::uint32_t>(decisions[decisions.size() / 2]);
}

/** Best two-segment step fit over windows [lo, n): the split
 *  minimizing the summed squared deviation from the two segment
 *  means — the classic change point. */
std::size_t
changePoint(const std::vector<double>& series, std::size_t lo,
            std::size_t n)
{
    auto sse = [&](std::size_t a, std::size_t b) {
        double mean = 0.0;
        for (std::size_t i = a; i < b; ++i)
            mean += series[i];
        mean /= static_cast<double>(b - a);
        double err = 0.0;
        for (std::size_t i = a; i < b; ++i)
            err += (series[i] - mean) * (series[i] - mean);
        return err;
    };
    std::size_t at = lo + 1;
    double best = -1.0;
    for (std::size_t w = lo + 1; w < n; ++w) {
        const double err = sse(lo, w) + sse(w, n);
        if (best < 0.0 || err < best) {
            best = err;
            at = w;
        }
    }
    return at;
}

/**
 * Window where the E17 interference counters say the memory regime
 * flips: the change point of the L2 cross-CTA eviction rate. The L2
 * is the one cache shared machine-wide, so its eviction rate flips
 * only when the thrash regime goes bulk; the per-core L1 cross rates
 * lead it (GTO trickles the oldest warps into the epilogue early) and
 * the MSHR occupancy is dominated by the launch ramp. Window 0 (every
 * warp's cold misses at once) and the final partial-width drain-tail
 * window are excluded from the fit.
 */
std::size_t
interferenceInflection(const WindowedMetrics& m)
{
    return changePoint(m.l2CrossRate(), 1, m.windows() - 1);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::Lazy);
    const KernelInfo phased = makeWorkload("phased");

    std::printf("E20: online phase detection on the phased composite "
                "(GTO, Lazy CTA scheduler; %u jobs)\n\n",
                opts.jobs);

    // The canonical phased run: phase telemetry for the detector plus
    // the memory profiler so every window carries the E17 interference
    // channels (the detector itself never reads them).
    PhaseTelemetry phase;
    MemProfiler mem_profiler;
    Observer obs;
    obs.phase = &phase;
    obs.memProfiler = &mem_profiler;
    const RunResult run = runKernel(config, phased, obs);

    const WindowedMetrics& m = phase.metrics();
    const PhaseDetector& machine = phase.machine();
    if (machine.phases().size() < 2) {
        fatal("fig_phase: expected >= 2 machine phases on the phased "
              "composite, detected ", machine.phases().size());
    }
    if (!m.hasInterference())
        fatal("fig_phase: windows carry no interference channels");

    // A detected boundary must line up with the interference
    // inflection. The detector may legitimately segment the launch
    // ramp-up as its own phase, so check the boundary nearest the
    // inflection — the compute->thrash transition must be among the
    // detected changes. (The check itself runs after the table below
    // so a failing run still shows its windows.)
    const std::size_t inflection = interferenceInflection(m);
    std::size_t boundary = machine.phases()[1].startWindow;
    std::size_t miss = static_cast<std::size_t>(-1);
    for (std::size_t p = 1; p < machine.phases().size(); ++p) {
        const std::size_t start = machine.phases()[p].startWindow;
        const std::size_t d = start > inflection
            ? start - inflection : inflection - start;
        if (d < miss) {
            miss = d;
            boundary = start;
        }
    }

    Table windows("phased: windowed metrics (window = " +
                  std::to_string(phase.config().windowCycles) +
                  " cycles)");
    windows.setHeader({"w", "end", "ipc", "stall_mem", "l1_miss",
                       "rowhit", "l1x/kc", "l2x/kc", "dram_qocc",
                       "mshr_occ", "phase", ""});
    std::vector<std::size_t> phaseOfWindow(m.windows(), 0);
    for (std::size_t p = 0; p < machine.phases().size(); ++p) {
        const auto& ph = machine.phases()[p];
        for (std::size_t w = ph.startWindow;
             w < m.windows(); ++w)
            phaseOfWindow[w] = p;
    }
    for (std::size_t w = 0; w < m.windows(); ++w) {
        std::string marker;
        if (w > 0 && phaseOfWindow[w] != phaseOfWindow[w - 1])
            marker = "<- phase change";
        if (w == inflection)
            marker += marker.empty() ? "<- E17 inflection"
                                     : " + E17 inflection";
        windows.addRow({std::to_string(w),
                        std::to_string(m.endCycles()[w]),
                        fmt(m.ipc()[w], 2),
                        fmt(m.stallMemShare()[w], 3),
                        fmt(m.l1MissRate()[w], 3),
                        fmt(m.rowHitRate()[w], 3),
                        fmt(m.l1CrossRate()[w], 1),
                        fmt(m.l2CrossRate()[w], 1),
                        fmt(m.dramQOccupancy()[w], 1),
                        fmt(m.l2MshrOccupancy()[w], 1),
                        std::to_string(phaseOfWindow[w]), marker});
    }
    std::printf("%s\n", windows.toText().c_str());
    std::printf("change points: l1x=%zu l2x=%zu mshr=%zu -> "
                "inflection=%zu; nearest boundary=%zu\n\n",
                changePoint(m.l1CrossRate(), 1, m.windows() - 1),
                changePoint(m.l2CrossRate(), 1, m.windows() - 1),
                changePoint(m.l2MshrOccupancy(), 1, m.windows() - 1),
                inflection, boundary);

    if (miss > 2) {
        fatal("fig_phase: detected boundary (window ", boundary,
              ") does not match the interference inflection (window ",
              inflection, ")");
    }

    // Per-regime static optima vs the composite's one-shot pick.
    const KernelInfo pro = makePhasedPrologue();
    const KernelInfo epi = makePhasedEpilogue();
    GpuConfig sweep = config;
    sweep.ctaSched = CtaSchedKind::RoundRobin;
    const OracleResult pro_best = oracleStaticBest(sweep, pro, opts.jobs);
    const OracleResult epi_best = oracleStaticBest(sweep, epi, opts.jobs);
    const std::uint32_t n_lcs = lcsChosenLimit(config, phased);

    Table regimes("per-regime static-best CTA limit vs one-shot pick");
    regimes.setHeader({"regime", "N_best", "N_max", "ipc@best", ""});
    regimes.addRow({"prologue (compute)",
                    std::to_string(pro_best.bestLimit),
                    std::to_string(pro_best.maxLimit),
                    fmt(pro_best.byLimit[pro_best.bestLimit - 1].ipc, 2),
                    ""});
    regimes.addRow({"epilogue (thrash)",
                    std::to_string(epi_best.bestLimit),
                    std::to_string(epi_best.maxLimit),
                    fmt(epi_best.byLimit[epi_best.bestLimit - 1].ipc, 2),
                    ""});
    regimes.addRow({"composite (LCS)", std::to_string(n_lcs), "-", "-",
                    "<- one pick for both"});
    std::printf("%s\n", regimes.toText().c_str());

    std::printf("Reading: the detector segments the run at window %zu "
                "— exactly where the shared L2's\ncross-CTA eviction "
                "rate flips (window %zu) — and the two regimes want "
                "different static\nlimits (%u vs %u). Any "
                "single N_opt, including LCS's converged %u, is wrong "
                "for one half\nof the run; only continuous monitoring "
                "can see the change.\n",
                boundary, inflection, pro_best.bestLimit,
                epi_best.bestLimit, n_lcs);

    BenchReport report("fig_phase");
    report.addRow("phased/lazy", run);
    report.addMetric("machine.phase_count",
                     static_cast<double>(machine.phases().size()));
    report.addMetric("machine.boundary_window",
                     static_cast<double>(boundary));
    report.addMetric("interference.inflection_window",
                     static_cast<double>(inflection));
    report.addMetric("windows", static_cast<double>(m.windows()));
    report.addMetric("prologue.n_best",
                     static_cast<double>(pro_best.bestLimit));
    report.addMetric("epilogue.n_best",
                     static_cast<double>(epi_best.bestLimit));
    report.addMetric("composite.lcs_n_opt", static_cast<double>(n_lcs));
    bench::writeReport(opts, report);

    if (!opts.phasePath.empty()) {
        // The E20 artifact is this exact canonical run, not the
        // representative re-run writeRunArtifacts would do.
        const std::size_t bytes =
            writeFile(opts.phasePath, [&](std::ostream& os) {
                writePhaseJson(os, phase, "fig_phase/phased/lazy");
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %zu windows, "
                             "%zu phases)\n",
                     opts.phasePath.c_str(), bytes, m.windows(),
                     machine.phases().size());
    }
    bench::BenchOptions rest = opts;
    rest.phasePath.clear(); // the canonical artifact above replaces it
    bench::writeRunArtifacts(rest, config, phased, "phased/lazy");
    return 0;
}
