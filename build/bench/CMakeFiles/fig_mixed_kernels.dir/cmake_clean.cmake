file(REMOVE_RECURSE
  "CMakeFiles/fig_mixed_kernels.dir/fig_mixed_kernels.cc.o"
  "CMakeFiles/fig_mixed_kernels.dir/fig_mixed_kernels.cc.o.d"
  "fig_mixed_kernels"
  "fig_mixed_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_mixed_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
