/**
 * @file
 * The synthetic workload suite. Each workload reproduces the resource
 * profile (CTA size, registers, shared memory), instruction mix and
 * memory-access structure of a Rodinia/Parboil-class GPGPU benchmark,
 * calibrated so the suite spans the paper's three IPC-vs-CTA-count
 * classes and includes the inter-CTA-locality kernels BCS targets.
 *
 * Per-workload notes live in the registry in suite.cc; measured type
 * classifications are recorded in EXPERIMENTS.md.
 */

#ifndef BSCHED_WORKLOADS_SUITE_HH
#define BSCHED_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "kernel/kernel_info.hh"

namespace bsched {

/** Names of all suite workloads, in canonical order. */
std::vector<std::string> workloadNames();

/**
 * Build one workload by name (fatal() on unknown names). Each call
 * constructs a fresh KernelInfo; the same name always yields an
 * identical kernel.
 */
KernelInfo makeWorkload(const std::string& name);

/** Build the whole suite in canonical order. */
std::vector<KernelInfo> makeSuite();

/** Workloads with inter-CTA locality (the BCS/E9/E10 subset). */
std::vector<std::string> localityWorkloadNames();

/**
 * The two halves of the "phased" composite as standalone kernels
 * (same resources, same address regions): the compute-bound prologue
 * and the cache-thrashing epilogue. fig_phase measures each regime's
 * static CTA-limit optimum separately and compares against the single
 * limit a one-shot sweep picks for the composite (E20).
 */
KernelInfo makePhasedPrologue();
KernelInfo makePhasedEpilogue();

/** One-line description of a workload (fatal() on unknown names). */
std::string workloadNotes(const std::string& name);

} // namespace bsched

#endif // BSCHED_WORKLOADS_SUITE_HH
