/**
 * @file
 * E3 — the paper's motivation figure: normalized IPC as a function of
 * the number of concurrent CTAs per core, for every suite workload.
 * Demonstrates the three workload types (saturating / increasing /
 * peaked) and that the maximum CTA count does not maximize performance.
 *
 * Reproduces: IPC-vs-CTAs/core figure (motivation section).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "kernel/occupancy.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    std::printf("E3: normalized IPC vs CTAs/core (GTO warp scheduler, "
                "RR CTA scheduler; %u jobs)\n\n",
                jobs);

    Table table("IPC normalized to max-CTA baseline");
    table.setHeader({"workload", "type", "Nmax", "1", "2", "3", "4", "5",
                     "6", "7", "8", "best-N"});

    BenchReport report("fig_cta_sensitivity");
    for (const std::string& name : workloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const std::uint32_t n_max = maxCtasPerCore(base, kernel);
        const auto sweep = sweepCtaLimit(base, kernel, n_max, jobs);
        const double base_ipc = sweep.back().ipc;

        std::vector<std::string> row = {name, toString(kernel.typeClass),
                                        std::to_string(n_max)};
        std::uint32_t best = 1;
        for (std::uint32_t n = 1; n <= 8; ++n) {
            if (n <= n_max) {
                row.push_back(fmt(sweep[n - 1].ipc / base_ipc, 3));
                if (sweep[n - 1].ipc > sweep[best - 1].ipc)
                    best = n;
            } else {
                row.push_back("-");
            }
        }
        row.push_back(std::to_string(best));
        table.addRow(row);
        for (std::uint32_t n = 1; n <= n_max; ++n)
            report.addRow(name + "/n" + std::to_string(n), sweep[n - 1]);
        report.addMetric(name + ".n_max", n_max);
        report.addMetric(name + ".best_n", best);
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: type-1 rows flatten early, type-2 rows rise to "
                "Nmax,\ntype-3 rows peak below Nmax and then decline.\n");

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, base, makeWorkload("kmeans"),
                              "kmeans/base");
    return 0;
}
