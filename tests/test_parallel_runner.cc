/**
 * @file
 * Tests for the parallel experiment harness: the worker pool, the jobs
 * knob, and the headline guarantee that a grid run produces the same
 * per-point results for every job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/thread_pool.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

KernelInfo
tinyKernel(const std::string& name, std::uint32_t grid, std::uint32_t trips)
{
    KernelInfo k;
    k.name = name;
    k.grid = {grid, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto t = b.pattern(in);
    b.loop(trips).load(t).alu(2).endLoop();
    k.program = b.build();
    return k;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ReusableAcrossWaitRounds)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.wait(); // empty wait is a no-op
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelRunner, ResolveJobsPrefersExplicitRequest)
{
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_GE(resolveJobs(0), 1u); // hardware default, whatever it is
}

TEST(ParallelRunner, ResolveJobsReadsEnvironment)
{
    const char* saved = std::getenv("BSCHED_JOBS");
    const std::string saved_value = saved ? saved : "";
    ::setenv("BSCHED_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0), 5u);
    EXPECT_EQ(resolveJobs(2), 2u); // explicit request still wins
    ::setenv("BSCHED_JOBS", "garbage", 1);
    EXPECT_GE(resolveJobs(0), 1u); // unparsable -> hardware default
    if (saved)
        ::setenv("BSCHED_JOBS", saved_value.c_str(), 1);
    else
        ::unsetenv("BSCHED_JOBS");
}

TEST(ParallelRunner, MapPreservesSubmissionOrder)
{
    const ParallelRunner runner(4);
    const auto out = runner.map<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, GridMatchesDirectRunKernel)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo k = tinyKernel("grid_a", 30, 8);
    const std::vector<SimPoint> points = {{config, k, "a"}};
    const auto grid = runGrid(points, 2);
    const RunResult direct = runKernel(config, k);
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].cycles, direct.cycles);
    EXPECT_EQ(grid[0].instrs, direct.instrs);
    EXPECT_DOUBLE_EQ(grid[0].ipc, direct.ipc);
}

TEST(ParallelRunner, GridIsDeterministicAcrossJobCounts)
{
    // The headline guarantee: per-point results are byte-identical for
    // any worker count; only wall-clock changes.
    std::vector<SimPoint> points;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    GpuConfig lazy = base;
    lazy.ctaSched = CtaSchedKind::Lazy;
    for (std::uint32_t grid = 20; grid < 24; ++grid) {
        const KernelInfo k =
            tinyKernel("det" + std::to_string(grid), grid, 6 + grid % 3);
        points.push_back({base, k, k.name + "/base"});
        points.push_back({lazy, k, k.name + "/lcs"});
    }
    ASSERT_GE(points.size(), 8u);

    const auto serial = runGrid(points, 1);
    const auto parallel = runGrid(points, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << "point " << i;
        EXPECT_EQ(serial[i].instrs, parallel[i].instrs) << "point " << i;
        EXPECT_DOUBLE_EQ(serial[i].ipc, parallel[i].ipc) << "point " << i;
        EXPECT_EQ(serial[i].stats.entries(), parallel[i].stats.entries())
            << "point " << i;
    }
}

TEST(ParallelRunner, SweepCtaLimitIdenticalUnderParallelism)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo k = tinyKernel("sweep", 24, 6);
    const auto serial = sweepCtaLimit(config, k, 6, 1);
    const auto parallel = sweepCtaLimit(config, k, 6, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
        EXPECT_DOUBLE_EQ(serial[i].ipc, parallel[i].ipc);
    }
}

} // namespace
} // namespace bsched
