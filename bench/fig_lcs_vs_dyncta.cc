/**
 * @file
 * E13 (related-work comparison) — LCS vs a DYNCTA-style iterative
 * controller. The paper positions LCS's one-shot monitoring against
 * periodic up/down controllers: LCS converges after one window, while
 * the controller searches incrementally (and keeps oscillating on
 * noisy feedback). Reports speedup over the max-CTA baseline.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig lcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Lazy);
    const GpuConfig dyn = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Dynamic);

    std::printf("E13: LCS vs DYNCTA-style controller (speedup over "
                "max-CTA baseline; %u jobs)\n\n",
                jobs);
    Table table("one-shot vs iterative CTA throttling");
    table.setHeader({"workload", "type", "lcs", "dyncta"});
    BenchReport report("fig_lcs_vs_dyncta");
    std::vector<double> s_lcs;
    std::vector<double> s_dyn;
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, {base, lcs, dyn}, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const KernelInfo kernel = makeWorkload(names[w]);
        const double base_ipc = grid.at(w, 0).ipc;
        const double a = grid.at(w, 1).ipc / base_ipc;
        const double b = grid.at(w, 2).ipc / base_ipc;
        s_lcs.push_back(a);
        s_dyn.push_back(b);
        table.addRow({names[w], toString(kernel.typeClass), fmt(a, 3),
                      fmt(b, 3)});
        report.addRow(names[w] + "/base", grid.at(w, 0));
        report.addRow(names[w] + "/lcs", grid.at(w, 1));
        report.addRow(names[w] + "/dyncta", grid.at(w, 2));
        report.addMetric(names[w] + ".speedup_lcs", a);
        report.addMetric(names[w] + ".speedup_dyncta", b);
    }
    table.addRow({"geomean", "", fmt(geomean(s_lcs), 3),
                  fmt(geomean(s_dyn), 3)});
    std::printf("%s", table.toText().c_str());
    report.addMetric("geomean.speedup_lcs", geomean(s_lcs));
    report.addMetric("geomean.speedup_dyncta", geomean(s_dyn));

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, dyn, makeWorkload("kmeans"),
                              "kmeans/dyncta");
    return 0;
}
