/**
 * @file
 * Serving-layer metrics and the `bsched-serving-v1` artifact. One
 * ServingSummary condenses one (policy, trace) engine run into the
 * serving headline numbers — throughput, p50/p99 launch-to-finish
 * latency, deadline-miss rate, per-tenant ANTT-style fairness — and a
 * ServingReport serializes a set of summaries deterministically (same
 * bytes for any --jobs, fast-forward on or off), so the committed
 * BENCH_serving.json can be CI-gated byte-for-byte.
 */

#ifndef BSCHED_SERVE_SERVING_REPORT_HH
#define BSCHED_SERVE_SERVING_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/engine.hh"

namespace bsched {

/** Headline serving metrics of one (policy, trace) run. */
struct ServingSummary
{
    std::string policy;
    std::string trace;

    std::uint64_t requests = 0;
    std::uint64_t deadlines = 0; ///< requests that carried a deadline
    std::uint64_t misses = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t reorders = 0;

    // Drain-preemption cost (CTA-drain mechanics).
    std::uint64_t drainRequests = 0;
    std::uint64_t drainCancels = 0;
    std::uint64_t drainsCompleted = 0;
    std::uint64_t drainLatencyCycles = 0;

    Cycle totalCycles = 0; ///< last completion

    /** Served kernels per million cycles. */
    double throughput = 0.0;

    /** Launch-to-finish latency quantiles/mean (cycles). */
    double p50Latency = 0.0;
    double p99Latency = 0.0;
    double meanLatency = 0.0;

    /** misses / deadlines; 0 when no request had a deadline. */
    double missRate = 0.0;

    /**
     * Per-tenant ANTT-style normalized latency (mean over the tenant's
     * requests of latency / isolated runtime), and the min/max fairness
     * across tenants: min normalized progress over max, in (0, 1].
     */
    std::vector<double> tenantAntt;
    double fairness = 1.0;
};

/**
 * Reduce one engine run to its summary. @p isolated maps each workload
 * name to its isolated full-machine runtime (the ANTT denominator);
 * fatal() if a served workload is missing from it.
 */
ServingSummary summarizeServing(const std::string& policy,
                                const std::string& trace,
                                const ServingRunResult& result,
                                const std::map<std::string, Cycle>&
                                    isolated);

/**
 * Accumulates serving summaries and derived metrics and writes the
 * `bsched-serving-v1` JSON artifact. Rows and metrics serialize in
 * insertion order; nothing parallelism- or wall-clock-dependent is
 * included.
 */
class ServingReport
{
  public:
    explicit ServingReport(std::string bench_name);

    void addRun(const ServingSummary& summary);
    void addMetric(const std::string& name, double value);

    std::size_t runs() const { return runs_.size(); }

    void writeJson(std::ostream& os) const;

    /** writeJson to a string (tests, byte-identity checks). */
    std::string toJson() const;

  private:
    std::string name_;
    std::vector<ServingSummary> runs_;
    std::vector<std::pair<std::string, double>> metrics_;
};

} // namespace bsched

#endif // BSCHED_SERVE_SERVING_REPORT_HH
