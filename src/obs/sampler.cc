#include "obs/sampler.hh"

#include <ostream>

#include "obs/sink.hh"
#include "sim/log.hh"

namespace bsched {

const char*
toString(SeriesKind kind)
{
    switch (kind) {
      case SeriesKind::Counter:
        return "counter";
      case SeriesKind::Gauge:
        return "gauge";
    }
    panic("unknown SeriesKind");
}

IntervalSampler::IntervalSampler(Cycle period)
    : period_(period)
{
    if (period_ == 0)
        fatal("sampler: period must be > 0 cycles");
}

void
IntervalSampler::begin(Cycle now)
{
    if (!cycles_.empty()) {
        if (now <= cycles_.back())
            panic("sampler: begin(", now, ") not after previous sample at ",
                  cycles_.back());
        for (const auto& [name, series] : series_) {
            if (series.values.size() != cycles_.size())
                panic("sampler: series '", name,
                      "' missed a sample before begin()");
        }
    }
    cycles_.push_back(now);
}

void
IntervalSampler::record(const std::string& name, double value,
                        SeriesKind kind)
{
    if (cycles_.empty())
        panic("sampler: record('", name, "') before begin()");
    SampleSeries& series = series_[name];
    if (series.values.empty())
        series.kind = kind;
    else if (series.kind != kind)
        panic("sampler: series '", name, "' changed kind mid-run");
    if (series.values.size() >= cycles_.size())
        panic("sampler: series '", name, "' recorded twice in one sample");
    // A series introduced late would misalign with the cycle axis.
    if (series.values.size() + 1 != cycles_.size())
        panic("sampler: series '", name, "' joined after the first sample");
    series.values.push_back(value);
}

std::vector<std::string>
IntervalSampler::names() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [name, series] : series_)
        out.push_back(name);
    return out;
}

const SampleSeries*
IntervalSampler::find(const std::string& name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

double
IntervalSampler::last(const std::string& name, double fallback) const
{
    const SampleSeries* series = find(name);
    if (series == nullptr || series->values.empty())
        return fallback;
    return series->values.back();
}

std::vector<double>
IntervalSampler::deltas(const std::string& name) const
{
    const SampleSeries* series = find(name);
    if (series == nullptr)
        fatal("sampler: no series named '", name, "'");
    if (series->kind != SeriesKind::Counter)
        fatal("sampler: deltas() of gauge series '", name, "'");
    std::vector<double> out;
    out.reserve(series->values.size());
    double prev = 0.0;
    for (double v : series->values) {
        out.push_back(v - prev);
        prev = v;
    }
    return out;
}

void
IntervalSampler::writeCsv(std::ostream& os) const
{
    os << "cycle";
    for (const auto& [name, series] : series_)
        os << "," << name;
    os << "\n";
    for (std::size_t i = 0; i < cycles_.size(); ++i) {
        os << cycles_[i];
        for (const auto& [name, series] : series_) {
            os << ",";
            if (i < series.values.size())
                os << jsonNumber(series.values[i]);
        }
        os << "\n";
    }
}

} // namespace bsched
