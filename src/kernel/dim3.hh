/**
 * @file
 * CUDA-style 3-component launch dimensions.
 */

#ifndef BSCHED_KERNEL_DIM3_HH
#define BSCHED_KERNEL_DIM3_HH

#include <cstdint>
#include <string>

namespace bsched {

/** A (x, y, z) launch dimension; total() is the linearized extent. */
struct Dim3
{
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    constexpr std::uint64_t
    total() const
    {
        return static_cast<std::uint64_t>(x) * y * z;
    }

    std::string
    toString() const
    {
        return "(" + std::to_string(x) + "," + std::to_string(y) + "," +
            std::to_string(z) + ")";
    }

    friend bool
    operator==(const Dim3& a, const Dim3& b)
    {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    }
};

} // namespace bsched

#endif // BSCHED_KERNEL_DIM3_HH
