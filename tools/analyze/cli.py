"""Command-line driver for the bsched static analysis suite.

Runs the pass catalog over the sources the build compiles, filters
findings through the audited allowlist, and reports:

  exit 0  clean (possibly with audited suppressions)
  exit 1  findings (or allowlist errors / stale entries)
  exit 2  usage or configuration error

``--github`` additionally emits workflow-command annotations so CI
failures surface inline on the pull request; ``--artifact`` writes the
deterministic ``bsched-analysis-v1`` findings JSON (written on success
too, so CI can always upload it).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .annotations import emit_annotation
from .engine import (Allowlist, Context, EngineError, Finding,
                     load_sources, write_artifact)
from .passes import ALL_PASSES, known_rules

DEFAULT_ALLOWLIST = "tools/analyze/allowlist.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tools/analyze",
        description="multi-pass static analysis enforcing the "
                    "simulator's correctness conventions",
    )
    parser.add_argument(
        "--build-dir", type=Path, default=Path("build"),
        help="build tree containing compile_commands.json "
             "(default: build)",
    )
    parser.add_argument(
        "--repo", type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root (default: the tree containing this "
             "script)",
    )
    parser.add_argument(
        "--allowlist", type=Path, default=None,
        help=f"allowlist file (default: {DEFAULT_ALLOWLIST})",
    )
    parser.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help="run only these passes (default: all; stale-allowlist "
             "detection is skipped for partial runs)",
    )
    parser.add_argument(
        "--artifact", type=Path, default=None,
        help="write the bsched-analysis-v1 findings JSON here",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit ::error workflow-command annotations per finding",
    )
    parser.add_argument(
        "--list-files", action="store_true",
        help="print the files that would be scanned and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the pass/rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for pass_module in ALL_PASSES:
            for suffix, doc in pass_module.RULES.items():
                print(f"{pass_module.NAME}.{suffix}: {doc}")
        return 0

    repo = args.repo.resolve()
    build_dir = (args.build_dir if args.build_dir.is_absolute()
                 else repo / args.build_dir)
    allowlist_path = (args.allowlist if args.allowlist is not None
                      else repo / DEFAULT_ALLOWLIST)

    selected = ALL_PASSES
    if args.passes is not None:
        wanted = [name.strip() for name in args.passes.split(",")
                  if name.strip()]
        by_name = {p.NAME: p for p in ALL_PASSES}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            print(f"error: unknown pass(es): {', '.join(unknown)} "
                  f"(known: {', '.join(by_name)})", file=sys.stderr)
            return 2
        selected = [by_name[name] for name in wanted]

    try:
        files = load_sources(build_dir, repo)
    except EngineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.list_files:
        for src in files:
            print(src.rel)
        return 0

    ctx = Context(repo, build_dir, files)
    allowlist = Allowlist(allowlist_path, repo, known_rules())

    findings: list[Finding] = []
    suppressed = 0
    for pass_module in selected:
        for finding in pass_module.run(ctx):
            if allowlist.allows(finding):
                suppressed += 1
            else:
                findings.append(finding)

    allowlist_rel = (allowlist_path.relative_to(repo).as_posix()
                     if allowlist_path.is_relative_to(repo)
                     else str(allowlist_path))
    for error in allowlist.errors:
        findings.append(Finding(
            file=allowlist_rel, line=0, rule="allowlist.invalid",
            message=error,
        ))
    if len(selected) == len(ALL_PASSES):
        for rel, rule in allowlist.stale():
            findings.append(Finding(
                file=allowlist_rel, line=0, rule="allowlist.stale",
                message=f"entry '{rel} {rule}' matches nothing — "
                        "remove it (the allowlist only shrinks)",
            ))

    findings.sort()
    pass_names = [p.NAME for p in selected]
    if args.artifact is not None:
        write_artifact(args.artifact, pass_names, len(files), findings,
                       suppressed)

    if findings:
        print(f"analyze: {len(findings)} finding(s) in {len(files)} "
              f"file(s) [{', '.join(pass_names)}]:")
        for finding in findings:
            print(f"  {finding.render()}")
            if args.github:
                emit_annotation("error", finding.rule, finding.message,
                                file=finding.file,
                                line=finding.line or None)
        print(
            "\nFix the source (preferred), or add an audited entry to\n"
            f"{allowlist_rel} with a justification — see "
            "docs/STATIC_ANALYSIS.md."
        )
        return 1

    print(f"analyze: clean — {len(files)} file(s), "
          f"{len(pass_names)} pass(es), {suppressed} audited "
          "suppression(s)")
    return 0
