# Empty dependencies file for tab_lcs_accuracy.
# This may be replaced when dependencies are built.
