#include "kernel/mem_pattern.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace bsched {

const char*
toString(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Coalesced: return "coalesced";
      case AccessKind::Strided: return "strided";
      case AccessKind::CtaTile: return "cta-tile";
      case AccessKind::HaloRows: return "halo-rows";
      case AccessKind::Random: return "random";
      case AccessKind::Broadcast: return "broadcast";
      case AccessKind::SharedBank: return "shared-bank";
    }
    return "?";
}

void
MemPattern::validate() const
{
    if (elemBytes == 0)
        fatal("mem pattern: elemBytes must be > 0");
    switch (kind) {
      case AccessKind::Strided:
        if (strideElems == 0)
            fatal("mem pattern: strided needs strideElems > 0");
        break;
      case AccessKind::CtaTile:
      case AccessKind::Random:
        if (footprintBytes < elemBytes)
            fatal("mem pattern: ", toString(kind),
                  " needs footprintBytes >= elemBytes");
        break;
      case AccessKind::HaloRows:
        if (rowBytes == 0 || rowsPerCta == 0)
            fatal("mem pattern: halo-rows needs rowBytes and rowsPerCta");
        break;
      case AccessKind::SharedBank:
        if (space != MemSpace::Shared)
            fatal("mem pattern: shared-bank must target shared space");
        if (bankStride == 0)
            fatal("mem pattern: bankStride must be > 0");
        break;
      case AccessKind::Coalesced:
      case AccessKind::Broadcast:
        break;
    }
    if (kind != AccessKind::SharedBank && space == MemSpace::Shared)
        fatal("mem pattern: shared space requires shared-bank kind");
}

Addr
laneAddress(const MemPattern& p, const KernelGeom& g, std::uint32_t cta,
            std::uint32_t warp_in_cta, std::uint32_t lane,
            std::uint64_t iter)
{
    const std::uint64_t tid_in_cta =
        static_cast<std::uint64_t>(warp_in_cta) * kWarpSize + lane;
    const std::uint64_t global_tid =
        static_cast<std::uint64_t>(cta) * g.ctaThreads + tid_in_cta;
    const std::uint64_t grid_threads =
        static_cast<std::uint64_t>(g.gridCtas) * g.ctaThreads;

    switch (p.kind) {
      case AccessKind::Coalesced:
        // Streaming: iteration i touches the next grid-sized slab.
        return p.base + (global_tid + iter * grid_threads) * p.elemBytes;

      case AccessKind::Strided:
        return p.base +
            (global_tid * p.strideElems +
             iter * grid_threads * p.strideElems) * p.elemBytes;

      case AccessKind::CtaTile: {
        // Each CTA cyclically re-walks its private tile: on iteration i
        // the warp reads tile element ((tid + i*ctaThreads) mod tileElems).
        const std::uint64_t tile_elems = p.footprintBytes / p.elemBytes;
        const std::uint64_t idx =
            (tid_in_cta + iter * g.ctaThreads) % tile_elems;
        return p.base + static_cast<std::uint64_t>(cta) * p.footprintBytes +
            idx * p.elemBytes;
      }

      case AccessKind::HaloRows: {
        // CTA c walks rows [c*R - H, (c+1)*R + H); consecutive CTAs share
        // the 2H halo rows. Row selected by iteration, column by thread.
        const std::uint64_t span = p.rowsPerCta + 2ULL * p.haloRows;
        const std::int64_t first =
            static_cast<std::int64_t>(cta) * p.rowsPerCta -
            static_cast<std::int64_t>(p.haloRows);
        std::int64_t row = first + static_cast<std::int64_t>(iter % span);
        if (row < 0)
            row = 0;
        const std::uint64_t col =
            (tid_in_cta * p.elemBytes) % p.rowBytes;
        return p.base + static_cast<std::uint64_t>(row) * p.rowBytes + col;
      }

      case AccessKind::Random: {
        const std::uint64_t elems = p.footprintBytes / p.elemBytes;
        const std::uint64_t h = mix64(hashCombine(
            hashCombine(cta, warp_in_cta * 37ULL + lane), iter));
        return p.base + (h % elems) * p.elemBytes;
      }

      case AccessKind::Broadcast:
        return p.base + (iter % 16) * p.elemBytes;

      case AccessKind::SharedBank:
        // Shared memory is modeled by the bank-conflict factor only; the
        // address is nominal.
        return p.base + tid_in_cta * p.elemBytes * p.bankStride;
    }
    panic("laneAddress: unhandled pattern kind");
}

std::vector<Addr>
coalesce(const MemPattern& p, const KernelGeom& g, std::uint32_t cta,
         std::uint32_t warp_in_cta, std::uint64_t iter,
         std::uint32_t active_lanes, std::uint32_t line_bytes)
{
    if (active_lanes == 0 || active_lanes > kWarpSize)
        panic("coalesce: active_lanes out of range: ", active_lanes);
    const Addr mask = ~static_cast<Addr>(line_bytes - 1);
    std::vector<Addr> lines;
    lines.reserve(8);
    for (std::uint32_t lane = 0; lane < active_lanes; ++lane) {
        Addr line = laneAddress(p, g, cta, warp_in_cta, lane, iter) & mask;
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

std::uint32_t
sharedConflictFactor(const MemPattern& p, std::uint32_t active_lanes)
{
    constexpr std::uint32_t kBanks = 32;
    if (p.kind != AccessKind::SharedBank)
        return 1;
    std::uint32_t count[kBanks] = {};
    std::uint32_t worst = 0;
    for (std::uint32_t lane = 0; lane < active_lanes; ++lane) {
        std::uint32_t bank = (lane * p.bankStride) % kBanks;
        worst = std::max(worst, ++count[bank]);
    }
    return std::max<std::uint32_t>(worst, 1);
}

} // namespace bsched
