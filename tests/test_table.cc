/**
 * @file
 * Unit tests for the table/CSV/bar-chart renderers.
 */

#include <gtest/gtest.h>

#include "sim/table.hh"

namespace bsched {
namespace {

TEST(Table, TextRenderingAlignsColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvRendering)
{
    Table t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(Table, NumericRowFormatsPrecision)
{
    Table t;
    t.setHeader({"w", "x", "y"});
    t.addRow("k", {1.23456, 2.0}, 2);
    EXPECT_EQ(t.toCsv(), "w,x,y\nk,1.23,2.00\n");
}

TEST(Table, MismatchedRowWidthDies)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(BarChart, ScalesToLongestBar)
{
    const auto chart = barChart("t", {{"a", 2.0}, {"b", 1.0}}, 10, 1);
    // The max bar has 10 hashes, the half-size bar 5.
    EXPECT_NE(chart.find("##########"), std::string::npos);
    EXPECT_EQ(chart.find("###########"), std::string::npos);
}

TEST(BarChart, HandlesAllZeroValues)
{
    const auto chart = barChart("z", {{"a", 0.0}}, 10, 1);
    EXPECT_NE(chart.find("a"), std::string::npos);
    EXPECT_EQ(chart.find("#"), std::string::npos);
}

} // namespace
} // namespace bsched
