/**
 * @file
 * Unit tests for the warp scheduling policies (LRR, GTO, BAWS).
 */

#include <gtest/gtest.h>

#include "core/warp_sched.hh"

namespace bsched {
namespace {

/** Build a warp table: entry i has the given (ctaSeq, blockSeq). */
std::vector<Warp>
warpsWith(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& meta)
{
    std::vector<Warp> warps(meta.size());
    for (std::size_t i = 0; i < meta.size(); ++i) {
        warps[i].valid = true;
        warps[i].ctaSeq = meta[i].first;
        warps[i].blockSeq = meta[i].second;
        warps[i].warpInCta = static_cast<std::uint32_t>(i);
    }
    return warps;
}

TEST(LrrScheduler, RotatesThroughReadyWarps)
{
    LrrScheduler lrr;
    const auto warps = warpsWith({{0, 0}, {0, 0}, {0, 0}});
    const std::vector<int> ready = {0, 1, 2};
    int w = lrr.pick(ready, warps);
    EXPECT_EQ(w, 0);
    lrr.notifyIssued(w, warps);
    w = lrr.pick(ready, warps);
    EXPECT_EQ(w, 1);
    lrr.notifyIssued(w, warps);
    w = lrr.pick(ready, warps);
    EXPECT_EQ(w, 2);
    lrr.notifyIssued(w, warps);
    EXPECT_EQ(lrr.pick(ready, warps), 0); // wraps
}

TEST(LrrScheduler, SkipsUnreadyWarps)
{
    LrrScheduler lrr;
    const auto warps = warpsWith({{0, 0}, {0, 0}, {0, 0}});
    lrr.notifyIssued(0, warps);
    EXPECT_EQ(lrr.pick({2}, warps), 2);
}

TEST(GtoScheduler, SticksWithGreedyWarp)
{
    GtoScheduler gto;
    const auto warps = warpsWith({{0, 0}, {0, 0}, {1, 1}});
    gto.notifyIssued(1, warps);
    EXPECT_EQ(gto.pick({0, 1, 2}, warps), 1); // greedy
}

TEST(GtoScheduler, FallsBackToOldestCta)
{
    GtoScheduler gto;
    // Warp 2 belongs to an older CTA than warps 0/1.
    auto warps = warpsWith({{5, 0}, {5, 0}, {1, 1}});
    gto.notifyIssued(0, warps);
    // Greedy warp 0 not ready: oldest CTA wins.
    EXPECT_EQ(gto.pick({1, 2}, warps), 2);
}

TEST(GtoScheduler, TieBreaksByWarpIndexWithinCta)
{
    GtoScheduler gto;
    auto warps = warpsWith({{3, 0}, {3, 0}});
    warps[0].warpInCta = 1;
    warps[1].warpInCta = 0;
    EXPECT_EQ(gto.pick({0, 1}, warps), 1);
}

TEST(BawsScheduler, SticksWithLastBlock)
{
    BawsScheduler baws;
    // Warps 0,1 in block 7; warp 2 in older block 3.
    const auto warps = warpsWith({{2, 7}, {2, 7}, {1, 3}});
    baws.notifyIssued(0, warps);
    // Block 7 still has ready warps: stay with it even though block 3
    // is older.
    EXPECT_EQ(baws.pick({1, 2}, warps), 1);
}

TEST(BawsScheduler, GreedyWithinSingleCtaBlock)
{
    // With only one CTA in the block, BAWS behaves like GTO: it sticks
    // to the greedy warp while it stays ready.
    BawsScheduler baws;
    const auto warps = warpsWith({{0, 5}, {0, 5}, {0, 5}});
    baws.notifyIssued(1, warps);
    EXPECT_EQ(baws.pick({0, 1, 2}, warps), 1);
    // When the greedy warp stalls, the oldest warp of the CTA wins.
    EXPECT_EQ(baws.pick({0, 2}, warps), 0);
}

TEST(BawsScheduler, FallsBackToOldestBlock)
{
    BawsScheduler baws;
    const auto warps = warpsWith({{0, 9}, {1, 4}, {2, 6}});
    // No last block: oldest block (4) wins.
    EXPECT_EQ(baws.pick({0, 1, 2}, warps), 1);
}

TEST(BawsScheduler, NeverReturnsNoPickForNonEmptyReadySet)
{
    // Regression: a -1 from pick() panics the issue stage. Saturated
    // warpInCta bookkeeping makes pickWithinBlock find the block but no
    // candidate warp; the guard must degrade to greedy-then-oldest
    // instead of handing -1 back.
    BawsScheduler baws;
    std::vector<Warp> warps(2);
    for (auto& w : warps) {
        w.valid = true;
        w.ctaSeq = 0;
        w.blockSeq = 0;
        w.warpInCta = ~0u;
    }
    const int picked = baws.pick({0, 1}, warps);
    EXPECT_GE(picked, 0);
    EXPECT_LE(picked, 1);
}

TEST(BawsScheduler, KeepsPairedCtasAtEvenProgress)
{
    BawsScheduler baws;
    // Block 2 holds two CTAs (seq 10 and 11), each with 2 warps.
    auto warps = warpsWith({{10, 2}, {10, 2}, {11, 2}, {11, 2}});
    const std::vector<int> ready = {0, 1, 2, 3};
    std::vector<int> issues(4, 0);
    for (int i = 0; i < 20; ++i) {
        const int w = baws.pick(ready, warps);
        ASSERT_GE(w, 0);
        ++issues[static_cast<std::size_t>(w)];
        ++warps[static_cast<std::size_t>(w)].instrsIssued;
        baws.notifyIssued(w, warps);
    }
    // Laggard-CTA-first keeps the pair balanced within one instruction.
    const int cta_a = issues[0] + issues[1];
    const int cta_b = issues[2] + issues[3];
    EXPECT_LE(std::abs(cta_a - cta_b), 1);
}

TEST(TwoLevelScheduler, RoundRobinsWithinActiveSet)
{
    TwoLevelScheduler tl(2);
    const auto warps = warpsWith({{0, 0}, {0, 0}, {0, 0}});
    // Promote warps 0 and 1 into the active set.
    tl.notifyIssued(0, warps);
    tl.notifyIssued(1, warps);
    // Both active and ready: RR between them, ignoring outsider 2.
    EXPECT_EQ(tl.pick({0, 1, 2}, warps), 0);
    tl.notifyIssued(0, warps);
    EXPECT_EQ(tl.pick({0, 1, 2}, warps), 1);
}

TEST(TwoLevelScheduler, PromotesOutsiderWhenActiveSetStalls)
{
    TwoLevelScheduler tl(2);
    const auto warps = warpsWith({{0, 0}, {0, 0}, {1, 1}});
    tl.notifyIssued(0, warps);
    tl.notifyIssued(1, warps);
    // Active warps 0/1 not ready: outsider 2 is promoted and picked.
    EXPECT_EQ(tl.pick({2}, warps), 2);
    EXPECT_EQ(tl.activeSet().size(), 2u);
}

TEST(TwoLevelScheduler, EvictsOldestActiveOnPromotion)
{
    TwoLevelScheduler tl(1);
    const auto warps = warpsWith({{0, 0}, {1, 1}});
    tl.notifyIssued(0, warps);
    EXPECT_EQ(tl.pick({1}, warps), 1); // promotes 1, evicts 0
    ASSERT_EQ(tl.activeSet().size(), 1u);
    EXPECT_EQ(tl.activeSet()[0], 1);
}

TEST(TwoLevelScheduler, DropsDeadWarpsFromActiveSet)
{
    TwoLevelScheduler tl(4);
    auto warps = warpsWith({{0, 0}, {0, 0}});
    tl.notifyIssued(0, warps);
    tl.notifyIssued(1, warps);
    warps[0].done = true; // warp retires
    EXPECT_EQ(tl.pick({1}, warps), 1);
    EXPECT_EQ(tl.activeSet().size(), 1u);
}

TEST(WarpSchedulerFactory, CreatesRequestedKind)
{
    EXPECT_NE(dynamic_cast<LrrScheduler*>(
                  WarpScheduler::create(WarpSchedKind::LRR).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<GtoScheduler*>(
                  WarpScheduler::create(WarpSchedKind::GTO).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<TwoLevelScheduler*>(
                  WarpScheduler::create(WarpSchedKind::TwoLevel).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<BawsScheduler*>(
                  WarpScheduler::create(WarpSchedKind::BAWS).get()),
              nullptr);
}

} // namespace
} // namespace bsched
