/**
 * @file
 * Mixed concurrent kernel execution walkthrough: pairs a cache-limited
 * kernel (which LCS caps well below full occupancy) with a compute
 * kernel that soaks up the freed resources on the same cores. Compares
 * sequential execution, spatial partitioning and MCK.
 */

#include <cstdio>

#include "gpu/multi_kernel.hh"
#include "harness/runner.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"
#include "sim/table.hh"

int
main()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug

    // kmeans: peaked (type-3) memory kernel, thread/register-limited;
    // lud: compute kernel limited by *shared memory*. Complementary
    // resource demands are what MCK exploits — pairing two kernels
    // that fight over the same resource (e.g. kmeans+gemm, both
    // register-hungry) loses instead (see bench/fig_mixed_kernels).
    const KernelInfo mem_kernel = makeWorkload("kmeans");
    const KernelInfo compute_kernel = makeWorkload("lud");
    const std::vector<const KernelInfo*> pair = {&mem_kernel,
                                                 &compute_kernel};
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);

    std::printf("Running kmeans + lud under three policies...\n\n");
    Table table("multi-kernel execution policies");
    table.setHeader({"policy", "total cycles", "speedup vs seq", "STP",
                     "ANTT"});
    Cycle seq_total = 0;
    for (const MultiKernelPolicy policy :
         {MultiKernelPolicy::Sequential, MultiKernelPolicy::Spatial,
          MultiKernelPolicy::Mixed}) {
        const MultiKernelReport report =
            runMultiKernel(config, pair, policy);
        if (policy == MultiKernelPolicy::Sequential)
            seq_total = report.totalCycles;
        table.addRow({toString(policy),
                      std::to_string(report.totalCycles),
                      fmt(static_cast<double>(seq_total) /
                              static_cast<double>(report.totalCycles),
                          3),
                      fmt(report.stp(), 2), fmt(report.antt(), 2)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Sequential leaves resources idle whenever one kernel\n"
                "cannot fill the machine; spatial partitioning dedicates\n"
                "whole cores; mixed execution (MCK) lets LCS cap the\n"
                "memory kernel per core and backfills the same cores\n"
                "with compute CTAs.\n");
    return 0;
}
