/**
 * @file
 * Tests for the experiment harness: runs, sweeps and oracle selection.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = makeConfig(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "k";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(6).load(i).alu(3).endLoop();
    k.program = b.build();
    return k;
}

TEST(Runner, RunKernelPopulatesResult)
{
    const RunResult r = runKernel(cfg(), kernel());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.instrs, kernel().totalDynamicInstrs());
    EXPECT_NEAR(r.ipc,
                static_cast<double>(r.instrs) /
                    static_cast<double>(r.cycles),
                1e-9);
    EXPECT_GT(r.stats.size(), 0u);
}

TEST(Runner, MissRateHelpersInRange)
{
    const RunResult r = runKernel(cfg(), kernel());
    EXPECT_GE(r.l1MissRate(), 0.0);
    EXPECT_LE(r.l1MissRate(), 1.0);
    EXPECT_GE(r.l2MissRate(), 0.0);
    EXPECT_LE(r.l2MissRate(), 1.0);
    EXPECT_GE(r.dramRowHitRate(), 0.0);
    EXPECT_LE(r.dramRowHitRate(), 1.0);
}

TEST(Runner, ZeroAccessKernelHasWellDefinedMissRates)
{
    // A pure-ALU kernel never touches the memory system; the derived
    // rates must read 0, not NaN or a fatal division.
    KernelInfo k;
    k.name = "alu_only";
    k.grid = {4, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(4).alu(5).endLoop();
    k.program = b.build();

    const RunResult r = runKernel(cfg(), k);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_DOUBLE_EQ(r.stats.sumBySuffix(".l1d.access"), 0.0);
    EXPECT_DOUBLE_EQ(r.l1MissRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.l2MissRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.dramRowHitRate(), 0.0);
}

TEST(Runner, SweepReturnsOneResultPerLimit)
{
    const auto sweep = sweepCtaLimit(cfg(), kernel(), 4);
    ASSERT_EQ(sweep.size(), 4u);
    for (const RunResult& r : sweep)
        EXPECT_EQ(r.instrs, kernel().totalDynamicInstrs());
}

TEST(Runner, OracleSelectsBestIpc)
{
    const OracleResult oracle = oracleStaticBest(cfg(), kernel());
    EXPECT_GE(oracle.bestLimit, 1u);
    EXPECT_LE(oracle.bestLimit, oracle.maxLimit);
    for (std::uint32_t n = 1; n <= oracle.maxLimit; ++n) {
        EXPECT_LE(oracle.byLimit[n - 1].ipc,
                  oracle.byLimit[oracle.bestLimit - 1].ipc + 1e-12);
    }
}

TEST(Runner, RunWorkloadByName)
{
    // Use the real machine (workloads are sized for it) but just check
    // plumbing with the smallest workload.
    GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                  CtaSchedKind::RoundRobin);
    const RunResult r = runWorkload(config, "spmv");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Runner, MakeConfigSetsPolicies)
{
    const GpuConfig c = makeConfig(WarpSchedKind::BAWS,
                                   CtaSchedKind::LazyBlock);
    EXPECT_EQ(c.warpSched, WarpSchedKind::BAWS);
    EXPECT_EQ(c.ctaSched, CtaSchedKind::LazyBlock);
}

} // namespace
} // namespace bsched
