/**
 * @file
 * A small fixed-size worker pool for the experiment harness. Tasks are
 * executed FIFO; wait() blocks until every submitted task has finished,
 * so a pool can be reused across fan-out rounds.
 *
 * This is harness-side infrastructure only: the simulator core itself is
 * single-threaded and must never be handed to more than one worker (see
 * parallel_runner.hh for the invariant that makes grid runs lock-free).
 */

#ifndef BSCHED_HARNESS_THREAD_POOL_HH
#define BSCHED_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsched {

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue (via wait()) and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue a task. Tasks must not throw: the harness reports errors
     * through fatal()/panic(), which terminate the process.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has run to completion. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0; ///< tasks currently executing
    bool stop_ = false;
};

} // namespace bsched

#endif // BSCHED_HARNESS_THREAD_POOL_HH
