file(REMOVE_RECURSE
  "CMakeFiles/example_multi_kernel_mix.dir/multi_kernel_mix.cpp.o"
  "CMakeFiles/example_multi_kernel_mix.dir/multi_kernel_mix.cpp.o.d"
  "example_multi_kernel_mix"
  "example_multi_kernel_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_kernel_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
