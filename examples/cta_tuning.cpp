/**
 * @file
 * CTA-count tuning walkthrough: builds a cache-sensitive kernel, sweeps
 * the static per-core CTA limit to expose the paper's "type-3" curve,
 * then lets LCS find the limit automatically and compares against the
 * oracle. This is the end-to-end LCS story on a single kernel.
 */

#include <cstdio>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "sim/log.hh"
#include "sim/table.hh"

int
main()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug

    // A kmeans-like kernel: every CTA repeatedly re-walks a private 8KB
    // tile. One or two resident CTAs fit in the 16KB L1; the occupancy
    // maximum (6) thrashes it.
    ProgramBuilder builder;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = 0x40000000;
    tile.footprintBytes = 8 * 1024;
    const auto t = builder.pattern(tile);
    builder.loop(60).load(t).alu(4).load(t).alu(4).endLoop();

    KernelInfo kernel;
    kernel.name = "tile-walk";
    kernel.grid = {360, 1, 1};
    kernel.cta = {256, 1, 1};
    kernel.regsPerThread = 20;
    kernel.program = builder.build();

    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    // The limits are independent simulation points; the sweep fans out
    // across resolveJobs() workers (BSCHED_JOBS to override).
    std::printf("Sweeping the static CTA limit (the oracle search, "
                "%u jobs)...\n\n",
                resolveJobs());
    const OracleResult oracle = oracleStaticBest(base, kernel);
    Table table("IPC vs CTAs per core");
    table.setHeader({"CTAs/core", "IPC", "L1 miss %"});
    for (std::uint32_t n = 1; n <= oracle.maxLimit; ++n) {
        const RunResult& r = oracle.byLimit[n - 1];
        table.addRow({std::to_string(n), fmt(r.ipc, 2),
                      fmt(100 * r.l1MissRate(), 1)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Best static limit: %u of %u\n\n", oracle.bestLimit,
                oracle.maxLimit);

    std::printf("Now letting LCS find the limit online...\n");
    const GpuConfig lcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Lazy);
    const RunResult lazy = runKernel(lcs, kernel);
    const double base_ipc = oracle.byLimit[oracle.maxLimit - 1].ipc;
    const double best_ipc = oracle.byLimit[oracle.bestLimit - 1].ipc;
    std::printf("  baseline (max CTAs) IPC: %s\n", fmt(base_ipc, 2).c_str());
    std::printf("  LCS IPC               : %s (%sx)\n",
                fmt(lazy.ipc, 2).c_str(),
                fmt(lazy.ipc / base_ipc, 3).c_str());
    std::printf("  oracle IPC            : %s (%sx)\n",
                fmt(best_ipc, 2).c_str(),
                fmt(best_ipc / base_ipc, 3).c_str());
    std::printf("  LCS chose (per core)  :");
    for (const auto& name : lazy.stats.namesBySuffix(".n_opt"))
        std::printf(" %d", static_cast<int>(lazy.stats.get(name)));
    std::printf("\n");
    return 0;
}
