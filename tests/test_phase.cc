/**
 * @file
 * Tests for the phase telemetry: window conservation across all warp
 * schedulers, detector segmentation semantics (stability, backdated
 * commits, transient absorption), artifact byte-determinism across
 * fast-forward settings and repeats, the sampler gauges, and the E20
 * acceptance that the phased composite shows at least two machine
 * phases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/phase/phase.hh"
#include "obs/sampler.hh"
#include "workloads/suite.hh"

namespace bsched {
namespace {

GpuConfig
cfg(WarpSchedKind warp = WarpSchedKind::GTO)
{
    GpuConfig c = makeConfig(warp, CtaSchedKind::RoundRobin);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "phased_test";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Strided;
    in.strideElems = 8;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(24).load(i).alu(3).endLoop();
    k.program = b.build();
    return k;
}

PhaseConfig
smallWindows()
{
    PhaseConfig pc;
    pc.windowCycles = 256;
    return pc;
}

/**
 * Conservation: the per-window deltas are a complete partition of the
 * run — summing them reproduces the final totals, and the last window
 * ends exactly at the final cycle — for every warp-scheduler kind.
 */
TEST(PhaseTelemetry, WindowDeltasSumToRunTotals)
{
    for (const WarpSchedKind warp :
         {WarpSchedKind::LRR, WarpSchedKind::GTO, WarpSchedKind::TwoLevel,
          WarpSchedKind::BAWS}) {
        PhaseTelemetry phase(smallWindows());
        Observer obs;
        obs.phase = &phase;
        const RunResult r = runKernel(cfg(warp), kernel(), obs);

        const WindowedMetrics& m = phase.metrics();
        ASSERT_GE(m.windows(), 2u);
        EXPECT_EQ(m.endCycles().back(), r.cycles);

        std::uint64_t instrs = 0;
        for (const std::uint64_t d : m.instrDeltas())
            instrs += d;
        EXPECT_EQ(instrs, r.instrs);

        std::uint64_t l1 = 0;
        for (const std::uint64_t d : m.l1AccessDeltas())
            l1 += d;
        EXPECT_EQ(static_cast<double>(l1),
                  r.stats.sumBySuffix(".l1d.access"));
    }
}

TEST(PhaseDetector, StableStreamIsOnePhase)
{
    PhaseDetector d(PhaseConfig{}, {1});
    for (std::size_t w = 0; w < 20; ++w)
        EXPECT_FALSE(d.observe(w, {10.0}));
    ASSERT_EQ(d.phases().size(), 1u);
    EXPECT_EQ(d.phases()[0].startWindow, 0u);
    EXPECT_EQ(d.phases()[0].windows, 20u);
    EXPECT_DOUBLE_EQ(d.phases()[0].mean[0], 10.0);
}

TEST(PhaseDetector, StepChangeCommitsBackdated)
{
    PhaseConfig pc;
    pc.hysteresis = 2;
    PhaseDetector d(pc, {1});
    for (std::size_t w = 0; w < 10; ++w)
        d.observe(w, {10.0});
    EXPECT_FALSE(d.observe(10, {2.0})); // first deviation: pending only
    EXPECT_TRUE(d.observe(11, {2.0}));  // second commits, backdated
    ASSERT_EQ(d.phases().size(), 2u);
    EXPECT_EQ(d.phases()[1].startWindow, 10u);
    EXPECT_DOUBLE_EQ(d.phases()[1].mean[0], 2.0);
    EXPECT_EQ(d.currentPhase(), 1u);
}

TEST(PhaseDetector, SingleBlipIsAbsorbed)
{
    PhaseConfig pc;
    pc.hysteresis = 2;
    PhaseDetector d(pc, {1});
    for (std::size_t w = 0; w < 10; ++w)
        d.observe(w, {10.0});
    EXPECT_FALSE(d.observe(10, {2.0})); // transient…
    EXPECT_FALSE(d.observe(11, {10.0})); // …returns in-band
    for (std::size_t w = 12; w < 20; ++w)
        EXPECT_FALSE(d.observe(w, {10.0}));
    ASSERT_EQ(d.phases().size(), 1u);
    // The blip never polluted the reference mean.
    EXPECT_DOUBLE_EQ(d.phases()[0].mean[0], 10.0);
}

TEST(PhaseDetector, AbsoluteChannelUsesAbsThreshold)
{
    PhaseConfig pc;
    pc.absThreshold = 0.08;
    pc.hysteresis = 1;
    PhaseDetector d(pc, {0});
    d.observe(0, {0.01});
    // +0.05 absolute is in-band even though it is 5x relative.
    EXPECT_FALSE(d.observe(1, {0.06}));
    // Reference mean is now (0.01 + 0.06) / 2 = 0.035.
    EXPECT_TRUE(d.observe(2, {0.20}));
    EXPECT_EQ(d.phases().size(), 2u);
}

/** The artifact is byte-identical across fast-forward settings and
 *  repeated runs (the CI gate re-checks this across --jobs too). */
TEST(PhaseTelemetry, ArtifactBytesIndependentOfFastForward)
{
    const KernelInfo k = kernel();
    auto artifact = [&](bool fast_forward) {
        GpuConfig c = cfg();
        c.fastForward = fast_forward;
        PhaseTelemetry phase(smallWindows());
        Observer obs;
        obs.phase = &phase;
        runKernel(c, k, obs);
        std::ostringstream os;
        writePhaseJson(os, phase, "test/phase");
        return os.str();
    };
    const std::string ff_on = artifact(true);
    const std::string ff_off = artifact(false);
    const std::string again = artifact(true);
    EXPECT_EQ(ff_on, ff_off);
    EXPECT_EQ(ff_on, again);
    EXPECT_NE(ff_on.find("\"schema\": \"bsched-phase-v1\""),
              std::string::npos);
}

/** Attaching the telemetry must not change the simulation itself. */
TEST(PhaseTelemetry, AttachmentDoesNotPerturbTheRun)
{
    const KernelInfo k = kernel();
    const RunResult bare = runKernel(cfg(), k);
    PhaseTelemetry phase(smallWindows());
    Observer obs;
    obs.phase = &phase;
    const RunResult observed = runKernel(cfg(), k, obs);
    EXPECT_EQ(bare.cycles, observed.cycles);
    EXPECT_EQ(bare.instrs, observed.instrs);
}

TEST(PhaseTelemetry, SamplerCarriesPhaseGauges)
{
    PhaseTelemetry phase(smallWindows());
    IntervalSampler sampler(256);
    Observer obs;
    obs.phase = &phase;
    obs.sampler = &sampler;
    runKernel(cfg(), kernel(), obs);
    ASSERT_NE(sampler.find("phase.current"), nullptr);
    ASSERT_NE(sampler.find("phase.count"), nullptr);
    EXPECT_EQ(sampler.find("phase.current")->kind, SeriesKind::Gauge);
    // The final sample reflects the committed machine segmentation.
    EXPECT_DOUBLE_EQ(sampler.last("phase.count"),
                     static_cast<double>(phase.machine().phases().size()));
}

/** E20 acceptance: the phased composite splits into >= 2 machine
 *  phases on the full machine under GTO (the fig_phase setup). */
TEST(PhaseTelemetry, PhasedWorkloadShowsAtLeastTwoMachinePhases)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::Lazy);
    PhaseTelemetry phase;
    Observer obs;
    obs.phase = &phase;
    runKernel(config, makeWorkload("phased"), obs);
    EXPECT_GE(phase.machine().phases().size(), 2u);
    EXPECT_GE(phase.metrics().windows(), 4u);
}

} // namespace
} // namespace bsched
