/**
 * @file
 * Unit tests for WarpProgram structure and the ProgramCursor loop walk.
 */

#include <gtest/gtest.h>

#include "kernel/warp_program.hh"

namespace bsched {
namespace {

Instr
alu()
{
    Instr i;
    i.op = Opcode::Alu;
    i.dst = 4;
    i.src0 = 0;
    return i;
}

TEST(WarpProgram, RegCountTracksHighestRegister)
{
    WarpProgram prog;
    Segment s;
    Instr i = alu();
    i.dst = 17;
    s.instrs = {i};
    s.trips = 1;
    prog.addSegment(s);
    EXPECT_EQ(prog.regCount(), 18);
}

TEST(WarpProgram, DynamicInstrCountMultipliesTrips)
{
    WarpProgram prog;
    Segment s;
    s.instrs = {alu(), alu(), alu()};
    s.trips = 10;
    prog.addSegment(s);
    EXPECT_EQ(prog.dynamicInstrCount(0), 30u);
}

TEST(WarpProgram, TripJitterIsDeterministicAndBounded)
{
    WarpProgram prog;
    Segment s;
    s.instrs = {alu()};
    s.trips = 100;
    s.tripJitterPct = 20;
    prog.addSegment(s);
    for (std::uint32_t cta = 0; cta < 64; ++cta) {
        const std::uint32_t t = prog.tripsFor(0, cta);
        EXPECT_EQ(t, prog.tripsFor(0, cta));
        EXPECT_GE(t, 80u);
        EXPECT_LE(t, 120u);
    }
    // Jitter actually varies across CTAs.
    bool varies = false;
    for (std::uint32_t cta = 1; cta < 64 && !varies; ++cta)
        varies = prog.tripsFor(0, cta) != prog.tripsFor(0, 0);
    EXPECT_TRUE(varies);
}

TEST(ProgramCursor, WalksLoopStructure)
{
    WarpProgram prog;
    Segment s;
    s.instrs = {alu(), alu()};
    s.trips = 3;
    prog.addSegment(s);

    ProgramCursor cur;
    cur.init(prog, 0);
    int steps = 0;
    while (!cur.done(prog)) {
        (void)cur.instr(prog);
        cur.advance(prog, 0);
        ++steps;
    }
    EXPECT_EQ(steps, 6);
}

TEST(ProgramCursor, IterKeyIsTripIndex)
{
    WarpProgram prog;
    Segment s;
    s.instrs = {alu(), alu()};
    s.trips = 2;
    prog.addSegment(s);

    ProgramCursor cur;
    cur.init(prog, 0);
    EXPECT_EQ(cur.iterKey(), 0u);
    cur.advance(prog, 0);
    EXPECT_EQ(cur.iterKey(), 0u);
    cur.advance(prog, 0);
    EXPECT_EQ(cur.iterKey(), 1u);
}

TEST(ProgramCursor, SkipsZeroTripSegments)
{
    WarpProgram prog;
    Segment zero;
    zero.instrs = {alu()};
    zero.trips = 0;
    prog.addSegment(zero);
    Segment s;
    s.instrs = {alu()};
    s.trips = 1;
    prog.addSegment(s);

    ProgramCursor cur;
    cur.init(prog, 0);
    EXPECT_EQ(cur.seg, 1u);
    cur.advance(prog, 0);
    EXPECT_TRUE(cur.done(prog));
}

TEST(ProgramCursor, AllZeroTripProgramIsBornDone)
{
    WarpProgram prog;
    Segment zero;
    zero.instrs = {alu()};
    zero.trips = 0;
    prog.addSegment(zero);
    ProgramCursor cur;
    cur.init(prog, 0);
    EXPECT_TRUE(cur.done(prog));
}

TEST(WarpProgram, ValidateRejectsEmpty)
{
    WarpProgram prog;
    EXPECT_DEATH(prog.validate(), "empty");
}

TEST(WarpProgram, ValidateRejectsBarrierWithJitter)
{
    WarpProgram prog;
    Segment s;
    Instr bar;
    bar.op = Opcode::Bar;
    s.instrs = {bar};
    s.trips = 2;
    s.tripJitterPct = 10;
    prog.addSegment(s);
    EXPECT_DEATH(prog.validate(), "jitter");
}

TEST(WarpProgram, ValidateRejectsBadPatternReference)
{
    WarpProgram prog;
    Segment s;
    Instr ld;
    ld.op = Opcode::LdGlobal;
    ld.dst = 4;
    ld.patternId = 3; // no patterns registered
    s.instrs = {ld};
    prog.addSegment(s);
    EXPECT_DEATH(prog.validate(), "pattern");
}

TEST(WarpProgram, ValidateRejectsSpaceMismatch)
{
    WarpProgram prog;
    MemPattern shared;
    shared.kind = AccessKind::SharedBank;
    shared.space = MemSpace::Shared;
    prog.addPattern(shared);
    Segment s;
    Instr ld;
    ld.op = Opcode::LdGlobal; // global op, shared pattern
    ld.dst = 4;
    ld.patternId = 0;
    s.instrs = {ld};
    prog.addSegment(s);
    EXPECT_DEATH(prog.validate(), "mismatch");
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isMemory(Opcode::LdGlobal));
    EXPECT_TRUE(isMemory(Opcode::StShared));
    EXPECT_FALSE(isMemory(Opcode::Alu));
    EXPECT_TRUE(isLoad(Opcode::LdShared));
    EXPECT_FALSE(isLoad(Opcode::StGlobal));
    EXPECT_TRUE(isStore(Opcode::StGlobal));
    EXPECT_TRUE(isGlobalMemory(Opcode::StGlobal));
    EXPECT_FALSE(isGlobalMemory(Opcode::LdShared));
    EXPECT_STREQ(mnemonic(Opcode::Bar), "bar.sync");
}

} // namespace
} // namespace bsched
