file(REMOVE_RECURSE
  "CMakeFiles/fig_gto_issue_profile.dir/fig_gto_issue_profile.cc.o"
  "CMakeFiles/fig_gto_issue_profile.dir/fig_gto_issue_profile.cc.o.d"
  "fig_gto_issue_profile"
  "fig_gto_issue_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_gto_issue_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
