/**
 * @file
 * Machine-shape property sweeps: the simulator must stay correct (work
 * conservation, drain, determinism) across core counts, partition
 * counts, issue widths and cache geometries — not just the default
 * GTX480 shape.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

KernelInfo
mixedKernel()
{
    KernelInfo k;
    k.name = "mixed";
    k.grid = {10, 1, 1};
    k.cta = {96, 1, 1};
    k.regsPerThread = 16;
    k.smemBytesPerCta = 2048;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x40000000;
    const auto i = b.pattern(in);
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = 0x80000000;
    tile.footprintBytes = 4096;
    const auto t = b.pattern(tile);
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 2;
    const auto s = b.pattern(sh);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0xc0000000;
    const auto o = b.pattern(out);
    b.loop(5)
        .load(i).alu(2)
        .load(t).sfu(1)
        .loadShared(s).alu(1)
        .barrier()
        .store(o)
        .endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

/** (cores, partitions, schedulers/core, L1 KB). */
using Shape = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t>;

class MachineShapes : public ::testing::TestWithParam<Shape>
{
  protected:
    GpuConfig
    config() const
    {
        const auto [cores, parts, scheds, l1kb] = GetParam();
        GpuConfig c = GpuConfig::gtx480();
        c.numCores = cores;
        c.numMemPartitions = parts;
        c.numSchedulersPerCore = scheds;
        c.l1d.sizeBytes = l1kb * 1024;
        c.validate();
        return c;
    }
};

TEST_P(MachineShapes, WorkConservationAndDrain)
{
    const KernelInfo k = mixedKernel();
    Gpu gpu(config());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs());
    EXPECT_TRUE(gpu.drained());
}

TEST_P(MachineShapes, Deterministic)
{
    const KernelInfo k = mixedKernel();
    Gpu a(config());
    a.launchKernel(k);
    a.run();
    Gpu b(config());
    b.launchKernel(k);
    b.run();
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.stats().toString(), b.stats().toString());
}

TEST_P(MachineShapes, StatsConservation)
{
    const KernelInfo k = mixedKernel();
    Gpu gpu(config());
    gpu.launchKernel(k);
    gpu.run();
    const StatSet stats = gpu.stats();
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".l1d.access"),
                     stats.sumBySuffix(".l1d.hit") +
                         stats.sumBySuffix(".l1d.miss"));
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".dram.read"),
                     stats.sumBySuffix(".l2mshr.alloc"));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineShapes,
    ::testing::Values(Shape{1, 1, 1, 16}, Shape{1, 2, 2, 8},
                      Shape{2, 1, 2, 16}, Shape{4, 3, 1, 32},
                      Shape{8, 6, 2, 16}, Shape{15, 6, 2, 64}),
    [](const ::testing::TestParamInfo<Shape>& info) {
        // Note: no structured bindings here — their brackets do not
        // shield commas from the INSTANTIATE macro's preprocessor.
        return "c" + std::to_string(std::get<0>(info.param)) + "p" +
            std::to_string(std::get<1>(info.param)) + "s" +
            std::to_string(std::get<2>(info.param)) + "l" +
            std::to_string(std::get<3>(info.param));
    });

/**
 * More cores must not make the whole-grid runtime meaningfully longer.
 * (A small regression is physical: concurrent cores interleave DRAM
 * traffic and lose row-buffer locality a single core would keep.)
 */
TEST(MachineScaling, MoreCoresNotMeaningfullySlower)
{
    const KernelInfo k = mixedKernel();
    GpuConfig small = GpuConfig::gtx480();
    small.numCores = 1;
    small.numMemPartitions = 2;
    GpuConfig big = small;
    big.numCores = 4;
    const RunResult one = runKernel(small, k);
    const RunResult four = runKernel(big, k);
    EXPECT_LE(four.cycles, one.cycles + one.cycles / 5);
}

/** A larger L1 must not increase the miss count of a reuse kernel. */
TEST(MachineScaling, BiggerL1NeverMissesMore)
{
    KernelInfo k;
    k.name = "reuse";
    k.grid = {8, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = 0x40000000;
    tile.footprintBytes = 8 * 1024;
    const auto t = b.pattern(tile);
    b.loop(20).load(t).alu(2).endLoop();
    k.program = b.build();

    GpuConfig small = GpuConfig::gtx480();
    small.numCores = 2;
    small.numMemPartitions = 2;
    small.l1d.sizeBytes = 8 * 1024;
    GpuConfig big = small;
    big.l1d.sizeBytes = 64 * 1024;
    const RunResult a = runKernel(small, k);
    const RunResult c = runKernel(big, k);
    EXPECT_LE(c.stats.sumBySuffix(".l1d.miss"),
              a.stats.sumBySuffix(".l1d.miss"));
}

} // namespace
} // namespace bsched
