/**
 * @file
 * E7 — accuracy of the LCS estimator: the per-core N_opt the monitor
 * decided (mode across cores) against the oracle's best static CTA
 * limit, per workload.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "gpu/gpu.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

/** Most frequent decided N_opt across cores (from the run's stats). */
int
modeNopt(const bsched::StatSet& stats)
{
    std::map<int, int> freq;
    for (const auto& name : stats.namesBySuffix(".n_opt"))
        ++freq[static_cast<int>(stats.get(name))];
    int best = 0;
    int best_count = 0;
    for (const auto& [n, count] : freq) {
        if (count > best_count) {
            best = n;
            best_count = count;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig lcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Lazy);

    std::printf("E7: LCS-chosen CTA count vs the oracle's best static "
                "limit\n(the applied cap is estimate + %u slack, clamped "
                "to Nmax; %u jobs)\n\n",
                lcs.lcs.slackCtas, jobs);
    Table table("N_opt accuracy");
    table.setHeader({"workload", "Nmax", "estimate", "applied-cap",
                     "oracle-N", "|est-oracle|", "LCS/oracle IPC"});
    int exact = 0;
    int within1 = 0;
    int total = 0;
    // Representative subset (the full oracle sweep is E6's job): all
    // peaked workloads plus one saturating and one increasing control.
    const std::vector<std::string> names = {"kmeans", "sc",  "srad",
                                            "pf",     "bfs", "lavamd",
                                            "bp",     "gemm"};

    // Fan out per workload; each point runs its LCS simulation and the
    // oracle's static sweep serially (jobs=1) so pools don't nest.
    struct Point
    {
        RunResult lazy;
        OracleResult oracle;
    };
    const ParallelRunner runner(jobs);
    const auto points = runner.map<Point>(names.size(), [&](std::size_t i) {
        const KernelInfo kernel = makeWorkload(names[i]);
        return Point{runKernel(lcs, kernel),
                     oracleStaticBest(base, kernel, 1)};
    });

    BenchReport report("tab_lcs_accuracy");
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string& name = names[i];
        const RunResult& lazy = points[i].lazy;
        const OracleResult& oracle = points[i].oracle;
        const int cap = std::min(modeNopt(lazy.stats),
                                 static_cast<int>(oracle.maxLimit));
        const int estimate =
            std::max(1, cap - static_cast<int>(lcs.lcs.slackCtas));
        const int diff =
            std::abs(estimate - static_cast<int>(oracle.bestLimit));
        exact += diff == 0;
        within1 += diff <= 1;
        ++total;
        table.addRow({name, std::to_string(oracle.maxLimit),
                      std::to_string(estimate), std::to_string(cap),
                      std::to_string(oracle.bestLimit),
                      std::to_string(diff),
                      fmt(lazy.ipc / oracle.byLimit[oracle.bestLimit - 1].ipc,
                          3)});
        report.addRow(name + "/lcs", lazy);
        report.addMetric(name + ".estimate", estimate);
        report.addMetric(name + ".applied_cap", cap);
        report.addMetric(name + ".oracle_n", oracle.bestLimit);
        report.addMetric(name + ".abs_error", diff);
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("exact matches: %d/%d, within +/-1: %d/%d\n", exact, total,
                within1, total);
    report.addMetric("exact_matches", exact);
    report.addMetric("within_one", within1);
    report.addMetric("total", total);

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, lcs, makeWorkload("kmeans"),
                              "kmeans/lcs");
    return 0;
}
