/**
 * @file
 * Set-associative tag array with true-LRU replacement. The tag array is
 * policy-free: L1 (write-through, no-allocate) and L2 (write-back,
 * write-allocate) wrappers decide what to do on hits/misses; the array
 * only tracks presence, recency and dirtiness.
 */

#ifndef BSCHED_MEM_CACHE_HH
#define BSCHED_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bsched {

class Tracer;

/** Result of inserting a line: the victim, if a valid one was evicted. */
struct Eviction
{
    bool valid = false;
    Addr lineAddr = 0;
    bool dirty = false;
    /** CTA key that owned the victim line (-1 if untracked). */
    std::int64_t owner = -1;
    /** Distinct CTA owners resident in the set at eviction time
     *  (0 unless the fill carried an owner — profiling only). */
    std::uint32_t distinctOwners = 0;
};

/** Set-associative, true-LRU tag array. */
class TagArray
{
  public:
    TagArray(const CacheConfig& config, std::string name);

    /** True if @p line_addr is present (no recency update). */
    bool probe(Addr line_addr) const;

    /**
     * Look up @p line_addr; on hit updates recency and returns true.
     * Counts an access and a hit/miss.
     */
    bool access(Addr line_addr, Cycle now);

    /** Mark a present line dirty; returns false if absent. */
    bool markDirty(Addr line_addr);

    /**
     * Insert @p line_addr (must be absent), evicting the set's LRU line
     * if the set is full. Returns the eviction record. @p owner is the
     * filling CTA's key for interference attribution (-1 = untracked;
     * the distinct-owner scan only runs for tracked fills, so the
     * detached-profiler path does no extra work).
     */
    Eviction fill(Addr line_addr, Cycle now, bool dirty = false,
                  std::int64_t owner = -1);

    /** Invalidate everything (kernel boundary flush). */
    void flushAll();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }

    /** Export "<prefix>.access/.hit/.miss" stats. */
    void addStats(StatSet& stats, const std::string& prefix) const;

    /**
     * Attach the event tracer (observability): consecutive-miss bursts
     * of kBurstMin+ accesses emit CacheMissBurst events on @p track.
     * Null detaches; detached costs one untaken branch per access.
     */
    void setTracer(Tracer* tracer, std::uint32_t track);

    /** Miss-run length that qualifies as a reportable burst. */
    static constexpr std::uint64_t kBurstMin = 32;
    /** Unbroken runs emit (and restart) at this length, bounding loss. */
    static constexpr std::uint64_t kBurstCap = 1024;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;
        std::uint64_t seq = 0; ///< LRU tiebreak within one cycle
        std::int64_t owner = -1; ///< filling CTA key (interference)
    };

    std::uint32_t setIndex(Addr line_addr) const;
    Addr tagOf(Addr line_addr) const;
    Line* find(Addr line_addr);
    const Line* find(Addr line_addr) const;

    std::string name_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::vector<Line> lines_; ///< numSets x assoc, row-major
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t fills_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
    std::uint64_t seqCounter_ = 0;

    // Observability: current consecutive-miss run (tracer attached only).
    Tracer* tracer_ = nullptr;
    std::uint32_t track_ = 0;
    std::uint64_t missRun_ = 0;
};

} // namespace bsched

#endif // BSCHED_MEM_CACHE_HH
