#!/usr/bin/env python3
"""Determinism lint for the simulator model code.

The whole evaluation rests on the simulator being bit-deterministic: the
same configuration must produce byte-identical ``bsched-run-v1`` /
``bsched-bench-v1`` artifacts for any ``--jobs`` count, machine and
process invocation. This lint rejects the nondeterminism sources that
have bitten timing simulators before, at the source level, before they
can reach a schedule decision or an emitted artifact:

  rand            ``rand()``/``srand()``/``std::random_device``/
                  ``std::mt19937`` — model code must draw randomness from
                  the seeded, deterministic ``bsched::Rng`` (sim/rng.hh).
  wall-clock      ``time()``/``clock()``/``gettimeofday``/
                  ``clock_gettime``/``std::chrono`` clocks — wall-clock
                  values differ per run; anything derived from them is
                  nondeterministic by construction.
  unordered-container
                  ``std::unordered_map``/``set`` (and multi variants) —
                  iteration order follows the hash function and libc++/
                  libstdc++ disagree; one innocent range-for over such a
                  container can leak hash order into schedules or stats.
                  Model code uses ordered containers (or sorts before
                  iterating).
  pointer-keyed-container
                  ``std::map``/``std::set`` keyed by a pointer type —
                  ordered by allocation address, which ASLR randomizes
                  per process.
  atomic-float    ``std::atomic<float|double>`` — cross-thread float
                  accumulation commits in nondeterministic order and
                  float addition does not associate.

Files are discovered from the CMake compilation database
(``compile_commands.json``) plus a glob over headers, so the lint always
covers exactly what the build compiles.

Audited exceptions live in an allowlist file (default
``tools/determinism_allowlist.txt``). Each non-comment line is::

    <path-relative-to-repo> <rule> <justification...>

and silences that one rule in that one file. The justification is
mandatory — an allowlist entry without one is itself a lint error.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = {
    "rand": re.compile(
        r"\bsrand\s*\(|(?<![:\w])rand\s*\(|std::random_device"
        r"|std::mt19937|\bdrand48\b|\blrand48\b"
    ),
    "wall-clock": re.compile(
        r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
        r"|(?<![:\w.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"
        r"|(?<![:\w.>])clock\s*\(\s*\)"
    ),
    "unordered-container": re.compile(
        r"std::unordered_(map|set|multimap|multiset)\b"
    ),
    "pointer-keyed-container": re.compile(
        r"std::(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"
    ),
    "atomic-float": re.compile(
        r"std::atomic\s*<\s*(float|double|long\s+double)\b"
    ),
}

COMMENT_STRING_RE = re.compile(
    r"""
      //[^\n]*            # line comment
    | /\*.*?\*/           # block comment
    | "(?:\\.|[^"\\])*"   # string literal
    | '(?:\\.|[^'\\])*'   # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and literals, preserving line numbers."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return COMMENT_STRING_RE.sub(blank, text)


def load_sources(build_dir: Path, repo: Path) -> list[Path]:
    """Compiled src/ translation units plus all src/ headers."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(
            f"error: {db_path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset "
            "does) or pass --build-dir (exit 2)"
        )
    src_root = (repo / "src").resolve()
    files: set[Path] = set()
    for entry in json.loads(db_path.read_text()):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src_root in path.parents:
            files.add(path)
    files.update(p.resolve() for p in src_root.rglob("*.hh"))
    return sorted(files)


class Allowlist:
    def __init__(self, path: Path, repo: Path):
        self.entries: set[tuple[str, str]] = set()
        self.used: set[tuple[str, str]] = set()
        self.errors: list[str] = []
        if not path.is_file():
            return
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                self.errors.append(
                    f"{path}:{lineno}: allowlist entry needs "
                    "'<path> <rule> <justification>'"
                )
                continue
            rel, rule, _justification = parts
            if rule not in RULES:
                self.errors.append(
                    f"{path}:{lineno}: unknown rule '{rule}' "
                    f"(known: {', '.join(sorted(RULES))})"
                )
                continue
            if not (repo / rel).is_file():
                self.errors.append(
                    f"{path}:{lineno}: allowlisted file '{rel}' "
                    "does not exist"
                )
                continue
            self.entries.add((rel, rule))

    def allows(self, rel: str, rule: str) -> bool:
        if (rel, rule) in self.entries:
            self.used.add((rel, rule))
            return True
        return False

    def stale(self) -> list[tuple[str, str]]:
        return sorted(self.entries - self.used)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="reject nondeterminism sources in simulator model code"
    )
    parser.add_argument(
        "--build-dir", type=Path, default=Path("build"),
        help="build tree containing compile_commands.json (default: build)",
    )
    parser.add_argument(
        "--repo", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the tree containing this script)",
    )
    parser.add_argument(
        "--allowlist", type=Path, default=None,
        help="allowlist file (default: tools/determinism_allowlist.txt)",
    )
    parser.add_argument(
        "--list-files", action="store_true",
        help="print the files that would be scanned and exit",
    )
    args = parser.parse_args()

    repo = args.repo.resolve()
    allowlist_path = args.allowlist or repo / "tools" / \
        "determinism_allowlist.txt"
    build_dir = args.build_dir if args.build_dir.is_absolute() \
        else repo / args.build_dir

    files = load_sources(build_dir, repo)
    if args.list_files:
        for path in files:
            print(path.relative_to(repo))
        return 0

    allowlist = Allowlist(allowlist_path, repo)
    findings: list[str] = []
    suppressed = 0

    for path in files:
        rel = str(path.relative_to(repo))
        text = strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace"))
        for rule, pattern in RULES.items():
            for match in pattern.finditer(text):
                if allowlist.allows(rel, rule):
                    suppressed += 1
                    continue
                line = text.count("\n", 0, match.start()) + 1
                findings.append(
                    f"{rel}:{line}: {rule}: '{match.group(0).strip()}'"
                )

    for error in allowlist.errors:
        findings.append(error)
    for rel, rule in allowlist.stale():
        findings.append(
            f"{allowlist_path.relative_to(repo)}: stale entry "
            f"'{rel} {rule}' matches nothing — remove it"
        )

    if findings:
        print(f"determinism lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s):")
        for finding in sorted(findings):
            print(f"  {finding}")
        print(
            "\nFix the source (preferred), or add an audited entry to\n"
            f"{allowlist_path.relative_to(repo)} with a justification — "
            "see docs/STATIC_ANALYSIS.md."
        )
        return 1

    print(
        f"determinism lint: clean — {len(files)} file(s), "
        f"{suppressed} audited suppression(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
