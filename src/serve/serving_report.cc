#include "serve/serving_report.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/sink.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace bsched {

ServingSummary
summarizeServing(const std::string& policy, const std::string& trace,
                 const ServingRunResult& result,
                 const std::map<std::string, Cycle>& isolated)
{
    if (result.outcomes.empty())
        fatal("summarizeServing: no outcomes");

    ServingSummary summary;
    summary.policy = policy;
    summary.trace = trace;
    summary.requests = result.outcomes.size();
    summary.preemptions = result.preemptions;
    summary.reorders = result.reorders;
    summary.drainRequests = result.drainRequests;
    summary.drainCancels = result.drainCancels;
    summary.drainsCompleted = result.drainsCompleted;
    summary.drainLatencyCycles = result.drainLatencyCycles;
    summary.totalCycles = result.totalCycles;

    std::vector<double> latencies;
    latencies.reserve(result.outcomes.size());
    // Per-tenant sums of latency / isolated-runtime (ANTT numerators).
    std::map<int, std::pair<double, std::uint64_t>> tenant_norm;
    double latency_sum = 0.0;
    for (const RequestOutcome& outcome : result.outcomes) {
        const auto latency = static_cast<double>(outcome.latency());
        latencies.push_back(latency);
        latency_sum += latency;
        if (outcome.deadline != kCycleNever) {
            ++summary.deadlines;
            if (outcome.missedDeadline())
                ++summary.misses;
        }
        const auto it = isolated.find(outcome.req.workload);
        if (it == isolated.end() || it->second == 0) {
            fatal("summarizeServing: no isolated runtime for ",
                  outcome.req.workload);
        }
        auto& [sum, count] = tenant_norm[outcome.req.tenant];
        sum += latency / static_cast<double>(it->second);
        ++count;
    }

    summary.p50Latency = percentile(latencies, 50.0);
    summary.p99Latency = percentile(latencies, 99.0);
    summary.meanLatency =
        latency_sum / static_cast<double>(latencies.size());
    summary.missRate = summary.deadlines == 0
        ? 0.0
        : static_cast<double>(summary.misses) /
            static_cast<double>(summary.deadlines);
    if (result.totalCycles > 0) {
        summary.throughput = static_cast<double>(summary.requests) *
            1e6 / static_cast<double>(result.totalCycles);
    }

    // Fairness: tenants progress at min(ANTT)/max(ANTT) relative
    // rates; equal normalized latency across tenants scores 1.
    double antt_min = 0.0;
    double antt_max = 0.0;
    for (const auto& [tenant, acc] : tenant_norm) {
        const double antt = acc.first / static_cast<double>(acc.second);
        summary.tenantAntt.push_back(antt);
        if (antt_max == 0.0) {
            antt_min = antt_max = antt;
        } else {
            antt_min = std::min(antt_min, antt);
            antt_max = std::max(antt_max, antt);
        }
    }
    summary.fairness = antt_max == 0.0 ? 1.0 : antt_min / antt_max;
    return summary;
}

ServingReport::ServingReport(std::string bench_name)
    : name_(std::move(bench_name))
{
    if (name_.empty())
        fatal("ServingReport: empty bench name");
}

void
ServingReport::addRun(const ServingSummary& summary)
{
    for (const ServingSummary& existing : runs_) {
        if (existing.policy == summary.policy &&
            existing.trace == summary.trace) {
            fatal("ServingReport: duplicate run ", summary.policy, "/",
                  summary.trace);
        }
    }
    runs_.push_back(summary);
}

void
ServingReport::addMetric(const std::string& name, double value)
{
    metrics_.emplace_back(name, value);
}

void
ServingReport::writeJson(std::ostream& os) const
{
    os << "{\n  \"schema\": \"bsched-serving-v1\",\n";
    os << "  \"bench\": \"" << jsonEscape(name_) << "\",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const ServingSummary& run = runs_[i];
        os << "    {\"policy\": \"" << jsonEscape(run.policy)
           << "\", \"trace\": \"" << jsonEscape(run.trace) << "\",\n"
           << "     \"requests\": " << run.requests
           << ", \"deadlines\": " << run.deadlines
           << ", \"misses\": " << run.misses
           << ", \"preemptions\": " << run.preemptions
           << ", \"reorders\": " << run.reorders
           << ", \"total_cycles\": " << run.totalCycles << ",\n"
           << "     \"drain_requests\": " << run.drainRequests
           << ", \"drain_cancels\": " << run.drainCancels
           << ", \"drains_completed\": " << run.drainsCompleted
           << ", \"drain_latency_cycles\": " << run.drainLatencyCycles
           << ",\n"
           << "     \"throughput_per_mcycle\": "
           << jsonNumber(run.throughput)
           << ", \"p50_latency\": " << jsonNumber(run.p50Latency)
           << ", \"p99_latency\": " << jsonNumber(run.p99Latency)
           << ", \"mean_latency\": " << jsonNumber(run.meanLatency)
           << ",\n     \"deadline_miss_rate\": "
           << jsonNumber(run.missRate)
           << ", \"fairness\": " << jsonNumber(run.fairness)
           << ", \"tenant_antt\": [";
        for (std::size_t t = 0; t < run.tenantAntt.size(); ++t) {
            if (t != 0)
                os << ", ";
            os << jsonNumber(run.tenantAntt[t]);
        }
        os << "]}";
        os << (i + 1 < runs_.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (i != 0)
            os << ",";
        os << "\n    \"" << jsonEscape(metrics_[i].first)
           << "\": " << jsonNumber(metrics_[i].second);
    }
    os << (metrics_.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string
ServingReport::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace bsched
