#include "mem/mshr.hh"

#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t max_merged,
                   std::string name)
    : entries_(entries), maxMerged_(max_merged), name_(std::move(name))
{
    if (entries_ == 0 || maxMerged_ == 0)
        fatal("mshr ", name_, ": zero capacity");
}

MshrOutcome
MshrFile::allocate(Addr line_addr, MshrWaiter waiter)
{
    auto it = map_.find(line_addr);
    if (it != map_.end()) {
        if (it->second.size() >= maxMerged_) {
            ++fullEntryStalls_;
            return MshrOutcome::FullEntry;
        }
        it->second.push_back(waiter);
        ++merges_;
        BSCHED_INVARIANT(it->second.size() <= maxMerged_, "mshr ", name_,
                         ": merge list exceeds capacity");
        return MshrOutcome::Merged;
    }
    if (full()) {
        ++fullFileStalls_;
        return MshrOutcome::FullFile;
    }
    map_.emplace(line_addr, std::vector<MshrWaiter>{waiter});
    ++allocs_;
    // Conservation: every allocated entry is either still outstanding or
    // has been completed exactly once.
    BSCHED_INVARIANT(entriesInUse() <= entries_, "mshr ", name_,
                     ": entry count exceeds file capacity");
    BSCHED_INVARIANT(allocs_ == completes_ + entriesInUse(), "mshr ", name_,
                     ": alloc/complete balance broken");
    return MshrOutcome::NewEntry;
}

bool
MshrFile::has(Addr line_addr) const
{
    return map_.find(line_addr) != map_.end();
}

std::vector<MshrWaiter>
MshrFile::complete(Addr line_addr)
{
    // A fill for a line nobody asked for — or a second fill after the
    // entry already retired (double fill) — means merge/fill pairing
    // broke upstream. The contract fires first in validating builds
    // (throwable for injection tests); the panic keeps Release builds
    // from dereferencing end().
    BSCHED_CHECK(has(line_addr), "mshr ", name_,
                 ": double fill or fill of unknown line");
    auto it = map_.find(line_addr);
    if (it == map_.end())
        panic("mshr ", name_, ": complete of unknown line");
    BSCHED_INVARIANT(!it->second.empty(), "mshr ", name_,
                     ": completing entry with no waiters");
    std::vector<MshrWaiter> waiters = std::move(it->second);
    map_.erase(it);
    ++completes_;
    BSCHED_INVARIANT(allocs_ == completes_ + entriesInUse(), "mshr ", name_,
                     ": alloc/complete balance broken");
    return waiters;
}

void
MshrFile::addStats(StatSet& stats, const std::string& prefix) const
{
    stats.add(prefix + ".alloc", static_cast<double>(allocs_));
    stats.add(prefix + ".merge", static_cast<double>(merges_));
    stats.add(prefix + ".complete", static_cast<double>(completes_));
    stats.add(prefix + ".stall_entry", static_cast<double>(fullEntryStalls_));
    stats.add(prefix + ".stall_file", static_cast<double>(fullFileStalls_));
}

} // namespace bsched
