# Empty compiler generated dependencies file for example_multi_kernel_mix.
# This may be replaced when dependencies are built.
