#include "cta/lazy_cta_sched.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

void
LazyCtaScheduler::decide(Cycle now, std::uint32_t core_id, int kernel_id,
                         std::uint32_t n_max, const SimtCore& core)
{
    Monitor& mon = monitors_[{core_id, kernel_id}];
    if (mon.decided)
        return;
    const std::vector<std::uint64_t> counts =
        core.ctaIssueCounts(kernel_id);
    std::uint64_t total = 0;
    std::uint64_t greedy = 0;
    for (std::uint64_t c : counts) {
        total += c;
        greedy = std::max(greedy, c);
    }
    std::uint32_t n_opt = n_max;
    if (greedy > 0) {
        switch (config_.lcs.estimator) {
          case LcsEstimator::IssueRatio:
            // The paper's formula.
            n_opt = static_cast<std::uint32_t>(
                (total + greedy - 1) / greedy);
            break;
          case LcsEstimator::Threshold: {
            // Count CTAs contributing at least thresholdPct% of the
            // greedy CTA's issue.
            const std::uint64_t cut =
                greedy * config_.lcs.thresholdPct / 100;
            n_opt = 0;
            for (std::uint64_t c : counts) {
                if (c >= cut)
                    ++n_opt;
            }
            break;
          }
        }
        n_opt += config_.lcs.slackCtas;
    }
    BSCHED_CHECK(n_max >= 1, "lcs: monitoring window closed with a zero "
                             "occupancy cap on core ", core_id);
    mon.nOpt = std::clamp<std::uint32_t>(n_opt, 1, n_max);
    mon.decided = true;
    // The decided limit must stay inside [1, occupancy cap]: below 1 the
    // core would starve, above n_max the lazy decline could never bind.
    BSCHED_INVARIANT(mon.nOpt >= 1 && mon.nOpt <= n_max,
                     "lcs: N_opt ", mon.nOpt, " outside [1, ", n_max,
                     "] on core ", core_id);

    if (tracer_ != nullptr) {
        TraceEvent event;
        event.cycle = now;
        event.kind = TraceEventKind::LcsWindowClose;
        event.kernelId = kernel_id;
        event.arg0 = mon.nOpt;
        event.arg1 = n_max;
        tracer_->record(tracer_->coreTrack(core_id), event);
    }
}

std::uint32_t
LazyCtaScheduler::decidedLimit(std::uint32_t core, int kernel_id) const
{
    auto it = monitors_.find({core, kernel_id});
    if (it == monitors_.end() || !it->second.decided)
        return 0;
    return it->second.nOpt;
}

std::uint32_t
LazyCtaScheduler::capFor(std::uint32_t core_id,
                         const KernelInstance& kernel) const
{
    const std::uint32_t limit = decidedLimit(core_id, kernel.id);
    const std::uint32_t occ = staticCap(*kernel.info);
    return limit == 0 ? occ : std::min(limit, occ);
}

void
LazyCtaScheduler::notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                                CoreList& cores)
{
    if (config_.lcs.windowMode != LcsWindowMode::FirstCtaDone)
        return;
    BSCHED_CHECK(event.info != nullptr,
                 "lcs: CtaDoneEvent carries no kernel info");
    if (event.info == nullptr)
        panic("lcs: CtaDoneEvent carries no kernel info");
    // The first completed CTA of a kernel on a core closes that core's
    // monitoring window; decide() is idempotent per (core, kernel).
    // n_max must be the kernel's occupancy cap, not the raw hardware CTA
    // slot count: a register/smem-limited kernel can never reach
    // config_.maxCtasPerCore, and clamping against the larger bound would
    // let estimate+slack settle above what the core can actually hold
    // (matching closeExpiredWindows in FixedCycles mode).
    decide(now, event.coreId, event.kernelId, staticCap(*event.info),
           *cores.at(event.coreId));
}

void
LazyCtaScheduler::closeExpiredWindows(
    Cycle now, const std::vector<KernelInstance>& kernels,
    const CoreList& cores)
{
    if (config_.lcs.windowMode != LcsWindowMode::FixedCycles)
        return;
    for (const KernelInstance& kernel : kernels) {
        for (std::uint32_t c = 0; c < cores.size(); ++c) {
            const Cycle start = cores[c]->kernelFirstLaunch(kernel.id);
            if (start == kCycleNever)
                continue;
            if (now >= start + config_.lcs.fixedWindowCycles)
                decide(now, c, kernel.id, staticCap(*kernel.info),
                       *cores[c]);
        }
    }
}

Cycle
LazyCtaScheduler::nextEventCycle(Cycle now,
                                 const std::vector<KernelInstance>& kernels,
                                 const CoreList& cores) const
{
    if (config_.lcs.windowMode != LcsWindowMode::FixedCycles)
        return kCycleNever;
    Cycle next = kCycleNever;
    for (const KernelInstance& kernel : kernels) {
        for (std::uint32_t c = 0; c < cores.size(); ++c) {
            const Cycle start = cores[c]->kernelFirstLaunch(kernel.id);
            if (start == kCycleNever)
                continue;
            const auto it = monitors_.find({c, kernel.id});
            if (it != monitors_.end() && it->second.decided)
                continue;
            next = std::min(
                next,
                std::max(start + config_.lcs.fixedWindowCycles, now));
        }
    }
    return next;
}

void
LazyCtaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                       CoreList& cores)
{
    closeExpiredWindows(now, kernels, cores);

    std::vector<KernelInstance*>& order = dispatchOrder(kernels,
                                                        cores.size());
    if (order.empty())
        return;

    for (KernelInstance* kernel : order) {
        for (std::uint32_t c = 0;
             c < cores.size() && !kernel->dispatchDone(); ++c) {
            SimtCore& core = *cores[c];
            if (usedScratch_[c] != 0 || !coreAllowed(*kernel, c))
                continue;
            if (core.residentCtas(kernel->id) >= capFor(c, *kernel))
                continue;
            if (!core.canAccept(*kernel->info))
                continue;
            dispatch(now, *kernel, core, blockSeqCounter_++);
            usedScratch_[c] = 1;
        }
    }
}

void
LazyCtaScheduler::addStats(StatSet& stats) const
{
    CtaScheduler::addStats(stats);
    for (const auto& [key, mon] : monitors_) {
        if (mon.decided) {
            stats.set("lcs.core" + std::to_string(key.first) + ".k" +
                          std::to_string(key.second) + ".n_opt",
                      static_cast<double>(mon.nOpt));
        }
    }
}

} // namespace bsched
