/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * simulated-cycles-per-second for a small kernel, cache and coalescer
 * throughput. Guards against performance regressions in the hot loops
 * that every experiment depends on.
 */

#include <benchmark/benchmark.h>

#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "mem/cache.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

KernelInfo
smallKernel()
{
    KernelInfo k;
    k.name = "micro";
    k.grid = {30, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder builder;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = builder.pattern(in);
    builder.loop(16).load(i).alu(4).endLoop();
    k.program = builder.build();
    return k;
}

void
BM_SimulateSmallKernel(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Gpu gpu(config);
        gpu.launchKernel(kernel);
        gpu.run();
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernel)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State& state)
{
    CacheConfig cfg;
    TagArray tags(cfg, "bench.l1");
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr line = (n * 127) % 4096 * cfg.lineBytes;
        benchmark::DoNotOptimize(tags.access(line, n));
        if (!tags.probe(line))
            tags.fill(line, n);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalescer(benchmark::State& state)
{
    MemPattern p;
    p.kind = AccessKind::Strided;
    p.strideElems = static_cast<std::uint32_t>(state.range(0));
    KernelGeom geom{256, 120};
    std::uint64_t iter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            coalesce(p, geom, 3, 2, iter++, kWarpSize, 128));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_Coalescer)->Arg(1)->Arg(8)->Arg(32);

void
BM_WorkloadConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        for (const auto& name : workloadNames())
            benchmark::DoNotOptimize(makeWorkload(name));
    }
}
BENCHMARK(BM_WorkloadConstruction)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
