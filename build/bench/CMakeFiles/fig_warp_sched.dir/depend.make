# Empty dependencies file for fig_warp_sched.
# This may be replaced when dependencies are built.
