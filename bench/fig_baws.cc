/**
 * @file
 * E10 — block-aware warp scheduling: BCS with GTO vs BCS with BAWS, and
 * the block-size ablation (B=2 vs B=4). The paper's point: pairing CTAs
 * on a core is not enough — the warp scheduler must keep the pair at
 * even progress or the shared lines are evicted before reuse.
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    struct Variant
    {
        const char* label;
        WarpSchedKind warp;
        std::uint32_t block;
    };
    const std::vector<Variant> variants = {
        {"bcs2+gto", WarpSchedKind::GTO, 2},
        {"bcs2+baws", WarpSchedKind::BAWS, 2},
        {"bcs4+gto", WarpSchedKind::GTO, 4},
        {"bcs4+baws", WarpSchedKind::BAWS, 4},
    };

    std::printf("E10: BAWS on top of BCS (speedup over RR+GTO baseline)\n\n");
    Table table("speedup by variant");
    std::vector<std::string> header = {"workload"};
    for (const auto& v : variants)
        header.push_back(v.label);
    table.setHeader(header);

    std::vector<std::vector<double>> speedups(variants.size());
    for (const auto& name : localityWorkloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const double base_ipc = runKernel(base, kernel).ipc;
        std::vector<std::string> row = {name};
        for (std::size_t v = 0; v < variants.size(); ++v) {
            GpuConfig cfg = makeConfig(variants[v].warp,
                                       CtaSchedKind::Block);
            cfg.bcs.blockSize = variants[v].block;
            const double s = runKernel(cfg, kernel).ipc / base_ipc;
            speedups[v].push_back(s);
            row.push_back(fmt(s, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (auto& s : speedups)
        last.push_back(fmt(geomean(s), 3));
    table.addRow(last);
    std::printf("%s", table.toText().c_str());
    return 0;
}
