#include "serve/engine.hh"

#include <algorithm>

#include "cta/block_cta_sched.hh"
#include "cta/lazy_cta_sched.hh"
#include "gpu/gpu.hh"
#include "kernel/occupancy.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "serve/serve_trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace bsched {

namespace {

/** Priority band separating preemptors (win) from normal admissions. */
constexpr int kNormalPriorityBase = 100000;

} // namespace

const char*
toString(ServePolicy policy)
{
    switch (policy) {
      case ServePolicy::Sequential: return "sequential";
      case ServePolicy::Spatial: return "spatial";
      case ServePolicy::Fcfs: return "fcfs";
      case ServePolicy::Reorder: return "reorder";
      case ServePolicy::ReorderPreempt: return "reorder+preempt";
    }
    return "?";
}

std::vector<ServePolicy>
allServePolicies()
{
    return {ServePolicy::Sequential, ServePolicy::Spatial,
            ServePolicy::Fcfs, ServePolicy::Reorder,
            ServePolicy::ReorderPreempt};
}

ServingEngine::ServingEngine(const GpuConfig& gpu_config,
                             const ServeConfig& serve)
    : gpuConfig_(gpu_config), cfg_(serve),
      predictor_(serve.fallbackIpc)
{
    if (cfg_.maxConcurrent == 0)
        fatal("serve: maxConcurrent must be > 0");
    if (cfg_.riskDen == 0)
        fatal("serve: riskDen must be > 0");
    if (cfg_.policy == ServePolicy::Sequential)
        cfg_.maxConcurrent = 1;
    if (cfg_.policy == ServePolicy::Spatial) {
        if (cfg_.spatialWays == 0 ||
            cfg_.spatialWays > gpuConfig_.numCores) {
            fatal("serve: spatialWays must be in [1, numCores]");
        }
        wayBusy_.assign(cfg_.spatialWays, 0);
    }
    // The shared-core policies need the per-core LCS limits that carve
    // out space for a co-resident kernel — same promotion Mixed MCK
    // applies in runMultiKernel.
    if (cfg_.policy == ServePolicy::Fcfs ||
        cfg_.policy == ServePolicy::Reorder ||
        cfg_.policy == ServePolicy::ReorderPreempt) {
        if (gpuConfig_.ctaSched == CtaSchedKind::RoundRobin)
            gpuConfig_.ctaSched = CtaSchedKind::Lazy;
        else if (gpuConfig_.ctaSched == CtaSchedKind::Block)
            gpuConfig_.ctaSched = CtaSchedKind::LazyBlock;
    }
}

void
ServingEngine::ingest(const std::vector<LaunchRequest>& trace)
{
    outcomes_.reserve(trace.size());
    for (const LaunchRequest& req : trace) {
        RequestOutcome outcome;
        outcome.req = req;
        const std::size_t idx = outcomes_.size();
        if (req.arrival == kCycleNever) {
            // Closed-loop tail: released by a tenant completion.
            outcomes_.push_back(outcome);
            closed_[req.tenant].push_back(idx);
        } else {
            outcome.release = req.arrival;
            if (req.deadlineSlack > 0)
                outcome.deadline = req.arrival + req.deadlineSlack;
            outcomes_.push_back(outcome);
            pending_.push_back(idx);
        }
    }
    // generateTrace emits open-loop requests sorted by (arrival, seq)
    // already; pin the invariant rather than trusting the caller.
    const bool sorted = std::is_sorted(
        pending_.begin(), pending_.end(),
        [this](std::size_t a, std::size_t b) {
            return outcomes_[a].release < outcomes_[b].release;
        });
    if (!sorted)
        fatal("serve: trace arrivals not sorted");
}

bool
ServingEngine::releaseArrivals(Cycle now)
{
    bool any = false;
    while (!pending_.empty() &&
           outcomes_[pending_.front()].release <= now) {
        const std::size_t idx = pending_.front();
        ready_.push_back(idx);
        pending_.erase(pending_.begin());
        const RequestOutcome& outcome = outcomes_[idx];
        // The lifecycle lane stamps the *release* cycle, not the cycle
        // the engine observed it — identical with fast-forward on/off.
        emitServeEvent(outcome.req.tenant, TraceEventKind::ServeArrival,
                       outcome.release, 0,
                       static_cast<std::int64_t>(outcome.req.seq), 0,
                       kInvalidId);
        any = true;
    }
    return any;
}

bool
ServingEngine::collectCompletions(Gpu& gpu, Cycle now)
{
    bool any = false;
    for (std::size_t i = 0; i < active_.size();) {
        const Active active = active_[i];
        const KernelInstance& kernel = gpu.kernel(active.kernelId);
        if (!kernel.finished()) {
            ++i;
            continue;
        }
        any = true;
        RequestOutcome& outcome = outcomes_[active.outcome];
        outcome.finish = kernel.doneCycle;
        outcome.firstDispatch = kernel.firstDispatchCycle;
        BSCHED_CHECK(outcome.finish >= outcome.admit,
                     "serve: kernel ", active.kernelId,
                     " finished before it was admitted");
        const Cycle actual = outcome.finish - outcome.admit;
        predictor_.recordCompletion(outcome.req.workload, actual);
        if (trace_ != nullptr) {
            trace_->accuracy.record(outcome.req.workload,
                                    outcome.predictedTotal, actual);
        }
        if (outcome.firstDispatch != kCycleNever) {
            emitServeEvent(outcome.req.tenant,
                           TraceEventKind::ServeDispatching,
                           outcome.firstDispatch,
                           outcome.firstDispatch - outcome.admit,
                           static_cast<std::int64_t>(outcome.req.seq), 0,
                           outcome.kernelId);
            emitServeEvent(outcome.req.tenant,
                           TraceEventKind::ServeRunning, outcome.finish,
                           outcome.finish - outcome.firstDispatch,
                           static_cast<std::int64_t>(outcome.req.seq), 0,
                           outcome.kernelId);
        }

        // A finished preemptor gives the machine back: lift the drain
        // on every victim still running.
        for (const int victim : active.victims) {
            if (!gpu.kernel(victim).finished() &&
                gpu.kernelDraining(victim)) {
                // Audit only true cancels — drains lifted while the
                // victim still holds CTAs. A drain that already hit
                // zero residency completed; lifting the flag then is
                // bookkeeping, not a decision.
                if (trace_ != nullptr &&
                    gpu.kernelResidentCtas(victim) > 0) {
                    ServeDecision decision;
                    decision.cycle = now;
                    decision.kind = ServeDecisionKind::DrainCancel;
                    decision.queueDepth = ready_.size();
                    decision.running = active_.size();
                    decision.victim = victim;
                    decision.reason = "preemptor_finished";
                    for (const Active& other : active_) {
                        if (other.kernelId != victim)
                            continue;
                        const RequestOutcome& vout =
                            outcomes_[other.outcome];
                        decision.seq = vout.req.seq;
                        decision.tenant = vout.req.tenant;
                        decision.workload = vout.req.workload;
                        break;
                    }
                    trace_->audit.record(decision);
                }
                gpu.requestDrain(victim, false);
            }
        }

        if (cfg_.policy == ServePolicy::Spatial) {
            const auto it = wayOf_.find(active.kernelId);
            if (it != wayOf_.end()) {
                wayBusy_[it->second] = 0;
                wayOf_.erase(it);
            }
        }

        // Closed loop: this completion releases the tenant's next
        // queued request after its think time. Timed off the exact
        // completion cycle, not the loop's observation cycle, so the
        // schedule is independent of when the engine looked.
        auto closed_it = closed_.find(outcome.req.tenant);
        if (closed_it != closed_.end() && !closed_it->second.empty()) {
            const std::size_t next_idx = closed_it->second.front();
            closed_it->second.erase(closed_it->second.begin());
            RequestOutcome& next = outcomes_[next_idx];
            next.release = outcome.finish + next.req.thinkCycles;
            if (next.req.deadlineSlack > 0)
                next.deadline = next.release + next.req.deadlineSlack;
            const auto pos = std::upper_bound(
                pending_.begin(), pending_.end(), next_idx,
                [this](std::size_t a, std::size_t b) {
                    if (outcomes_[a].release != outcomes_[b].release)
                        return outcomes_[a].release < outcomes_[b].release;
                    return outcomes_[a].req.seq < outcomes_[b].req.seq;
                });
            pending_.insert(pos, next_idx);
        }

        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    (void)now;
    return any;
}

Cycle
ServingEngine::nextArrivalCycle() const
{
    return pending_.empty() ? kCycleNever
                            : outcomes_[pending_.front()].release;
}

Cycle
ServingEngine::predictTotalFor(const RequestOutcome& outcome) const
{
    const KernelInfo& info = pool_.at(outcome.req.workload);
    return predictor_.predictTotal(outcome.req.workload,
                                   info.totalDynamicInstrs());
}

Cycle
ServingEngine::predictRemainingFor(const Gpu& gpu, const Active& active,
                                   Cycle now) const
{
    const KernelInstance& kernel = gpu.kernel(active.kernelId);
    const RequestOutcome& outcome = outcomes_[active.outcome];
    const Cycle elapsed = now - kernel.launchCycle;
    return predictor_.predictRemaining(
        outcome.req.workload, kernel.info->totalDynamicInstrs(),
        gpu.kernelInstrsIssued(active.kernelId), elapsed,
        cfg_.monitorCycles);
}

bool
ServingEngine::urgent(std::size_t ready_pos, Cycle now) const
{
    const RequestOutcome& outcome = outcomes_[ready_[ready_pos]];
    if (outcome.deadline == kCycleNever)
        return false;
    const Cycle predicted = predictTotalFor(outcome);
    const Cycle risk = (predicted * cfg_.riskNum) / cfg_.riskDen;
    return now + risk >= outcome.deadline;
}

std::uint64_t
ServingEngine::headroomSlots(const Gpu& gpu) const
{
    // Resolve the LCS monitor when the active CTA scheduler carries
    // one (Lazy directly, LazyBlock via its embedded LCS).
    const LazyCtaScheduler* lazy =
        dynamic_cast<const LazyCtaScheduler*>(&gpu.ctaScheduler());
    if (lazy == nullptr) {
        const auto* lazy_block = dynamic_cast<const LazyBlockCtaScheduler*>(
            &gpu.ctaScheduler());
        if (lazy_block != nullptr)
            lazy = &lazy_block->lazy();
    }

    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < gpuConfig_.numCores; ++c) {
        std::uint64_t claimed = 0;
        for (const Active& active : active_) {
            const KernelInstance& kernel = gpu.kernel(active.kernelId);
            if (kernel.finished())
                continue;
            std::uint32_t cap;
            if (gpu.kernelDraining(active.kernelId)) {
                // A draining kernel's claim shrinks with every retiring
                // CTA: exactly its current residency.
                cap = gpu.cores()[c]->residentCtas(active.kernelId);
            } else {
                const std::uint32_t occ =
                    maxCtasPerCore(gpuConfig_, *kernel.info);
                std::uint32_t limit = occ;
                if (lazy != nullptr) {
                    const std::uint32_t decided =
                        lazy->decidedLimit(c, active.kernelId);
                    // 0 = still monitoring: the kernel fills the core.
                    if (decided != 0)
                        limit = std::min(decided, occ);
                }
                cap = limit;
            }
            claimed += cap;
        }
        const std::uint64_t slots = gpuConfig_.maxCtasPerCore;
        if (claimed < slots)
            total += slots - claimed;
    }
    return total;
}

std::size_t
ServingEngine::pickNext(const Gpu& gpu, Cycle now) const
{
    (void)gpu;
    BSCHED_CHECK(!ready_.empty(), "serve: pickNext on an empty queue");
    if (cfg_.policy != ServePolicy::Reorder &&
        cfg_.policy != ServePolicy::ReorderPreempt) {
        return 0; // arrival order
    }
    // Deadline-at-risk requests first, earliest deadline wins;
    // otherwise shortest predicted job. Ties break on seq (arrival
    // order), keeping the schedule total-ordered and deterministic.
    std::size_t best = 0;
    bool best_urgent = urgent(0, now);
    Cycle best_key = best_urgent ? outcomes_[ready_[0]].deadline
                                 : predictTotalFor(outcomes_[ready_[0]]);
    for (std::size_t pos = 1; pos < ready_.size(); ++pos) {
        const bool is_urgent = urgent(pos, now);
        if (best_urgent && !is_urgent)
            continue;
        const Cycle key = is_urgent
            ? outcomes_[ready_[pos]].deadline
            : predictTotalFor(outcomes_[ready_[pos]]);
        const bool wins = (is_urgent && !best_urgent) || key < best_key ||
            (key == best_key &&
             outcomes_[ready_[pos]].req.seq < outcomes_[ready_[best]].req.seq);
        if (wins) {
            best = pos;
            best_urgent = is_urgent;
            best_key = key;
        }
    }
    return best;
}

void
ServingEngine::launch(Gpu& gpu, Cycle now, std::size_t ready_pos,
                      bool preemptor, std::vector<int> victims)
{
    const std::size_t idx = ready_[ready_pos];
    RequestOutcome& outcome = outcomes_[idx];
    const KernelInfo& info = pool_.at(outcome.req.workload);

    // Snapshot the prediction the admission decision was based on; the
    // accuracy tracker compares it against the realized runtime.
    outcome.predictedTotal = predictTotalFor(outcome);

    // Audit before the queue mutates: the decision inputs index ready_.
    // The preemptor path is audited as one Preempt decision by
    // tryPreempt, which also knows the victim.
    if (trace_ != nullptr && !preemptor) {
        ServeDecision decision;
        fillDecisionInputs(gpu, now, ready_pos, decision);
        decision.kind = ServeDecisionKind::Admit;
        decision.reordered = ready_pos != 0;
        decision.reason = decision.urgent ? "deadline_urgent"
                                          : "admitted";
        trace_->audit.record(decision);
    }

    int core_begin = 0;
    int core_end = -1;
    if (cfg_.policy == ServePolicy::Spatial) {
        std::uint32_t way = cfg_.spatialWays;
        for (std::uint32_t w = 0; w < cfg_.spatialWays; ++w) {
            if (!wayBusy_[w]) {
                way = w;
                break;
            }
        }
        BSCHED_CHECK(way < cfg_.spatialWays,
                     "serve: spatial launch without a free way");
        if (way >= cfg_.spatialWays)
            fatal("serve: spatial launch without a free way");
        const auto cores = static_cast<int>(gpuConfig_.numCores);
        const auto ways = static_cast<int>(cfg_.spatialWays);
        core_begin = cores * static_cast<int>(way) / ways;
        core_end = cores * (static_cast<int>(way) + 1) / ways;
        wayBusy_[way] = 1;
        const int id = gpu.launchKernel(
            info, core_begin, core_end,
            kNormalPriorityBase + static_cast<int>(admitSeq_));
        wayOf_[id] = way;
        outcome.kernelId = id;
    } else {
        const int priority = preemptor
            ? static_cast<int>(admitSeq_)
            : kNormalPriorityBase + static_cast<int>(admitSeq_);
        outcome.kernelId =
            gpu.launchKernel(info, core_begin, core_end, priority);
    }
    ++admitSeq_;
    outcome.admit = now;
    // The queued phase of the lifecycle closes at admission.
    emitServeEvent(outcome.req.tenant, TraceEventKind::ServeQueued, now,
                   now - outcome.release,
                   static_cast<std::int64_t>(outcome.req.seq), 0,
                   outcome.kernelId);

    Active active;
    active.outcome = idx;
    active.kernelId = outcome.kernelId;
    active.preemptor = preemptor;
    active.victims = std::move(victims);
    active_.push_back(std::move(active));

    if (ready_pos != 0)
        ++reorders_;
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos));
}

bool
ServingEngine::tryAdmit(Gpu& gpu, Cycle now)
{
    if (ready_.empty())
        return false;

    switch (cfg_.policy) {
      case ServePolicy::Sequential:
        if (!active_.empty()) {
            auditDefer(gpu, now, "previous_running");
            return false;
        }
        break;
      case ServePolicy::Spatial: {
        const bool free_way = std::any_of(
            wayBusy_.begin(), wayBusy_.end(), [](char b) { return !b; });
        if (!free_way) {
            auditDefer(gpu, now, "no_free_way");
            return false;
        }
        break;
      }
      case ServePolicy::Fcfs:
      case ServePolicy::Reorder:
      case ServePolicy::ReorderPreempt:
        if (active_.size() >= cfg_.maxConcurrent) {
            auditDefer(gpu, now, "concurrency_cap");
            return false;
        }
        // LCS-headroom admission: only co-schedule when the residents'
        // decided limits leave enough CTA slots for a newcomer. While
        // a resident is still in its monitoring phase it claims its
        // whole occupancy, so admission naturally waits for N_opt.
        if (!active_.empty() &&
            headroomSlots(gpu) < cfg_.admitHeadroomSlots) {
            ++headroomDenials_;
            auditDefer(gpu, now, "headroom");
            return false;
        }
        break;
    }

    launch(gpu, now, pickNext(gpu, now), false, {});
    return true;
}

void
ServingEngine::tryPreempt(Gpu& gpu, Cycle now)
{
    if (ready_.empty())
        return;
    // One preemption in flight at a time: a second drain would stack
    // machine-wide slowdowns with no freed slots to show for it yet.
    const bool preempting = std::any_of(
        active_.begin(), active_.end(),
        [](const Active& a) { return a.preemptor; });
    if (preempting)
        return;

    // The most urgent stuck request, if any.
    std::size_t best = ready_.size();
    for (std::size_t pos = 0; pos < ready_.size(); ++pos) {
        if (!urgent(pos, now))
            continue;
        if (best == ready_.size() ||
            outcomes_[ready_[pos]].deadline <
                outcomes_[ready_[best]].deadline) {
            best = pos;
        }
    }
    if (best == ready_.size())
        return;

    // Victim: the running kernel with the most predicted work left.
    // It must still have undispatched CTAs — draining a fully
    // dispatched kernel frees nothing — and must not already drain.
    int victim = kInvalidId;
    Cycle victim_remaining = 0;
    for (const Active& active : active_) {
        if (active.preemptor)
            continue;
        const KernelInstance& kernel = gpu.kernel(active.kernelId);
        if (kernel.finished() || kernel.dispatchDone())
            continue;
        if (gpu.kernelDraining(active.kernelId))
            continue;
        const Cycle remaining = predictRemainingFor(gpu, active, now);
        if (victim == kInvalidId || remaining > victim_remaining ||
            (remaining == victim_remaining &&
             active.kernelId < victim)) {
            victim = active.kernelId;
            victim_remaining = remaining;
        }
    }
    if (victim == kInvalidId)
        return;
    // Only worth the machine-wide disturbance when the victim would
    // otherwise outlast the urgent request's whole run.
    if (victim_remaining <= predictTotalFor(outcomes_[ready_[best]]))
        return;

    if (trace_ != nullptr) {
        ServeDecision decision;
        fillDecisionInputs(gpu, now, best, decision);
        decision.kind = ServeDecisionKind::Preempt;
        decision.reason = "deadline_urgent";
        decision.victim = victim;
        decision.victimPredictedRemaining = victim_remaining;
        trace_->audit.record(decision);
    }
    if (obs_.tracer != nullptr) {
        // Mark the preemption on the *victim's* lane too.
        for (const Active& active : active_) {
            if (active.kernelId != victim)
                continue;
            const RequestOutcome& vout = outcomes_[active.outcome];
            emitServeEvent(vout.req.tenant,
                           TraceEventKind::ServeDrainVictim, now, 0,
                           victim,
                           static_cast<std::int64_t>(vout.req.seq),
                           victim);
            break;
        }
    }
    gpu.requestDrain(victim, true);
    ++preemptions_;
    launch(gpu, now, best, true, {victim});
}

std::uint32_t
ServingEngine::tenantTrack(int tenant) const
{
    const auto it = tenantTrack_.find(tenant);
    if (it == tenantTrack_.end())
        fatal("serve: no tracer lane for tenant ", tenant);
    return it->second;
}

void
ServingEngine::emitServeEvent(int tenant, TraceEventKind kind,
                              Cycle cycle, Cycle duration,
                              std::int64_t arg0, std::int64_t arg1,
                              int kernel_id) const
{
    if (obs_.tracer == nullptr)
        return;
    TraceEvent event;
    event.cycle = cycle;
    event.duration = duration;
    event.arg0 = arg0;
    event.arg1 = arg1;
    event.kernelId = kernel_id;
    event.kind = kind;
    obs_.tracer->record(tenantTrack(tenant), event);
}

void
ServingEngine::fillDecisionInputs(const Gpu& gpu, Cycle now,
                                  std::size_t ready_pos,
                                  ServeDecision& decision) const
{
    const RequestOutcome& outcome = outcomes_[ready_[ready_pos]];
    decision.cycle = now;
    decision.seq = outcome.req.seq;
    decision.tenant = outcome.req.tenant;
    decision.workload = outcome.req.workload;
    decision.queueDepth = ready_.size();
    decision.running = active_.size();
    decision.headroomSlots = headroomSlots(gpu);
    decision.predictedTotal = predictTotalFor(outcome);
    decision.deadline = outcome.deadline;
    decision.urgent = urgent(ready_pos, now);
}

void
ServingEngine::auditDefer(const Gpu& gpu, Cycle now, const char* reason)
{
    if (trace_ == nullptr)
        return;
    // Attribute the deferral to the request the policy would have
    // admitted next (pickNext is const — pure observation).
    ServeDecision decision;
    fillDecisionInputs(gpu, now, pickNext(gpu, now), decision);
    decision.kind = ServeDecisionKind::Defer;
    decision.reason = reason;
    trace_->audit.record(decision);
}

void
ServingEngine::recordSample(IntervalSampler& sampler, Cycle now)
{
    (void)now;
    if (gpu_ == nullptr)
        return; // no Gpu in flight: nothing to observe
    std::uint64_t running = 0;
    std::uint64_t draining = 0;
    for (const Active& active : active_) {
        if (gpu_->kernel(active.kernelId).finished())
            continue;
        ++running;
        if (gpu_->kernelDraining(active.kernelId))
            ++draining;
    }
    std::uint64_t occupied = 0;
    for (const auto& core : gpu_->cores())
        occupied += core->residentCtas();
    sampler.record("serve.queue_depth",
                   static_cast<double>(ready_.size()),
                   SeriesKind::Gauge);
    sampler.record("serve.running_kernels",
                   static_cast<double>(running), SeriesKind::Gauge);
    sampler.record("serve.occupied_cta_slots",
                   static_cast<double>(occupied), SeriesKind::Gauge);
    sampler.record("serve.headroom_slots",
                   static_cast<double>(headroomSlots(*gpu_)),
                   SeriesKind::Gauge);
    sampler.record("serve.drains_in_flight",
                   static_cast<double>(draining), SeriesKind::Gauge);
}

void
ServingEngine::decide(Gpu& gpu, Cycle now)
{
    while (tryAdmit(gpu, now)) {
    }
    if (cfg_.policy == ServePolicy::ReorderPreempt)
        tryPreempt(gpu, now);
}

ServingRunResult
ServingEngine::run(const std::vector<LaunchRequest>& trace)
{
    if (ran_)
        fatal("serve: ServingEngine::run may only be called once");
    ran_ = true;
    if (trace.empty())
        fatal("serve: empty trace");

    // Kernel pool: one KernelInfo per distinct workload, owned here so
    // it outlives the Gpu below (launchKernel keeps the pointer).
    for (const LaunchRequest& req : trace) {
        if (pool_.find(req.workload) == pool_.end())
            pool_.emplace(req.workload, makeWorkload(req.workload));
    }

    ingest(trace);

    // One tracer lane per tenant for the request lifecycle spans,
    // created in tenant order (deterministic track ids).
    if (obs_.tracer != nullptr) {
        std::map<int, char> tenants;
        for (const RequestOutcome& outcome : outcomes_)
            tenants[outcome.req.tenant] = 1;
        for (const auto& [tenant, present] : tenants) {
            (void)present;
            tenantTrack_[tenant] = obs_.tracer->addTrack(
                "tenant" + std::to_string(tenant));
        }
    }

    // Hand the observer through to the Gpu; when a sampler is attached
    // the engine rides along as a SampleSource so the serving gauges
    // land on the same fenced sample cycles as the machine counters.
    Observer obs = obs_;
    if (obs.sampler != nullptr)
        obs.sampleSource = this;

    Gpu gpu(gpuConfig_, obs);
    gpu_ = &gpu;
    std::size_t remaining = outcomes_.size();
    while (remaining > 0) {
        const Cycle now = gpu.cycle();
        bool event = releaseArrivals(now);
        if (collectCompletions(gpu, now)) {
            event = true;
            std::size_t unfinished = 0;
            for (const RequestOutcome& outcome : outcomes_) {
                if (outcome.finish == kCycleNever)
                    ++unfinished;
            }
            remaining = unfinished;
        }
        // Decisions happen only on events (arrival or completion), so
        // the schedule never depends on which intermediate cycles the
        // engine happened to observe — the property that keeps runs
        // byte-identical with idle fast-forward on or off.
        if (event)
            decide(gpu, now);
        if (remaining == 0)
            break;
        // Fence idle fast-forward at the next arrival: a quiet GPU may
        // not jump past the cycle where this engine will act.
        gpu.setExternalEventCycle(nextArrivalCycle());
        gpu.stepCycle();
    }

    // Close out the sampler at the final cycle (run() isn't used here,
    // so the engine takes the closing sample itself).
    gpu.finalizeSample();

    ServingRunResult result;
    result.preemptions = preemptions_;
    result.reorders = reorders_;
    result.drainRequests = gpu.ctaScheduler().drainRequests();
    result.drainCancels = gpu.drainCancels();
    result.drainsCompleted = gpu.drainsCompleted();
    result.drainLatencyCycles = gpu.drainLatencyCycles();
    Cycle last = 0;
    for (const RequestOutcome& outcome : outcomes_) {
        BSCHED_CHECK(outcome.finish != kCycleNever,
                     "serve: run ended with unserved request ",
                     outcome.req.seq);
        last = std::max(last, outcome.finish);
    }
    result.totalCycles = last;
    result.stats.set("serve.requests",
                     static_cast<double>(outcomes_.size()));
    result.stats.set("serve.preemptions",
                     static_cast<double>(preemptions_));
    result.stats.set("serve.reorders", static_cast<double>(reorders_));
    result.stats.set("serve.headroom_denials",
                     static_cast<double>(headroomDenials_));
    result.stats.set("serve.drain_requests",
                     static_cast<double>(result.drainRequests));
    result.stats.set("serve.drain_cancels",
                     static_cast<double>(result.drainCancels));
    result.stats.set("serve.drains_completed",
                     static_cast<double>(result.drainsCompleted));
    result.stats.set("serve.drain_latency_cycles",
                     static_cast<double>(result.drainLatencyCycles));
    result.outcomes = std::move(outcomes_);
    gpu_ = nullptr;
    return result;
}

} // namespace bsched
