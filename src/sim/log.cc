#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace bsched {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
fatalImpl(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string& msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (g_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace bsched
