/**
 * @file
 * Core <-> memory-partition interconnect, modeled as per-partition
 * request channels and per-core response channels, each with a fixed
 * one-way latency and a per-cycle ejection bandwidth. Lines interleave
 * across partitions at line granularity.
 */

#ifndef BSCHED_MEM_INTERCONNECT_HH
#define BSCHED_MEM_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "mem/mem_common.hh"
#include "sim/config.hh"
#include "sim/queues.hh"
#include "sim/stats.hh"

namespace bsched {

class MemProfiler;

/** Crossbar-like network with latency and bandwidth, no routing detail. */
class Interconnect
{
  public:
    explicit Interconnect(const GpuConfig& config);

    /** Partition a line address is homed on. */
    std::uint32_t partitionFor(Addr line_addr) const;

    // --- request direction (core -> partition) -------------------------

    /** True if a request toward @p partition can be injected now. */
    bool canSendRequest(std::uint32_t partition) const;

    /** Inject a request (must be allowed). */
    void sendRequest(Cycle now, const MemRequest& request);

    /** True if a request has arrived at @p partition. */
    bool requestReady(std::uint32_t partition, Cycle now) const;

    /** Eject one request at @p partition (bandwidth-limited). */
    MemRequest popRequest(std::uint32_t partition, Cycle now);

    /** Remaining ejections allowed at @p partition this cycle. */
    bool ejectBudget(std::uint32_t partition, Cycle now);

    // --- response direction (partition -> core) ------------------------

    bool canSendResponse(std::uint32_t core) const;
    void sendResponse(Cycle now, std::uint32_t core,
                      const MemResponse& response);
    bool responseReady(std::uint32_t core, Cycle now) const;
    MemResponse popResponse(std::uint32_t core, Cycle now);

    /**
     * Consume one unit of response ejection bandwidth at @p core. Call
     * only when a pop will actually follow.
     */
    bool responseEjectBudget(std::uint32_t core, Cycle now);

    /** True when nothing is in flight in either direction. */
    bool drained() const;

    /**
     * Earliest cycle >= @p now at which an in-flight message becomes
     * ejectable at its destination: the min head-ready cycle over all
     * non-empty channels. kCycleNever when drained. Bandwidth throttles
     * self-reset on the first consume of a new cycle, so they carry no
     * next-event state of their own.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Attach the memory profiler: injected messages report their
     *  noc_req / noc_resp stage transitions. Null detaches. */
    void setMemProfiler(MemProfiler* prof) { memProfiler_ = prof; }

    void addStats(StatSet& stats) const;

  private:
    /** In-flight buffering per channel. */
    static constexpr std::size_t kChannelCapacity = 64;

    std::uint32_t lineBytes_;
    std::uint32_t numPartitions_;
    std::vector<TimedQueue<MemRequest>> requestQ_;  ///< per partition
    std::vector<TimedQueue<MemResponse>> responseQ_; ///< per core
    std::vector<BandwidthThrottle> requestBw_;  ///< per partition ejection
    std::vector<BandwidthThrottle> responseBw_; ///< per core ejection
    std::uint64_t requestsSent_ = 0;
    std::uint64_t responsesSent_ = 0;
    MemProfiler* memProfiler_ = nullptr;
};

} // namespace bsched

#endif // BSCHED_MEM_INTERCONNECT_HH
