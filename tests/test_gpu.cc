/**
 * @file
 * Integration tests for the Gpu top level: end-to-end kernel execution,
 * metrics, multi-kernel launches and spatial restriction.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 4;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
aluKernel(std::uint32_t grid = 16)
{
    KernelInfo k;
    k.name = "alu";
    k.grid = {grid, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(10).alu(2, false).endLoop();
    k.program = b.build();
    return k;
}

KernelInfo
memKernel(std::uint32_t grid = 16)
{
    KernelInfo k;
    k.name = "mem";
    k.grid = {grid, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x10000000;
    const auto i = b.pattern(in);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0x20000000;
    const auto o = b.pattern(out);
    b.loop(8).load(i).alu(2).store(o).endLoop();
    k.program = b.build();
    return k;
}

TEST(Gpu, AluKernelRunsToCompletion)
{
    Gpu gpu(cfg());
    const KernelInfo k = aluKernel();
    const int id = gpu.launchKernel(k);
    gpu.run();
    EXPECT_TRUE(gpu.finished());
    EXPECT_EQ(gpu.kernel(id).ctasDone, 16u);
    EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs());
    EXPECT_GT(gpu.ipc(), 0.0);
    EXPECT_GT(gpu.kernelCycles(id), 0u);
}

TEST(Gpu, MemKernelIssuesAllInstructionsAndDrains)
{
    Gpu gpu(cfg());
    const KernelInfo k = memKernel();
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs());
    const StatSet stats = gpu.stats();
    EXPECT_GT(stats.sumBySuffix(".l1d.access"), 0.0);
    EXPECT_GT(stats.sumBySuffix(".dram.read"), 0.0);
    // Stores are write-through: DRAM sees write traffic too
    // (via L2 write-back of dirtied lines).
    EXPECT_GT(stats.sumBySuffix(".req_write"), 0.0);
}

TEST(Gpu, DeterministicAcrossRuns)
{
    const KernelInfo k = memKernel();
    Gpu a(cfg());
    a.launchKernel(k);
    a.run();
    Gpu b(cfg());
    b.launchKernel(k);
    b.run();
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.totalInstrsIssued(), b.totalInstrsIssued());
}

TEST(Gpu, TwoKernelsConcurrently)
{
    Gpu gpu(cfg());
    const KernelInfo a = aluKernel(8);
    const KernelInfo b = memKernel(8);
    const int ia = gpu.launchKernel(a);
    const int ib = gpu.launchKernel(b);
    gpu.run();
    EXPECT_TRUE(gpu.kernel(ia).finished());
    EXPECT_TRUE(gpu.kernel(ib).finished());
    EXPECT_EQ(gpu.totalInstrsIssued(),
              a.totalDynamicInstrs() + b.totalDynamicInstrs());
}

TEST(Gpu, SpatialRestrictionConfinesKernel)
{
    Gpu gpu(cfg());
    const KernelInfo k = aluKernel(8);
    gpu.launchKernel(k, 0, 2);
    gpu.run();
    const StatSet stats = gpu.stats();
    EXPECT_GT(stats.get("core0.issued"), 0.0);
    EXPECT_GT(stats.get("core1.issued"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("core2.issued"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("core3.issued"), 0.0);
}

TEST(Gpu, SequentialLaunchAfterRun)
{
    Gpu gpu(cfg());
    const KernelInfo a = aluKernel(8);
    const int ia = gpu.launchKernel(a);
    gpu.run();
    const Cycle mid = gpu.cycle();
    const KernelInfo b = aluKernel(8);
    const int ib = gpu.launchKernel(b);
    gpu.run();
    EXPECT_GT(gpu.kernel(ib).launchCycle, 0u);
    EXPECT_GE(gpu.kernel(ib).launchCycle, mid);
    // Back-to-back execution: the two kernel intervals tile the run
    // (up to the drain fences at each kernel boundary).
    EXPECT_LE(gpu.kernelCycles(ia) + gpu.kernelCycles(ib), gpu.cycle());
}

TEST(Gpu, KernelIpcAttributedPerKernel)
{
    Gpu gpu(cfg());
    const KernelInfo a = aluKernel(8);
    const int id = gpu.launchKernel(a);
    gpu.run();
    const double k_ipc = gpu.kernelIpc(id);
    EXPECT_NEAR(k_ipc,
                static_cast<double>(a.totalDynamicInstrs()) /
                    static_cast<double>(gpu.kernelCycles(id)),
                1e-9);
}

TEST(Gpu, RunWithoutKernelDies)
{
    Gpu gpu(cfg());
    EXPECT_DEATH(gpu.run(), "without any launched kernel");
}

TEST(Gpu, BadCoreRangeDies)
{
    Gpu gpu(cfg());
    const KernelInfo k = aluKernel();
    EXPECT_DEATH(gpu.launchKernel(k, -1), "core_begin");
    EXPECT_DEATH(gpu.launchKernel(k, 0, 99), "core_end");
}

TEST(Gpu, MaxCyclesGuardDies)
{
    GpuConfig config = cfg();
    config.maxCycles = 10; // far too small
    Gpu gpu(config);
    const KernelInfo k = aluKernel();
    gpu.launchKernel(k);
    EXPECT_DEATH(gpu.run(), "maxCycles");
}

TEST(Gpu, UnfinishedKernelCyclesQueryDies)
{
    Gpu gpu(cfg());
    const KernelInfo k = aluKernel();
    const int id = gpu.launchKernel(k);
    EXPECT_DEATH((void)gpu.kernelCycles(id), "not finished");
}

} // namespace
} // namespace bsched
