/**
 * @file
 * Unit tests for BCS (block CTA scheduling) and the LCS+BCS combination.
 */

#include <gtest/gtest.h>

#include <map>

#include "cta/block_cta_sched.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg(std::uint32_t cores = 2, std::uint32_t block = 2)
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = cores;
    c.ctaSched = CtaSchedKind::Block;
    c.bcs.blockSize = block;
    return c;
}

KernelInfo
kernel(std::uint32_t grid, std::uint32_t trips = 50)
{
    KernelInfo k;
    k.name = "k";
    k.grid = {grid, 1, 1};
    k.cta = {256, 1, 1}; // 6 per core
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(trips).alu(1).endLoop();
    k.program = b.build();
    return k;
}

CoreList
makeCores(const GpuConfig& config)
{
    CoreList cores;
    for (std::uint32_t c = 0; c < config.numCores; ++c)
        cores.push_back(std::make_unique<SimtCore>(config, c));
    return cores;
}

std::vector<KernelInstance>
instances(const KernelInfo& k)
{
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    return {inst};
}

/** Map each resident CTA id to (core, blockSeq). */
std::map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>>
residency(const CoreList& cores)
{
    std::map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>> map;
    for (std::uint32_t c = 0; c < cores.size(); ++c) {
        for (const Warp& w : cores[c]->warps()) {
            if (w.valid)
                map[w.ctaId] = {c, w.blockSeq};
        }
    }
    return map;
}

TEST(Bcs, ConsecutiveCtasLandOnTheSameCore)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    auto kernels = instances(k);
    BlockCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    const auto where = residency(cores);
    // Every even CTA shares core and blockSeq with its successor.
    for (const auto& [cta, loc] : where) {
        if (cta % 2 == 0 && where.count(cta + 1)) {
            EXPECT_EQ(loc.first, where.at(cta + 1).first)
                << "cta " << cta;
            EXPECT_EQ(loc.second, where.at(cta + 1).second)
                << "cta " << cta;
        }
    }
}

TEST(Bcs, DistinctBlocksGetDistinctSeqs)
{
    const GpuConfig config = cfg(1);
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    auto kernels = instances(k);
    BlockCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    const auto where = residency(cores);
    EXPECT_NE(where.at(0).second, where.at(2).second);
}

TEST(Bcs, WaitsForFullBlockWorthOfSpace)
{
    // Occupancy is 6; after the initial 3 blocks fill a core, one CTA
    // finishing leaves 1 free slot: no dispatch until 2 are free.
    const GpuConfig config = cfg(1);
    auto cores = makeCores(config);
    // CTA 0 finishes earlier than the rest (trip jitter not used;
    // instead use a tiny grid so we can control completions).
    const KernelInfo k = kernel(100);
    auto kernels = instances(k);
    BlockCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    EXPECT_EQ(cores[0]->residentCtas(), 6u);
    EXPECT_EQ(kernels[0].nextCta, 6u);
    // Simulate: no space -> no dispatch even over many ticks.
    for (Cycle t = 10; t < 20; ++t)
        sched.tick(t, kernels, cores);
    EXPECT_EQ(kernels[0].nextCta, 6u);
}

TEST(Bcs, TailSmallerThanBlockStillDispatches)
{
    const GpuConfig config = cfg(1);
    auto cores = makeCores(config);
    const KernelInfo k = kernel(3); // one pair + one tail CTA
    auto kernels = instances(k);
    BlockCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    EXPECT_TRUE(kernels[0].dispatchDone());
    EXPECT_EQ(cores[0]->residentCtas(), 3u);
}

TEST(Bcs, BlockSize4GroupsFourCtas)
{
    const GpuConfig config = cfg(1, 4);
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    auto kernels = instances(k);
    BlockCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    const auto where = residency(cores);
    EXPECT_EQ(where.at(0).second, where.at(3).second);
    // 6 slots, blocks of 4: only one block fits (4 resident); CTA 4
    // must wait for a full block's worth of space.
    EXPECT_EQ(cores[0]->residentCtas(), 4u);
    EXPECT_EQ(where.count(4), 0u);
}

TEST(LazyBlock, CombinesPairingWithLcsLimit)
{
    GpuConfig config = cfg(1);
    config.ctaSched = CtaSchedKind::LazyBlock;
    auto cores = makeCores(config);
    const KernelInfo k = kernel(200, 400);
    auto kernels = instances(k);
    LazyBlockCtaScheduler sched(config);
    Cycle t = 0;
    // Drive cores + scheduler until the first CTA completes.
    while (kernels[0].ctasDone == 0 && t < 1000000) {
        for (auto& core : cores) {
            core->tick(t);
            for (const CtaDoneEvent& ev : core->drainCompletedCtas()) {
                ++kernels[0].ctasDone;
                sched.notifyCtaDone(t, ev, cores);
            }
        }
        sched.tick(t, kernels, cores);
        ++t;
    }
    ASSERT_GT(kernels[0].ctasDone, 0u);
    // Pairing still holds for resident CTAs.
    const auto where = residency(cores);
    for (const auto& [cta, loc] : where) {
        if (cta % 2 == 0 && where.count(cta + 1)) {
            EXPECT_EQ(loc.second, where.at(cta + 1).second);
        }
    }
}

TEST(LazyBlock, ReportsCombinedName)
{
    const GpuConfig config = cfg();
    LazyBlockCtaScheduler sched(config);
    EXPECT_STREQ(sched.name(), "lcs+bcs");
}

} // namespace
} // namespace bsched
