/**
 * @file
 * LCS — Lazy CTA Scheduling (the paper's first mechanism).
 *
 * Phase 1: fill each core to the maximum CTA count, exactly like the
 * baseline. The GTO warp scheduler concentrates issue on the oldest
 * ("greedy") CTA, so during this monitoring window the per-CTA issued-
 * instruction counters measure how much issue one CTA can sustain.
 *
 * Phase 2: when the window closes (first CTA completion on the core, or
 * a fixed cycle count), estimate the optimal CTA count as
 *     N_opt = clamp(ceil(I_total / I_greedy) + slack, 1, N_max)
 * where I_total is all instructions the kernel issued on that core and
 * I_greedy is the largest per-CTA count.
 *
 * Phase 3: lazily decline new CTAs until the resident count drops below
 * N_opt; resident CTAs above the target simply drain (no preemption).
 *
 * The monitor is per (core, kernel), which is also what lets mixed
 * concurrent kernel execution (MCK) fill the freed resources with a
 * second kernel: dispatch is offered to kernels in priority order, and
 * each kernel obeys its own per-core N_opt.
 */

#ifndef BSCHED_CTA_LAZY_CTA_SCHED_HH
#define BSCHED_CTA_LAZY_CTA_SCHED_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cta/cta_sched.hh"

namespace bsched {

/** Lazy CTA scheduling. */
class LazyCtaScheduler : public CtaScheduler
{
  public:
    explicit LazyCtaScheduler(const GpuConfig& config)
        : CtaScheduler(config)
    {}

    void tick(Cycle now, std::vector<KernelInstance>& kernels,
              CoreList& cores) override;

    void notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                       CoreList& cores) override;

    /**
     * FixedCycles mode: the earliest still-open monitoring-window
     * deadline — the window must close (and its trace event fire) at
     * exactly start + fixedWindowCycles, so quiet spans may not skip
     * past it. FirstCtaDone windows close on CTA completions, which are
     * observable events; they impose no deadline.
     */
    Cycle nextEventCycle(Cycle now,
                         const std::vector<KernelInstance>& kernels,
                         const CoreList& cores) const override;

    const char* name() const override { return "lcs"; }

    void addStats(StatSet& stats) const override;

    /** Decided N_opt for (core, kernel); 0 if still monitoring. */
    std::uint32_t decidedLimit(std::uint32_t core, int kernel_id) const;

    /**
     * In FixedCycles mode, close any monitoring windows whose deadline
     * passed. Shared with the LCS+BCS combination.
     */
    void closeExpiredWindows(Cycle now,
                             const std::vector<KernelInstance>& kernels,
                             const CoreList& cores);

    /** Effective per-core dispatch cap for @p kernel right now. */
    std::uint32_t capFor(std::uint32_t core_id,
                         const KernelInstance& kernel) const;

  private:
    struct Monitor
    {
        bool decided = false;
        std::uint32_t nOpt = 0;
    };

    using Key = std::pair<std::uint32_t, int>; ///< (core, kernelId)

    /** Close the window and compute N_opt from the core's counters. */
    void decide(Cycle now, std::uint32_t core_id, int kernel_id,
                std::uint32_t n_max, const SimtCore& core);

    std::map<Key, Monitor> monitors_;
};

} // namespace bsched

#endif // BSCHED_CTA_LAZY_CTA_SCHED_HH
