/**
 * @file
 * Tests for the structured sinks: JSON primitives, the bsched-run-v1 /
 * bsched-bench-v1 schemas, and byte-identity of serialized artifacts
 * between serial and parallel harness runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = makeConfig(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "sink";
    k.grid = {8, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(4).load(i).alu(3).endLoop();
    k.program = b.build();
    return k;
}

TEST(JsonPrimitives, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1e18), "1e+18"); // beyond exact-integer range
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonPrimitives, Escaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\n\t"), "x\\n\\t");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonPrimitives, ParserRoundTripsSinkOutput)
{
    StatSet stats;
    stats.set("a.b", 1.5);
    stats.set("a.c", -2.0);
    std::ostringstream os;
    writeStatsJson(os, stats);
    const JsonValue doc = parseJson(os.str());
    EXPECT_DOUBLE_EQ(doc.at("a.b").asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(doc.at("a.c").asNumber(), -2.0);
}

TEST(Sink, RunJsonMatchesSchema)
{
    const GpuConfig config = cfg();
    IntervalSampler sampler(64);
    const RunResult r =
        runKernel(config, kernel(), Observer{nullptr, &sampler});

    std::ostringstream os;
    writeRunJson(os, r, "sink/run", &sampler);
    const JsonValue doc = parseJson(os.str());

    EXPECT_EQ(doc.at("schema").asString(), "bsched-run-v1");
    EXPECT_EQ(doc.at("label").asString(), "sink/run");
    EXPECT_DOUBLE_EQ(doc.at("cycles").asNumber(),
                     static_cast<double>(r.cycles));
    EXPECT_DOUBLE_EQ(doc.at("instrs").asNumber(),
                     static_cast<double>(r.instrs));
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("l1_miss_rate").asNumber(),
                     r.l1MissRate());
    EXPECT_TRUE(doc.at("stats").isObject());
    EXPECT_DOUBLE_EQ(doc.at("stats").at("gpu.instrs").asNumber(),
                     r.stats.get("gpu.instrs"));
    ASSERT_TRUE(doc.has("series"));
    EXPECT_DOUBLE_EQ(doc.at("series").at("period").asNumber(), 64.0);
    EXPECT_EQ(doc.at("series").at("cycles").asArray().size(),
              sampler.samples());
}

TEST(Sink, BenchReportMatchesSchemaAndRejectsDuplicates)
{
    const RunResult r = runKernel(cfg(), kernel());
    BenchReport report("test_bench");
    report.addRow("w/base", r);
    report.addMetric("geomean.speedup", 1.25);

    const JsonValue doc = parseJson(report.toJson());
    EXPECT_EQ(doc.at("schema").asString(), "bsched-bench-v1");
    EXPECT_EQ(doc.at("bench").asString(), "test_bench");
    ASSERT_EQ(doc.at("rows").asArray().size(), 1u);
    const JsonValue& row = doc.at("rows").asArray()[0];
    EXPECT_EQ(row.at("label").asString(), "w/base");
    EXPECT_DOUBLE_EQ(row.at("ipc").asNumber(), r.ipc);
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("geomean.speedup").asNumber(),
                     1.25);

    EXPECT_DEATH(report.addRow("w/base", r), "duplicate");
}

/**
 * The acceptance-criterion property: the serialized artifact bytes must
 * not depend on how many worker threads produced the results.
 */
TEST(Sink, ReportBytesIdenticalAcrossJobCounts)
{
    const GpuConfig config = cfg();
    const KernelInfo k = kernel();

    std::string bytes[2];
    const unsigned job_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        const auto sweep = sweepCtaLimit(config, k, 4, job_counts[i]);
        BenchReport report("identity");
        for (std::size_t n = 0; n < sweep.size(); ++n)
            report.addRow("limit" + std::to_string(n + 1), sweep[n]);
        report.addMetric("points", static_cast<double>(sweep.size()));
        bytes[i] = report.toJson();
    }
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(Sink, StatsCsvRoundTrip)
{
    StatSet stats;
    stats.set("gpu.cycles", 100);
    stats.set("gpu.ipc", 1.5);
    std::ostringstream os;
    writeStatsCsv(os, stats);
    EXPECT_EQ(os.str(), "name,value\ngpu.cycles,100\ngpu.ipc,1.5\n");
}

TEST(Sink, WriteFileCreatesArtifact)
{
    const std::string path = ::testing::TempDir() + "bsched_sink_test.json";
    const std::size_t bytes = writeFile(path, [](std::ostream& os) {
        os << "{\"ok\":true}";
    });
    EXPECT_EQ(bytes, 11u);
    const JsonValue doc = parseJsonFile(path);
    EXPECT_TRUE(doc.at("ok").asBool());
    std::remove(path.c_str());
}

} // namespace
} // namespace bsched
