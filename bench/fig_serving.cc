/**
 * @file
 * E18 — kernel-launch serving: multi-tenant launch traces (Poisson,
 * bursty, closed-loop) served under the five serving policies —
 * Sequential and Spatial baselines, then shared-core FCFS, reordering
 * (SJF + deadline escalation) and reordering with CTA-drain
 * preemption. Reports throughput, p50/p99 launch-to-finish latency,
 * deadline-miss rate and per-tenant ANTT fairness per (trace, policy),
 * and emits the `bsched-serving-v1` artifact (--emit-json). The
 * artifact is byte-identical for any --jobs and with fast-forward on
 * or off; bench/BENCH_serving.json is the committed baseline CI gates
 * against.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "gpu/multi_kernel.hh"
#include "serve/engine.hh"
#include "serve/serving_report.hh"
#include "serve/traffic.hh"
#include "serve_traces.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;
using TraceDef = bench::ServeTraceDef;

std::vector<TraceDef>
makeTraces()
{
    return bench::makeServeTraces();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig config =
        makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);

    const std::vector<TraceDef> traces = makeTraces();
    const std::vector<ServePolicy> policies = allServePolicies();

    std::printf("E18: kernel-launch serving — traffic x policy\n"
                "(latencies in cycles, launch-to-finish; %u jobs)\n\n",
                jobs);

    const ParallelRunner runner(jobs);

    // Isolated full-machine runtimes (fairness denominators), computed
    // once per distinct workload through the shared content-keyed
    // cache. The parallel warm-up deposits deterministic values, so
    // cache state never shows in the artifact.
    std::vector<std::string> uniq;
    for (const TraceDef& def : traces) {
        for (const TenantSpec& tenant : def.spec.tenants) {
            for (const std::string& name : tenant.mix) {
                if (std::find(uniq.begin(), uniq.end(), name) ==
                    uniq.end()) {
                    uniq.push_back(name);
                }
            }
        }
    }
    IsolatedCycleCache cache;
    const auto iso_cycles =
        runner.map<Cycle>(uniq.size(), [&](std::size_t i) {
            const KernelInfo kernel = makeWorkload(uniq[i]);
            Gpu gpu(config);
            const int id = gpu.launchKernel(kernel);
            gpu.run();
            const Cycle cycles = gpu.kernelCycles(id);
            cache.insert(IsolatedCycleCache::key(config, kernel), cycles);
            return cycles;
        });
    std::map<std::string, Cycle> isolated;
    for (std::size_t i = 0; i < uniq.size(); ++i)
        isolated[uniq[i]] = iso_cycles[i];

    // One independent point per (trace, policy); each engine owns a
    // fresh GPU and kernel pool.
    const std::size_t points = traces.size() * policies.size();
    const auto results =
        runner.map<ServingRunResult>(points, [&](std::size_t i) {
            const TraceDef& def = traces[i / policies.size()];
            ServeConfig serve;
            serve.policy = policies[i % policies.size()];
            ServingEngine engine(config, serve);
            return engine.run(generateTrace(def.spec));
        });

    ServingReport report("fig_serving");
    Table table("serving policies");
    table.setHeader({"trace", "policy", "reqs", "thrpt/Mcyc", "p50",
                     "p99", "miss-rate", "fairness", "preempts"});
    std::map<std::string, std::map<std::string, ServingSummary>> byTrace;
    for (std::size_t i = 0; i < points; ++i) {
        const TraceDef& def = traces[i / policies.size()];
        const ServePolicy policy = policies[i % policies.size()];
        const ServingSummary summary = summarizeServing(
            toString(policy), def.name, results[i], isolated);
        report.addRun(summary);
        byTrace[def.name][summary.policy] = summary;
        table.addRow({def.name, summary.policy,
                      std::to_string(summary.requests),
                      fmt(summary.throughput, 2),
                      std::to_string(static_cast<long long>(
                          summary.p50Latency)),
                      std::to_string(static_cast<long long>(
                          summary.p99Latency)),
                      fmt(summary.missRate, 3),
                      fmt(summary.fairness, 3),
                      std::to_string(summary.preemptions)});
    }
    std::printf("%s\n", table.toText().c_str());

    // Headline: how much p99 latency the smarter policies claw back
    // from FCFS on the bursty deadline trace.
    for (const TraceDef& def : traces) {
        const auto& runs = byTrace.at(def.name);
        const ServingSummary& fcfs = runs.at("fcfs");
        const ServingSummary& reorder = runs.at("reorder");
        const ServingSummary& preempt = runs.at("reorder+preempt");
        if (fcfs.p99Latency > 0.0) {
            report.addMetric(def.name + ".p99_gain_reorder",
                             fcfs.p99Latency / reorder.p99Latency);
            report.addMetric(def.name + ".p99_gain_reorder_preempt",
                             fcfs.p99Latency / preempt.p99Latency);
        }
        report.addMetric(def.name + ".miss_rate_delta_preempt",
                         fcfs.missRate - preempt.missRate);
    }

    std::printf("Reading: FCFS strands short deadline bursts behind\n"
                "long resident kernels; reordering admits them first\n"
                "when a slot frees, and CTA-drain preemption frees the\n"
                "slot instead of waiting — the p99 and deadline-miss\n"
                "columns quantify each step.\n");

    if (!opts.emitJsonPath.empty()) {
        writeFile(opts.emitJsonPath,
                  [&](std::ostream& os) { report.writeJson(os); });
        std::printf("wrote %s\n", opts.emitJsonPath.c_str());
    }
    bench::writeRunArtifacts(opts, config, makeWorkload("lud"),
                             "lud/serving");
    return 0;
}
