#include "serve/traffic.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace bsched {

const char*
toString(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
      case ArrivalProcess::ClosedLoop: return "closed";
    }
    return "?";
}

namespace {

/** (a * b) >> 63 with a, b in Q63. */
std::uint64_t
mulQ63(std::uint64_t a, std::uint64_t b)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 63);
}

} // namespace

std::uint64_t
negLogQ32(std::uint64_t r)
{
    // u = r / 2^64 with r pinned away from 0 so ln(u) is finite.
    if (r == 0)
        r = 1;
    // Normalize: r = m * 2^k with m in [1, 2), m held in Q63.
    const int k = 63 - __builtin_clzll(r);
    const std::uint64_t m_q63 = r << (63 - k);

    // ln(m) via the atanh series: z = (m-1)/(m+1) in [0, 1/3), and
    // ln(m) = 2 * (z + z^3/3 + z^5/5 + ...). z^2 < 1/9, so 13 odd
    // terms push truncation below Q32 resolution.
    const std::uint64_t num = m_q63 - (1ULL << 63);
    const unsigned __int128 den =
        static_cast<unsigned __int128>(m_q63) + (1ULL << 63);
    const std::uint64_t z = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(num) << 63) / den);
    const std::uint64_t z2 = mulQ63(z, z);
    std::uint64_t power = z;
    std::uint64_t sum = 0; // atanh(z) in Q63; bounded by atanh(1/3) < 0.35
    for (std::uint64_t j = 1; j <= 25; j += 2) {
        sum += power / j;
        power = mulQ63(power, z2);
        if (power == 0)
            break;
    }
    const std::uint64_t ln_m_q32 = sum >> 30; // 2 * sum, Q63 -> Q32

    // -ln(u) = (64 - k) * ln2 - ln(m); m >= 1 keeps this non-negative.
    constexpr std::uint64_t kLn2Q32 = 2977044472ULL; // round(ln2 * 2^32)
    const std::uint64_t whole = static_cast<std::uint64_t>(64 - k) * kLn2Q32;
    return whole > ln_m_q32 ? whole - ln_m_q32 : 0;
}

namespace {

/** Exponential gap with mean @p mean cycles; at least 1. */
Cycle
expGap(Rng& rng, std::uint64_t mean)
{
    const std::uint64_t q32 = negLogQ32(rng.next());
    const std::uint64_t gap = (mean * q32) >> 32;
    return gap == 0 ? 1 : gap;
}

void
validateTenant(const TenantSpec& tenant, std::size_t index)
{
    if (tenant.mix.empty())
        fatal("traffic: tenant ", index, " has an empty kernel mix");
    if (tenant.requests == 0)
        fatal("traffic: tenant ", index, " issues zero requests");
    if (tenant.meanGapCycles == 0)
        fatal("traffic: tenant ", index, " has zero mean gap");
    if (tenant.process == ArrivalProcess::Bursty && tenant.burstLen == 0)
        fatal("traffic: tenant ", index, " has zero burst length");
    if (tenant.process == ArrivalProcess::ClosedLoop &&
        tenant.closedDepth == 0) {
        fatal("traffic: tenant ", index, " has zero closed-loop depth");
    }
}

} // namespace

std::vector<LaunchRequest>
generateTrace(const TrafficSpec& spec)
{
    if (spec.tenants.empty())
        fatal("traffic: spec has no tenants");

    std::vector<LaunchRequest> trace;
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
        const TenantSpec& tenant = spec.tenants[t];
        validateTenant(tenant, t);
        // Per-tenant stream: seeded independently so adding a tenant
        // never perturbs the others' arrivals.
        Rng rng(mix64(hashCombine(spec.seed, t + 1)));
        Cycle clock = 0;
        std::uint32_t in_burst = 0;
        for (std::uint32_t i = 0; i < tenant.requests; ++i) {
            LaunchRequest req;
            req.tenant = static_cast<int>(t);
            req.workload = tenant.mix[rng.nextBelow(tenant.mix.size())];
            req.deadlineSlack = tenant.deadlineSlack;
            switch (tenant.process) {
              case ArrivalProcess::Poisson:
                clock += expGap(rng, tenant.meanGapCycles);
                req.arrival = clock;
                break;
              case ArrivalProcess::Bursty:
                if (in_burst == 0)
                    clock += expGap(rng, tenant.meanGapCycles);
                else
                    clock += tenant.intraBurstGapCycles;
                in_burst = (in_burst + 1) % tenant.burstLen;
                req.arrival = clock;
                break;
              case ArrivalProcess::ClosedLoop:
                if (i < tenant.closedDepth) {
                    clock += expGap(rng, tenant.meanGapCycles);
                    req.arrival = clock;
                } else {
                    req.arrival = kCycleNever;
                    req.thinkCycles = expGap(rng, tenant.meanGapCycles);
                }
                break;
            }
            trace.push_back(std::move(req));
        }
    }

    // Trace order: by concrete arrival, generation order on ties;
    // closed-loop placeholders (kCycleNever) sort last and keep their
    // per-tenant FIFO order. stable_sort preserves generation order
    // exactly where arrivals tie.
    std::stable_sort(trace.begin(), trace.end(),
                     [](const LaunchRequest& a, const LaunchRequest& b) {
                         return a.arrival < b.arrival;
                     });
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].seq = i;
    return trace;
}

} // namespace bsched
