/**
 * @file
 * Warp-issue selection policies. Each SIMT core runs one scheduler
 * instance per issue slot; a scheduler owns the warps whose id is
 * congruent to its slot index.
 *
 *  - LRR: loose round-robin over ready warps.
 *  - GTO: greedy-then-oldest — keep issuing from the last warp until it
 *    stalls, then fall back to the oldest (by CTA arrival, then warp id).
 *    GTO's greediness is what makes the LCS issue-ratio estimator work.
 *  - BAWS: block-aware warp scheduling — greedy-then-oldest across the
 *    CTA *blocks* BCS dispatched together, round-robin within a block so
 *    paired CTAs progress at the same rate and reuse each other's lines.
 */

#ifndef BSCHED_CORE_WARP_SCHED_HH
#define BSCHED_CORE_WARP_SCHED_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/warp.hh"
#include "sim/config.hh"

namespace bsched {

/** Strategy interface: choose one warp among the ready candidates. */
class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    /**
     * Pick a warp id from @p ready (non-empty, ascending warp ids).
     * @p warps is the core's full warp table for tie-break metadata.
     */
    virtual int pick(const std::vector<int>& ready,
                     const std::vector<Warp>& warps) = 0;

    /** Called after the chosen warp actually issued. */
    virtual void
    notifyIssued(int warp_id, const std::vector<Warp>& warps)
    {
        (void)warp_id;
        (void)warps;
    }

    /**
     * Called by the core when the last resident CTA of dispatch-block
     * @p block retires, so schedulers can drop per-block state. Without
     * this, BAWS's per-block rotation map would grow with every block
     * the core ever ran.
     */
    virtual void notifyBlockRetired(std::uint64_t block) { (void)block; }

    /** Clear greedy/rotation state (core reset). */
    virtual void reset() {}

    /** Factory keyed by configuration. */
    static std::unique_ptr<WarpScheduler> create(WarpSchedKind kind,
                                                 std::uint32_t
                                                     two_level_active = 8);
};

/** Loose round-robin. */
class LrrScheduler : public WarpScheduler
{
  public:
    int pick(const std::vector<int>& ready,
             const std::vector<Warp>& warps) override;
    void notifyIssued(int warp_id, const std::vector<Warp>& warps) override;
    void reset() override { lastIssued_ = -1; }

  private:
    int lastIssued_ = -1;
};

/** Greedy-then-oldest. */
class GtoScheduler : public WarpScheduler
{
  public:
    int pick(const std::vector<int>& ready,
             const std::vector<Warp>& warps) override;
    void notifyIssued(int warp_id, const std::vector<Warp>& warps) override;
    void reset() override { lastIssued_ = -1; }

  private:
    int lastIssued_ = -1;
};

/**
 * Two-level round-robin (Narasiman et al., MICRO 2011 flavour): a small
 * active set issues round-robin; a warp that stops appearing in the
 * ready list (long stall) is demoted and the oldest ready outsider is
 * promoted. Keeps warps at staggered progress without GTO's strict age
 * priority.
 */
class TwoLevelScheduler : public WarpScheduler
{
  public:
    explicit TwoLevelScheduler(std::uint32_t active_size)
        : activeSize_(active_size)
    {}

    int pick(const std::vector<int>& ready,
             const std::vector<Warp>& warps) override;
    void notifyIssued(int warp_id, const std::vector<Warp>& warps) override;
    void reset() override;

    /** Current active set (tests). */
    const std::vector<int>& activeSet() const { return active_; }

  private:
    std::uint32_t activeSize_;
    std::vector<int> active_;
    int lastIssued_ = -1;
};

/** Block-aware warp scheduling (greedy blocks, fair within a block). */
class BawsScheduler : public WarpScheduler
{
  public:
    int pick(const std::vector<int>& ready,
             const std::vector<Warp>& warps) override;
    void notifyIssued(int warp_id, const std::vector<Warp>& warps) override;
    void notifyBlockRetired(std::uint64_t block) override;
    void reset() override;

    /** Live per-block rotation entries (bounded-growth regression test). */
    std::size_t rotateEntries() const { return rotate_.size(); }

  private:
    static constexpr std::uint64_t kNoBlock = ~0ULL;

    int pickWithinBlock(std::uint64_t block, const std::vector<int>& ready,
                        const std::vector<Warp>& warps);

    std::uint64_t lastBlock_ = kNoBlock;
    /**
     * Per-block round-robin pointer (last issued warp id). Ordered by
     * block so any iteration (stats, future policies) is deterministic;
     * schedule decisions must never inherit hash order.
     */
    std::map<std::uint64_t, int> rotate_;
};

} // namespace bsched

#endif // BSCHED_CORE_WARP_SCHED_HH
