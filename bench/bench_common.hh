/**
 * @file
 * Shared scaffolding for the figure/table binaries: the common command
 * line (--jobs, --trace, --profile, --mem-profile, --phase,
 * --emit-json, --sample-every, --progress, --log) and the workload ×
 * config grid
 * runner every sweep figure uses instead of hand-rolled serial loops.
 *
 * All figures accept `--jobs N` (also `--jobs=N` / `-jN`) or the
 * BSCHED_JOBS environment variable; the default is the hardware
 * concurrency. Per-point results are identical for every job count —
 * only the wall-clock changes (see parallel_runner.hh) — and the
 * --emit-json artifact is byte-identical for any job count.
 */

#ifndef BSCHED_BENCH_BENCH_COMMON_HH
#define BSCHED_BENCH_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "obs/sink.hh"

namespace bsched::bench {

/** The shared figure/table command line, parsed by parseArgs(). */
struct BenchOptions
{
    /** Resolved worker count (already passed through resolveJobs()). */
    unsigned jobs = 0;

    /** --trace FILE: write a Chrome trace of one representative run. */
    std::string tracePath;

    /** --profile FILE: write a `bsched-profile-v1` cycle-accounting
     *  profile of one representative run. */
    std::string profilePath;

    /** --mem-profile FILE: write a `bsched-memprofile-v1` memory
     *  latency/interference profile of one representative run. */
    std::string memProfilePath;

    /** --emit-json FILE: write the figure's BenchReport as JSON. */
    std::string emitJsonPath;

    /** --serve-trace FILE: write a `bsched-servetrace-v1` decision
     *  audit of the canonical serving run. */
    std::string serveTracePath;

    /** --phase FILE: write a `bsched-phase-v1` windowed phase-telemetry
     *  report of one representative run. */
    std::string phasePath;

    /** --sample-every N: interval-sampler period for the traced run. */
    Cycle sampleEvery = 0;

    /** --progress: stderr heartbeat for long grid sweeps. */
    bool progress = false;
};

/**
 * Parse the shared bench command line. Recognizes "--jobs N" /
 * "--jobs=N" / "-jN", "--trace FILE", "--profile FILE",
 * "--mem-profile FILE", "--phase FILE", "--emit-json FILE",
 * "--sample-every N",
 * "--progress" (also the BSCHED_PROGRESS environment variable),
 * "--no-fast-forward" (force plain cycle-by-cycle stepping; results
 * are byte-identical either way) and "--log LEVEL" (also BSCHED_LOG);
 * anything else is fatal() so a typo doesn't silently fall back to
 * defaults.
 */
BenchOptions parseArgs(int argc, char** argv);

/**
 * Back-compat wrapper: parse the shared command line and return only
 * the resolved worker count.
 */
unsigned parseJobs(int argc, char** argv);

/** Write the report to opts.emitJsonPath when --emit-json was given. */
void writeReport(const BenchOptions& opts, const BenchReport& report);

/**
 * Honour --trace, --profile, --mem-profile and --phase: re-run one
 * representative simulation point with the requested observers
 * attached — a Tracer plus an IntervalSampler (period --sample-every,
 * default 512) for --trace, a CycleProfiler for --profile, a
 * MemProfiler for --mem-profile, a PhaseTelemetry (plus a MemProfiler
 * for the interference channels) for --phase — and write the Chrome
 * trace JSON to opts.tracePath, the `bsched-profile-v1` JSON to
 * opts.profilePath, the `bsched-memprofile-v1` JSON to
 * opts.memProfilePath and/or the `bsched-phase-v1` JSON to
 * opts.phasePath. When several are requested the same single re-run
 * feeds all artifacts. No-op when no flag was given; the re-run is
 * serial and separate from the measured grid, so artifacts never
 * perturb the parallel sweep.
 */
void writeRunArtifacts(const BenchOptions& opts, const GpuConfig& config,
                       const KernelInfo& kernel, const std::string& label);

/**
 * Honour --serve-trace: serve the canonical bursty deadline trace
 * (serve_traces.hh) under the reorder+preempt policy on the canonical
 * GTO+LCS machine with the decision audit attached, and write the
 * `bsched-servetrace-v1` JSON to opts.serveTracePath. The run is fixed
 * — same trace, policy and config from every bench binary — so the
 * artifact bytes are identical regardless of which binary wrote it,
 * for any --jobs count, and with fast-forward on or off. No-op when
 * the flag was not given. writeRunArtifacts calls this, so figures
 * already emitting run artifacts get it for free.
 */
void writeServeTraceArtifact(const BenchOptions& opts);

/** Results of a workload × config sweep, workload-major. */
struct GridResults
{
    std::size_t numConfigs = 0;
    std::vector<RunResult> flat;

    const RunResult& at(std::size_t workload, std::size_t config) const
    {
        return flat.at(workload * numConfigs + config);
    }
};

/**
 * The shared grid runner: simulate every (workload, config) pair, fanned
 * out across @p jobs workers (0 = resolveJobs() default).
 */
GridResults runWorkloadGrid(const std::vector<std::string>& names,
                            const std::vector<GpuConfig>& configs,
                            unsigned jobs = 0);

/** As runWorkloadGrid, over prebuilt kernels instead of suite names. */
GridResults runKernelGrid(const std::vector<KernelInfo>& kernels,
                          const std::vector<GpuConfig>& configs,
                          unsigned jobs = 0);

} // namespace bsched::bench

#endif // BSCHED_BENCH_BENCH_COMMON_HH
