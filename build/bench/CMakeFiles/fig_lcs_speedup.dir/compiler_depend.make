# Empty compiler generated dependencies file for fig_lcs_speedup.
# This may be replaced when dependencies are built.
