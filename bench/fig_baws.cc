/**
 * @file
 * E10 — block-aware warp scheduling: BCS with GTO vs BCS with BAWS, and
 * the block-size ablation (B=2 vs B=4). The paper's point: pairing CTAs
 * on a core is not enough — the warp scheduler must keep the pair at
 * even progress or the shared lines are evicted before reuse.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    struct Variant
    {
        const char* label;
        WarpSchedKind warp;
        std::uint32_t block;
    };
    const std::vector<Variant> variants = {
        {"bcs2+gto", WarpSchedKind::GTO, 2},
        {"bcs2+baws", WarpSchedKind::BAWS, 2},
        {"bcs4+gto", WarpSchedKind::GTO, 4},
        {"bcs4+baws", WarpSchedKind::BAWS, 4},
    };

    std::printf("E10: BAWS on top of BCS (speedup over RR+GTO baseline; "
                "%u jobs)\n\n",
                jobs);
    Table table("speedup by variant");
    std::vector<std::string> header = {"workload"};
    for (const auto& v : variants)
        header.push_back(v.label);
    table.setHeader(header);

    // Config 0 is the baseline; 1..N the variants.
    std::vector<GpuConfig> configs = {base};
    for (const Variant& v : variants) {
        GpuConfig cfg = makeConfig(v.warp, CtaSchedKind::Block);
        cfg.bcs.blockSize = v.block;
        configs.push_back(cfg);
    }

    BenchReport report("fig_baws");
    std::vector<std::vector<double>> speedups(variants.size());
    const auto names = localityWorkloadNames();
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const double base_ipc = grid.at(w, 0).ipc;
        report.addRow(names[w] + "/base", grid.at(w, 0));
        std::vector<std::string> row = {names[w]};
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const double s = grid.at(w, v + 1).ipc / base_ipc;
            speedups[v].push_back(s);
            row.push_back(fmt(s, 3));
            report.addRow(names[w] + "/" + variants[v].label,
                          grid.at(w, v + 1));
            report.addMetric(names[w] + ".speedup_" + variants[v].label,
                             s);
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (std::size_t v = 0; v < variants.size(); ++v) {
        last.push_back(fmt(geomean(speedups[v]), 3));
        report.addMetric(std::string("geomean.speedup_") +
                             variants[v].label,
                         geomean(speedups[v]));
    }
    table.addRow(last);
    std::printf("%s", table.toText().c_str());

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, configs[2], makeWorkload("hs"),
                              "hs/bcs2+baws");
    return 0;
}
