/**
 * @file
 * Minimal JSON parser for validating the observability artifacts (the
 * Chrome trace and the bsched-run/bsched-bench documents) from tests
 * and examples without an external dependency. Strict on structure —
 * any malformed input is a fatal() — but numbers are held as doubles,
 * which is exact for everything the sinks emit (<= 2^53).
 */

#ifndef BSCHED_OBS_JSON_HH
#define BSCHED_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bsched {

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }

    /** Typed accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const std::vector<JsonValue>& asArray() const;
    const std::map<std::string, JsonValue>& asObject() const;

    /** Object member access; fatal() if absent or not an object. */
    const JsonValue& at(const std::string& key) const;

    /** True if this is an object containing @p key. */
    bool has(const std::string& key) const;

    // Construction (used by the parser; tests rarely need these).
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> members);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/** Parse a complete JSON document; fatal() on any syntax error. */
JsonValue parseJson(const std::string& text);

/** Read and parse a JSON file; fatal() on I/O or syntax errors. */
JsonValue parseJsonFile(const std::string& path);

} // namespace bsched

#endif // BSCHED_OBS_JSON_HH
