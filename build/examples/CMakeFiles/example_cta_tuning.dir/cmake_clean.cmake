file(REMOVE_RECURSE
  "CMakeFiles/example_cta_tuning.dir/cta_tuning.cpp.o"
  "CMakeFiles/example_cta_tuning.dir/cta_tuning.cpp.o.d"
  "example_cta_tuning"
  "example_cta_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cta_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
