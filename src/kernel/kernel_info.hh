/**
 * @file
 * Static description of a kernel launch: grid/CTA geometry, per-thread
 * resource usage, the shared warp program, and the paper's Type-1/2/3
 * classification used by the experiment harness.
 */

#ifndef BSCHED_KERNEL_KERNEL_INFO_HH
#define BSCHED_KERNEL_KERNEL_INFO_HH

#include <cstdint>
#include <string>

#include "kernel/dim3.hh"
#include "kernel/warp_program.hh"

namespace bsched {

/** The paper's IPC-vs-CTA-count taxonomy. */
enum class WorkloadType : std::uint8_t
{
    Unknown = 0,
    Saturating = 1, ///< Type-1: IPC flat beyond a few CTAs
    Increasing = 2, ///< Type-2: IPC rises to the max CTA count
    Peaked = 3,     ///< Type-3: IPC peaks below the max, then falls
};

const char* toString(WorkloadType type);

/** Everything the GPU needs to launch and run one kernel. */
struct KernelInfo
{
    std::string name;
    Dim3 grid{1, 1, 1};
    Dim3 cta{32, 1, 1};
    std::uint32_t regsPerThread = 16;
    std::uint32_t smemBytesPerCta = 0;
    WarpProgram program;
    WorkloadType typeClass = WorkloadType::Unknown;

    /** Linearized CTA count of the grid. */
    std::uint32_t gridCtas() const
    {
        return static_cast<std::uint32_t>(grid.total());
    }

    /** Threads per CTA. */
    std::uint32_t ctaThreads() const
    {
        return static_cast<std::uint32_t>(cta.total());
    }

    /** Warps per CTA (threads rounded up to warp granularity). */
    std::uint32_t warpsPerCta() const
    {
        return (ctaThreads() + kWarpSize - 1) / kWarpSize;
    }

    /** Geometry handle for the address generators. */
    KernelGeom geom() const { return {ctaThreads(), gridCtas()}; }

    /** Total dynamic instructions the whole grid executes. */
    std::uint64_t totalDynamicInstrs() const;

    /** Fatal() on malformed kernels. */
    void validate() const;
};

} // namespace bsched

#endif // BSCHED_KERNEL_KERNEL_INFO_HH
