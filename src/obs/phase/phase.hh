/**
 * @file
 * Online phase telemetry — the sixth pillar of the observability
 * subsystem.
 *
 * The profilers report end-of-run totals; this layer reports *when*
 * behaviour shifts within a run. A `WindowedMetrics` aggregator folds
 * the counters the simulator already maintains (instructions, issue and
 * stall cycles, cache accesses, DRAM row outcomes, and — when a
 * MemProfiler is attached — the inter-CTA interference counters) into
 * fixed-width windows by snapshotting cumulative values at window
 * boundaries, so the per-cycle cost is a single due() comparison and
 * the per-window cost is one counter sweep. On top, `PhaseDetector`
 * instances (whole machine, per core, per kernel) segment the window
 * stream into phases: a window whose channels deviate from the current
 * phase's running reference starts a pending change, and `hysteresis`
 * consecutive deviating windows commit it, backdated to the first.
 *
 * Determinism contract: windows close on the same cycles whether or not
 * idle fast-forward elides quiet spans — the Gpu includes nextDue() in
 * its fast-forward fence, exactly like the IntervalSampler — and every
 * input is a cumulative counter that span replay already reconstructs.
 * The `bsched-phase-v1` artifact is therefore byte-identical across
 * --jobs counts, fast-forward on/off, and repeated runs (CI-enforced).
 *
 * The machine/core detectors deliberately use only always-available
 * counters (IPC, stall shares, L1 miss rate), so detected boundaries
 * are independent of whether a MemProfiler is attached; the row-hit
 * rate and the interference channels (cross-CTA eviction rates,
 * DRAM-queue occupancy, L2 MSHR occupancy) are carried in the artifact
 * for correlation, not detection. E20 (`bench/fig_phase`) exploits
 * that: boundaries found without the interference counters line up
 * with the counters' own inflection — independent cross-validation.
 */

#ifndef BSCHED_OBS_PHASE_PHASE_HH
#define BSCHED_OBS_PHASE_PHASE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bsched {

class Tracer;

/** Detector and window knobs (defaults documented in OBSERVABILITY.md). */
struct PhaseConfig
{
    /** Window width in cycles; every window closes on a multiple. */
    Cycle windowCycles = 2048;

    /** Out-of-band threshold for rate-like channels (IPC): relative
     *  deviation from the phase reference mean. */
    double relThreshold = 0.25;

    /** Out-of-band threshold for share-like channels in [0, 1] (stall
     *  share, miss rate): absolute deviation. */
    double absThreshold = 0.08;

    /** Consecutive out-of-band windows required to commit a phase
     *  change (the change is backdated to the first of them). */
    std::uint32_t hysteresis = 2;
};

/**
 * Cumulative counter values read at one window boundary. The Gpu fills
 * this from component accessors (the same ones collectSample() reads);
 * WindowedMetrics differences consecutive snapshots into window deltas.
 */
struct PhaseSnapshot
{
    std::uint64_t instrs = 0;
    std::uint64_t issueCycles = 0;
    std::uint64_t stallMem = 0;
    std::uint64_t stallIdle = 0;
    std::uint64_t l1Access = 0;
    std::uint64_t l1Miss = 0;
    std::uint64_t l2Access = 0;
    std::uint64_t l2Miss = 0;
    std::uint64_t rowHit = 0;
    std::uint64_t rowMiss = 0;
    std::uint64_t rowConflict = 0;

    /** Per-core cumulative counters (index = core id). */
    std::vector<std::uint64_t> coreInstrs;
    std::vector<std::uint64_t> coreIssue;
    std::vector<std::uint64_t> coreStallMem;
    std::vector<std::uint64_t> coreStallIdle;

    /** Per-kernel cumulative issued instructions (index = kernel id). */
    std::vector<std::uint64_t> kernelInstrs;

    /** Interference counters, filled only when a MemProfiler rides
     *  along; hasInterference gates the artifact section. */
    bool hasInterference = false;
    std::uint64_t l1CrossCta = 0;
    std::uint64_t l2CrossCta = 0;
    std::uint64_t dramQueueCycles = 0; ///< DramQueue stage cycle sum
    std::uint64_t l2MshrOccCycles = 0; ///< time-weighted occupancy sum
};

/** Channel values derived from the window just closed. */
struct WindowDeltas
{
    double ipc = 0.0;
    double stallMemShare = 0.0;
    double l1MissRate = 0.0;
    double rowHitRate = 0.0;
    std::vector<double> coreIpc;
    std::vector<double> coreStallShare;
    /** Per-kernel window IPC; active marks kernels that issued. */
    std::vector<double> kernelIpc;
    std::vector<std::uint8_t> kernelActive;
    bool hasInterference = false;
    double l1CrossRate = 0.0;   ///< cross-CTA L1 evictions / kilocycle
    double l2CrossRate = 0.0;   ///< cross-CTA L2 evictions / kilocycle
    double dramQOccupancy = 0.0; ///< mean requests waiting at DRAM
    double l2MshrOccupancy = 0.0; ///< mean L2 MSHR entries in use
};

/**
 * Fixed-width window aggregator: snapshots in, aligned per-window
 * series out. Raw machine-level deltas are retained so tests can pin
 * the conservation property (summed deltas == final totals).
 */
class WindowedMetrics
{
  public:
    /** Close the window ending at @p end with cumulative @p snap;
     *  returns the derived channel values of that window. */
    const WindowDeltas& close(Cycle end, const PhaseSnapshot& snap);

    std::size_t windows() const { return endCycles_.size(); }
    const std::vector<Cycle>& endCycles() const { return endCycles_; }

    // Derived machine series, one value per window.
    const std::vector<double>& ipc() const { return ipc_; }
    const std::vector<double>& stallMemShare() const
    {
        return stallMemShare_;
    }
    const std::vector<double>& l1MissRate() const { return l1MissRate_; }
    const std::vector<double>& rowHitRate() const { return rowHitRate_; }

    bool hasInterference() const { return hasInterference_; }
    const std::vector<double>& l1CrossRate() const { return l1CrossRate_; }
    const std::vector<double>& l2CrossRate() const { return l2CrossRate_; }
    const std::vector<double>& dramQOccupancy() const
    {
        return dramQOccupancy_;
    }
    const std::vector<double>& l2MshrOccupancy() const
    {
        return l2MshrOccupancy_;
    }

    // Raw machine-level window deltas (conservation property).
    const std::vector<std::uint64_t>& instrDeltas() const
    {
        return instrDeltas_;
    }
    const std::vector<std::uint64_t>& l1AccessDeltas() const
    {
        return l1AccessDeltas_;
    }
    const std::vector<std::uint64_t>& rowHitDeltas() const
    {
        return rowHitDeltas_;
    }

  private:
    PhaseSnapshot prev_;
    Cycle prevCycle_ = 0;
    WindowDeltas last_;
    bool hasInterference_ = false;

    std::vector<Cycle> endCycles_;
    std::vector<double> ipc_;
    std::vector<double> stallMemShare_;
    std::vector<double> l1MissRate_;
    std::vector<double> rowHitRate_;
    std::vector<double> l1CrossRate_;
    std::vector<double> l2CrossRate_;
    std::vector<double> dramQOccupancy_;
    std::vector<double> l2MshrOccupancy_;
    std::vector<std::uint64_t> instrDeltas_;
    std::vector<std::uint64_t> l1AccessDeltas_;
    std::vector<std::uint64_t> rowHitDeltas_;
};

/**
 * Segments a stream of per-window channel vectors into phases. Channels
 * flagged `relative` compare deviations against the reference mean
 * scaled by relThreshold; the rest use absThreshold absolutely (they
 * are shares in [0, 1]). In-band windows fold into the current phase's
 * running reference mean; a run of `hysteresis` consecutive out-of-band
 * windows commits a new phase backdated to the first of the run, with
 * the pending windows' mean as its initial reference. Pure, ordered
 * double arithmetic — deterministic across platforms and job counts.
 */
class PhaseDetector
{
  public:
    /** One detected phase: a contiguous window range and its
     *  per-channel reference mean. */
    struct Phase
    {
        std::size_t startWindow = 0;
        std::size_t windows = 0;
        std::vector<double> mean;
    };

    PhaseDetector(const PhaseConfig& config,
                  std::vector<std::uint8_t> relative);

    /** Feed the channels of window @p window (indices must be
     *  monotone; gaps are fine — kernel detectors skip windows where
     *  the kernel was idle). Returns true when a change committed. */
    bool observe(std::size_t window, const std::vector<double>& values);

    const std::vector<Phase>& phases() const { return phases_; }

    /** Index of the current phase (0 before any window). */
    std::size_t currentPhase() const
    {
        return phases_.empty() ? 0 : phases_.size() - 1;
    }

  private:
    bool outOfBand(const std::vector<double>& values) const;

    PhaseConfig config_;
    std::vector<std::uint8_t> relative_;
    std::vector<Phase> phases_;
    std::uint64_t inBandWindows_ = 0; ///< reference-mean sample count
    std::vector<std::vector<double>> pending_;
    std::size_t pendingStart_ = 0;
};

/**
 * The attachable telemetry unit: owns the window clock, the aggregator
 * and the detector set. Attached through Observer::phase; the Gpu calls
 * due()/closeWindow() on window boundaries (fenced against idle
 * fast-forward via nextDue()), records the `phase.current`/`phase.count`
 * gauges on its IntervalSampler, and ties off the final partial window
 * from finalizeSample().
 */
class PhaseTelemetry
{
  public:
    explicit PhaseTelemetry(PhaseConfig config = {});

    /**
     * Called by the Gpu on attach: fixes the core-detector geometry and
     * (when @p tracer is non-null) appends the "phase" timeline track
     * that phase.change instants land on. Reattaching is fatal.
     */
    void onAttach(std::uint32_t num_cores, Tracer* tracer);

    const PhaseConfig& config() const { return config_; }

    /** True when the window ending at @p now is owed. */
    bool due(Cycle now) const
    {
        const auto& ends = metrics_.endCycles();
        return ends.empty() ? now >= config_.windowCycles
                            : now >= ends.back() + config_.windowCycles;
    }

    /** Earliest cycle at which due() becomes true — the idle
     *  fast-forward fence, exactly like IntervalSampler::nextDue(). */
    Cycle nextDue() const
    {
        const auto& ends = metrics_.endCycles();
        return ends.empty() ? config_.windowCycles
                            : ends.back() + config_.windowCycles;
    }

    /** True when a partial final window remains to tie off at @p now. */
    bool finalPending(Cycle now) const
    {
        const auto& ends = metrics_.endCycles();
        return now > 0 && (ends.empty() || ends.back() != now);
    }

    /** Close the window ending at @p now: difference the snapshot, feed
     *  every detector, emit phase.change instants for commits. */
    void closeWindow(Cycle now, const PhaseSnapshot& snap);

    // --- sampler gauges -------------------------------------------------

    /** Machine-level current phase index (phase.current). */
    double currentPhaseGauge() const
    {
        return static_cast<double>(machine_.currentPhase());
    }

    /** Machine-level phases detected so far (phase.count). */
    double phaseCountGauge() const
    {
        return static_cast<double>(machine_.phases().size());
    }

    // --- queries --------------------------------------------------------

    const WindowedMetrics& metrics() const { return metrics_; }
    const PhaseDetector& machine() const { return machine_; }
    const std::vector<PhaseDetector>& coreDetectors() const
    {
        return cores_;
    }
    /** Per-kernel detectors, keyed by kernel id (created on the first
     *  window in which the kernel issued instructions). */
    const std::map<int, PhaseDetector>& kernelDetectors() const
    {
        return kernels_;
    }

  private:
    /** Record a phase.change instant on the phase track (no-op without
     *  a tracer). @p scope is -1 for machine/kernel scope, the core id
     *  for per-core changes; @p kernel_id tags kernel-scope changes. */
    void emitChange(Cycle now, int kernel_id, std::int64_t scope,
                    std::size_t phase);

    PhaseConfig config_;
    WindowedMetrics metrics_;
    PhaseDetector machine_;
    std::vector<PhaseDetector> cores_;
    std::map<int, PhaseDetector> kernels_;
    Tracer* tracer_ = nullptr;
    std::uint32_t track_ = 0;
    bool attached_ = false;
};

/**
 * Write @p telemetry as a `bsched-phase-v1` JSON artifact: config,
 * window series (interference series only when they were collected),
 * and the machine/core/kernel phase segmentations. Deterministic
 * byte-for-byte; the committed bench/BENCH_phase.json baseline is
 * produced this way and byte-gated in CI.
 */
void writePhaseJson(std::ostream& os, const PhaseTelemetry& telemetry,
                    const std::string& label);

} // namespace bsched

#endif // BSCHED_OBS_PHASE_PHASE_HH
