/**
 * @file
 * Unit tests for the LD/ST unit: L1 hit/miss paths, MSHR merging,
 * store write-through, backpressure and completion reporting.
 */

#include <gtest/gtest.h>

#include "core/ldst_unit.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.l1d.hitLatency = 2;
    return c;
}

TEST(LdstUnit, LoadMissSendsRequestAndCompletesOnFill)
{
    LdstUnit unit(cfg(), 3);
    Cycle t = 0;
    unit.pushBatch(t, 7, 5, false, {0x1000});
    unit.tick(t);
    ASSERT_TRUE(unit.hasOutgoing());
    const MemRequest req = unit.popOutgoing();
    EXPECT_EQ(req.lineAddr, 0x1000u);
    EXPECT_FALSE(req.write);
    EXPECT_EQ(req.coreId, 3);

    unit.onFill(10, 0x1000);
    const auto done = unit.drainCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].warpId, 7);
    EXPECT_EQ(done[0].reg, 5);
    EXPECT_TRUE(unit.drained());
}

TEST(LdstUnit, LoadHitCompletesAfterHitLatency)
{
    LdstUnit unit(cfg(), 0);
    Cycle t = 0;
    // Warm the line.
    unit.pushBatch(t, 1, 4, false, {0x2000});
    unit.tick(t);
    unit.popOutgoing();
    unit.onFill(1, 0x2000);
    unit.drainCompletions();

    t = 5;
    unit.pushBatch(t, 2, 6, false, {0x2000});
    unit.tick(t); // access at t=5, hit returns at t=7
    ++t;
    EXPECT_TRUE(unit.drainCompletions().empty());
    unit.tick(t); // t=6: not yet
    ++t;
    unit.tick(t); // t=7: hit latency elapsed
    const auto done = unit.drainCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].warpId, 2);
    EXPECT_FALSE(unit.hasOutgoing()); // no memory traffic on a hit
}

TEST(LdstUnit, SecondaryMissMergesWithoutSecondRequest)
{
    LdstUnit unit(cfg(), 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, 4, false, {0x3000});
    unit.tick(t++);
    unit.pushBatch(t, 2, 5, false, {0x3000});
    unit.tick(t++);
    // Only one outgoing request for the shared line.
    EXPECT_TRUE(unit.hasOutgoing());
    unit.popOutgoing();
    EXPECT_FALSE(unit.hasOutgoing());
    unit.onFill(t, 0x3000);
    const auto done = unit.drainCompletions();
    EXPECT_EQ(done.size(), 2u);
}

TEST(LdstUnit, MultiLineBatchProcessesOneLinePerCycle)
{
    LdstUnit unit(cfg(), 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, 4, false, {0x1000, 0x2000, 0x3000});
    unit.tick(t++);
    unit.tick(t++);
    unit.tick(t++);
    int sent = 0;
    while (unit.hasOutgoing()) {
        unit.popOutgoing();
        ++sent;
    }
    EXPECT_EQ(sent, 3);
    // Completion only after all three fills.
    unit.onFill(t, 0x1000);
    unit.onFill(t, 0x2000);
    EXPECT_TRUE(unit.drainCompletions().empty());
    unit.onFill(t, 0x3000);
    EXPECT_EQ(unit.drainCompletions().size(), 1u);
}

TEST(LdstUnit, StoreIsWriteThroughFireAndForget)
{
    LdstUnit unit(cfg(), 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, kNoReg, true, {0x4000});
    unit.tick(t);
    ASSERT_TRUE(unit.hasOutgoing());
    const MemRequest req = unit.popOutgoing();
    EXPECT_TRUE(req.write);
    // No load completion for stores; unit drains immediately.
    EXPECT_TRUE(unit.drainCompletions().empty());
    EXPECT_TRUE(unit.drained());
}

TEST(LdstUnit, StoreDoesNotAllocateInL1)
{
    LdstUnit unit(cfg(), 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, kNoReg, true, {0x5000});
    unit.tick(t);
    unit.popOutgoing();
    EXPECT_FALSE(unit.l1().probe(0x5000));
}

TEST(LdstUnit, BatchQueueBackpressure)
{
    GpuConfig c = cfg();
    c.ldstQueueDepth = 1;
    LdstUnit unit(c, 0);
    EXPECT_TRUE(unit.canAcceptBatch());
    unit.pushBatch(0, 1, 4, false, {0x1000, 0x2000});
    EXPECT_FALSE(unit.canAcceptBatch());
    EXPECT_DEATH(unit.pushBatch(0, 2, 5, false, {0x3000}),
                 "batch queue overflow");
}

TEST(LdstUnit, CanAdmitReflectsMshrOccupancy)
{
    GpuConfig c = cfg();
    c.l1d.mshrEntries = 2;
    LdstUnit unit(c, 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, 4, false, {0x1000});
    unit.tick(t++);
    unit.pushBatch(t, 2, 5, false, {0x2000});
    unit.tick(t++);
    // Two distinct outstanding lines: MSHR file full.
    EXPECT_FALSE(unit.canAdmit(false));
    EXPECT_TRUE(unit.canAdmit(true)); // stores need no MSHR
    unit.onFill(t, 0x1000);
    EXPECT_TRUE(unit.canAdmit(false));
}

TEST(LdstUnit, OutgoingQueueFullBlocksAdmission)
{
    GpuConfig c = cfg();
    c.coreMemQueue = 1;
    LdstUnit unit(c, 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, 4, false, {0x1000});
    unit.tick(t++); // occupies the single outgoing slot
    EXPECT_FALSE(unit.canAdmit(false));
    EXPECT_FALSE(unit.canAdmit(true));
    unit.popOutgoing();
    EXPECT_TRUE(unit.canAdmit(false));
}

TEST(LdstUnit, HeadOfLineStallRetries)
{
    GpuConfig c = cfg();
    c.coreMemQueue = 1;
    LdstUnit unit(c, 0);
    Cycle t = 0;
    unit.pushBatch(t, 1, 4, false, {0x1000, 0x2000});
    unit.tick(t++); // line 1 sent; queue now full
    unit.tick(t++); // line 2 blocked
    EXPECT_GT(unit.stallCycles(), 0u);
    unit.popOutgoing();
    unit.tick(t++); // line 2 proceeds
    EXPECT_TRUE(unit.hasOutgoing());
}

TEST(LdstUnit, EmptyBatchDies)
{
    LdstUnit unit(cfg(), 0);
    EXPECT_DEATH(unit.pushBatch(0, 1, 4, false, {}), "empty access batch");
}

TEST(LdstUnit, FillForUnknownLineDies)
{
    LdstUnit unit(cfg(), 0);
    EXPECT_DEATH(unit.onFill(0, 0x9000), "unknown line");
}

} // namespace
} // namespace bsched
