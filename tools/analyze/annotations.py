"""GitHub Actions workflow-command annotations.

Shared by ``tools/analyze`` and ``tools/bench_compare.py`` so flagged
lines surface inline on pull requests with one formatting convention.
Reference: GitHub's "Workflow commands for GitHub Actions" docs.
"""

from __future__ import annotations


def _escape_data(value: str) -> str:
    """Escape the free-text message part of a workflow command."""
    return (value.replace("%", "%25")
                 .replace("\r", "%0D")
                 .replace("\n", "%0A"))


def _escape_property(value: str) -> str:
    """Escape a key=value property (title, file): data plus : and ,."""
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


def format_annotation(severity: str, title: str, message: str,
                      file: str | None = None,
                      line: int | None = None) -> str:
    """One ``::error``/``::warning``/``::notice`` workflow command."""
    if severity not in ("error", "warning", "notice"):
        raise ValueError(f"bad annotation severity: {severity!r}")
    props = []
    if file is not None:
        props.append(f"file={_escape_property(file)}")
        if line is not None and line > 0:
            props.append(f"line={line}")
    props.append(f"title={_escape_property(title)}")
    return f"::{severity} {','.join(props)}::{_escape_data(message)}"


def emit_annotation(severity: str, title: str, message: str,
                    file: str | None = None,
                    line: int | None = None) -> None:
    print(format_annotation(severity, title, message, file, line))
