"""contract-coverage — conservation laws need contracts, contracts need tests.

PR 4's contract layer (BSCHED_CHECK / BSCHED_INVARIANT / BSCHED_DCHECK)
is the safety net that makes aggressive refactors cheap — but only
where it exists and only if each instrumented module has a test proving
its contracts actually fire. Two census rules over the model modules
(``src/{core,cta,mem,gpu,serve}``):

 - a module whose public surface mutates state but that carries zero
   contract macros is flagged (``uncovered-module``);
 - a module that *has* contracts but is not exercised by any test file
   using ``ScopedContractThrows`` is flagged (``untested-contract``) —
   an injected-violation test per module is the repo convention
   (tests/test_contracts.cc).
"""

from __future__ import annotations

import re
from collections import defaultdict

from ..engine import Context, Finding, line_at

NAME = "contract-coverage"

RULES = {
    "uncovered-module": "module has state-mutating public methods but "
                        "no BSCHED_CHECK/INVARIANT/DCHECK contracts; "
                        "add a precondition or invariant (or allowlist "
                        "with the reason it is exempt)",
    "untested-contract": "module has contract macros but no test file "
                         "includes its header and uses "
                         "ScopedContractThrows; add an injected-"
                         "violation test to tests/test_contracts.cc",
}

SCOPE = ("src/core/", "src/cta/", "src/mem/", "src/gpu/", "src/serve/")

CONTRACT_RE = re.compile(r"\bBSCHED_(?:CHECK|INVARIANT|DCHECK)\s*\(")

# Heuristic for a state-mutating public method *declaration*: a
# mutation-verb method name not reached through ./->/:: (which would be
# a call on another object).
MUTATOR_RE = re.compile(
    r"(?<![\w.>:])(?:push\w*|pop\w*|set[A-Z]\w*|record\w*|insert\w*|"
    r"erase\w*|advance\w*|tick|step|release\w*|acquire\w*|dispatch\w*|"
    r"launch\w*|commit\w*|retire\w*|note[A-Z]\w*|update\w*|clear|reset|"
    r"enqueue\w*|dequeue\w*|send[A-Z]\w*|merge\w*|fill|flush|alloc\w*|"
    r"add[A-Z]\w*|notify[A-Z]\w*|request[A-Z]\w*)\s*\("
)


def run(ctx: Context) -> list[Finding]:
    findings: list[Finding] = []

    # Group scanned files into modules by directory + stem:
    # src/mem/dram.{hh,cc} is one module.
    modules: dict[str, list] = defaultdict(list)
    for src in ctx.in_dirs(*SCOPE):
        stem = re.sub(r"\.(hh|cc)$", "", src.rel)
        modules[stem].append(src)

    # Which module headers does the test suite exercise under
    # ScopedContractThrows?
    armed_includes: set[str] = set()
    for path in ctx.glob("tests/*.cc"):
        text = path.read_text(encoding="utf-8", errors="replace")
        if "ScopedContractThrows" not in text:
            continue
        armed_includes.update(
            re.findall(r'#include\s+"([^"]+)"', text))

    for stem in sorted(modules):
        files = sorted(modules[stem], key=lambda s: s.rel)
        contracts: list[tuple[str, int]] = []
        for src in files:
            for match in CONTRACT_RE.finditer(src.stripped):
                contracts.append(
                    (src.rel, line_at(src.stripped, match.start())))

        header = next((s for s in files if s.rel.endswith(".hh")), None)
        if not contracts:
            if header is None:
                continue
            match = MUTATOR_RE.search(header.stripped)
            if match:
                findings.append(Finding(
                    file=header.rel,
                    line=line_at(header.stripped, match.start()),
                    rule=f"{NAME}.uncovered-module",
                    message=f"module {stem} declares "
                            f"'{match.group(0).rstrip('(').strip()}()' "
                            "but carries zero contract macros — "
                            + RULES["uncovered-module"],
                ))
            continue

        include = stem.removeprefix("src/") + ".hh"
        if include not in armed_includes:
            rel, line = contracts[0]
            findings.append(Finding(
                file=rel, line=line,
                rule=f"{NAME}.untested-contract",
                message=f"module {stem} has {len(contracts)} contract "
                        f"macro(s) but no test file includes "
                        f"\"{include}\" and uses ScopedContractThrows "
                        "— " + RULES["untested-contract"],
            ))
    return findings
