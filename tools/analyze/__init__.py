"""bsched static analysis suite.

A multi-pass, project-specific linter for the simulator: each pass
enforces one of the correctness conventions the evaluation rests on
(bit-determinism, fast-forward soundness, contract coverage, observer
guarding, schema agreement). See docs/STATIC_ANALYSIS.md for the pass
catalog and ``python3 tools/analyze --help`` for usage.
"""
