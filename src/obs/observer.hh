/**
 * @file
 * The Observer bundle: the non-owning handles a Gpu needs to feed the
 * observability subsystem. Both pointers default to null, which is the
 * zero-cost-disabled state — no component allocates or records anything
 * unless the caller attached a sink before the run.
 */

#ifndef BSCHED_OBS_OBSERVER_HH
#define BSCHED_OBS_OBSERVER_HH

#include "sim/types.hh"

namespace bsched {

class Tracer;
class IntervalSampler;
class CycleProfiler;
class MemProfiler;
class PhaseTelemetry;

/**
 * Extra per-interval series provider. A layer sitting *above* the Gpu
 * (e.g. the serving engine) implements this to append its own gauges to
 * every sample the Gpu's IntervalSampler takes, so external series land
 * on exactly the same fenced cycles as the built-in ones.
 */
class SampleSource
{
  public:
    virtual ~SampleSource() = default;
    virtual void recordSample(IntervalSampler& sampler, Cycle now) = 0;
};

/** Non-owning observability hooks handed to Gpu at construction. */
struct Observer
{
    Tracer* tracer = nullptr;
    IntervalSampler* sampler = nullptr;
    CycleProfiler* profiler = nullptr;
    MemProfiler* memProfiler = nullptr;
    SampleSource* sampleSource = nullptr;
    PhaseTelemetry* phase = nullptr;

    bool enabled() const
    {
        return tracer != nullptr || sampler != nullptr ||
            profiler != nullptr || memProfiler != nullptr ||
            phase != nullptr;
    }
};

} // namespace bsched

#endif // BSCHED_OBS_OBSERVER_HH
