/**
 * @file
 * Issue-slot cycle accounting — the fourth pillar of the observability
 * subsystem.
 *
 * The two-bucket stall split the cores keep for DYNCTA
 * (`stall_mem`/`stall_idle`, one pair per *core cycle*) cannot show
 * *why* a memory-intensive kernel loses throughput past its optimal
 * CTA count. The CycleProfiler classifies **every scheduler-slot
 * cycle** on every active core into exclusive categories:
 *
 *  - `issued`          the slot issued an instruction
 *  - `barrier`         every live warp on the slot waits at a barrier
 *  - `scoreboard`      a warp is blocked on an in-flight load's
 *                      register write (memory latency)
 *  - `mem_structural`  a scoreboard-clear warp was refused by a memory
 *                      structural resource (LD/ST port, LD/ST queue,
 *                      MSHR file, outgoing queue, shared-memory port)
 *  - `pipeline`        warps are between issues of a multi-cycle
 *                      ALU/SFU/shared-memory op (finite-latency
 *                      scoreboard wait or SFU port)
 *  - `empty`           no live warp is assigned to the slot
 *
 * Counts aggregate per core and per kernel, and the profile records the
 * warp-scheduler kind that produced it. The conservation invariant —
 * the categories of each core sum exactly to
 * `activeCycles × schedulersPerCore` — is pinned by a property test.
 *
 * Like the Tracer and the IntervalSampler, the profiler is owned by the
 * caller and attached through Observer; with no profiler attached every
 * hook in the core is a single untaken null-pointer branch.
 */

#ifndef BSCHED_OBS_PROFILE_HH
#define BSCHED_OBS_PROFILE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bsched {

/** Exclusive classification of one scheduler-slot cycle. */
enum class SlotCat : std::uint8_t
{
    Issued = 0,
    Barrier,
    Scoreboard,
    MemStructural,
    Pipeline,
    Empty,
};

/** Number of SlotCat values (array sizing). */
inline constexpr std::size_t kNumSlotCats = 6;

/** Stable category name used in the exported JSON ("mem_structural"). */
const char* toString(SlotCat cat);

/** Category totals of one aggregation bucket (core or kernel). */
struct SlotCounts
{
    std::array<std::uint64_t, kNumSlotCats> counts{};

    std::uint64_t
    operator[](SlotCat cat) const
    {
        return counts[static_cast<std::size_t>(cat)];
    }

    /** All slot cycles in the bucket. */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t c : counts)
            sum += c;
        return sum;
    }

    /** Slot cycles that did not issue (total minus `issued`). */
    std::uint64_t
    nonIssued() const
    {
        return total() - (*this)[SlotCat::Issued];
    }

    /** Memory-attributed stalls: `mem_structural + scoreboard`. */
    std::uint64_t
    memAttributed() const
    {
        return (*this)[SlotCat::MemStructural] + (*this)[SlotCat::Scoreboard];
    }

    void
    accumulate(const SlotCounts& other)
    {
        for (std::size_t i = 0; i < kNumSlotCats; ++i)
            counts[i] += other.counts[i];
    }
};

/** Per-slot stall-attribution profiler (see the file comment). */
class CycleProfiler
{
  public:
    CycleProfiler() = default;

    /**
     * Called by the Gpu when the profiler is attached: records the
     * machine geometry and warp-scheduler kind the profile describes.
     * Reattaching with a different geometry is fatal — one profiler
     * aggregates one machine shape.
     */
    void onAttach(std::uint32_t num_cores, std::uint32_t slots_per_core,
                  const std::string& warp_sched);

    // --- recording (hot path, only reached when attached) ---------------

    /**
     * Account one scheduler-slot cycle on @p core to @p cat, attributed
     * to @p kernel_id (kInvalidId for `empty` slots, which belong to no
     * kernel).
     */
    void
    recordSlot(std::uint32_t core, int kernel_id, SlotCat cat)
    {
        recordSlotSpan(core, kernel_id, cat, 1);
    }

    /**
     * Batched accounting: @p n consecutive cycles in which the slot's
     * classification is known not to change (an idle fast-forwarded
     * span). Equivalent to n recordSlot calls, in one pair of adds. The
     * per-core one-entry kernel cache avoids the std::map lookup on the
     * common kernel-stays-the-same path.
     */
    void
    recordSlotSpan(std::uint32_t core, int kernel_id, SlotCat cat,
                   std::uint64_t n)
    {
        CoreProfile& profile = cores_[core];
        const std::size_t idx = static_cast<std::size_t>(cat);
        profile.total.counts[idx] += n;
        if (kernel_id == kInvalidId)
            return;
        if (kernel_id != profile.cachedKernel ||
            profile.cachedCounts == nullptr) {
            profile.cachedCounts = &profile.byKernel[kernel_id];
            profile.cachedKernel = kernel_id;
        }
        profile.cachedCounts->counts[idx] += n;
    }

    /**
     * Account one *core* cycle in which no slot issued. This is the
     * collapsed view the legacy two-bucket accounting keeps
     * (`stall_mem + stall_idle`); a property test pins the equality so
     * DYNCTA's signal semantics cannot drift.
     */
    void
    recordNoIssueCycle(std::uint32_t core)
    {
        cores_[core].noIssueCycles += 1;
    }

    /** Batched recordNoIssueCycle for fast-forwarded spans. */
    void
    recordNoIssueSpan(std::uint32_t core, std::uint64_t n)
    {
        cores_[core].noIssueCycles += n;
    }

    // --- queries ---------------------------------------------------------

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    std::uint32_t slotsPerCore() const { return slotsPerCore_; }
    const std::string& warpSched() const { return warpSched_; }

    /** Category totals of @p core. */
    const SlotCounts& core(std::uint32_t core) const
    {
        return cores_.at(core).total;
    }

    /** Per-kernel totals of @p core (kernel id order; no `empty`). */
    const std::map<int, SlotCounts>& coreKernels(std::uint32_t core) const
    {
        return cores_.at(core).byKernel;
    }

    /** Core cycles of @p core in which no slot issued. */
    std::uint64_t noIssueCycles(std::uint32_t core) const
    {
        return cores_.at(core).noIssueCycles;
    }

    /** Whole-machine category totals. */
    SlotCounts total() const;

    /** Whole-machine per-kernel totals (kernel id order). */
    std::map<int, SlotCounts> kernelTotals() const;

  private:
    struct CoreProfile
    {
        SlotCounts total;
        std::map<int, SlotCounts> byKernel;
        std::uint64_t noIssueCycles = 0;
        /** One-entry cache into byKernel (map nodes are stable). */
        int cachedKernel = kInvalidId;
        SlotCounts* cachedCounts = nullptr;
    };

    std::vector<CoreProfile> cores_;
    std::uint32_t slotsPerCore_ = 0;
    std::string warpSched_;
};

/**
 * Write @p prof with the `bsched-profile-v1` schema. Deterministic
 * byte-for-byte: cores in id order, kernels in id order, categories in
 * declaration order.
 */
void writeProfileJson(std::ostream& os, const CycleProfiler& prof,
                      const std::string& label);

} // namespace bsched

#endif // BSCHED_OBS_PROFILE_HH
