/**
 * @file
 * DYNCTA-style dynamic CTA controller (Kayiran et al., "Neither More
 * Nor Less", PACT 2013) — the iterative comparator the paper's LCS is
 * positioned against. Each sampling period, every core classifies its
 * no-issue cycles as memory-stalled or idle-starved and nudges a
 * per-core CTA target down (memory-bound) or up (starved). Contrast
 * with LCS, which makes one decision from one monitoring window.
 */

#ifndef BSCHED_CTA_DYNCTA_SCHED_HH
#define BSCHED_CTA_DYNCTA_SCHED_HH

#include <vector>

#include "cta/cta_sched.hh"

namespace bsched {

/** Periodic up/down CTA-count controller. */
class DynctaScheduler : public CtaScheduler
{
  public:
    explicit DynctaScheduler(const GpuConfig& config);

    void tick(Cycle now, std::vector<KernelInstance>& kernels,
              CoreList& cores) override;

    /**
     * The nearest per-core sampling deadline: each sample mutates the
     * controller's counters, target and trace output at exactly
     * nextSample, so quiet spans are bounded by the sampling period.
     */
    Cycle nextEventCycle(Cycle now,
                         const std::vector<KernelInstance>& kernels,
                         const CoreList& cores) const override;

    const char* name() const override { return "dyncta"; }

    void addStats(StatSet& stats) const override;

    /** Current per-core CTA target (tests/benches). */
    std::uint32_t target(std::uint32_t core) const;

  private:
    struct CoreState
    {
        std::uint32_t target = 0;
        Cycle nextSample = 0;
        std::uint64_t lastIssue = 0;
        std::uint64_t lastMemStall = 0;
        std::uint64_t lastIdleStall = 0;
        std::uint64_t increases = 0;
        std::uint64_t decreases = 0;
    };

    void sample(Cycle now, std::uint32_t core_id, const SimtCore& core);

    std::vector<CoreState> state_;
};

} // namespace bsched

#endif // BSCHED_CTA_DYNCTA_SCHED_HH
