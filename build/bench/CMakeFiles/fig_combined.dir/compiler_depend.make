# Empty compiler generated dependencies file for fig_combined.
# This may be replaced when dependencies are built.
