file(REMOVE_RECURSE
  "CMakeFiles/fig_combined.dir/fig_combined.cc.o"
  "CMakeFiles/fig_combined.dir/fig_combined.cc.o.d"
  "fig_combined"
  "fig_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
