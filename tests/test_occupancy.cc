/**
 * @file
 * Unit tests for the CUDA-style occupancy calculator and CoreResources.
 */

#include <gtest/gtest.h>

#include "kernel/occupancy.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

KernelInfo
kernelWith(std::uint32_t threads, std::uint32_t regs, std::uint32_t smem)
{
    KernelInfo k;
    k.name = "occ";
    k.grid = {10, 1, 1};
    k.cta = {threads, 1, 1};
    k.regsPerThread = regs;
    k.smemBytesPerCta = smem;
    ProgramBuilder b;
    b.alu(1);
    k.program = b.build();
    return k;
}

TEST(Occupancy, FootprintRoundsThreadsToWarps)
{
    const auto fp = ctaFootprint(kernelWith(100, 16, 0));
    EXPECT_EQ(fp.warps, 4u);
    EXPECT_EQ(fp.threads, 128u);
    EXPECT_EQ(fp.regs, 128u * 16);
}

TEST(Occupancy, ThreadLimited)
{
    const GpuConfig config = GpuConfig::gtx480();
    // 256 threads, tiny regs: 1536/256 = 6 CTAs.
    const auto k = kernelWith(256, 8, 0);
    EXPECT_EQ(maxCtasPerCore(config, k), 6u);
    EXPECT_EQ(occupancyLimiter(config, k), OccupancyLimiter::Threads);
}

TEST(Occupancy, RegisterLimited)
{
    const GpuConfig config = GpuConfig::gtx480();
    // 256 threads x 32 regs = 8192 regs/CTA: 32768/8192 = 4 CTAs.
    const auto k = kernelWith(256, 32, 0);
    EXPECT_EQ(maxCtasPerCore(config, k), 4u);
    EXPECT_EQ(occupancyLimiter(config, k), OccupancyLimiter::Registers);
}

TEST(Occupancy, SharedMemLimited)
{
    const GpuConfig config = GpuConfig::gtx480();
    // 48KB / 16KB = 3 CTAs.
    const auto k = kernelWith(64, 8, 16 * 1024);
    EXPECT_EQ(maxCtasPerCore(config, k), 3u);
    EXPECT_EQ(occupancyLimiter(config, k), OccupancyLimiter::SharedMem);
}

TEST(Occupancy, CtaSlotLimited)
{
    const GpuConfig config = GpuConfig::gtx480();
    // Tiny CTAs: slot limit (8) binds.
    const auto k = kernelWith(32, 8, 0);
    EXPECT_EQ(maxCtasPerCore(config, k), 8u);
    EXPECT_EQ(occupancyLimiter(config, k), OccupancyLimiter::CtaSlots);
}

TEST(Occupancy, OversizedCtaDies)
{
    const GpuConfig config = GpuConfig::gtx480();
    const auto k = kernelWith(512, 64, 0); // 32768 regs for one CTA
    EXPECT_EQ(maxCtasPerCore(config, k), 1u);
    const auto k2 = kernelWith(1024, 64, 0); // 64K regs > file
    EXPECT_DEATH(maxCtasPerCore(config, k2), "exceeds core resources");
}

TEST(CoreResources, AllocateAndReleaseRoundTrip)
{
    const GpuConfig config = GpuConfig::gtx480();
    CoreResources res(config);
    const auto fp = ctaFootprint(kernelWith(256, 16, 4096));
    EXPECT_EQ(res.residentCtas(), 0u);
    res.allocate(fp);
    EXPECT_EQ(res.residentCtas(), 1u);
    EXPECT_EQ(res.freeThreads(), config.maxThreadsPerCore - 256);
    EXPECT_EQ(res.freeSmem(), config.smemBytesPerCore - 4096);
    res.release(fp);
    EXPECT_EQ(res.residentCtas(), 0u);
    EXPECT_EQ(res.freeThreads(), config.maxThreadsPerCore);
}

TEST(CoreResources, FitsMatchesOccupancyMax)
{
    const GpuConfig config = GpuConfig::gtx480();
    const auto k = kernelWith(256, 32, 0);
    const auto fp = ctaFootprint(k);
    CoreResources res(config);
    const std::uint32_t n_max = maxCtasPerCore(config, k);
    for (std::uint32_t n = 0; n < n_max; ++n) {
        ASSERT_TRUE(res.fits(fp)) << "n=" << n;
        res.allocate(fp);
    }
    EXPECT_FALSE(res.fits(fp));
}

TEST(CoreResources, OverAllocationDies)
{
    const GpuConfig config = GpuConfig::gtx480();
    CoreResources res(config);
    CtaFootprint fp;
    fp.threads = config.maxThreadsPerCore + kWarpSize;
    fp.warps = fp.threads / kWarpSize;
    EXPECT_DEATH(res.allocate(fp), "beyond capacity");
}

TEST(CoreResources, OverReleaseDies)
{
    const GpuConfig config = GpuConfig::gtx480();
    CoreResources res(config);
    EXPECT_DEATH(res.release(CtaFootprint{}), "without allocation");
}

} // namespace
} // namespace bsched
