/**
 * @file
 * Per-warp register scoreboard. All lanes of a warp advance in lock-step,
 * so dependences are tracked at warp granularity: each virtual register
 * has a ready cycle (kCycleNever for loads, released on fill).
 */

#ifndef BSCHED_CORE_SCOREBOARD_HH
#define BSCHED_CORE_SCOREBOARD_HH

#include <algorithm>
#include <array>

#include "isa/instr.hh"
#include "sim/check.hh"
#include "sim/types.hh"

namespace bsched {

/** Tracks outstanding register writes of one warp. */
class Scoreboard
{
  public:
    Scoreboard() { reset(); }

    /** Clear all pending state (warp launch). */
    void
    reset()
    {
        ready_.fill(0);
    }

    /** True if @p reg is readable/writable at @p now. */
    bool
    regReady(std::int8_t reg, Cycle now) const
    {
        return reg == kNoReg || ready_[static_cast<std::size_t>(reg)] <= now;
    }

    /**
     * True if @p instr has no RAW/WAW hazard at @p now (sources readable,
     * destination not pending).
     */
    bool
    canIssue(const Instr& instr, Cycle now) const
    {
        return regReady(instr.src0, now) && regReady(instr.src1, now) &&
            regReady(instr.dst, now);
    }

    /**
     * True if @p instr is held back by a register that is pending until
     * an explicit release — i.e. an outstanding load. Distinguishes the
     * profiler's `scoreboard` category (waiting on memory latency) from
     * `pipeline` (waiting on a finite-latency ALU/SFU/shared-mem
     * result). Only meaningful when canIssue() is false.
     */
    bool
    blockedOnRelease(const Instr& instr) const
    {
        return regPendingRelease(instr.src0) ||
            regPendingRelease(instr.src1) || regPendingRelease(instr.dst);
    }

    /** True if @p reg is pending until an explicit release (a load). */
    bool
    regPendingRelease(std::int8_t reg) const
    {
        return reg != kNoReg &&
            ready_[static_cast<std::size_t>(reg)] == kCycleNever;
    }

    /** Mark @p reg pending until @p ready_cycle (fixed-latency ops). */
    void
    setPending(std::int8_t reg, Cycle ready_cycle)
    {
        if (reg != kNoReg)
            ready_[static_cast<std::size_t>(reg)] = ready_cycle;
    }

    /** Mark @p reg pending until explicitly released (loads). */
    void
    setPendingUntilRelease(std::int8_t reg)
    {
        // Acquire/release pairing: a register with a load already in
        // flight must not be re-acquired — canIssue() gates on the
        // destination, so a second acquire means issue logic let a WAW
        // hazard through.
        BSCHED_CHECK(reg == kNoReg || !regPendingRelease(reg),
                     "scoreboard: double acquire of register ",
                     static_cast<int>(reg));
        setPending(reg, kCycleNever);
    }

    /** Release @p reg at @p now (load completion). */
    void
    release(std::int8_t reg, Cycle now)
    {
        // Pairing: only a register acquired with setPendingUntilRelease
        // (an outstanding load) may be released; a double release or a
        // release of a fixed-latency result means a completion was
        // delivered twice or routed to the wrong warp.
        BSCHED_CHECK(reg == kNoReg || regPendingRelease(reg),
                     "scoreboard: release of register ",
                     static_cast<int>(reg), " with no outstanding load");
        setPending(reg, now);
    }

    /**
     * Earliest cycle at which canIssue(@p instr) can become true:
     * the max ready cycle over the instruction's registers. Returns
     * kCycleNever while any of them awaits an explicit release (an
     * outstanding load) — such warps wake via events, not time.
     */
    Cycle
    nextReadyCycle(const Instr& instr) const
    {
        Cycle ready = 0;
        for (std::int8_t reg : {instr.src0, instr.src1, instr.dst}) {
            if (reg != kNoReg)
                ready = std::max(ready,
                                 ready_[static_cast<std::size_t>(reg)]);
        }
        return ready;
    }

    /** Count of registers still pending at @p now (tests/stats). */
    int
    pendingCount(Cycle now) const
    {
        int count = 0;
        for (Cycle c : ready_) {
            if (c > now)
                ++count;
        }
        return count;
    }

  private:
    std::array<Cycle, kMaxWarpRegs> ready_;
};

} // namespace bsched

#endif // BSCHED_CORE_SCOREBOARD_HH
