/**
 * @file
 * E15 (sensitivity) — L1D capacity sweep: the type-3 effect and LCS's
 * benefit should shrink as the L1 grows (more resident CTA working
 * sets fit) and grow as it shrinks. Representative kernels from each
 * class.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const std::vector<std::uint32_t> sizes = {8, 16, 32, 64};
    const std::vector<std::string> names = {"kmeans", "sc", "gemm", "bp"};

    std::printf("E15: L1D capacity sensitivity (LCS speedup over "
                "baseline at each size; %u jobs)\n\n",
                jobs);
    Table table("LCS speedup by L1D size");
    std::vector<std::string> header = {"workload"};
    for (auto kb : sizes)
        header.push_back(std::to_string(kb) + "KB");
    table.setHeader(header);

    // Config pairs (base, lcs) per L1D size, interleaved.
    std::vector<GpuConfig> configs;
    for (std::uint32_t kb : sizes) {
        GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                    CtaSchedKind::RoundRobin);
        base.l1d.sizeBytes = kb * 1024;
        GpuConfig lcs = base;
        lcs.ctaSched = CtaSchedKind::Lazy;
        configs.push_back(base);
        configs.push_back(lcs);
    }

    BenchReport report("fig_cache_sensitivity");
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const std::string kb = std::to_string(sizes[s]) + "kb";
            const double speedup =
                grid.at(w, 2 * s + 1).ipc / grid.at(w, 2 * s).ipc;
            row.push_back(fmt(speedup, 3));
            report.addRow(names[w] + "/" + kb + "/base",
                          grid.at(w, 2 * s));
            report.addRow(names[w] + "/" + kb + "/lcs",
                          grid.at(w, 2 * s + 1));
            report.addMetric(names[w] + ".speedup_" + kb, speedup);
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: the cache-sensitive (type-3) rows benefit most "
                "at small L1 sizes;\nby 64KB every resident working set "
                "fits and LCS is neutral.\n");

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, configs[1], makeWorkload("kmeans"),
                              "kmeans/8kb/lcs");
    return 0;
}
