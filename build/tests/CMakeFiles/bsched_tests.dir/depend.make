# Empty dependencies file for bsched_tests.
# This may be replaced when dependencies are built.
