/**
 * @file
 * Unit tests for the DYNCTA-style dynamic CTA controller.
 */

#include <gtest/gtest.h>

#include "cta/dyncta_sched.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 1;
    c.ctaSched = CtaSchedKind::Dynamic;
    c.dyncta.samplePeriod = 500;
    return c;
}

KernelInfo
computeKernel(std::uint32_t grid = 400)
{
    KernelInfo k;
    k.name = "compute";
    k.grid = {grid, 1, 1};
    // Tiny CTAs with long-latency SFU chains: at the controller's
    // starting target the core cannot fill its issue slots.
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(120).sfu(2).alu(1).endLoop();
    k.program = b.build();
    return k;
}

KernelInfo
memoryKernel(std::uint32_t grid = 400)
{
    KernelInfo k;
    k.name = "memory";
    k.grid = {grid, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern rnd;
    rnd.kind = AccessKind::Random;
    rnd.base = 0x40000000;
    rnd.footprintBytes = 8 * 1024 * 1024;
    const auto r = b.pattern(rnd);
    b.loop(40).diverge(4).load(r).converge().alu(1).endLoop();
    k.program = b.build();
    return k;
}

CoreList
makeCores(const GpuConfig& config)
{
    CoreList cores;
    for (std::uint32_t c = 0; c < config.numCores; ++c)
        cores.push_back(std::make_unique<SimtCore>(config, c));
    return cores;
}

void
run(Cycle cycles, DynctaScheduler& sched,
    std::vector<KernelInstance>& kernels, CoreList& cores)
{
    for (Cycle t = 0; t < cycles; ++t) {
        for (auto& core : cores) {
            core->tick(t);
            for (const CtaDoneEvent& ev : core->drainCompletedCtas()) {
                ++kernels[static_cast<std::size_t>(ev.kernelId)].ctasDone;
                sched.notifyCtaDone(t, ev, cores);
            }
        }
        sched.tick(t, kernels, cores);
    }
}

std::vector<KernelInstance>
instances(const KernelInfo& k)
{
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    return {inst};
}

TEST(Dyncta, StartsAtHalfOccupancy)
{
    const GpuConfig config = cfg();
    DynctaScheduler sched(config);
    EXPECT_EQ(sched.target(0), config.maxCtasPerCore / 2);
}

TEST(Dyncta, RaisesTargetOnStarvedComputeKernel)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = computeKernel();
    auto kernels = instances(k);
    DynctaScheduler sched(config);
    run(20000, sched, kernels, cores);
    // Dependent ALU chains leave issue slots idle: controller should
    // have walked the target upward.
    EXPECT_GT(sched.target(0), config.maxCtasPerCore / 2);
}

TEST(Dyncta, LowersTargetOnMemoryBoundKernel)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = memoryKernel();
    auto kernels = instances(k);
    DynctaScheduler sched(config);
    run(30000, sched, kernels, cores);
    EXPECT_LT(sched.target(0), config.maxCtasPerCore / 2);
}

TEST(Dyncta, TargetStaysWithinBounds)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = memoryKernel();
    auto kernels = instances(k);
    DynctaScheduler sched(config);
    for (int epoch = 0; epoch < 10; ++epoch) {
        run(5000, sched, kernels, cores);
        EXPECT_GE(sched.target(0), 1u);
        EXPECT_LE(sched.target(0), config.maxCtasPerCore);
    }
}

TEST(Dyncta, ResidencyDrainsTowardLoweredTarget)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = memoryKernel();
    auto kernels = instances(k);
    DynctaScheduler sched(config);
    run(40000, sched, kernels, cores);
    if (!kernels[0].dispatchDone()) {
        // Once the controller lowers its target, residency may drain
        // from above but must never be dispatched beyond it again.
        const std::uint32_t resident = cores[0]->residentCtas();
        run(20000, sched, kernels, cores);
        if (!kernels[0].dispatchDone()) {
            EXPECT_LE(cores[0]->residentCtas(),
                      std::max(resident, sched.target(0)));
        }
    }
}

TEST(Dyncta, ExportsControllerStats)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = computeKernel();
    auto kernels = instances(k);
    DynctaScheduler sched(config);
    run(10000, sched, kernels, cores);
    StatSet stats;
    sched.addStats(stats);
    EXPECT_TRUE(stats.has("dyncta.core0.target"));
    EXPECT_TRUE(stats.has("dyncta.core0.inc"));
}

} // namespace
} // namespace bsched
