/**
 * @file
 * The unit of work of the kernel-launch serving layer: one tenant's
 * request to run one suite kernel, plus the record of what happened to
 * it. Traces are vectors of LaunchRequests produced by the traffic
 * generator (traffic.hh) and consumed by the serving engine (engine.hh).
 */

#ifndef BSCHED_SERVE_REQUEST_HH
#define BSCHED_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace bsched {

/** One kernel-launch request in a serving trace. */
struct LaunchRequest
{
    /** Global trace position (ties in arrival order break by seq). */
    std::uint64_t seq = 0;

    /** Issuing tenant (index into the traffic spec's tenant list). */
    int tenant = 0;

    /** Suite workload name (workloads/suite.hh). */
    std::string workload;

    /**
     * Arrival cycle. kCycleNever marks a closed-loop request: it is
     * released @c thinkCycles after one of its tenant's earlier
     * requests completes, so its concrete arrival only exists at serve
     * time.
     */
    Cycle arrival = 0;

    /** Closed-loop think time between a completion and this release. */
    Cycle thinkCycles = 0;

    /**
     * Relative deadline: the request must finish within this many
     * cycles of its (concrete) arrival. 0 = best-effort, no deadline.
     */
    Cycle deadlineSlack = 0;
};

/** What the serving engine did with one request. */
struct RequestOutcome
{
    LaunchRequest req;

    /** Concrete arrival (equals req.arrival for open-loop requests). */
    Cycle release = 0;

    /** Cycle the kernel was launched on the GPU; kCycleNever = never. */
    Cycle admit = kCycleNever;

    /** Cycle the kernel's last CTA completed; kCycleNever = never. */
    Cycle finish = kCycleNever;

    /** Cycle the kernel's first CTA reached a core (admission ends the
     *  queued phase, this ends the dispatching phase). */
    Cycle firstDispatch = kCycleNever;

    /** Predictor's total-runtime estimate captured at admission (the
     *  accuracy tracker compares it against finish - admit). */
    Cycle predictedTotal = 0;

    /** Absolute deadline (release + slack); kCycleNever = none. */
    Cycle deadline = kCycleNever;

    /** GPU kernel id assigned at admission. */
    int kernelId = kInvalidId;

    /** Launch-to-finish latency as served (queueing + execution). */
    Cycle latency() const { return finish - release; }

    /** True when a deadline existed and was missed. */
    bool missedDeadline() const
    {
        return deadline != kCycleNever && finish > deadline;
    }
};

} // namespace bsched

#endif // BSCHED_SERVE_REQUEST_HH
