#include "obs/phase/phase.hh"

#include <cmath>
#include <ostream>

#include "obs/sink.hh"
#include "obs/trace.hh"
#include "sim/log.hh"

namespace bsched {

namespace {

/** Delta of a per-id cumulative vector that may grow between windows
 *  (kernels launched mid-run); absent previous entries count as 0. */
std::uint64_t
deltaAt(const std::vector<std::uint64_t>& cur,
        const std::vector<std::uint64_t>& prev, std::size_t i)
{
    const std::uint64_t before = i < prev.size() ? prev[i] : 0;
    return cur[i] - before;
}

double
safeShare(std::uint64_t part, std::uint64_t whole)
{
    return whole > 0
        ? static_cast<double>(part) / static_cast<double>(whole)
        : 0.0;
}

} // namespace

const WindowDeltas&
WindowedMetrics::close(Cycle end, const PhaseSnapshot& snap)
{
    if (!endCycles_.empty() && end <= endCycles_.back()) {
        panic("phase: window close at cycle ", end,
              " not after previous boundary ", endCycles_.back());
    }
    const Cycle span = end - prevCycle_;
    if (span == 0)
        panic("phase: zero-length window at cycle ", end);
    const double cycles = static_cast<double>(span);

    const std::uint64_t d_instrs = snap.instrs - prev_.instrs;
    const std::uint64_t d_issue = snap.issueCycles - prev_.issueCycles;
    const std::uint64_t d_stall_mem = snap.stallMem - prev_.stallMem;
    const std::uint64_t d_stall_idle = snap.stallIdle - prev_.stallIdle;
    const std::uint64_t d_l1a = snap.l1Access - prev_.l1Access;
    const std::uint64_t d_l1m = snap.l1Miss - prev_.l1Miss;
    const std::uint64_t d_rh = snap.rowHit - prev_.rowHit;
    const std::uint64_t d_rm = snap.rowMiss - prev_.rowMiss;
    const std::uint64_t d_rc = snap.rowConflict - prev_.rowConflict;

    last_ = WindowDeltas{};
    last_.ipc = static_cast<double>(d_instrs) / cycles;
    last_.stallMemShare =
        safeShare(d_stall_mem, d_issue + d_stall_mem + d_stall_idle);
    last_.l1MissRate = safeShare(d_l1m, d_l1a);
    last_.rowHitRate = safeShare(d_rh, d_rh + d_rm + d_rc);

    last_.coreIpc.reserve(snap.coreInstrs.size());
    last_.coreStallShare.reserve(snap.coreInstrs.size());
    for (std::size_t c = 0; c < snap.coreInstrs.size(); ++c) {
        const std::uint64_t ci =
            deltaAt(snap.coreInstrs, prev_.coreInstrs, c);
        const std::uint64_t cis =
            deltaAt(snap.coreIssue, prev_.coreIssue, c);
        const std::uint64_t cm =
            deltaAt(snap.coreStallMem, prev_.coreStallMem, c);
        const std::uint64_t cid =
            deltaAt(snap.coreStallIdle, prev_.coreStallIdle, c);
        last_.coreIpc.push_back(static_cast<double>(ci) / cycles);
        last_.coreStallShare.push_back(safeShare(cm, cis + cm + cid));
    }

    last_.kernelIpc.reserve(snap.kernelInstrs.size());
    last_.kernelActive.reserve(snap.kernelInstrs.size());
    for (std::size_t k = 0; k < snap.kernelInstrs.size(); ++k) {
        const std::uint64_t ki =
            deltaAt(snap.kernelInstrs, prev_.kernelInstrs, k);
        last_.kernelIpc.push_back(static_cast<double>(ki) / cycles);
        last_.kernelActive.push_back(ki > 0 ? 1 : 0);
    }

    if (snap.hasInterference) {
        hasInterference_ = true;
        last_.hasInterference = true;
        const std::uint64_t d_l1x = snap.l1CrossCta - prev_.l1CrossCta;
        const std::uint64_t d_l2x = snap.l2CrossCta - prev_.l2CrossCta;
        const std::uint64_t d_dq =
            snap.dramQueueCycles - prev_.dramQueueCycles;
        const std::uint64_t d_mshr =
            snap.l2MshrOccCycles - prev_.l2MshrOccCycles;
        last_.l1CrossRate = static_cast<double>(d_l1x) / cycles * 1000.0;
        last_.l2CrossRate = static_cast<double>(d_l2x) / cycles * 1000.0;
        last_.dramQOccupancy = static_cast<double>(d_dq) / cycles;
        last_.l2MshrOccupancy = static_cast<double>(d_mshr) / cycles;
        l1CrossRate_.push_back(last_.l1CrossRate);
        l2CrossRate_.push_back(last_.l2CrossRate);
        dramQOccupancy_.push_back(last_.dramQOccupancy);
        l2MshrOccupancy_.push_back(last_.l2MshrOccupancy);
    }

    endCycles_.push_back(end);
    ipc_.push_back(last_.ipc);
    stallMemShare_.push_back(last_.stallMemShare);
    l1MissRate_.push_back(last_.l1MissRate);
    rowHitRate_.push_back(last_.rowHitRate);
    instrDeltas_.push_back(d_instrs);
    l1AccessDeltas_.push_back(d_l1a);
    rowHitDeltas_.push_back(d_rh);

    prev_ = snap;
    prevCycle_ = end;
    return last_;
}

PhaseDetector::PhaseDetector(const PhaseConfig& config,
                             std::vector<std::uint8_t> relative)
    : config_(config), relative_(std::move(relative))
{
    if (relative_.empty())
        fatal("phase: detector needs at least one channel");
}

bool
PhaseDetector::outOfBand(const std::vector<double>& values) const
{
    const Phase& cur = phases_.back();
    for (std::size_t c = 0; c < values.size(); ++c) {
        const double dev = std::abs(values[c] - cur.mean[c]);
        if (relative_[c] != 0) {
            // Rate-like channel: deviation relative to the reference
            // magnitude (floored so a zero reference stays comparable).
            const double scale = std::abs(cur.mean[c]) > 1e-9
                ? std::abs(cur.mean[c])
                : 1e-9;
            if (dev > config_.relThreshold * scale)
                return true;
        } else if (dev > config_.absThreshold) {
            return true;
        }
    }
    return false;
}

bool
PhaseDetector::observe(std::size_t window,
                       const std::vector<double>& values)
{
    if (values.size() != relative_.size()) {
        panic("phase: detector fed ", values.size(),
              " channels, expected ", relative_.size());
    }
    if (phases_.empty()) {
        Phase first;
        first.startWindow = window;
        first.windows = 1;
        first.mean = values;
        phases_.push_back(first);
        inBandWindows_ = 1;
        return false;
    }
    if (!outOfBand(values)) {
        Phase& cur = phases_.back();
        // Any pending deviants were a transient: they stay in the
        // current phase but never polluted the reference mean.
        cur.windows += pending_.size() + 1;
        pending_.clear();
        const double n = static_cast<double>(inBandWindows_);
        for (std::size_t c = 0; c < values.size(); ++c)
            cur.mean[c] = (cur.mean[c] * n + values[c]) / (n + 1.0);
        ++inBandWindows_;
        return false;
    }
    if (pending_.empty())
        pendingStart_ = window;
    pending_.push_back(values);
    if (pending_.size() < config_.hysteresis)
        return false;

    // Commit: the new phase is backdated to the first deviating window
    // and its reference seeded with the pending windows' mean.
    Phase next;
    next.startWindow = pendingStart_;
    next.windows = pending_.size();
    next.mean.assign(values.size(), 0.0);
    for (const std::vector<double>& w : pending_) {
        for (std::size_t c = 0; c < w.size(); ++c)
            next.mean[c] += w[c];
    }
    for (double& m : next.mean)
        m /= static_cast<double>(pending_.size());
    inBandWindows_ = static_cast<std::uint64_t>(pending_.size());
    pending_.clear();
    phases_.push_back(next);
    return true;
}

PhaseTelemetry::PhaseTelemetry(PhaseConfig config)
    : config_(config),
      machine_(config_, std::vector<std::uint8_t>{1, 0, 0})
{
    if (config_.windowCycles == 0)
        fatal("phase: windowCycles must be > 0");
    if (config_.hysteresis == 0)
        fatal("phase: hysteresis must be > 0");
}

void
PhaseTelemetry::onAttach(std::uint32_t num_cores, Tracer* tracer)
{
    if (attached_)
        fatal("phase: telemetry attached to a second Gpu");
    attached_ = true;
    cores_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c)
        cores_.emplace_back(config_, std::vector<std::uint8_t>{1, 0});
    tracer_ = tracer;
    if (tracer_ != nullptr)
        track_ = tracer_->addTrack("phase");
}

void
PhaseTelemetry::emitChange(Cycle now, int kernel_id, std::int64_t scope,
                           std::size_t phase)
{
    if (tracer_ == nullptr)
        return;
    TraceEvent event;
    event.cycle = now;
    event.kind = TraceEventKind::PhaseChange;
    event.kernelId = kernel_id;
    event.arg0 = static_cast<std::int64_t>(phase);
    event.arg1 = scope;
    tracer_->record(track_, event);
}

void
PhaseTelemetry::closeWindow(Cycle now, const PhaseSnapshot& snap)
{
    const std::size_t window = metrics_.windows();
    const WindowDeltas& d = metrics_.close(now, snap);

    // The machine detector reads IPC, the memory-stall share and the
    // L1 miss rate. Row-buffer hit rate is exported but not detected
    // on: over one window in a compute regime the DRAM access count
    // is tiny, so the ratio is sampling noise that would split phases
    // spuriously.
    if (machine_.observe(window,
                         {d.ipc, d.stallMemShare, d.l1MissRate})) {
        emitChange(now, kInvalidId, -1, machine_.currentPhase());
    }
    for (std::size_t c = 0; c < d.coreIpc.size() && c < cores_.size();
         ++c) {
        if (cores_[c].observe(window,
                              {d.coreIpc[c], d.coreStallShare[c]})) {
            emitChange(now, kInvalidId, static_cast<std::int64_t>(c),
                       cores_[c].currentPhase());
        }
    }
    for (std::size_t k = 0; k < d.kernelIpc.size(); ++k) {
        // Windows in which a kernel issued nothing (not yet dispatched,
        // or already retired) are skipped for its detector.
        if (d.kernelActive[k] == 0)
            continue;
        auto it = kernels_.find(static_cast<int>(k));
        if (it == kernels_.end()) {
            it = kernels_
                     .emplace(static_cast<int>(k),
                              PhaseDetector(
                                  config_,
                                  std::vector<std::uint8_t>{1}))
                     .first;
        }
        if (it->second.observe(window, {d.kernelIpc[k]}))
            emitChange(now, static_cast<int>(k), -1,
                       it->second.currentPhase());
    }
}

namespace {

void
writeDoubleArray(std::ostream& os, const std::vector<double>& values)
{
    os << "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i == 0 ? "" : ", ") << jsonNumber(values[i]);
    os << "]";
}

void
writeSeriesEntry(std::ostream& os, const char* name,
                 const std::vector<double>& values, bool last)
{
    os << "    \"" << name << "\": ";
    writeDoubleArray(os, values);
    os << (last ? "\n" : ",\n");
}

/** One detector's phase list, mapped back onto the cycle axis. */
void
writePhaseList(std::ostream& os,
               const std::vector<PhaseDetector::Phase>& phases,
               const std::vector<const char*>& channels,
               const std::vector<Cycle>& ends)
{
    os << "[";
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const PhaseDetector::Phase& phase = phases[p];
        const Cycle start_cycle = phase.startWindow == 0
            ? 0
            : ends.at(phase.startWindow - 1);
        os << (p == 0 ? "" : ", ") << "{\"phase\": " << p
           << ", \"start_window\": " << phase.startWindow
           << ", \"start_cycle\": " << start_cycle
           << ", \"windows\": " << phase.windows << ", \"mean\": {";
        for (std::size_t c = 0; c < channels.size(); ++c) {
            os << (c == 0 ? "" : ", ") << "\"" << channels[c]
               << "\": " << jsonNumber(phase.mean[c]);
        }
        os << "}}";
    }
    os << "]";
}

} // namespace

void
writePhaseJson(std::ostream& os, const PhaseTelemetry& telemetry,
               const std::string& label)
{
    const WindowedMetrics& m = telemetry.metrics();
    const std::vector<Cycle>& ends = m.endCycles();
    const std::vector<const char*> machine_channels = {
        "ipc", "stall_mem_share", "l1_miss_rate"};
    const std::vector<const char*> core_channels = {"ipc",
                                                    "stall_mem_share"};
    const std::vector<const char*> kernel_channels = {"ipc"};

    os << "{\n  \"schema\": \"bsched-phase-v1\",\n"
       << "  \"label\": \"" << jsonEscape(label) << "\",\n"
       << "  \"config\": {\"window_cycles\": "
       << telemetry.config().windowCycles << ", \"rel_threshold\": "
       << jsonNumber(telemetry.config().relThreshold)
       << ", \"abs_threshold\": "
       << jsonNumber(telemetry.config().absThreshold)
       << ", \"hysteresis\": " << telemetry.config().hysteresis
       << "},\n"
       << "  \"windows\": " << m.windows() << ",\n"
       << "  \"window_end_cycles\": [";
    for (std::size_t i = 0; i < ends.size(); ++i)
        os << (i == 0 ? "" : ", ") << ends[i];
    os << "],\n  \"series\": {\n";
    writeSeriesEntry(os, "ipc", m.ipc(), false);
    writeSeriesEntry(os, "stall_mem_share", m.stallMemShare(), false);
    writeSeriesEntry(os, "l1_miss_rate", m.l1MissRate(), false);
    writeSeriesEntry(os, "row_hit_rate", m.rowHitRate(),
                     !m.hasInterference());
    if (m.hasInterference()) {
        writeSeriesEntry(os, "l1_cross_cta_rate", m.l1CrossRate(), false);
        writeSeriesEntry(os, "l2_cross_cta_rate", m.l2CrossRate(), false);
        writeSeriesEntry(os, "dram_q_occupancy", m.dramQOccupancy(),
                         false);
        writeSeriesEntry(os, "l2_mshr_occupancy", m.l2MshrOccupancy(),
                         true);
    }
    os << "  },\n  \"machine\": {\"phase_count\": "
       << telemetry.machine().phases().size() << ", \"phases\": ";
    writePhaseList(os, telemetry.machine().phases(), machine_channels,
                   ends);
    os << "},\n  \"cores\": [\n";
    const std::vector<PhaseDetector>& cores = telemetry.coreDetectors();
    for (std::size_t c = 0; c < cores.size(); ++c) {
        os << "    {\"core\": " << c << ", \"phase_count\": "
           << cores[c].phases().size() << ", \"phases\": ";
        writePhaseList(os, cores[c].phases(), core_channels, ends);
        os << "}" << (c + 1 == cores.size() ? "\n" : ",\n");
    }
    os << "  ],\n  \"kernels\": [\n";
    const std::map<int, PhaseDetector>& kernels =
        telemetry.kernelDetectors();
    std::size_t written = 0;
    for (const auto& [id, detector] : kernels) {
        os << "    {\"kernel\": " << id << ", \"phase_count\": "
           << detector.phases().size() << ", \"phases\": ";
        writePhaseList(os, detector.phases(), kernel_channels, ends);
        os << "}" << (++written == kernels.size() ? "\n" : ",\n");
    }
    os << "  ]\n}\n";
}

} // namespace bsched
