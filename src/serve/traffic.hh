/**
 * @file
 * Deterministic multi-tenant launch-traffic generator. Each tenant is
 * an arrival process (Poisson, bursty, or closed-loop) over a kernel
 * mix drawn from the workload suite; the generator expands a TrafficSpec
 * into a reproducible trace of LaunchRequests.
 *
 * Determinism is load-bearing: the serving artifacts are committed and
 * CI-gated byte-for-byte, so the same spec must expand to the same
 * trace on every platform. All sampling is integer-only — exponential
 * gaps come from a fixed-point -ln(u) (negLogQ32) instead of libm, whose
 * last-ulp behaviour varies across implementations.
 */

#ifndef BSCHED_SERVE_TRAFFIC_HH
#define BSCHED_SERVE_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace bsched {

/** How a tenant's requests arrive. */
enum class ArrivalProcess : std::uint8_t
{
    Poisson,    ///< open loop, exponential interarrival gaps
    Bursty,     ///< open loop, back-to-back bursts separated by long gaps
    ClosedLoop, ///< at most `depth` outstanding; next release follows a
                ///< completion after an exponential think time
};

const char* toString(ArrivalProcess process);

/** One tenant's traffic description. */
struct TenantSpec
{
    ArrivalProcess process = ArrivalProcess::Poisson;

    /** Workload names the tenant draws from (uniformly, seeded). */
    std::vector<std::string> mix;

    /** Requests this tenant issues over the trace. */
    std::uint32_t requests = 8;

    /**
     * Mean gap in cycles: Poisson interarrival, bursty burst-to-burst
     * spacing, or closed-loop think time.
     */
    std::uint64_t meanGapCycles = 100000;

    /** Bursty: requests per burst. */
    std::uint32_t burstLen = 4;

    /** Bursty: fixed spacing of requests inside one burst. */
    std::uint64_t intraBurstGapCycles = 500;

    /** Closed-loop: outstanding requests kept in flight. */
    std::uint32_t closedDepth = 1;

    /** Relative deadline applied to every request; 0 = best-effort. */
    Cycle deadlineSlack = 0;
};

/** A complete serving workload: seed + tenants. */
struct TrafficSpec
{
    std::uint64_t seed = 1;
    std::vector<TenantSpec> tenants;
};

/**
 * Fixed-point -ln(u) for u = max(r, 1) / 2^64, returned in Q32
 * (i.e. round(-ln(u) * 2^32) up to series truncation). Feeding it
 * uniform 64-bit randoms yields exponential variates via
 * (mean * negLogQ32(r)) >> 32, entirely in integers: the normalize-
 * by-clz + atanh-series evaluation uses only 64/128-bit integer ops,
 * so results are bit-identical on every platform.
 */
std::uint64_t negLogQ32(std::uint64_t r);

/**
 * Expand @p spec into a trace. Open-loop requests carry concrete
 * arrival cycles and the trace is sorted by (arrival, generation
 * order); closed-loop requests beyond the initial `closedDepth` window
 * carry arrival == kCycleNever plus a think time, and are released by
 * the serving engine in per-tenant FIFO order. Fatal() on malformed
 * specs (no tenants, empty mixes, zero request counts).
 */
std::vector<LaunchRequest> generateTrace(const TrafficSpec& spec);

} // namespace bsched

#endif // BSCHED_SERVE_TRAFFIC_HH
