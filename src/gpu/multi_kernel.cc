#include "gpu/multi_kernel.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace bsched {

const char*
toString(MultiKernelPolicy policy)
{
    switch (policy) {
      case MultiKernelPolicy::Sequential: return "sequential";
      case MultiKernelPolicy::Spatial: return "spatial";
      case MultiKernelPolicy::Mixed: return "mixed";
    }
    return "?";
}

double
MultiKernelReport::stp() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        sum += static_cast<double>(isolatedCycles[i]) /
            static_cast<double>(sharedCycles[i]);
    }
    return sum;
}

double
MultiKernelReport::antt() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        sum += static_cast<double>(sharedCycles[i]) /
            static_cast<double>(isolatedCycles[i]);
    }
    return sum / static_cast<double>(sharedCycles.size());
}

double
MultiKernelReport::maxSlowdown() const
{
    double worst = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        worst = std::max(worst, static_cast<double>(sharedCycles[i]) /
                                    static_cast<double>(isolatedCycles[i]));
    }
    return worst;
}

double
MultiKernelReport::fairness() const
{
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        const double speedup = static_cast<double>(isolatedCycles[i]) /
            static_cast<double>(sharedCycles[i]);
        if (i == 0) {
            lo = hi = speedup;
        } else {
            lo = std::min(lo, speedup);
            hi = std::max(hi, speedup);
        }
    }
    if (hi <= 0.0)
        fatal("MultiKernelReport::fairness: non-positive speedups");
    return lo / hi;
}

namespace {

std::uint64_t
hashString(const std::string& s)
{
    std::uint64_t h = mix64(s.size());
    for (char c : s)
        h = hashCombine(h, static_cast<std::uint64_t>(
                               static_cast<unsigned char>(c)));
    return h;
}

} // namespace

std::uint64_t
IsolatedCycleCache::key(const GpuConfig& config, const KernelInfo& kernel)
{
    // The machine side is hashed through its printable description
    // (every behaviour-relevant knob is part of toString); the kernel
    // side through its launch geometry plus content proxies strong
    // enough to separate same-name variants (total dynamic work and
    // program shape). fastForward is deliberately behaviour-neutral by
    // contract, so either setting hits the same entry.
    std::uint64_t h = hashString(config.toString());
    h = hashCombine(h, hashString(kernel.name));
    h = hashCombine(h, kernel.grid.x);
    h = hashCombine(h, kernel.grid.y);
    h = hashCombine(h, kernel.grid.z);
    h = hashCombine(h, kernel.cta.x);
    h = hashCombine(h, kernel.cta.y);
    h = hashCombine(h, kernel.cta.z);
    h = hashCombine(h, kernel.regsPerThread);
    h = hashCombine(h, kernel.smemBytesPerCta);
    h = hashCombine(h, kernel.totalDynamicInstrs());
    h = hashCombine(h, kernel.program.segments().size());
    h = hashCombine(h, kernel.program.patterns().size());
    h = hashCombine(h, static_cast<std::uint64_t>(kernel.program.regCount()));
    return h;
}

bool
IsolatedCycleCache::lookup(std::uint64_t key, Cycle* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end())
        return false;
    ++hits_;
    if (out)
        *out = it->second;
    return true;
}

void
IsolatedCycleCache::insert(std::uint64_t key, Cycle cycles)
{
    // An isolated runtime of zero means the caller cached a run that
    // never executed; lookups would then divide by it (ANTT, slowdown).
    BSCHED_CHECK(cycles > 0,
                 "isolated cache: zero-cycle runtime for key ", key);
    std::lock_guard<std::mutex> lock(mutex_);
    map_[key] = cycles;
}

std::size_t
IsolatedCycleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::uint64_t
IsolatedCycleCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

namespace {

Cycle
isolatedRun(const GpuConfig& config, const KernelInfo& kernel)
{
    Gpu gpu(config);
    const int id = gpu.launchKernel(kernel);
    gpu.run();
    return gpu.kernelCycles(id);
}

/** Isolated runtime via the cache when one is supplied. */
Cycle
cachedIsolatedRun(const GpuConfig& config, const KernelInfo& kernel,
                  IsolatedCycleCache* cache)
{
    if (!cache)
        return isolatedRun(config, kernel);
    const std::uint64_t key = IsolatedCycleCache::key(config, kernel);
    Cycle cycles = 0;
    if (cache->lookup(key, &cycles))
        return cycles;
    cycles = isolatedRun(config, kernel);
    cache->insert(key, cycles);
    return cycles;
}

} // namespace

MultiKernelReport
runMultiKernel(const GpuConfig& config,
               const std::vector<const KernelInfo*>& kernels,
               MultiKernelPolicy policy, std::vector<int> spatial_split,
               const std::vector<Cycle>* isolated_cycles,
               IsolatedCycleCache* cache)
{
    if (kernels.empty())
        fatal("runMultiKernel: no kernels");

    MultiKernelReport report;
    report.policy = policy;
    if (isolated_cycles) {
        if (isolated_cycles->size() != kernels.size())
            fatal("runMultiKernel: isolated_cycles size mismatch");
        report.isolatedCycles = *isolated_cycles;
    } else {
        for (const KernelInfo* kernel : kernels) {
            report.isolatedCycles.push_back(
                cachedIsolatedRun(config, *kernel, cache));
        }
    }

    switch (policy) {
      case MultiKernelPolicy::Sequential: {
        Gpu gpu(config);
        std::vector<int> ids;
        for (const KernelInfo* kernel : kernels) {
            ids.push_back(gpu.launchKernel(*kernel));
            gpu.run();
        }
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
      case MultiKernelPolicy::Spatial: {
        const int cores = static_cast<int>(config.numCores);
        const int n = static_cast<int>(kernels.size());
        if (spatial_split.empty()) {
            for (int i = 1; i < n; ++i)
                spatial_split.push_back(cores * i / n);
        }
        if (static_cast<int>(spatial_split.size()) != n - 1)
            fatal("runMultiKernel: need ", n - 1, " split points");
        Gpu gpu(config);
        std::vector<int> ids;
        for (int i = 0; i < n; ++i) {
            const int begin = i == 0 ? 0 : spatial_split[i - 1];
            const int end = i == n - 1 ? cores : spatial_split[i];
            if (begin >= end)
                fatal("runMultiKernel: empty core range for kernel ", i);
            ids.push_back(gpu.launchKernel(*kernels[i], begin, end));
        }
        gpu.run();
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
      case MultiKernelPolicy::Mixed: {
        // MCK relies on LCS per-core limits to carve out space for the
        // partner kernel on every core.
        GpuConfig mixed = config;
        if (mixed.ctaSched == CtaSchedKind::RoundRobin)
            mixed.ctaSched = CtaSchedKind::Lazy;
        else if (mixed.ctaSched == CtaSchedKind::Block)
            mixed.ctaSched = CtaSchedKind::LazyBlock;
        Gpu gpu(mixed);
        std::vector<int> ids;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            ids.push_back(gpu.launchKernel(*kernels[i], 0, -1,
                                           static_cast<int>(i)));
        }
        gpu.run();
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
    }
    return report;
}

} // namespace bsched
