# Empty dependencies file for fig_lcs_sensitivity.
# This may be replaced when dependencies are built.
