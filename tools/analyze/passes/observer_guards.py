"""observer-guards — observability must stay zero-cost and FF-fenced.

The observability stack (PRs 2/8) is attach-only: tracer, sampler and
profiler pointers are null by default and model code must null-guard
every dereference, so an unobserved run does no extra work and — more
importantly — an observed run takes the *same schedule*. A missing
guard is a crash in the default configuration; a cycle-driven sampler
consulted outside the fast-forward fence silently loses samples when
idle spans are elided.

Two rules over model code (``src/{core,cta,mem,gpu,serve}``):

 - every ``tracer_->`` / ``profiler_->`` / ``obs_.sampler->`` …
   dereference must be dominated by a null check of that same member
   within the enclosing function (``unguarded-call``);
 - a module polling ``sampler->due(now)`` must also feed the sampler's
   ``nextDue()`` into its fast-forward bound (``unfenced-sampler``),
   the PR 8 convention that keeps sampling cadence identical with
   fast-forward on and off.
"""

from __future__ import annotations

import re

from ..engine import Context, Finding

NAME = "observer-guards"

RULES = {
    "unguarded-call": "observer pointer dereferenced without a null "
                      "guard in the enclosing function; observers are "
                      "optional and null by default",
    "unfenced-sampler": "module polls IntervalSampler::due() but never "
                        "consults nextDue(); idle fast-forward will "
                        "elide sample cycles and the artifact will "
                        "differ with fast-forward on/off",
}

SCOPE = ("src/core/", "src/cta/", "src/mem/", "src/gpu/", "src/serve/")

MEMBER_RE = re.compile(
    r"\b(obs_\.(?:tracer|sampler|profiler|memProfiler)"
    r"|tracer_|sampler_|profiler_|memProfiler_|trace_)\s*->"
)

DUE_RE = re.compile(r"(?:->|\.)due\s*\(")
NEXT_DUE_RE = re.compile(r"\bnextDue\s*\(")


def _guarded(lines: list[str], call_line_idx: int, member: str) -> bool:
    """True if ``member`` is null-tested between the enclosing
    function's opening and the call.

    Function bodies open with ``{`` at column 0 in this codebase
    (.cc files), so the backward scan is fenced by column-0 braces;
    a generous line cap bounds header-inline bodies, which indent
    their braces.
    """
    esc = re.escape(member)
    guard = re.compile(
        rf"{esc}\s*(?:!=|==)\s*nullptr"        # x != nullptr / == nullptr
        rf"|if\s*\(\s*!?\s*{esc}\s*\)"          # if (x) / if (!x)
        rf"|{esc}\s*&&|&&\s*{esc}"              # x && ... / ... && x
        rf"|!\s*{esc}[\s)]"                     # !x (early return)
        rf"|{esc}\s*\?"                         # x ? x->... : ...
    )
    for idx in range(call_line_idx, -1, -1):
        if guard.search(lines[idx]):
            return True
        line = lines[idx]
        if idx != call_line_idx and (line.startswith("{")
                                     or line.startswith("}")):
            return False  # reached the enclosing function's boundary
        if call_line_idx - idx > 300:
            return False
    return False


def run(ctx: Context) -> list[Finding]:
    findings: list[Finding] = []

    module_text: dict[str, str] = {}
    for src in ctx.in_dirs(*SCOPE):
        stem = re.sub(r"\.(hh|cc)$", "", src.rel)
        module_text[stem] = module_text.get(stem, "") + src.stripped

    for src in ctx.in_dirs(*SCOPE):
        text = src.stripped
        lines = text.split("\n")
        for match in MEMBER_RE.finditer(text):
            member = match.group(1)
            line_idx = text.count("\n", 0, match.start())
            if not _guarded(lines, line_idx, member):
                findings.append(Finding(
                    file=src.rel, line=line_idx + 1,
                    rule=f"{NAME}.unguarded-call",
                    message=f"'{member}->' dereference without a "
                            f"dominating '{member} != nullptr' check — "
                            + RULES["unguarded-call"],
                ))

        for match in DUE_RE.finditer(text):
            stem = re.sub(r"\.(hh|cc)$", "", src.rel)
            if not NEXT_DUE_RE.search(module_text.get(stem, "")):
                findings.append(Finding(
                    file=src.rel,
                    line=text.count("\n", 0, match.start()) + 1,
                    rule=f"{NAME}.unfenced-sampler",
                    message=RULES["unfenced-sampler"],
                ))
    return findings
