/**
 * @file
 * E9 — BCS on the inter-CTA-locality workloads: IPC speedup over the
 * baseline scheduler and the L1D miss-rate reduction from landing
 * consecutive CTAs on the same core. Shown with the plain GTO warp
 * scheduler (BAWS is added in E10).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig bcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Block);

    std::printf("E9: BCS (block size 2, GTO warps) on the locality "
                "subset (%u jobs)\n\n",
                jobs);
    Table table("BCS vs baseline");
    table.setHeader({"workload", "base-IPC", "bcs-IPC", "speedup",
                     "base-L1miss%", "bcs-L1miss%"});
    BenchReport report("fig_bcs_speedup");
    std::vector<double> speedups;
    const auto names = localityWorkloadNames();
    const auto grid = bench::runWorkloadGrid(names, {base, bcs}, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const RunResult& a = grid.at(w, 0);
        const RunResult& b = grid.at(w, 1);
        speedups.push_back(b.ipc / a.ipc);
        report.addRow(names[w] + "/base", a);
        report.addRow(names[w] + "/bcs", b);
        report.addMetric(names[w] + ".speedup_bcs", b.ipc / a.ipc);
        table.addRow({names[w], fmt(a.ipc, 2), fmt(b.ipc, 2),
                      fmt(b.ipc / a.ipc, 3), fmt(100 * a.l1MissRate(), 1),
                      fmt(100 * b.l1MissRate(), 1)});
    }
    table.addRow({"geomean", "", "", fmt(geomean(speedups), 3), "", ""});
    std::printf("%s\n", table.toText().c_str());
    report.addMetric("geomean.speedup_bcs", geomean(speedups));

    // Control group: non-locality workloads should be unaffected.
    Table control("control (no inter-CTA locality)");
    control.setHeader({"workload", "speedup"});
    std::vector<double> control_speedups;
    const std::vector<std::string> control_names = {"bp", "gemm", "kmeans",
                                                    "nn"};
    const auto control_grid =
        bench::runWorkloadGrid(control_names, {base, bcs}, jobs);
    for (std::size_t w = 0; w < control_names.size(); ++w) {
        const double s =
            control_grid.at(w, 1).ipc / control_grid.at(w, 0).ipc;
        control_speedups.push_back(s);
        control.addRow({control_names[w], fmt(s, 3)});
        report.addMetric(control_names[w] + ".control_speedup", s);
    }
    control.addRow({"geomean", fmt(geomean(control_speedups), 3)});
    std::printf("%s", control.toText().c_str());
    report.addMetric("geomean.control_speedup",
                     geomean(control_speedups));

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, bcs, makeWorkload("hs"), "hs/bcs");
    return 0;
}
