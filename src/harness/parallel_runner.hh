/**
 * @file
 * Parallel experiment harness: fan independent (GpuConfig, KernelInfo)
 * simulation points out across worker threads and collect the results in
 * deterministic submission order.
 *
 * Threading model. Each grid point owns a private Gpu built from its own
 * by-value GpuConfig and KernelInfo copies. The simulator core keeps no
 * mutable process-wide state (the only global knob, the log level, is
 * read-only during a run), so concurrent points share nothing and the
 * sim core needs no locking — see the static_assert pinning this
 * invariant in parallel_runner.cc. Every worker writes its RunResult
 * into a pre-sized slot indexed by the point's submission position, so
 * the output vector is byte-identical for any job count, including 1.
 *
 * Job-count resolution (resolveJobs): an explicit request wins, then the
 * BSCHED_JOBS environment variable, then std::thread::hardware_concurrency.
 */

#ifndef BSCHED_HARNESS_PARALLEL_RUNNER_HH
#define BSCHED_HARNESS_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace bsched {

/** One independent simulation point of an experiment grid. */
struct SimPoint
{
    GpuConfig config;
    KernelInfo kernel;
    std::string label; ///< free-form tag for reporting (optional)
};

/**
 * Resolve an effective worker count: @p requested if positive, else the
 * BSCHED_JOBS environment variable if set and positive, else the
 * hardware concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Enable/disable the grid-progress heartbeat: when on, every
 * ParallelRunner fan-out reports "completed/total points" to stderr,
 * rate-limited to a few updates per second, with a closing line when
 * the grid finishes. Off by default so CI logs stay clean; the bench
 * binaries turn it on with `--progress` (or BSCHED_PROGRESS=1). Like
 * the log level, this is a process-wide knob that must be set before
 * runs start — it is read-only while a grid is in flight, which keeps
 * the harness's no-shared-mutable-state contract intact.
 */
void setHarnessProgress(bool enabled);

/** Current state of the heartbeat knob. */
bool harnessProgressEnabled();

/** Fans independent simulation points across a worker pool. */
class ParallelRunner
{
  public:
    /** @p jobs as for resolveJobs(); 0 picks the default. */
    explicit ParallelRunner(unsigned jobs = 0);

    /** Effective worker count. */
    unsigned jobs() const { return jobs_; }

    /** Simulate every point; results in submission order. */
    std::vector<RunResult> run(const std::vector<SimPoint>& points) const;

    /**
     * Generic fan-out: out[i] = fn(i) for i in [0, n), computed across
     * the pool. @p fn must be safe to call concurrently from several
     * threads (the simulation-point rule: no shared mutable state).
     */
    template <typename T>
    std::vector<T> map(std::size_t n,
                       const std::function<T(std::size_t)>& fn) const
    {
        std::vector<T> out(n);
        forEachIndex(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Run fn(i) for every i in [0, n) across the pool. */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

  private:
    unsigned jobs_;
};

/** Convenience: ParallelRunner(jobs).run(points). */
std::vector<RunResult> runGrid(const std::vector<SimPoint>& points,
                               unsigned jobs = 0);

} // namespace bsched

#endif // BSCHED_HARNESS_PARALLEL_RUNNER_HH
