/**
 * @file
 * Tests for the request-level memory profiler: the fixed-boundary
 * latency histogram, the request-lifecycle stage accounting and its two
 * conservation laws (per-stage cycles sum to end-to-end; histogram
 * totals equal completed requests), the unclosed-stage contract,
 * interference counting, non-perturbation of simulation results, and
 * byte-identity of the `bsched-memprofile-v1` export across repeats
 * and `--jobs` counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/json.hh"
#include "obs/mem_profile.hh"
#include "sim/check.hh"

namespace bsched {
namespace {

#define SKIP_UNLESS_CHECKS()                                              \
    if (!checksEnabled())                                                 \
        GTEST_SKIP() << "contracts compiled out (Release without "        \
                        "BSCHED_VALIDATE)";

GpuConfig
cfg(WarpSchedKind warp_sched = WarpSchedKind::GTO,
    CtaSchedKind cta_sched = CtaSchedKind::RoundRobin)
{
    GpuConfig c = makeConfig(warp_sched, cta_sched);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

/** A memory-heavy kernel: strided loads with reuse, several CTAs per
 *  core, so L1/L2 see misses, merges and evictions. */
KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "memprofiled";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Strided;
    in.strideElems = 8;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(4).load(i).alu(2).load(i).alu(1).endLoop();
    k.program = b.build();
    return k;
}

RunResult
profiledRun(const GpuConfig& config, const KernelInfo& k,
            MemProfiler& prof)
{
    Observer obs;
    obs.memProfiler = &prof;
    return runKernel(config, k, obs);
}

// --- LatencyHistogram ---------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesArePowersOfTwo)
{
    // Bucket i covers (2^(i-1), 2^i]; 0 lands with 1 in bucket 0.
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(2), 1u);
    EXPECT_EQ(LatencyHistogram::bucketOf(3), 2u);
    EXPECT_EQ(LatencyHistogram::bucketOf(4), 2u);
    EXPECT_EQ(LatencyHistogram::bucketOf(5), 3u);
    EXPECT_EQ(LatencyHistogram::bucketOf(65536), 16u);
    EXPECT_EQ(LatencyHistogram::bucketOf(65537),
              LatencyHistogram::kFiniteBuckets); // overflow
    EXPECT_EQ(LatencyHistogram::bound(LatencyHistogram::kFiniteBuckets - 1),
              65536u);
}

TEST(LatencyHistogram, RecordTracksCountSumMinMaxMean)
{
    LatencyHistogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);

    h.record(10);
    h.record(2);
    h.record(100000); // overflow bucket
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.sum(), 100012u);
    EXPECT_EQ(h.min(), 2u);
    EXPECT_EQ(h.max(), 100000u);
    EXPECT_DOUBLE_EQ(h.mean(), 100012.0 / 3.0);
    EXPECT_EQ(h.bucket(1), 1u);  // 2
    EXPECT_EQ(h.bucket(4), 1u);  // 10 in (8, 16]
    EXPECT_EQ(h.bucket(LatencyHistogram::kFiniteBuckets), 1u);

    std::uint64_t binned = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
        binned += h.bucket(i);
    EXPECT_EQ(binned, h.total());
}

TEST(LatencyHistogram, AccumulateMergesAllMoments)
{
    LatencyHistogram a;
    LatencyHistogram b;
    a.record(4);
    b.record(2);
    b.record(300);

    LatencyHistogram empty;
    a.accumulate(empty); // no-op: min/max must survive
    EXPECT_EQ(a.min(), 4u);

    a.accumulate(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.sum(), 306u);
    EXPECT_EQ(a.min(), 2u);
    EXPECT_EQ(a.max(), 300u);

    empty.accumulate(a); // accumulate into empty adopts min
    EXPECT_EQ(empty.min(), 2u);
    EXPECT_EQ(empty.total(), 3u);
}

// --- manual request lifecycle -------------------------------------------

TEST(MemProfiler, StageTransitionsAttributeEveryCycleOnce)
{
    MemProfiler prof;
    prof.onAttach(2);
    const std::int64_t cta = makeCtaKey(7, 3);
    const std::uint32_t id = prof.beginRequest(10, 1, 7, cta);
    ASSERT_NE(id, 0u);
    EXPECT_EQ(prof.ctaKeyOf(id), cta);
    EXPECT_EQ(prof.begunRequests(), 1u);
    EXPECT_EQ(prof.outstandingRequests(), 1u);

    prof.enterStage(id, MemStage::NocRequest, 15);  // core_q: 5
    prof.enterStage(id, MemStage::L2Queue, 22);     // noc_req: 7
    prof.enterStage(id, MemStage::DramQueue, 25);   // l2_q: 3
    prof.enterStage(id, MemStage::DramService, 75); // dram_q: 50
    prof.enterStage(id, MemStage::L2Return, 95);    // dram_svc: 20
    prof.enterStage(id, MemStage::NocResponse, 99); // l2_ret: 4
    prof.endRequest(id, 110);                       // noc_resp: 11

    EXPECT_EQ(prof.completedRequests(), 1u);
    EXPECT_EQ(prof.outstandingRequests(), 0u);
    EXPECT_EQ(prof.ctaKeyOf(id), -1); // record retired

    const StageProfile total = prof.total();
    EXPECT_EQ(total.endToEnd.sum(), 100u);
    EXPECT_EQ(total.stageCycleSum(), 100u);
    const auto stage = [&](MemStage s) {
        return total.stages[static_cast<std::size_t>(s)].sum();
    };
    EXPECT_EQ(stage(MemStage::CoreQueue), 5u);
    EXPECT_EQ(stage(MemStage::NocRequest), 7u);
    EXPECT_EQ(stage(MemStage::L2Queue), 3u);
    EXPECT_EQ(stage(MemStage::DramQueue), 50u);
    EXPECT_EQ(stage(MemStage::DramService), 20u);
    EXPECT_EQ(stage(MemStage::L2Mshr), 0u);
    EXPECT_EQ(stage(MemStage::L2Return), 4u);
    EXPECT_EQ(stage(MemStage::NocResponse), 11u);

    // Attributed to the issuing core and kernel, not the other one.
    EXPECT_EQ(prof.core(1).completed(), 1u);
    EXPECT_EQ(prof.core(0).completed(), 0u);
    ASSERT_EQ(prof.kernels().count(7), 1u);
    EXPECT_EQ(prof.kernels().at(7).endToEnd.sum(), 100u);
}

TEST(MemProfiler, UntrackedRequestIdZeroIsIgnored)
{
    MemProfiler prof;
    prof.onAttach(1);
    prof.enterStage(0, MemStage::DramQueue, 5);
    prof.endRequest(0, 9);
    EXPECT_EQ(prof.ctaKeyOf(0), -1);
    EXPECT_EQ(prof.begunRequests(), 0u);
    EXPECT_EQ(prof.completedRequests(), 0u);
}

TEST(MemProfiler, CompletingWithUnclosedStageViolatesContract)
{
    SKIP_UNLESS_CHECKS();
    MemProfiler prof;
    prof.onAttach(1);
    const std::uint32_t id = prof.beginRequest(0, 0, 1, makeCtaKey(1, 0));
    prof.enterStage(id, MemStage::L2Queue, 4);
    ScopedContractThrows guard;
    // The noc_resp stage was never opened: the request cannot complete.
    EXPECT_THROW(prof.endRequest(id, 9), ContractViolation);
}

TEST(MemProfiler, StageTransitionForUnknownRequestViolatesContract)
{
    SKIP_UNLESS_CHECKS();
    MemProfiler prof;
    prof.onAttach(1);
    ScopedContractThrows guard;
    EXPECT_THROW(prof.enterStage(42, MemStage::L2Queue, 1),
                 ContractViolation);
    EXPECT_THROW(prof.endRequest(42, 1), ContractViolation);
}

TEST(MemProfilerDeath, ReattachWithDifferentGeometryDies)
{
    MemProfiler prof;
    prof.onAttach(2);
    prof.onAttach(2); // same shape: fine
    EXPECT_DEATH(prof.onAttach(3), "different machine shape");
}

// --- interference counters ----------------------------------------------

TEST(MemProfiler, EvictionCountsSeparateCrossCtaFromSameCta)
{
    MemProfiler prof;
    prof.onAttach(1);
    const std::int64_t a = makeCtaKey(1, 0);
    const std::int64_t b = makeCtaKey(1, 1);
    prof.onEviction(MemLevel::L1, a, a, 1); // same CTA: not cross
    prof.onEviction(MemLevel::L1, a, b, 2); // cross
    prof.onEviction(MemLevel::L1, a, -1, 0); // untracked victim: not cross
    prof.onEviction(MemLevel::L2, b, a, 2); // other level

    const InterferenceCounts& l1 = prof.interference(MemLevel::L1);
    EXPECT_EQ(l1.evictions, 3u);
    EXPECT_EQ(l1.crossCtaEvictions, 1u);
    EXPECT_DOUBLE_EQ(l1.crossCtaFraction(), 1.0 / 3.0);
    // Every eviction samples the set occupancy, tracked owner or not.
    EXPECT_EQ(l1.setOccupancy.total(), 3u);
    EXPECT_EQ(l1.setOccupancy.max(), 2u);
    EXPECT_EQ(l1.setOccupancy.min(), 0u);

    const InterferenceCounts& l2 = prof.interference(MemLevel::L2);
    EXPECT_EQ(l2.evictions, 1u);
    EXPECT_EQ(l2.crossCtaEvictions, 1u);
    EXPECT_DOUBLE_EQ(l2.crossCtaFraction(), 1.0);

    EXPECT_DOUBLE_EQ(InterferenceCounts{}.crossCtaFraction(), 0.0);
}

// --- conservation laws on real runs -------------------------------------

class MemProfileConservation
    : public ::testing::TestWithParam<WarpSchedKind>
{};

/**
 * The two contract-backed conservation laws, end to end: every profiled
 * request drains, per-stage cycles sum exactly to the end-to-end
 * latency at every aggregation level, and the histogram totals equal
 * the completed request count.
 */
TEST_P(MemProfileConservation, StageCyclesSumToEndToEnd)
{
    const GpuConfig config = cfg(GetParam());
    MemProfiler prof;
    profiledRun(config, kernel(), prof);

    ASSERT_EQ(prof.numCores(), config.numCores);
    EXPECT_GT(prof.begunRequests(), 0u);
    EXPECT_EQ(prof.outstandingRequests(), 0u);
    EXPECT_EQ(prof.begunRequests(), prof.completedRequests());

    const StageProfile total = prof.total();
    EXPECT_EQ(total.completed(), prof.completedRequests());
    EXPECT_EQ(total.stageCycleSum(), total.endToEnd.sum());

    std::uint64_t core_sum = 0;
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        const StageProfile& profile = prof.core(c);
        EXPECT_EQ(profile.stageCycleSum(), profile.endToEnd.sum())
            << "core " << c;
        core_sum += profile.completed();
    }
    EXPECT_EQ(core_sum, prof.completedRequests());

    std::uint64_t kernel_sum = 0;
    for (const auto& [kernel_id, profile] : prof.kernels()) {
        EXPECT_EQ(profile.stageCycleSum(), profile.endToEnd.sum())
            << "kernel " << kernel_id;
        kernel_sum += profile.completed();
    }
    EXPECT_EQ(kernel_sum, prof.completedRequests());

    // Histogram binning is itself conservative at every level.
    std::uint64_t binned = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
        binned += total.endToEnd.bucket(i);
    EXPECT_EQ(binned, total.completed());

    // The run made the interference path exercise something.
    EXPECT_GT(prof.interference(MemLevel::L1).mshrOccupancy.total(), 0u);
    EXPECT_GT(prof.interference(MemLevel::L2).mshrOccupancy.total(), 0u);
    for (const MemLevel level : {MemLevel::L1, MemLevel::L2}) {
        const InterferenceCounts& i = prof.interference(level);
        EXPECT_LE(i.crossCtaEvictions, i.evictions);
    }
}

/** Attaching the memory profiler must not change what is simulated. */
TEST_P(MemProfileConservation, DoesNotPerturbSimulationResults)
{
    const GpuConfig config = cfg(GetParam());
    const KernelInfo k = kernel();
    const RunResult bare = runKernel(config, k);
    MemProfiler prof;
    const RunResult profiled = profiledRun(config, k, prof);

    EXPECT_EQ(bare.cycles, profiled.cycles);
    EXPECT_EQ(bare.instrs, profiled.instrs);
    EXPECT_EQ(bare.ipc, profiled.ipc);
    EXPECT_EQ(bare.stats.entries(), profiled.stats.entries());
}

INSTANTIATE_TEST_SUITE_P(
    AllWarpSchedulers, MemProfileConservation,
    ::testing::Values(WarpSchedKind::LRR, WarpSchedKind::GTO,
                      WarpSchedKind::TwoLevel, WarpSchedKind::BAWS),
    [](const ::testing::TestParamInfo<WarpSchedKind>& info) {
        std::string name = toString(info.param);
        for (char& ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// --- export determinism --------------------------------------------------

std::string
serialized(const MemProfiler& prof)
{
    std::ostringstream os;
    writeMemProfileJson(os, prof, "determinism");
    return os.str();
}

/**
 * The `--mem-profile` artifact is byte-identical across repeats and
 * across `--jobs` counts: the profiled runs are deterministic and the
 * serializer iterates only ordered containers with fixed boundaries.
 */
TEST(MemProfileExport, ByteIdenticalAcrossRepeatsAndJobCounts)
{
    const GpuConfig config = cfg();
    const KernelInfo k = kernel();

    const auto run_with_jobs = [&](unsigned jobs) {
        const ParallelRunner runner(jobs);
        // Three profiled points fanned across the pool, like a sweep.
        const std::vector<std::string> texts =
            runner.map<std::string>(3, [&](std::size_t i) {
                GpuConfig point = config;
                point.staticCtaLimit = static_cast<std::uint32_t>(i) + 1;
                MemProfiler prof;
                profiledRun(point, k, prof);
                return serialized(prof);
            });
        return texts;
    };

    const std::vector<std::string> serial = run_with_jobs(1);
    const std::vector<std::string> repeat = run_with_jobs(1);
    const std::vector<std::string> parallel = run_with_jobs(3);
    ASSERT_EQ(serial.size(), 3u);
    EXPECT_EQ(serial, repeat);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial[0], serial[1]); // different CTA limits really differ
}

TEST(MemProfileExport, EmitsParsableSchemaWithConservedTotals)
{
    const GpuConfig config = cfg();
    MemProfiler prof;
    profiledRun(config, kernel(), prof);

    const JsonValue root = parseJson(serialized(prof));
    EXPECT_EQ(root.at("schema").asString(), "bsched-memprofile-v1");
    EXPECT_EQ(root.at("stages").asArray().size(), kNumMemStages);
    EXPECT_EQ(root.at("bucket_bounds").asArray().size(),
              LatencyHistogram::kFiniteBuckets);
    const auto& points = root.at("points").asArray();
    ASSERT_EQ(points.size(), 1u);
    const JsonValue& point = points[0];
    EXPECT_EQ(point.at("outstanding").asNumber(), 0.0);
    EXPECT_EQ(point.at("begun").asNumber(), point.at("completed").asNumber());

    // Conservation, as seen by a JSON consumer.
    const JsonValue& total = point.at("total");
    double stage_sum = 0.0;
    for (const auto& [name, hist] : total.at("stages").asObject())
        stage_sum += hist.at("sum").asNumber();
    EXPECT_EQ(stage_sum, total.at("end_to_end").at("sum").asNumber());

    double binned = 0.0;
    for (const JsonValue& b : total.at("end_to_end").at("buckets").asArray())
        binned += b.asNumber();
    EXPECT_EQ(binned, point.at("completed").asNumber());

    EXPECT_EQ(point.at("cores").asArray().size(), config.numCores);
    for (const char* level : {"l1", "l2"}) {
        const JsonValue& i = point.at("interference").at(level);
        EXPECT_LE(i.at("cross_cta_evictions").asNumber(),
                  i.at("evictions").asNumber());
    }
}

} // namespace
} // namespace bsched
