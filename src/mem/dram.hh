/**
 * @file
 * A GDDR-like DRAM channel with per-bank row buffers and an FR-FCFS-lite
 * scheduler: among requests whose bank is free, row-buffer hits are
 * served before older row misses (within a bounded scan window, to bound
 * starvation). The shared data bus serializes bursts.
 */

#ifndef BSCHED_MEM_DRAM_HH
#define BSCHED_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bsched {

class MemProfiler;
class Tracer;

/** One DRAM channel (paired 1:1 with a memory partition). */
class DramChannel
{
  public:
    /**
     * @param partition_stride number of partitions interleaved at line
     *        granularity; used to compact this channel's sparse global
     *        line addresses into a dense local space before bank/row
     *        decomposition.
     */
    DramChannel(const DramConfig& config, std::uint32_t line_bytes,
                std::uint32_t partition_stride, std::string name);

    /** True if the request queue has room. */
    bool canAccept() const { return queue_.size() < config_.queueCapacity; }

    /**
     * Enqueue a line read/write. @p req_id is the memory profiler's
     * record id for the primary fetch this access serves (0 untracked).
     */
    void push(Cycle now, Addr line_addr, bool write,
              std::uint32_t req_id = 0);

    /**
     * Advance one cycle: possibly start servicing one request. Returns
     * true when a request was serviced (the cycle was not quiet).
     */
    bool tick(Cycle now);

    /** True if a completed read response is available at @p now. */
    bool responseReady(Cycle now) const;

    /** Pop the line address of the oldest completed read. */
    Addr popResponse(Cycle now);

    /** True when no request is queued or in flight. */
    bool idle() const { return queue_.empty() && completions_.empty(); }

    /**
     * Earliest cycle >= @p now at which this channel can do observable
     * work: the oldest completion's done cycle, or the first cycle a
     * bank in the scheduler's scan window frees up. kCycleNever when
     * idle. The FR-FCFS starvation flag may flip inside a skipped span,
     * but that is unobservable — no request can be *served* while every
     * window bank is busy.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Bank index a line maps to (exposed for tests). */
    std::uint32_t bankOf(Addr line_addr) const;

    /** Row index a line maps to within its bank (exposed for tests). */
    std::uint64_t rowOf(Addr line_addr) const;

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t rowConflicts() const { return rowConflicts_; }

    /** Per-bank row-buffer outcome counters (index = bank). */
    struct BankStats
    {
        std::uint64_t rowHits = 0;
        std::uint64_t rowMisses = 0;
        /** Row misses that closed an open row (not first touch). */
        std::uint64_t conflicts = 0;
    };

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    const BankStats& bankStats(std::uint32_t bank) const
    {
        return banks_.at(bank).stats;
    }

    void addStats(StatSet& stats, const std::string& prefix) const;

    /**
     * Attach the event tracer (observability): row-buffer conflicts —
     * a serviced request closing a different open row — emit
     * DramRowConflict events on @p track. Null detaches.
     */
    void setTracer(Tracer* tracer, std::uint32_t track);

    /** Attach the memory profiler: serviced requests report their
     *  DramQueue -> DramService transition. Null detaches. */
    void setMemProfiler(MemProfiler* prof) { memProfiler_ = prof; }

  private:
    struct Request
    {
        Addr lineAddr = 0;
        bool write = false;
        Cycle arrive = 0;
        std::uint32_t bank = 0;   ///< precomputed at push
        std::int64_t row = 0;     ///< precomputed at push
        std::uint32_t reqId = 0;  ///< profiler record id (0 untracked)
    };

    struct Bank
    {
        std::int64_t openRow = -1;
        Cycle busyUntil = 0;
        BankStats stats;
    };

    /** How many queue entries the scheduler scans for a row hit. */
    static constexpr std::size_t kScanWindow = 16;

    void service(Cycle now, std::size_t queue_index);

    DramConfig config_;
    std::uint32_t lineBytes_;
    std::uint32_t partitionStride_;
    std::string name_;
    std::vector<Bank> banks_;
    std::deque<Request> queue_;
    /** (doneCycle, lineAddr) for reads, in completion order. */
    std::deque<std::pair<Cycle, Addr>> completions_;
    Cycle busFreeAt_ = 0;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t rowConflicts_ = 0;

    Tracer* tracer_ = nullptr;
    std::uint32_t track_ = 0;
    MemProfiler* memProfiler_ = nullptr;
};

} // namespace bsched

#endif // BSCHED_MEM_DRAM_HH
