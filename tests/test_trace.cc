/**
 * @file
 * Tests for the event tracer: ring-buffer semantics, the hooks wired
 * through the simulator, and the Chrome trace_event JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace bsched {
namespace {

GpuConfig
cfg(CtaSchedKind cta_sched)
{
    GpuConfig c = makeConfig(WarpSchedKind::GTO, cta_sched);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

/** A small memory-heavy kernel so every hook class has a chance to fire. */
KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "traced";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Strided;
    in.strideElems = 8;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(6).load(i).alu(3).endLoop();
    k.program = b.build();
    return k;
}

TEST(Tracer, TrackLayout)
{
    const Tracer t(4, 2);
    EXPECT_EQ(t.coreTrack(3), 3u);
    EXPECT_EQ(t.partitionTrack(0), 4u);
    EXPECT_EQ(t.gpuTrack(), 6u);
    EXPECT_EQ(t.numTracks(), 7u);
    EXPECT_EQ(t.trackName(0), "core0");
    EXPECT_EQ(t.trackName(5), "part1");
    EXPECT_EQ(t.trackName(6), "gpu");
}

TEST(Tracer, DynamicTracksExtendTheFixedLayout)
{
    Tracer t(2, 1);
    EXPECT_EQ(t.numTracks(), 4u);
    const std::uint32_t lane0 = t.addTrack("tenant0");
    const std::uint32_t lane1 = t.addTrack("tenant1");
    EXPECT_EQ(lane0, 4u);
    EXPECT_EQ(lane1, 5u);
    EXPECT_EQ(t.numTracks(), 6u);
    EXPECT_EQ(t.trackName(lane0), "tenant0");
    EXPECT_EQ(t.trackName(lane1), "tenant1");
    // The fixed tracks are untouched.
    EXPECT_EQ(t.trackName(t.gpuTrack()), "gpu");

    TraceEvent e;
    e.cycle = 10;
    e.kind = TraceEventKind::ServeQueued;
    e.duration = 5;
    t.record(lane1, e);
    EXPECT_TRUE(t.events(lane0).empty());
    ASSERT_EQ(t.events(lane1).size(), 1u);
    EXPECT_EQ(t.events(lane1).front().cycle, 10u);
}

TEST(Tracer, ServeEventKindsHaveNamesAndSpanness)
{
    EXPECT_STREQ(toString(TraceEventKind::DrainComplete),
                 "serve.drain_complete");
    EXPECT_STREQ(toString(TraceEventKind::ServeArrival), "serve.arrival");
    EXPECT_STREQ(toString(TraceEventKind::ServeQueued), "serve.queued");
    EXPECT_STREQ(toString(TraceEventKind::ServeDispatching),
                 "serve.dispatching");
    EXPECT_STREQ(toString(TraceEventKind::ServeRunning), "serve.running");
    EXPECT_STREQ(toString(TraceEventKind::ServeDrainVictim),
                 "serve.drain_victim");
    // Lifecycle phases render as Chrome "X" spans; the markers do not.
    EXPECT_TRUE(isSpan(TraceEventKind::ServeQueued));
    EXPECT_TRUE(isSpan(TraceEventKind::ServeDispatching));
    EXPECT_TRUE(isSpan(TraceEventKind::ServeRunning));
    EXPECT_TRUE(isSpan(TraceEventKind::DrainComplete));
    EXPECT_FALSE(isSpan(TraceEventKind::ServeArrival));
    EXPECT_FALSE(isSpan(TraceEventKind::ServeDrainVictim));
}

TEST(Tracer, RingDropsOldestWhenFull)
{
    Tracer t(1, 1, 4);
    for (int i = 0; i < 6; ++i) {
        TraceEvent e;
        e.cycle = static_cast<Cycle>(i);
        e.kind = TraceEventKind::CtaDispatch;
        t.record(0, e);
    }
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto events = t.events(0);
    ASSERT_EQ(events.size(), 4u);
    // Oldest first, and the two oldest records were evicted.
    EXPECT_EQ(events.front().cycle, 2u);
    EXPECT_EQ(events.back().cycle, 5u);
}

TEST(Tracer, SimulationEmitsKernelAndCtaEvents)
{
    const GpuConfig config = cfg(CtaSchedKind::RoundRobin);
    Tracer tracer(config.numCores, config.numMemPartitions);
    runKernel(config, kernel(), Observer{&tracer, nullptr});

    const auto launches = tracer.eventsOfKind(TraceEventKind::KernelLaunch);
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].arg0, 12);

    const auto retires = tracer.eventsOfKind(TraceEventKind::KernelRetire);
    ASSERT_EQ(retires.size(), 1u);
    EXPECT_GT(retires[0].duration, 0u);

    const auto dispatches = tracer.eventsOfKind(TraceEventKind::CtaDispatch);
    const auto completes = tracer.eventsOfKind(TraceEventKind::CtaComplete);
    EXPECT_EQ(dispatches.size(), 12u);
    EXPECT_EQ(completes.size(), 12u);
    for (const TraceEvent& e : completes) {
        EXPECT_GT(e.duration, 0u);
        EXPECT_GE(e.cycle, e.duration);
    }
}

TEST(Tracer, LcsRunEmitsWindowCloseWithChosenNopt)
{
    const GpuConfig config = cfg(CtaSchedKind::Lazy);
    Tracer tracer(config.numCores, config.numMemPartitions);
    const RunResult r = runKernel(config, kernel(), Observer{&tracer, nullptr});

    const auto closes = tracer.eventsOfKind(TraceEventKind::LcsWindowClose);
    ASSERT_FALSE(closes.empty());
    for (const TraceEvent& e : closes) {
        EXPECT_GE(e.arg0, 1);          // chosen n_opt
        EXPECT_LE(e.arg0, e.arg1);     // n_opt <= n_max
        EXPECT_EQ(e.kernelId, 0);
    }
    // The trace must agree with the run's own stats.
    EXPECT_EQ(closes.size(), r.stats.namesBySuffix(".n_opt").size());
}

TEST(Tracer, BcsRunEmitsPairFormEvents)
{
    const GpuConfig config = cfg(CtaSchedKind::Block);
    Tracer tracer(config.numCores, config.numMemPartitions);
    runKernel(config, kernel(), Observer{&tracer, nullptr});

    const auto pairs = tracer.eventsOfKind(TraceEventKind::BcsPairForm);
    ASSERT_FALSE(pairs.empty());
    for (const TraceEvent& e : pairs)
        EXPECT_GE(e.arg1, 2); // block size actually dispatched
}

TEST(Tracer, ChromeExportIsValidJsonWithSchema)
{
    const GpuConfig config = cfg(CtaSchedKind::Lazy);
    Tracer tracer(config.numCores, config.numMemPartitions);
    IntervalSampler sampler(64);
    runKernel(config, kernel(), Observer{&tracer, &sampler});

    std::ostringstream os;
    tracer.writeChromeTrace(os, &sampler);
    const JsonValue doc = parseJson(os.str());

    ASSERT_TRUE(doc.has("traceEvents"));
    ASSERT_TRUE(doc.has("otherData"));
    EXPECT_EQ(doc.at("otherData").at("schema").asString(),
              "bsched-trace-v1");
    EXPECT_EQ(doc.at("otherData").at("cycle_unit").asString(), "us");

    bool saw_window_close = false;
    bool saw_cta_dispatch = false;
    bool saw_counter = false;
    for (const JsonValue& event : doc.at("traceEvents").asArray()) {
        const std::string& ph = event.at("ph").asString();
        if (ph == "M")
            continue;
        ASSERT_TRUE(event.has("ts"));
        ASSERT_TRUE(event.has("pid"));
        if (ph == "C") {
            saw_counter = true;
            continue;
        }
        const std::string& name = event.at("name").asString();
        if (name == "lcs.window_close") {
            saw_window_close = true;
            EXPECT_EQ(event.at("ph").asString(), "i");
            EXPECT_TRUE(event.has("s"));
        }
        if (name == "cta.dispatch")
            saw_cta_dispatch = true;
        if (ph == "X") {
            EXPECT_GE(event.at("dur").asNumber(), 0.0);
        }
    }
    EXPECT_TRUE(saw_window_close);
    EXPECT_TRUE(saw_cta_dispatch);
    EXPECT_TRUE(saw_counter);
}

TEST(Tracer, DisabledObserverChangesNothing)
{
    const GpuConfig config = cfg(CtaSchedKind::Lazy);
    const RunResult plain = runKernel(config, kernel());

    Tracer tracer(config.numCores, config.numMemPartitions);
    IntervalSampler sampler(64);
    const RunResult observed =
        runKernel(config, kernel(), Observer{&tracer, &sampler});

    // Observation must not perturb the simulation.
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.instrs, observed.instrs);
    EXPECT_DOUBLE_EQ(plain.ipc, observed.ipc);
}

} // namespace
} // namespace bsched
