#include "kernel/occupancy.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace bsched {

CtaFootprint
ctaFootprint(const KernelInfo& kernel)
{
    CtaFootprint fp;
    fp.warps = kernel.warpsPerCta();
    fp.threads = fp.warps * kWarpSize;
    fp.regs = fp.threads * kernel.regsPerThread;
    fp.smemBytes = kernel.smemBytesPerCta;
    return fp;
}

std::uint32_t
maxCtasPerCore(const GpuConfig& config, const KernelInfo& kernel)
{
    const CtaFootprint fp = ctaFootprint(kernel);
    if (fp.threads > config.maxThreadsPerCore ||
        fp.regs > config.regFileSizePerCore ||
        fp.smemBytes > config.smemBytesPerCore) {
        fatal("kernel ", kernel.name, ": one CTA exceeds core resources");
    }
    std::uint32_t by_threads = config.maxThreadsPerCore / fp.threads;
    std::uint32_t by_regs = config.regFileSizePerCore / fp.regs;
    std::uint32_t by_smem = fp.smemBytes == 0
        ? config.maxCtasPerCore
        : config.smemBytesPerCore / fp.smemBytes;
    return std::min({config.maxCtasPerCore, by_threads, by_regs, by_smem});
}

const char*
toString(OccupancyLimiter limiter)
{
    switch (limiter) {
      case OccupancyLimiter::CtaSlots: return "cta-slots";
      case OccupancyLimiter::Threads: return "threads";
      case OccupancyLimiter::Registers: return "registers";
      case OccupancyLimiter::SharedMem: return "shared-mem";
    }
    return "?";
}

OccupancyLimiter
occupancyLimiter(const GpuConfig& config, const KernelInfo& kernel)
{
    const CtaFootprint fp = ctaFootprint(kernel);
    const std::uint32_t n = maxCtasPerCore(config, kernel);
    if (n == config.maxCtasPerCore)
        return OccupancyLimiter::CtaSlots;
    if (n == config.maxThreadsPerCore / fp.threads)
        return OccupancyLimiter::Threads;
    if (n == config.regFileSizePerCore / fp.regs)
        return OccupancyLimiter::Registers;
    return OccupancyLimiter::SharedMem;
}

CoreResources::CoreResources(const GpuConfig& config)
    : totalCtaSlots_(config.maxCtasPerCore),
      freeCtaSlots_(config.maxCtasPerCore),
      freeThreads_(config.maxThreadsPerCore),
      freeRegs_(config.regFileSizePerCore),
      freeSmem_(config.smemBytesPerCore)
{}

bool
CoreResources::fits(const CtaFootprint& fp) const
{
    return freeCtaSlots_ >= 1 && freeThreads_ >= fp.threads &&
        freeRegs_ >= fp.regs && freeSmem_ >= fp.smemBytes;
}

void
CoreResources::allocate(const CtaFootprint& fp)
{
    if (!fits(fp))
        panic("core resources: allocate beyond capacity");
    freeCtaSlots_ -= 1;
    freeThreads_ -= fp.threads;
    freeRegs_ -= fp.regs;
    freeSmem_ -= fp.smemBytes;
}

void
CoreResources::release(const CtaFootprint& fp)
{
    if (freeCtaSlots_ >= totalCtaSlots_)
        panic("core resources: release without allocation");
    freeCtaSlots_ += 1;
    freeThreads_ += fp.threads;
    freeRegs_ += fp.regs;
    freeSmem_ += fp.smemBytes;
}

std::string
CoreResources::toString() const
{
    std::ostringstream os;
    os << "slots=" << freeCtaSlots_ << " threads=" << freeThreads_
       << " regs=" << freeRegs_ << " smem=" << freeSmem_;
    return os.str();
}

} // namespace bsched
