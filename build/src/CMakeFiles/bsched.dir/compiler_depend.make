# Empty compiler generated dependencies file for bsched.
# This may be replaced when dependencies are built.
