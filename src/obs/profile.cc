#include "obs/profile.hh"

#include <ostream>

#include "obs/sink.hh"
#include "sim/log.hh"

namespace bsched {

const char*
toString(SlotCat cat)
{
    switch (cat) {
      case SlotCat::Issued:
        return "issued";
      case SlotCat::Barrier:
        return "barrier";
      case SlotCat::Scoreboard:
        return "scoreboard";
      case SlotCat::MemStructural:
        return "mem_structural";
      case SlotCat::Pipeline:
        return "pipeline";
      case SlotCat::Empty:
        return "empty";
    }
    return "?";
}

void
CycleProfiler::onAttach(std::uint32_t num_cores,
                        std::uint32_t slots_per_core,
                        const std::string& warp_sched)
{
    if (!cores_.empty() &&
        (cores_.size() != num_cores || slotsPerCore_ != slots_per_core ||
         warpSched_ != warp_sched)) {
        fatal("cycle profiler: reattached to a different machine shape (",
              cores_.size(), "x", slotsPerCore_, " ", warpSched_, " vs ",
              num_cores, "x", slots_per_core, " ", warp_sched, ")");
    }
    cores_.resize(num_cores);
    slotsPerCore_ = slots_per_core;
    warpSched_ = warp_sched;
}

SlotCounts
CycleProfiler::total() const
{
    SlotCounts sum;
    for (const CoreProfile& core : cores_)
        sum.accumulate(core.total);
    return sum;
}

std::map<int, SlotCounts>
CycleProfiler::kernelTotals() const
{
    std::map<int, SlotCounts> sum;
    for (const CoreProfile& core : cores_) {
        for (const auto& [kernel, counts] : core.byKernel)
            sum[kernel].accumulate(counts);
    }
    return sum;
}

namespace {

void
writeCounts(std::ostream& os, const SlotCounts& counts)
{
    os << "{";
    for (std::size_t i = 0; i < kNumSlotCats; ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << toString(static_cast<SlotCat>(i))
           << "\":" << counts.counts[i];
    }
    os << "}";
}

} // namespace

void
writeProfileJson(std::ostream& os, const CycleProfiler& prof,
                 const std::string& label)
{
    os << "{\"schema\":\"bsched-profile-v1\",\"label\":\""
       << jsonEscape(label) << "\",\"warp_sched\":\""
       << jsonEscape(prof.warpSched())
       << "\",\"slots_per_core\":" << prof.slotsPerCore()
       << ",\"categories\":[";
    for (std::size_t i = 0; i < kNumSlotCats; ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << toString(static_cast<SlotCat>(i)) << "\"";
    }
    os << "],\"total\":";
    writeCounts(os, prof.total());
    os << ",\"kernels\":[";
    bool first = true;
    for (const auto& [kernel, counts] : prof.kernelTotals()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"kernel\":" << kernel << ",\"counts\":";
        writeCounts(os, counts);
        os << "}";
    }
    os << "],\"cores\":[";
    for (std::uint32_t c = 0; c < prof.numCores(); ++c) {
        if (c > 0)
            os << ",";
        const SlotCounts& counts = prof.core(c);
        os << "\n{\"core\":" << c << ",\"slot_cycles\":" << counts.total()
           << ",\"no_issue_cycles\":" << prof.noIssueCycles(c)
           << ",\"counts\":";
        writeCounts(os, counts);
        os << ",\"kernels\":[";
        bool k_first = true;
        for (const auto& [kernel, k_counts] : prof.coreKernels(c)) {
            if (!k_first)
                os << ",";
            k_first = false;
            os << "{\"kernel\":" << kernel << ",\"counts\":";
            writeCounts(os, k_counts);
            os << "}";
        }
        os << "]}";
    }
    os << "]}\n";
}

} // namespace bsched
