/**
 * @file
 * Unit tests for the set-associative LRU tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace bsched {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.sizeBytes = 2 * 1024; // 4 sets x 4 ways x 128B
    c.lineBytes = 128;
    c.assoc = 4;
    return c;
}

TEST(TagArray, MissThenHitAfterFill)
{
    TagArray tags(smallCache(), "t");
    EXPECT_FALSE(tags.access(0x1000, 1));
    tags.fill(0x1000, 1);
    EXPECT_TRUE(tags.access(0x1000, 2));
    EXPECT_EQ(tags.accesses(), 2u);
    EXPECT_EQ(tags.hits(), 1u);
    EXPECT_EQ(tags.misses(), 1u);
}

TEST(TagArray, ProbeDoesNotCountOrTouch)
{
    TagArray tags(smallCache(), "t");
    tags.fill(0x1000, 1);
    EXPECT_TRUE(tags.probe(0x1000));
    EXPECT_FALSE(tags.probe(0x2000));
    EXPECT_EQ(tags.accesses(), 0u);
}

TEST(TagArray, LruEvictsLeastRecentlyUsed)
{
    const CacheConfig cfg = smallCache();
    TagArray tags(cfg, "t");
    // Fill one set (set 0): lines whose index % 4 == 0.
    const Addr set_stride = 4 * 128;
    for (int w = 0; w < 4; ++w)
        tags.fill(w * set_stride, static_cast<Cycle>(w + 1));
    // Touch line 0 to make it MRU.
    EXPECT_TRUE(tags.access(0, 10));
    // Next fill evicts line at set_stride (LRU).
    const Eviction ev = tags.fill(4 * set_stride, 11);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, set_stride);
    EXPECT_TRUE(tags.probe(0));
}

TEST(TagArray, EvictionReconstructsLineAddress)
{
    TagArray tags(smallCache(), "t");
    const Addr victim = 0x1230 * 128; // arbitrary line
    tags.fill(victim, 1);
    // Fill 4 more lines in the same set to force it out.
    const Addr set_stride = 4 * 128;
    for (int w = 1; w <= 4; ++w)
        tags.fill(victim + w * set_stride, static_cast<Cycle>(w + 1));
    // One of the evictions must be the original victim.
    EXPECT_FALSE(tags.probe(victim));
}

TEST(TagArray, DirtyBitTracksThroughEviction)
{
    TagArray tags(smallCache(), "t");
    tags.fill(0x1000, 1);
    EXPECT_TRUE(tags.markDirty(0x1000));
    const Addr set_stride = 4 * 128;
    Eviction dirty_evict;
    for (int w = 1; w <= 4; ++w) {
        const Eviction ev =
            tags.fill(0x1000 + w * set_stride, static_cast<Cycle>(w + 1));
        if (ev.valid && ev.lineAddr == 0x1000)
            dirty_evict = ev;
    }
    ASSERT_TRUE(dirty_evict.valid);
    EXPECT_TRUE(dirty_evict.dirty);
}

TEST(TagArray, MarkDirtyOnAbsentLineFails)
{
    TagArray tags(smallCache(), "t");
    EXPECT_FALSE(tags.markDirty(0x5000));
}

TEST(TagArray, DoubleFillDies)
{
    TagArray tags(smallCache(), "t");
    tags.fill(0x1000, 1);
    EXPECT_DEATH(tags.fill(0x1000, 2), "already-present");
}

TEST(TagArray, FlushInvalidatesEverything)
{
    TagArray tags(smallCache(), "t");
    tags.fill(0x1000, 1);
    tags.flushAll();
    EXPECT_FALSE(tags.probe(0x1000));
}

TEST(TagArray, SameCycleFillsBreakTiesBySequence)
{
    TagArray tags(smallCache(), "t");
    const Addr set_stride = 4 * 128;
    for (int w = 0; w < 4; ++w)
        tags.fill(w * set_stride, 5); // all at cycle 5
    const Eviction ev = tags.fill(4 * set_stride, 5);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u); // first-filled is the victim
}

TEST(TagArray, StatsExport)
{
    TagArray tags(smallCache(), "x");
    tags.access(0x1000, 1);
    tags.fill(0x1000, 1);
    tags.access(0x1000, 2);
    StatSet stats;
    tags.addStats(stats, "x");
    EXPECT_DOUBLE_EQ(stats.get("x.access"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("x.hit"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("x.miss"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("x.fill"), 1.0);
}

} // namespace
} // namespace bsched
