/**
 * @file
 * Experiment harness: single-kernel runs, static CTA-limit sweeps and
 * oracle selection. Shared by the bench binaries, examples and the
 * integration tests.
 */

#ifndef BSCHED_HARNESS_RUNNER_HH
#define BSCHED_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "kernel/kernel_info.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bsched {

/** Outcome of one simulated kernel run. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t instrs = 0;
    double ipc = 0.0;
    StatSet stats;

    /** Aggregate L1D miss rate across all cores (loads + stores). */
    double l1MissRate() const;

    /** Aggregate L2 miss rate across partitions. */
    double l2MissRate() const;

    /** DRAM row-buffer hit rate across channels. */
    double dramRowHitRate() const;
};

/** Run one kernel to completion under @p config. */
RunResult runKernel(const GpuConfig& config, const KernelInfo& kernel);

/**
 * Run one kernel with observability hooks attached (tracing and/or
 * interval sampling). The pointers in @p obs are non-owning and the
 * counters/events accumulate into the caller's objects; the simulated
 * outcome is identical to the unobserved overload.
 */
RunResult runKernel(const GpuConfig& config, const KernelInfo& kernel,
                    Observer obs);

/** Run a suite workload by name. */
RunResult runWorkload(const GpuConfig& config, const std::string& name);

/**
 * Run @p kernel once per static CTA limit in [1, limit_max], returning
 * results indexed by limit-1. Uses the baseline round-robin scheduler.
 * The limits are independent simulation points and run across @p jobs
 * worker threads (0 = resolveJobs() default; results are identical for
 * any job count).
 */
std::vector<RunResult> sweepCtaLimit(GpuConfig config,
                                     const KernelInfo& kernel,
                                     std::uint32_t limit_max,
                                     unsigned jobs = 0);

/** The static-best CTA limit for a kernel (the paper's oracle). */
struct OracleResult
{
    std::uint32_t bestLimit = 0;
    std::uint32_t maxLimit = 0;
    std::vector<RunResult> byLimit; ///< index = limit - 1
};

/**
 * Sweep limits up to the kernel's occupancy max and pick the best IPC.
 * The sweep fans out across @p jobs worker threads (0 = default).
 */
OracleResult oracleStaticBest(const GpuConfig& config,
                              const KernelInfo& kernel,
                              unsigned jobs = 0);

/** Convenience: a GTX480-class config with the given policies. */
GpuConfig makeConfig(WarpSchedKind warp_sched, CtaSchedKind cta_sched);

} // namespace bsched

#endif // BSCHED_HARNESS_RUNNER_HH
