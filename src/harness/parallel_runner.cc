#include "harness/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>

#include "harness/thread_pool.hh"

namespace bsched {

namespace {

std::atomic<bool> g_progress{false};

/**
 * Stderr heartbeat for one grid: thread-safe, rate-limited to one line
 * per 100ms, always reporting the final point so "n/n" is never lost.
 */
class ProgressMeter
{
  public:
    explicit ProgressMeter(std::size_t total)
        : total_(total), start_(Clock::now()), lastPrint_(start_)
    {}

    void
    completed()
    {
        const std::size_t done = ++done_;
        const Clock::time_point now = Clock::now();
        std::lock_guard<std::mutex> lock(mutex_);
        if (done != total_ &&
            now - lastPrint_ < std::chrono::milliseconds(100)) {
            return;
        }
        lastPrint_ = now;
        const double secs =
            std::chrono::duration<double>(now - start_).count();
        const double rate =
            secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
        std::fprintf(stderr, "harness: %zu/%zu points (%.1f points/s)%s",
                     done, total_, rate, done == total_ ? "\n" : "\r");
        std::fflush(stderr);
    }

  private:
    using Clock = std::chrono::steady_clock;

    std::size_t total_;
    std::atomic<std::size_t> done_{0};
    std::mutex mutex_;
    Clock::time_point start_;
    Clock::time_point lastPrint_;
};

} // namespace

void
setHarnessProgress(bool enabled)
{
    g_progress.store(enabled, std::memory_order_relaxed);
}

bool
harnessProgressEnabled()
{
    return g_progress.load(std::memory_order_relaxed);
}

// The lock-free contract of the grid runner: a point must be able to own
// private copies of its inputs. If GpuConfig or KernelInfo ever grow
// reference semantics (shared caches, interned programs, global pools),
// concurrent points would start aliasing state and the no-locking claim
// below breaks — revisit ParallelRunner before removing these.
static_assert(std::is_copy_constructible_v<GpuConfig>,
              "grid points must own their GpuConfig copy");
static_assert(std::is_copy_constructible_v<KernelInfo>,
              "grid points must own their KernelInfo copy");

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("BSCHED_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{}

void
ParallelRunner::forEachIndex(std::size_t n,
                             const std::function<void(std::size_t)>& fn) const
{
    if (n == 0)
        return;
    const bool progress = harnessProgressEnabled();
    ProgressMeter meter(n);
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            if (progress)
                meter.completed();
        }
        return;
    }
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, &meter, progress, i] {
            fn(i);
            if (progress)
                meter.completed();
        });
    }
    pool.wait();
}

std::vector<RunResult>
ParallelRunner::run(const std::vector<SimPoint>& points) const
{
    return map<RunResult>(points.size(), [&](std::size_t i) {
        return runKernel(points[i].config, points[i].kernel);
    });
}

std::vector<RunResult>
runGrid(const std::vector<SimPoint>& points, unsigned jobs)
{
    return ParallelRunner(jobs).run(points);
}

} // namespace bsched
