#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace bsched {

Table::Table(std::string title)
    : title_(std::move(title))
{}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        fatal("table row width ", row.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addRow(const std::string& label, const std::vector<double>& values,
              int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(fmt(v, precision));
    addRow(std::move(row));
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
barChart(const std::string& title,
         const std::vector<std::pair<std::string, double>>& data,
         int width, int precision)
{
    std::ostringstream os;
    if (!title.empty())
        os << "== " << title << " ==\n";
    double max_val = 0.0;
    std::size_t label_w = 0;
    for (const auto& [label, value] : data) {
        max_val = std::max(max_val, value);
        label_w = std::max(label_w, label.size());
    }
    for (const auto& [label, value] : data) {
        int bar = (max_val > 0.0)
            ? static_cast<int>(value / max_val * width + 0.5) : 0;
        os << std::left << std::setw(static_cast<int>(label_w) + 1) << label
           << "|" << std::string(static_cast<std::size_t>(bar), '#')
           << std::string(static_cast<std::size_t>(width - bar), ' ')
           << "| " << fmt(value, precision) << "\n";
    }
    return os.str();
}

} // namespace bsched
