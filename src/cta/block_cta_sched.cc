#include "cta/block_cta_sched.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

std::uint32_t
BlockCtaScheduler::residencyCap(std::uint32_t core_id,
                                const KernelInstance& kernel) const
{
    (void)core_id;
    return staticCap(*kernel.info);
}

void
BlockCtaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                        CoreList& cores)
{
    const std::uint32_t block = config_.bcs.blockSize;
    std::vector<bool> used(cores.size(), false);

    std::vector<KernelInstance*> order;
    for (KernelInstance& kernel : kernels) {
        if (!kernel.dispatchDone())
            order.push_back(&kernel);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const KernelInstance* a, const KernelInstance* b) {
                         return a->priority < b->priority;
                     });

    for (KernelInstance* kernel : order) {
        for (std::uint32_t i = 0;
             i < cores.size() && !kernel->dispatchDone(); ++i) {
            const std::uint32_t c =
                (rrCore_ + i) % static_cast<std::uint32_t>(cores.size());
            SimtCore& core = *cores[c];
            if (used[c] || !coreAllowed(*kernel, c))
                continue;
            // The tail of the grid may be smaller than a full block.
            const std::uint32_t remaining =
                kernel->info->gridCtas() - kernel->nextCta;
            const std::uint32_t want = std::min(block, remaining);
            const std::uint32_t cap = residencyCap(c, *kernel);
            if (core.residentCtas(kernel->id) >= cap)
                continue;
            // All-or-nothing: wait until the whole block fits, so the
            // consecutive CTAs land together.
            if (!coreFitsN(core, *kernel->info, want))
                continue;
            if (core.residentCtas(kernel->id) + want >
                std::max(cap, want)) {
                continue;
            }
            const std::uint64_t seq = blockSeqCounter_++;
            for (std::uint32_t b = 0; b < want; ++b)
                dispatch(now, *kernel, core, seq);
            // Block dispatch may overshoot the residency cap by at most
            // B-1 CTAs (the final partial block), never by a full block.
            BSCHED_INVARIANT(core.residentCtas(kernel->id) <=
                                 std::max(cap, want),
                             "bcs: block dispatch overshot the residency "
                             "cap on core ", c);
            if (tracer_ != nullptr && want >= 2) {
                TraceEvent event;
                event.cycle = now;
                event.kind = TraceEventKind::BcsPairForm;
                event.kernelId = kernel->id;
                event.arg0 = static_cast<std::int64_t>(seq);
                event.arg1 = want;
                tracer_->record(tracer_->coreTrack(c), event);
            }
            used[c] = true;
        }
    }
    rrCore_ = (rrCore_ + 1) % static_cast<std::uint32_t>(cores.size());
}

void
LazyBlockCtaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                            CoreList& cores)
{
    lazy_.closeExpiredWindows(now, kernels, cores);
    BlockCtaScheduler::tick(now, kernels, cores);
}

void
LazyBlockCtaScheduler::notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                                     CoreList& cores)
{
    lazy_.notifyCtaDone(now, event, cores);
}

std::uint32_t
LazyBlockCtaScheduler::residencyCap(std::uint32_t core_id,
                                    const KernelInstance& kernel) const
{
    return lazy_.capFor(core_id, kernel);
}

void
LazyBlockCtaScheduler::addStats(StatSet& stats) const
{
    CtaScheduler::addStats(stats);
    lazy_.addStats(stats);
}

} // namespace bsched
