#include "obs/trace.hh"

#include <ostream>
#include <string>

#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "sim/log.hh"

namespace bsched {

const char*
toString(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::KernelLaunch:
        return "kernel.launch";
      case TraceEventKind::KernelRetire:
        return "kernel.retire";
      case TraceEventKind::CtaDispatch:
        return "cta.dispatch";
      case TraceEventKind::CtaComplete:
        return "cta.complete";
      case TraceEventKind::LcsWindowClose:
        return "lcs.window_close";
      case TraceEventKind::BcsPairForm:
        return "bcs.pair_form";
      case TraceEventKind::DynctaAdjust:
        return "dyncta.adjust";
      case TraceEventKind::CacheMissBurst:
        return "cache.miss_burst";
      case TraceEventKind::DramRowConflict:
        return "dram.row_conflict";
      case TraceEventKind::DrainRequest:
        return "serve.drain";
      case TraceEventKind::DrainComplete:
        return "serve.drain_complete";
      case TraceEventKind::ServeArrival:
        return "serve.arrival";
      case TraceEventKind::ServeQueued:
        return "serve.queued";
      case TraceEventKind::ServeDispatching:
        return "serve.dispatching";
      case TraceEventKind::ServeRunning:
        return "serve.running";
      case TraceEventKind::ServeDrainVictim:
        return "serve.drain_victim";
      case TraceEventKind::PhaseChange:
        return "phase.change";
    }
    panic("unknown TraceEventKind");
}

Tracer::Tracer(std::uint32_t num_cores, std::uint32_t num_partitions,
               std::size_t capacity_per_track)
    : numCores_(num_cores),
      numPartitions_(num_partitions),
      capacity_(capacity_per_track)
{
    if (capacity_ == 0)
        fatal("tracer: ring capacity must be > 0");
    tracks_.resize(gpuTrack() + 1);
    for (Ring& ring : tracks_)
        ring.buf.resize(capacity_);
}

std::uint32_t
Tracer::addTrack(const std::string& name)
{
    const auto track = static_cast<std::uint32_t>(tracks_.size());
    tracks_.emplace_back();
    tracks_.back().buf.resize(capacity_);
    extraNames_.push_back(name);
    return track;
}

std::string
Tracer::trackName(std::uint32_t track) const
{
    if (track < numCores_)
        return "core" + std::to_string(track);
    if (track < numCores_ + numPartitions_)
        return "part" + std::to_string(track - numCores_);
    if (track == gpuTrack())
        return "gpu";
    return extraNames_.at(track - gpuTrack() - 1);
}

void
Tracer::record(std::uint32_t track, const TraceEvent& event)
{
    Ring& ring = tracks_.at(track);
    if (ring.count == capacity_) {
        // Full: overwrite the oldest slot and advance the head.
        ring.buf[ring.head] = event;
        ring.head = (ring.head + 1) % capacity_;
        ++dropped_;
    } else {
        ring.buf[(ring.head + ring.count) % capacity_] = event;
        ++ring.count;
    }
    ++recorded_;
}

std::vector<TraceEvent>
Tracer::events(std::uint32_t track) const
{
    const Ring& ring = tracks_.at(track);
    std::vector<TraceEvent> out;
    out.reserve(ring.count);
    for (std::size_t i = 0; i < ring.count; ++i)
        out.push_back(ring.buf[(ring.head + i) % capacity_]);
    return out;
}

std::vector<TraceEvent>
Tracer::eventsOfKind(TraceEventKind kind) const
{
    std::vector<TraceEvent> out;
    for (std::uint32_t t = 0; t < numTracks(); ++t) {
        for (const TraceEvent& event : events(t)) {
            if (event.kind == kind)
                out.push_back(event);
        }
    }
    return out;
}

bool
isSpan(TraceEventKind kind)
{
    return kind == TraceEventKind::CtaComplete ||
        kind == TraceEventKind::KernelRetire ||
        kind == TraceEventKind::DrainComplete ||
        kind == TraceEventKind::ServeQueued ||
        kind == TraceEventKind::ServeDispatching ||
        kind == TraceEventKind::ServeRunning;
}

namespace {

void
writeEventJson(std::ostream& os, const TraceEvent& event,
               std::uint32_t track)
{
    // One simulated cycle = one trace microsecond.
    const Cycle start = event.cycle - event.duration;
    os << "{\"name\":\"" << toString(event.kind) << "\",";
    if (isSpan(event.kind)) {
        os << "\"ph\":\"X\",\"ts\":" << start
           << ",\"dur\":" << event.duration << ",";
    } else {
        os << "\"ph\":\"i\",\"ts\":" << event.cycle << ",\"s\":\"t\",";
    }
    os << "\"pid\":" << track << ",\"tid\":0,\"args\":{"
       << "\"kernel\":" << event.kernelId << ",\"arg0\":" << event.arg0
       << ",\"arg1\":" << event.arg1 << "}}";
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream& os,
                         const IntervalSampler* sampler) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Name each track so chrome://tracing shows core0..N, part0..M, gpu.
    for (std::uint32_t t = 0; t < numTracks(); ++t) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t
           << ",\"tid\":0,\"args\":{\"name\":\""
           << jsonEscape(trackName(t)) << "\"}}";
    }

    for (std::uint32_t t = 0; t < numTracks(); ++t) {
        for (const TraceEvent& event : events(t)) {
            sep();
            writeEventJson(os, event, t);
        }
    }

    // Gauge series become counter tracks on the gpu process.
    if (sampler != nullptr) {
        for (const auto& [name, series] : sampler->series()) {
            if (series.kind != SeriesKind::Gauge)
                continue;
            for (std::size_t i = 0; i < series.values.size(); ++i) {
                sep();
                os << "{\"name\":\"" << jsonEscape(name)
                   << "\",\"ph\":\"C\",\"ts\":" << sampler->cycles()[i]
                   << ",\"pid\":" << gpuTrack() << ",\"args\":{\"value\":"
                   << jsonNumber(series.values[i]) << "}}";
            }
        }
    }

    os << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"schema\":\"bsched-trace-v1\",\"cycle_unit\":\"us\","
       << "\"recorded\":" << recorded_ << ",\"dropped\":" << dropped_
       << "}}\n";
}

} // namespace bsched
