/**
 * @file
 * Unit tests for the SIMT core: CTA launch/retire, issue, barriers,
 * per-CTA issue accounting, and the memory interface.
 */

#include <gtest/gtest.h>

#include "core/simt_core.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.aluLatency = 2;
    return c;
}

KernelInfo
aluKernel(std::uint32_t threads = 64, std::uint32_t trips = 4)
{
    KernelInfo k;
    k.name = "alu";
    k.grid = {8, 1, 1};
    k.cta = {threads, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(trips).alu(2, false).endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

KernelInfo
loadKernel()
{
    KernelInfo k;
    k.name = "ld";
    k.grid = {4, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    p.base = 0x100000;
    const auto id = b.pattern(p);
    b.load(id).alu(1);
    k.program = b.build();
    k.validate();
    return k;
}

KernelInfo
barrierKernel()
{
    KernelInfo k;
    k.name = "bar";
    k.grid = {2, 1, 1};
    k.cta = {64, 1, 1}; // 2 warps
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(3).alu(1, false).barrier().alu(1, false).endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

/** Drive the core until it idles (panics via maxCycles guard in tests). */
Cycle
runToIdle(SimtCore& core, Cycle start = 0, Cycle budget = 100000)
{
    Cycle t = start;
    while (!core.idle() && t < start + budget) {
        core.tick(t);
        ++t;
    }
    return t;
}

TEST(SimtCore, AluKernelCtaRunsToCompletion)
{
    SimtCore core(cfg(), 0);
    const KernelInfo k = aluKernel();
    EXPECT_TRUE(core.canAccept(k));
    core.launchCta(1, k, 0, 0, 0);
    EXPECT_EQ(core.residentCtas(), 1u);
    runToIdle(core, 1);
    EXPECT_TRUE(core.idle());
    const auto done = core.drainCompletedCtas();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].ctaId, 0u);
    EXPECT_EQ(done[0].kernelId, 0);
    // 2 warps x 4 trips x 2 instrs.
    EXPECT_EQ(done[0].issuedInstrs, 16u);
    EXPECT_EQ(core.instrsIssued(), 16u);
}

TEST(SimtCore, DualIssueUsesBothSchedulers)
{
    SimtCore core(cfg(), 0);
    // Plenty of independent warps: expect ~2 IPC.
    const KernelInfo k = aluKernel(256, 50);
    core.launchCta(0, k, 0, 0, 0);
    const Cycle end = runToIdle(core);
    const double ipc =
        static_cast<double>(core.instrsIssued()) / static_cast<double>(end);
    EXPECT_GT(ipc, 1.5);
}

TEST(SimtCore, ResourceAccountingAcrossLaunchAndRetire)
{
    const GpuConfig config = cfg();
    SimtCore core(config, 0);
    const KernelInfo k = aluKernel(256);
    const std::uint32_t n_max = maxCtasPerCore(config, k);
    std::uint32_t launched = 0;
    while (core.canAccept(k)) {
        core.launchCta(0, k, 0, launched, launched);
        ++launched;
    }
    EXPECT_EQ(launched, n_max);
    runToIdle(core, 1);
    EXPECT_EQ(core.residentCtas(), 0u);
    EXPECT_TRUE(core.canAccept(k));
    EXPECT_EQ(core.resources().freeThreads(), config.maxThreadsPerCore);
}

TEST(SimtCore, LaunchWithoutCapacityDies)
{
    SimtCore core(cfg(), 0);
    const KernelInfo k = aluKernel(256);
    while (core.canAccept(k))
        core.launchCta(0, k, 0, 0, 0);
    EXPECT_DEATH(core.launchCta(0, k, 0, 99, 99), "without capacity");
}

TEST(SimtCore, LoadKernelGeneratesMemoryTraffic)
{
    SimtCore core(cfg(), 2);
    const KernelInfo k = loadKernel();
    core.launchCta(0, k, 0, 0, 0);
    Cycle t = 0;
    while (!core.hasOutgoing() && t < 100)
        core.tick(t++);
    ASSERT_TRUE(core.hasOutgoing());
    const MemRequest req = core.popOutgoing();
    EXPECT_EQ(req.coreId, 2);
    EXPECT_FALSE(req.write);
    // The dependent ALU cannot issue until the fill arrives.
    const std::uint64_t before = core.instrsIssued();
    for (int i = 0; i < 50; ++i)
        core.tick(t++);
    EXPECT_EQ(core.instrsIssued(), before);
    core.deliverResponse(t, {req.lineAddr, 2});
    for (int i = 0; i < 10; ++i)
        core.tick(t++);
    EXPECT_GT(core.instrsIssued(), before);
}

TEST(SimtCore, BarrierSynchronizesWarps)
{
    SimtCore core(cfg(), 0);
    const KernelInfo k = barrierKernel();
    core.launchCta(0, k, 0, 0, 0);
    runToIdle(core, 1);
    EXPECT_TRUE(core.idle());
    const auto done = core.drainCompletedCtas();
    ASSERT_EQ(done.size(), 1u);
    // 2 warps x 3 trips x 3 instrs (alu, bar, alu).
    EXPECT_EQ(done[0].issuedInstrs, 18u);
}

TEST(SimtCore, PerKernelIssueCountsAreSeparate)
{
    SimtCore core(cfg(), 0);
    const KernelInfo a = aluKernel(64, 2);
    const KernelInfo b = aluKernel(64, 8);
    core.launchCta(0, a, 0, 0, 0);
    core.launchCta(0, b, 1, 0, 1);
    runToIdle(core, 1);
    core.drainCompletedCtas();
    EXPECT_EQ(core.instrsIssued(0), 2u * 2 * 2);
    EXPECT_EQ(core.instrsIssued(1), 2u * 8 * 2);
    EXPECT_EQ(core.instrsIssued(), core.instrsIssued(0) +
                                       core.instrsIssued(1));
}

TEST(SimtCore, CtaIssueCountsIncludeCompletedAndResident)
{
    SimtCore core(cfg(), 0);
    const KernelInfo quick = aluKernel(64, 1);
    const KernelInfo slow = aluKernel(64, 200);
    core.launchCta(0, quick, 0, 0, 0);
    core.launchCta(0, slow, 0, 1, 1);
    // Run until the quick CTA is done but the slow one is not, plus a
    // few cycles so the slow CTA (deprioritized by GTO while the quick
    // one ran) makes some progress.
    Cycle t = 1;
    while (core.residentCtas() == 2 && t < 10000)
        core.tick(t++);
    for (int extra = 0; extra < 20; ++extra)
        core.tick(t++);
    const auto counts = core.ctaIssueCounts(0);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 4u); // completed quick CTA: 2 warps x 1 x 2
    EXPECT_GT(counts[1], 0u); // resident slow CTA partial progress
}

TEST(SimtCore, KernelFirstLaunchRecorded)
{
    SimtCore core(cfg(), 0);
    const KernelInfo k = aluKernel();
    EXPECT_EQ(core.kernelFirstLaunch(0), kCycleNever);
    core.launchCta(17, k, 0, 0, 0);
    EXPECT_EQ(core.kernelFirstLaunch(0), 17u);
    core.launchCta(30, k, 0, 1, 1);
    EXPECT_EQ(core.kernelFirstLaunch(0), 17u);
}

TEST(SimtCore, StatsExportIncludesIssueBreakdown)
{
    SimtCore core(cfg(), 5);
    const KernelInfo k = barrierKernel();
    core.launchCta(0, k, 0, 0, 0);
    runToIdle(core, 1);
    StatSet stats;
    core.addStats(stats);
    EXPECT_GT(stats.get("core5.issued"), 0.0);
    EXPECT_GT(stats.get("core5.issued_alu"), 0.0);
    EXPECT_GT(stats.get("core5.issued_bar"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("core5.ctas_done"), 1.0);
}

TEST(SimtCore, SharedMemoryConflictsSerializeIssue)
{
    GpuConfig c = cfg();
    SimtCore core(c, 0);
    KernelInfo k;
    k.name = "smem";
    k.grid = {1, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder pb;
    MemPattern conflict;
    conflict.kind = AccessKind::SharedBank;
    conflict.space = MemSpace::Shared;
    conflict.bankStride = 32; // 32-way conflict
    const auto id = pb.pattern(conflict);
    pb.loop(4).loadShared(id).endLoop();
    k.program = pb.build();
    k.validate();
    core.launchCta(0, k, 0, 0, 0);
    const Cycle conflicted = runToIdle(core, 1);

    SimtCore core2(c, 0);
    KernelInfo k2 = k;
    ProgramBuilder pb2;
    MemPattern clean;
    clean.kind = AccessKind::SharedBank;
    clean.space = MemSpace::Shared;
    clean.bankStride = 1;
    const auto id2 = pb2.pattern(clean);
    pb2.loop(4).loadShared(id2).endLoop();
    k2.program = pb2.build();
    core2.launchCta(0, k2, 0, 0, 0);
    const Cycle fast = runToIdle(core2, 1);
    EXPECT_GT(conflicted, fast + 50);
}

} // namespace
} // namespace bsched
