#include "mem/dram.hh"

#include <algorithm>

#include "obs/mem_profile.hh"
#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

DramChannel::DramChannel(const DramConfig& config, std::uint32_t line_bytes,
                         std::uint32_t partition_stride, std::string name)
    : config_(config), lineBytes_(line_bytes),
      partitionStride_(partition_stride), name_(std::move(name)),
      banks_(config.banksPerChannel)
{
    if (partitionStride_ == 0)
        fatal("dram ", name_, ": partition stride must be > 0");
}

std::uint32_t
DramChannel::bankOf(Addr line_addr) const
{
    const std::uint64_t local_line =
        (line_addr / lineBytes_) / partitionStride_;
    const std::uint64_t lines_per_row = config_.rowBytes / lineBytes_;
    return static_cast<std::uint32_t>((local_line / lines_per_row) %
                                      config_.banksPerChannel);
}

std::uint64_t
DramChannel::rowOf(Addr line_addr) const
{
    const std::uint64_t local_line =
        (line_addr / lineBytes_) / partitionStride_;
    const std::uint64_t lines_per_row = config_.rowBytes / lineBytes_;
    return local_line / (lines_per_row * config_.banksPerChannel);
}

void
DramChannel::push(Cycle now, Addr line_addr, bool write,
                  std::uint32_t req_id)
{
    // Callers gate on canAccept(); a push past it would silently grow
    // the queue beyond the configured capacity (panic is the always-on
    // backup).
    BSCHED_CHECK(canAccept(), "dram ", name_, ": push into full queue");
    if (!canAccept())
        panic("dram ", name_, ": push into full queue");
    queue_.push_back({line_addr, write, now, bankOf(line_addr),
                      static_cast<std::int64_t>(rowOf(line_addr)),
                      req_id});
}

void
DramChannel::service(Cycle now, std::size_t queue_index)
{
    const Request req = queue_[queue_index];
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(queue_index));

    Bank& bank = banks_[req.bank];
    const std::int64_t row = req.row;
    const bool row_hit = bank.openRow == row;
    const Cycle latency =
        row_hit ? config_.rowHitLatency : config_.rowMissLatency;
    if (row_hit) {
        ++rowHits_;
        ++bank.stats.rowHits;
    } else {
        ++rowMisses_;
        ++bank.stats.rowMisses;
        if (bank.openRow >= 0) {
            // A conflict proper: an open row had to be closed for this
            // request (first-touch row misses are not conflicts).
            ++rowConflicts_;
            ++bank.stats.conflicts;
            if (tracer_ != nullptr) {
                TraceEvent event;
                event.cycle = now;
                event.kind = TraceEventKind::DramRowConflict;
                event.arg0 = static_cast<std::int64_t>(req.bank);
                event.arg1 = row;
                tracer_->record(track_, event);
            }
        }
    }
    bank.openRow = row;
    if (memProfiler_ != nullptr)
        memProfiler_->enterStage(req.reqId, MemStage::DramService, now);

    // Array access completes after the bank latency; the burst then
    // occupies the shared data bus.
    const Cycle array_done = now + latency;
    busFreeAt_ = std::max(busFreeAt_, array_done) + config_.dataBusCycles;
    bank.busyUntil = busFreeAt_;

    if (req.write) {
        ++writes_;
    } else {
        ++reads_;
        completions_.emplace_back(busFreeAt_, req.lineAddr);
    }
}

bool
DramChannel::tick(Cycle now)
{
    if (queue_.empty())
        return false;
    const std::size_t window = std::min(queue_.size(), kScanWindow);

    // Starvation guard: when the oldest request has waited too long,
    // stop preferring row hits so its bank eventually frees for it.
    const bool starving =
        queue_.front().arrive + config_.maxStarveCycles <= now;

    // First choice: oldest row-buffer hit on a free bank.
    if (!starving) {
        for (std::size_t i = 0; i < window; ++i) {
            const Request& req = queue_[i];
            const Bank& bank = banks_[req.bank];
            if (bank.busyUntil <= now && bank.openRow == req.row) {
                service(now, i);
                return true;
            }
        }
    }
    // Fallback: oldest request on a free bank.
    for (std::size_t i = 0; i < window; ++i) {
        if (banks_[queue_[i].bank].busyUntil <= now) {
            service(now, i);
            return true;
        }
    }
    return false;
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    // Completion times are monotone (shared data bus), so the front is
    // the earliest deliverable response.
    Cycle next =
        completions_.empty() ? kCycleNever : completions_.front().first;
    if (!queue_.empty()) {
        const std::size_t window = std::min(queue_.size(), kScanWindow);
        for (std::size_t i = 0; i < window; ++i) {
            const Bank& bank = banks_[queue_[i].bank];
            next = std::min(next, std::max(bank.busyUntil, now));
        }
    }
    return next;
}

bool
DramChannel::responseReady(Cycle now) const
{
    return !completions_.empty() && completions_.front().first <= now;
}

Addr
DramChannel::popResponse(Cycle now)
{
    BSCHED_CHECK(responseReady(now),
                 "dram ", name_, ": popResponse before ready");
    if (!responseReady(now))
        panic("dram ", name_, ": popResponse before ready");
    Addr line = completions_.front().second;
    completions_.pop_front();
    return line;
}

void
DramChannel::setTracer(Tracer* tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
}

void
DramChannel::addStats(StatSet& stats, const std::string& prefix) const
{
    stats.add(prefix + ".read", static_cast<double>(reads_));
    stats.add(prefix + ".write", static_cast<double>(writes_));
    stats.add(prefix + ".row_hit", static_cast<double>(rowHits_));
    stats.add(prefix + ".row_miss", static_cast<double>(rowMisses_));
    stats.add(prefix + ".row_conflict", static_cast<double>(rowConflicts_));
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        const std::string bank = prefix + ".bank" + std::to_string(b);
        stats.add(bank + ".row_hit",
                  static_cast<double>(banks_[b].stats.rowHits));
        stats.add(bank + ".row_miss",
                  static_cast<double>(banks_[b].stats.rowMisses));
        stats.add(bank + ".row_conflict",
                  static_cast<double>(banks_[b].stats.conflicts));
    }
}

} // namespace bsched
