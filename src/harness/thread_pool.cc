#include "harness/thread_pool.hh"

#include <algorithm>

namespace bsched {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(1u, threads);
    workers_.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    taskReady_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return tasks_.empty() && inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++inFlight_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (tasks_.empty() && inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace bsched
