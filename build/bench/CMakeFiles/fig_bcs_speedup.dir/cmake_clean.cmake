file(REMOVE_RECURSE
  "CMakeFiles/fig_bcs_speedup.dir/fig_bcs_speedup.cc.o"
  "CMakeFiles/fig_bcs_speedup.dir/fig_bcs_speedup.cc.o.d"
  "fig_bcs_speedup"
  "fig_bcs_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bcs_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
