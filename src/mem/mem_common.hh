/**
 * @file
 * Messages exchanged between SIMT cores and memory partitions across the
 * interconnect. Requests and responses carry line-aligned addresses.
 */

#ifndef BSCHED_MEM_MEM_COMMON_HH
#define BSCHED_MEM_MEM_COMMON_HH

#include <cstdint>

#include "sim/types.hh"

namespace bsched {

/** A line-granular memory request from a core to a partition. */
struct MemRequest
{
    Addr lineAddr = 0;
    bool write = false;
    std::uint16_t coreId = 0;
    /** Memory-profiler record id; 0 (the default) means untracked. */
    std::uint32_t reqId = 0;
};

/** A read-fill response from a partition to a core. */
struct MemResponse
{
    Addr lineAddr = 0;
    std::uint16_t coreId = 0;
    /** Memory-profiler record id carried back from the request. */
    std::uint32_t reqId = 0;
};

} // namespace bsched

#endif // BSCHED_MEM_MEM_COMMON_HH
