file(REMOVE_RECURSE
  "CMakeFiles/fig_baws.dir/fig_baws.cc.o"
  "CMakeFiles/fig_baws.dir/fig_baws.cc.o.d"
  "fig_baws"
  "fig_baws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_baws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
