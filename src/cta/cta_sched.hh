/**
 * @file
 * CTA (thread block) scheduler interface and the baseline GigaThread-like
 * round-robin policy: greedily fill every core to its occupancy limit,
 * assigning CTAs to cores in round-robin order.
 */

#ifndef BSCHED_CTA_CTA_SCHED_HH
#define BSCHED_CTA_CTA_SCHED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simt_core.hh"
#include "kernel/kernel_info.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bsched {

class Tracer;

/** A kernel in flight on the GPU. */
struct KernelInstance
{
    const KernelInfo* info = nullptr;
    int id = kInvalidId;
    std::uint32_t nextCta = 0;  ///< next CTA id to dispatch
    std::uint32_t ctasDone = 0;
    Cycle launchCycle = 0;
    Cycle doneCycle = kCycleNever;
    /** Cycle the first CTA was dispatched to a core (kCycleNever until
     *  then) — the admitted→dispatching boundary in serving spans. */
    Cycle firstDispatchCycle = kCycleNever;
    /** Core range this kernel may use (spatial partitioning); end
     *  exclusive, -1 = all cores. */
    int coreBegin = 0;
    int coreEnd = -1;
    /** Dispatch priority: lower values are offered CTAs first. */
    int priority = 0;

    bool dispatchDone() const { return nextCta >= info->gridCtas(); }
    bool finished() const { return ctasDone >= info->gridCtas(); }
};

using CoreList = std::vector<std::unique_ptr<SimtCore>>;

/** Policy deciding which CTA goes to which core, and when. */
class CtaScheduler
{
  public:
    explicit CtaScheduler(const GpuConfig& config);
    virtual ~CtaScheduler() = default;

    /** Attempt dispatches for this cycle. */
    virtual void tick(Cycle now, std::vector<KernelInstance>& kernels,
                      CoreList& cores) = 0;

    /**
     * Earliest cycle >= @p now at which this policy must run again even
     * if the whole GPU stays quiet — its internal time-driven deadlines
     * (LCS fixed monitoring windows, DYNCTA sampling periods). Purely
     * event-driven policies return kCycleNever: under the quiet-cycle
     * precondition their dispatch eligibility only changes on observable
     * events (a CTA completion, a resource release), which end the
     * fast-forwarded span anyway.
     */
    virtual Cycle nextEventCycle(Cycle now,
                                 const std::vector<KernelInstance>& kernels,
                                 const CoreList& cores) const;

    /** Total CTAs dispatched; the GPU's quiet-cycle gate reads the
     *  per-cycle delta. */
    std::uint64_t dispatches() const { return dispatches_; }

    /**
     * CTA-drain preemption: while @p kernel_id is draining, every policy
     * stops offering it new CTAs (dispatchOrder() filters it out), so
     * its in-flight CTAs run to completion and the resources they free
     * go to the remaining kernels. Dispatch resumes from the frozen
     * nextCta cursor when the drain is lifted — no CTA is ever killed
     * or re-executed, which is what keeps the mechanism exact on a
     * simulator with no context-save hardware (Pai et al.'s SM-draining
     * preemption). Idempotent; applies to all policies via the shared
     * dispatch-order filter.
     */
    void setDraining(int kernel_id, bool draining);

    /** True while @p kernel_id is being drained. */
    bool isDraining(int kernel_id) const;

    /** Total drain requests accepted (observability). */
    std::uint64_t drainRequests() const { return drainRequests_; }

    /** A CTA finished on a core (book-keeping hook for LCS). */
    virtual void notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                               CoreList& cores);

    /** Human-readable policy name. */
    virtual const char* name() const = 0;

    /** Export policy-internal stats (e.g. LCS decisions). */
    virtual void addStats(StatSet& stats) const;

    /**
     * Attach the event tracer (observability): policy decisions — LCS
     * window closes, BCS pair dispatches, DYNCTA target moves — are
     * emitted on the affected core's track. Null detaches. Overriders
     * must forward to embedded scheduler components.
     */
    virtual void setTracer(Tracer* tracer) { tracer_ = tracer; }

    /** Factory from configuration. */
    static std::unique_ptr<CtaScheduler> create(const GpuConfig& config);

  protected:
    /** True if @p core is within the kernel's core range. */
    bool coreAllowed(const KernelInstance& kernel,
                     std::uint32_t core) const;

    /** True if @p n more CTAs of @p kernel fit on @p core right now. */
    bool coreFitsN(const SimtCore& core, const KernelInfo& kernel,
                   std::uint32_t n) const;

    /**
     * Per-core CTA cap for @p kernel from the static limit sweep knob
     * (oracle experiments): min(occupancy max, staticCtaLimit if set).
     */
    std::uint32_t staticCap(const KernelInfo& kernel) const;

    /** Dispatch one CTA of @p kernel to @p core. */
    void dispatch(Cycle now, KernelInstance& kernel, SimtCore& core,
                  std::uint64_t block_seq);

    /**
     * Rebuild the priority-sorted list of kernels with pending CTAs and
     * reset the per-core used flags. The dispatch loop runs every
     * simulated cycle, so both live in reused scratch buffers instead of
     * fresh per-tick allocations; an empty result lets tick() return
     * before touching any core.
     */
    std::vector<KernelInstance*>&
    dispatchOrder(std::vector<KernelInstance>& kernels,
                  std::size_t num_cores);

    GpuConfig config_;
    std::uint64_t blockSeqCounter_ = 0;
    std::uint64_t dispatches_ = 0;
    std::uint64_t drainRequests_ = 0;
    Tracer* tracer_ = nullptr; ///< observability hook (null = disabled)
    std::vector<KernelInstance*> orderScratch_;
    std::vector<char> usedScratch_; ///< per-core dispatched-this-cycle
    std::vector<char> draining_;    ///< per-kernel drain flag (by id)
};

/** Baseline: greedy round-robin to maximum occupancy. */
class RoundRobinCtaScheduler : public CtaScheduler
{
  public:
    explicit RoundRobinCtaScheduler(const GpuConfig& config)
        : CtaScheduler(config)
    {}

    void tick(Cycle now, std::vector<KernelInstance>& kernels,
              CoreList& cores) override;

    /**
     * Purely event-driven: greedy round-robin has no monitoring windows
     * or sampling periods, so dispatch eligibility only changes on CTA
     * completions — which end a fast-forwarded span anyway.
     */
    Cycle
    nextEventCycle(Cycle now, const std::vector<KernelInstance>& kernels,
                   const CoreList& cores) const override
    {
        (void)now;
        (void)kernels;
        (void)cores;
        return kCycleNever;
    }

    const char* name() const override { return "rr"; }
};

} // namespace bsched

#endif // BSCHED_CTA_CTA_SCHED_HH
