/**
 * @file
 * Shared scaffolding for the figure/table binaries: the --jobs command
 * line knob and the workload × config grid runner every sweep figure
 * uses instead of hand-rolled serial loops.
 *
 * All figures accept `--jobs N` (also `--jobs=N` / `-jN`) or the
 * BSCHED_JOBS environment variable; the default is the hardware
 * concurrency. Per-point results are identical for every job count —
 * only the wall-clock changes (see parallel_runner.hh).
 */

#ifndef BSCHED_BENCH_BENCH_COMMON_HH
#define BSCHED_BENCH_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/runner.hh"

namespace bsched::bench {

/**
 * Parse the shared bench command line and return the resolved worker
 * count. Recognizes "--jobs N", "--jobs=N" and "-jN"; anything else is
 * fatal() so a typo doesn't silently fall back to a serial run.
 */
unsigned parseJobs(int argc, char** argv);

/** Results of a workload × config sweep, workload-major. */
struct GridResults
{
    std::size_t numConfigs = 0;
    std::vector<RunResult> flat;

    const RunResult& at(std::size_t workload, std::size_t config) const
    {
        return flat.at(workload * numConfigs + config);
    }
};

/**
 * The shared grid runner: simulate every (workload, config) pair, fanned
 * out across @p jobs workers (0 = resolveJobs() default).
 */
GridResults runWorkloadGrid(const std::vector<std::string>& names,
                            const std::vector<GpuConfig>& configs,
                            unsigned jobs = 0);

/** As runWorkloadGrid, over prebuilt kernels instead of suite names. */
GridResults runKernelGrid(const std::vector<KernelInfo>& kernels,
                          const std::vector<GpuConfig>& configs,
                          unsigned jobs = 0);

} // namespace bsched::bench

#endif // BSCHED_BENCH_BENCH_COMMON_HH
