/**
 * @file
 * CUDA-style occupancy calculation: how many CTAs of a kernel fit on one
 * SIMT core given the four hardware limits (CTA slots, threads/warps,
 * registers, shared memory), and bookkeeping of a core's free resources
 * as CTAs come and go. This is the N_max the paper's baseline scheduler
 * always fills and LCS deliberately undershoots.
 */

#ifndef BSCHED_KERNEL_OCCUPANCY_HH
#define BSCHED_KERNEL_OCCUPANCY_HH

#include <cstdint>
#include <string>

#include "kernel/kernel_info.hh"
#include "sim/config.hh"

namespace bsched {

/** Per-CTA resource footprint of a kernel on a core. */
struct CtaFootprint
{
    std::uint32_t threads = 0; ///< rounded up to warp granularity
    std::uint32_t warps = 0;
    std::uint32_t regs = 0;
    std::uint32_t smemBytes = 0;
};

/** Footprint of one CTA of @p kernel. */
CtaFootprint ctaFootprint(const KernelInfo& kernel);

/**
 * Maximum concurrent CTAs of @p kernel on one core of @p config
 * (the paper's N_max). Fatal() if even one CTA does not fit.
 */
std::uint32_t maxCtasPerCore(const GpuConfig& config,
                             const KernelInfo& kernel);

/** Which hardware limit binds the occupancy of @p kernel. */
enum class OccupancyLimiter { CtaSlots, Threads, Registers, SharedMem };

const char* toString(OccupancyLimiter limiter);

/** The binding limiter for @p kernel on @p config. */
OccupancyLimiter occupancyLimiter(const GpuConfig& config,
                                  const KernelInfo& kernel);

/**
 * Mutable view of one core's free resources. The CTA schedulers consult
 * and update this as CTAs are dispatched and retired.
 */
class CoreResources
{
  public:
    CoreResources() = default;
    explicit CoreResources(const GpuConfig& config);

    /** True if a CTA with @p fp fits right now. */
    bool fits(const CtaFootprint& fp) const;

    /** Deduct @p fp; panic() if it does not fit. */
    void allocate(const CtaFootprint& fp);

    /** Return @p fp; panic() on over-release. */
    void release(const CtaFootprint& fp);

    std::uint32_t freeCtaSlots() const { return freeCtaSlots_; }
    std::uint32_t freeThreads() const { return freeThreads_; }
    std::uint32_t freeRegs() const { return freeRegs_; }
    std::uint32_t freeSmem() const { return freeSmem_; }

    /** Number of CTAs currently resident. */
    std::uint32_t residentCtas() const { return totalCtaSlots_ - freeCtaSlots_; }

    std::string toString() const;

  private:
    std::uint32_t totalCtaSlots_ = 0;
    std::uint32_t freeCtaSlots_ = 0;
    std::uint32_t freeThreads_ = 0;
    std::uint32_t freeRegs_ = 0;
    std::uint32_t freeSmem_ = 0;
};

} // namespace bsched

#endif // BSCHED_KERNEL_OCCUPANCY_HH
