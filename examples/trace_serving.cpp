/**
 * @file
 * Serving-layer observability walkthrough: serve a bursty two-tenant
 * deadline trace under the reorder+preempt policy with the full stack
 * attached — the event tracer (one extra lane per tenant carrying the
 * request lifecycle spans), the interval sampler (serving gauges ride
 * every fenced sample), and the ServeTrace bundle (decision audit +
 * predictor accuracy) — then write a Chrome trace_event file and
 * narrate what the audit recorded.
 *
 * Open the output in chrome://tracing or https://ui.perfetto.dev: the
 * usual core/partition/GPU tracks, plus one track per tenant where each
 * request shows up as queued -> dispatching -> running spans, and
 * counter tracks for queue depth, running kernels, occupied CTA slots,
 * admission headroom and drains in flight.
 */

#include <cstdio>

#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "serve/engine.hh"
#include "serve/serve_trace.hh"
#include "serve/traffic.hh"
#include "sim/log.hh"
#include "sim/table.hh"

int
main()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug

    // A small machine makes contention — and therefore preemption —
    // easy to provoke: tenant 0 fires tight bursts of short kernels
    // with deadlines while tenant 1's long best-effort batch kernels
    // hog the cores.
    GpuConfig config = makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
    config.numCores = 4;
    config.numMemPartitions = 2;

    TrafficSpec spec;
    spec.seed = 23;
    TenantSpec latency;
    latency.process = ArrivalProcess::Bursty;
    latency.mix = {"lud", "nw"};
    latency.requests = 6;
    latency.burstLen = 3;
    latency.meanGapCycles = 400000;
    latency.intraBurstGapCycles = 1000;
    latency.deadlineSlack = 60000;
    TenantSpec batch;
    batch.process = ArrivalProcess::Poisson;
    batch.mix = {"bp"};
    batch.requests = 2;
    batch.meanGapCycles = 500000;
    spec.tenants = {latency, batch};

    ServeConfig serve;
    serve.policy = ServePolicy::ReorderPreempt;

    // Attach everything and serve the trace.
    Tracer tracer(config.numCores, config.numMemPartitions);
    IntervalSampler sampler(256);
    ServeTrace audit;
    ServingEngine engine(config, serve);
    engine.setObserver(Observer{&tracer, &sampler});
    engine.setTrace(&audit);
    const ServingRunResult result = engine.run(generateTrace(spec));

    const char* path = "trace_serving.json";
    writeFile(path, [&](std::ostream& os) {
        tracer.writeChromeTrace(os, &sampler);
    });

    std::printf("served %zu requests under %s in %llu cycles\n",
                result.outcomes.size(), toString(serve.policy),
                static_cast<unsigned long long>(result.totalCycles));
    std::printf("wrote %s (%llu events) — open in chrome://tracing and "
                "look at the tenant lanes\n\n",
                path,
                static_cast<unsigned long long>(tracer.recorded()));

    // Narrate the decision audit: every admission, deferral, preemption
    // and drain-cancel with the inputs that drove it.
    std::printf("decision audit (%zu decisions: %llu admits, %llu "
                "defers, %llu preempts, %llu drain cancels):\n",
                audit.audit.decisions.size(),
                static_cast<unsigned long long>(audit.audit.admits),
                static_cast<unsigned long long>(audit.audit.defers),
                static_cast<unsigned long long>(audit.audit.preempts),
                static_cast<unsigned long long>(audit.audit.drainCancels));
    for (const ServeDecision& d : audit.audit.decisions) {
        std::printf("  cycle %8llu %-12s",
                    static_cast<unsigned long long>(d.cycle),
                    toString(d.kind));
        if (d.kind == ServeDecisionKind::Preempt) {
            std::printf(" req %llu (%s) urgent; drained kernel %d "
                        "(predicted remainder %llu cycles)",
                        static_cast<unsigned long long>(d.seq),
                        d.workload.c_str(), d.victim,
                        static_cast<unsigned long long>(
                            d.victimPredictedRemaining));
        } else if (d.kind == ServeDecisionKind::DrainCancel) {
            std::printf(" kernel %d resumed (%s)", d.victim,
                        d.reason.c_str());
        } else {
            std::printf(" req %llu (%s) queue=%llu headroom=%llu "
                        "reason=%s",
                        static_cast<unsigned long long>(d.seq),
                        d.workload.c_str(),
                        static_cast<unsigned long long>(d.queueDepth),
                        static_cast<unsigned long long>(d.headroomSlots),
                        d.reason.c_str());
        }
        std::printf("\n");
    }

    // Drain-preemption cost, straight from the GPU's accounting.
    std::printf("\ndrain cost: %llu requested, %llu completed "
                "(%llu cycles request->empty), %llu cancelled early\n",
                static_cast<unsigned long long>(result.drainRequests),
                static_cast<unsigned long long>(result.drainsCompleted),
                static_cast<unsigned long long>(result.drainLatencyCycles),
                static_cast<unsigned long long>(result.drainCancels));

    // Predictor accuracy: one (predicted, actual) pair per completion,
    // plus the per-workload series showing the EWMA converging.
    const PredictorAccuracy& acc = audit.accuracy;
    std::printf("\npredictor accuracy over %llu completions: mean |err| "
                "%s cycles (%llu over, %llu under, %llu exact)\n",
                static_cast<unsigned long long>(acc.samples()),
                fmt(acc.meanAbsError(), 0).c_str(),
                static_cast<unsigned long long>(acc.overpredictions()),
                static_cast<unsigned long long>(acc.underpredictions()),
                static_cast<unsigned long long>(acc.exactPredictions()));
    for (const auto& [workload, series] : acc.byWorkload()) {
        std::printf("  %-4s first launch |err| %10llu -> last %10llu "
                    "(%zu launches)\n",
                    workload.c_str(),
                    static_cast<unsigned long long>(
                        series.front().absError()),
                    static_cast<unsigned long long>(
                        series.back().absError()),
                    series.size());
    }
    std::printf("(the history EWMA needs one completion per workload "
                "before its estimates beat the fallback)\n");
    return 0;
}
