/**
 * @file
 * Interval sampler — the second pillar of the observability subsystem.
 *
 * The GPU top level snapshots a fixed set of counters every `period`
 * cycles (plus one final sample when the run drains), building aligned
 * time series: one shared cycle axis and one value column per counter.
 * Counter-kind series hold cumulative values (their last sample must
 * equal the final StatSet total — a property the tests enforce);
 * gauge-kind series hold instantaneous readings (occupancy, interval
 * IPC).
 *
 * Like the Tracer, the sampler is owned by the caller and attached via
 * Observer; a run without one pays a single untaken branch per cycle.
 */

#ifndef BSCHED_OBS_SAMPLER_HH
#define BSCHED_OBS_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bsched {

/** How a sampled series accumulates. */
enum class SeriesKind
{
    Counter, ///< cumulative, monotone; last sample == run total
    Gauge,   ///< instantaneous reading
};

const char* toString(SeriesKind kind);

/** One named time series aligned to the sampler's cycle axis. */
struct SampleSeries
{
    SeriesKind kind = SeriesKind::Counter;
    std::vector<double> values;
};

/** Snapshots named counters every N cycles into aligned time series. */
class IntervalSampler
{
  public:
    /** Sample every @p period cycles (fatal() on 0). */
    explicit IntervalSampler(Cycle period);

    Cycle period() const { return period_; }

    /** True when a sample is owed at @p now (every `period` cycles). */
    bool due(Cycle now) const
    {
        return cycles_.empty() ? now >= period_
                               : now >= cycles_.back() + period_;
    }

    /**
     * Earliest cycle at which due() becomes true. Idle fast-forward
     * must not skip past this: samples land on the same cycles whether
     * or not quiet spans are elided.
     */
    Cycle nextDue() const
    {
        return cycles_.empty() ? period_ : cycles_.back() + period_;
    }

    /**
     * Open a sample row at @p now. Every series must then be recorded
     * exactly once before the next begin() (enforced by panic()).
     */
    void begin(Cycle now);

    /** Record one series value for the row opened by begin(). */
    void record(const std::string& name, double value, SeriesKind kind);

    // --- queries --------------------------------------------------------

    std::size_t samples() const { return cycles_.size(); }
    const std::vector<Cycle>& cycles() const { return cycles_; }

    /** Names of all recorded series, in name order. */
    std::vector<std::string> names() const;

    /** The named series; nullptr if absent. */
    const SampleSeries* find(const std::string& name) const;

    /** Last sampled value of @p name; @p fallback if absent/empty. */
    double last(const std::string& name, double fallback = 0.0) const;

    /**
     * Per-interval deltas of a counter series (first delta is from 0).
     * fatal() on gauges — deltas of instantaneous readings are noise.
     */
    std::vector<double> deltas(const std::string& name) const;

    /** All series, in name order. */
    const std::map<std::string, SampleSeries>& series() const
    {
        return series_;
    }

    /** Render as CSV: header "cycle,<name>,...", one row per sample. */
    void writeCsv(std::ostream& os) const;

  private:
    Cycle period_;
    std::vector<Cycle> cycles_;
    std::map<std::string, SampleSeries> series_;
};

} // namespace bsched

#endif // BSCHED_OBS_SAMPLER_HH
