/**
 * @file
 * E14 (ablation) — the LCS estimator: the paper's issue-ratio formula
 * N_opt = ceil(I_total/I_greedy) against the threshold variant that
 * counts CTAs contributing >= 40% of the greedy CTA's issue. Both read
 * only the monitored instruction counts; they differ in how they treat
 * the long tail of barely-progressing CTAs.
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    std::printf("E14: LCS estimator ablation (speedup over baseline)\n\n");
    Table table("issue-ratio vs threshold estimator");
    table.setHeader({"workload", "issue-ratio", "threshold-40",
                     "threshold-60"});
    std::vector<std::vector<double>> speedups(3);
    for (const auto& name : workloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const double base_ipc = runKernel(base, kernel).ipc;
        std::vector<std::string> row = {name};
        int col = 0;
        for (const auto& [est, pct] :
             std::vector<std::pair<LcsEstimator, std::uint32_t>>{
                 {LcsEstimator::IssueRatio, 0},
                 {LcsEstimator::Threshold, 40},
                 {LcsEstimator::Threshold, 60}}) {
            GpuConfig cfg = makeConfig(WarpSchedKind::GTO,
                                       CtaSchedKind::Lazy);
            cfg.lcs.estimator = est;
            if (pct)
                cfg.lcs.thresholdPct = pct;
            const double s = runKernel(cfg, kernel).ipc / base_ipc;
            speedups[static_cast<std::size_t>(col++)].push_back(s);
            row.push_back(fmt(s, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (auto& s : speedups)
        last.push_back(fmt(geomean(s), 3));
    table.addRow(last);
    std::printf("%s", table.toText().c_str());
    return 0;
}
