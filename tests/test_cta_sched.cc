/**
 * @file
 * Unit tests for the baseline round-robin CTA scheduler and the shared
 * scheduler plumbing (core ranges, static caps, dispatch accounting).
 */

#include <gtest/gtest.h>

#include "cta/cta_sched.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg(std::uint32_t cores = 4)
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = cores;
    return c;
}

KernelInfo
kernel(std::uint32_t grid, std::uint32_t threads = 256)
{
    KernelInfo k;
    k.name = "k";
    k.grid = {grid, 1, 1};
    k.cta = {threads, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(100).alu(1).endLoop();
    k.program = b.build();
    return k;
}

CoreList
makeCores(const GpuConfig& config)
{
    CoreList cores;
    for (std::uint32_t c = 0; c < config.numCores; ++c)
        cores.push_back(std::make_unique<SimtCore>(config, c));
    return cores;
}

KernelInstance
instance(const KernelInfo& info, int id = 0)
{
    KernelInstance inst;
    inst.info = &info;
    inst.id = id;
    return inst;
}

TEST(RrCtaScheduler, FillsCoresEvenlyToOccupancy)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);

    // 6 CTAs fit per core (thread-limited); 4 cores.
    for (Cycle t = 0; t < 20; ++t)
        sched.tick(t, kernels, cores);
    for (const auto& core : cores)
        EXPECT_EQ(core->residentCtas(), 6u);
    EXPECT_EQ(kernels[0].nextCta, 24u);
}

TEST(RrCtaScheduler, AtMostOneCtaPerCorePerCycle)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);
    sched.tick(0, kernels, cores);
    EXPECT_EQ(kernels[0].nextCta, 4u); // one per core
}

TEST(RrCtaScheduler, SpraysConsecutiveCtasAcrossCores)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);
    sched.tick(0, kernels, cores);
    // CTA 0 and CTA 1 landed on different cores.
    std::vector<std::uint32_t> first_cta(cores.size(), ~0u);
    for (std::size_t c = 0; c < cores.size(); ++c) {
        for (const Warp& w : cores[c]->warps()) {
            if (w.valid) {
                first_cta[c] = w.ctaId;
                break;
            }
        }
    }
    std::sort(first_cta.begin(), first_cta.end());
    EXPECT_EQ(first_cta, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(RrCtaScheduler, RespectsStaticCtaLimit)
{
    GpuConfig config = cfg();
    config.staticCtaLimit = 2;
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);
    for (Cycle t = 0; t < 20; ++t)
        sched.tick(t, kernels, cores);
    for (const auto& core : cores)
        EXPECT_EQ(core->residentCtas(), 2u);
}

TEST(RrCtaScheduler, RespectsCoreRange)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(100);
    KernelInstance inst = instance(k);
    inst.coreBegin = 1;
    inst.coreEnd = 3;
    std::vector<KernelInstance> kernels = {inst};
    RoundRobinCtaScheduler sched(config);
    for (Cycle t = 0; t < 20; ++t)
        sched.tick(t, kernels, cores);
    EXPECT_EQ(cores[0]->residentCtas(), 0u);
    EXPECT_GT(cores[1]->residentCtas(), 0u);
    EXPECT_GT(cores[2]->residentCtas(), 0u);
    EXPECT_EQ(cores[3]->residentCtas(), 0u);
}

TEST(RrCtaScheduler, PriorityOrdersKernels)
{
    const GpuConfig config = cfg(1);
    auto cores = makeCores(config);
    const KernelInfo a = kernel(100);
    const KernelInfo b = kernel(100);
    KernelInstance ia = instance(a, 0);
    ia.priority = 1;
    KernelInstance ib = instance(b, 1);
    ib.priority = 0;
    std::vector<KernelInstance> kernels = {ia, ib};
    RoundRobinCtaScheduler sched(config);
    for (Cycle t = 0; t < 20; ++t)
        sched.tick(t, kernels, cores);
    // Kernel 1 (higher priority) got all the slots.
    EXPECT_EQ(cores[0]->residentCtas(1), 6u);
    EXPECT_EQ(cores[0]->residentCtas(0), 0u);
}

TEST(RrCtaScheduler, StopsWhenGridExhausted)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(3);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    EXPECT_TRUE(kernels[0].dispatchDone());
    std::uint32_t resident = 0;
    for (const auto& core : cores)
        resident += core->residentCtas();
    EXPECT_EQ(resident, 3u);
}

TEST(CtaScheduler, FactoryCreatesConfiguredPolicy)
{
    GpuConfig config = cfg();
    config.ctaSched = CtaSchedKind::RoundRobin;
    EXPECT_STREQ(CtaScheduler::create(config)->name(), "rr");
    config.ctaSched = CtaSchedKind::Lazy;
    EXPECT_STREQ(CtaScheduler::create(config)->name(), "lcs");
    config.ctaSched = CtaSchedKind::Block;
    EXPECT_STREQ(CtaScheduler::create(config)->name(), "bcs");
    config.ctaSched = CtaSchedKind::LazyBlock;
    EXPECT_STREQ(CtaScheduler::create(config)->name(), "lcs+bcs");
}

TEST(CtaScheduler, DispatchStatExported)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(5);
    std::vector<KernelInstance> kernels = {instance(k)};
    RoundRobinCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        sched.tick(t, kernels, cores);
    StatSet stats;
    sched.addStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("ctasched.dispatches"), 5.0);
}

} // namespace
} // namespace bsched
