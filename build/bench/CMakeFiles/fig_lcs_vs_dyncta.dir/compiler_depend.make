# Empty compiler generated dependencies file for fig_lcs_vs_dyncta.
# This may be replaced when dependencies are built.
