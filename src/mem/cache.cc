#include "mem/cache.hh"

#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

TagArray::TagArray(const CacheConfig& config, std::string name)
    : name_(std::move(name)),
      numSets_(config.numSets()),
      assoc_(config.assoc),
      lineBytes_(config.lineBytes),
      lines_(static_cast<std::size_t>(numSets_) * assoc_)
{
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        fatal("cache ", name_, ": set count must be a nonzero power of two");
}

std::uint32_t
TagArray::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / lineBytes_) &
                                      (numSets_ - 1));
}

Addr
TagArray::tagOf(Addr line_addr) const
{
    return line_addr / lineBytes_ / numSets_;
}

TagArray::Line*
TagArray::find(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const TagArray::Line*
TagArray::find(Addr line_addr) const
{
    return const_cast<TagArray*>(this)->find(line_addr);
}

bool
TagArray::probe(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

bool
TagArray::access(Addr line_addr, Cycle now)
{
    ++accesses_;
    Line* line = find(line_addr);
    if (!line) {
        if (tracer_ != nullptr && ++missRun_ >= kBurstCap) {
            TraceEvent event;
            event.cycle = now;
            event.kind = TraceEventKind::CacheMissBurst;
            event.arg0 = static_cast<std::int64_t>(missRun_);
            tracer_->record(track_, event);
            missRun_ = 0;
        }
        return false;
    }
    if (tracer_ != nullptr) {
        // A hit closes the current miss run; long runs are reported.
        if (missRun_ >= kBurstMin) {
            TraceEvent event;
            event.cycle = now;
            event.kind = TraceEventKind::CacheMissBurst;
            event.arg0 = static_cast<std::int64_t>(missRun_);
            tracer_->record(track_, event);
        }
        missRun_ = 0;
    }
    ++hits_;
    line->lastUse = now;
    line->seq = ++seqCounter_;
    // Access accounting: every access is exactly a hit or a miss; the
    // derived misses() relies on hits never outrunning accesses.
    BSCHED_INVARIANT(hits_ <= accesses_, "cache ", name_,
                     ": hits exceed accesses");
    return true;
}

void
TagArray::setTracer(Tracer* tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    missRun_ = 0;
}

bool
TagArray::markDirty(Addr line_addr)
{
    Line* line = find(line_addr);
    if (!line)
        return false;
    line->dirty = true;
    return true;
}

Eviction
TagArray::fill(Addr line_addr, Cycle now, bool dirty, std::int64_t owner)
{
    // Fill pairing: a line is fetched once per outstanding miss, so a
    // second fill of a present line means the MSHR merge logic sent a
    // duplicate fetch (contract is the testable layer, panic the
    // Release backstop against corrupting LRU state).
    BSCHED_CHECK(!probe(line_addr), "cache ", name_,
                 ": fill of already-present line");
    if (find(line_addr))
        panic("cache ", name_, ": fill of already-present line");
    const std::uint32_t set = setIndex(line_addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * assoc_];
    Line* victim = &base[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line& cand = base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (cand.lastUse < victim->lastUse ||
            (cand.lastUse == victim->lastUse && cand.seq < victim->seq)) {
            victim = &cand;
        }
    }
    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        // Reconstruct the victim's full line address from tag and set.
        ev.lineAddr = (victim->tag * numSets_ + set) * lineBytes_;
        ev.dirty = victim->dirty;
        ev.owner = victim->owner;
        if (owner >= 0) {
            // Interference profiling: count the distinct CTA owners
            // resident in this set. Assoc-sized nested scan, only paid
            // on tracked fills with a valid victim.
            for (std::uint32_t w = 0; w < assoc_; ++w) {
                const Line& cand = base[w];
                if (!cand.valid || cand.owner < 0)
                    continue;
                bool seen = false;
                for (std::uint32_t v = 0; v < w; ++v) {
                    if (base[v].valid && base[v].owner == cand.owner) {
                        seen = true;
                        break;
                    }
                }
                if (!seen)
                    ++ev.distinctOwners;
            }
        }
        ++evictions_;
        if (victim->dirty)
            ++dirtyEvictions_;
    }
    victim->valid = true;
    victim->tag = tagOf(line_addr);
    victim->dirty = dirty;
    victim->lastUse = now;
    victim->seq = ++seqCounter_;
    victim->owner = owner;
    ++fills_;
    return ev;
}

void
TagArray::flushAll()
{
    for (Line& line : lines_)
        line = Line{};
}

void
TagArray::addStats(StatSet& stats, const std::string& prefix) const
{
    stats.add(prefix + ".access", static_cast<double>(accesses_));
    stats.add(prefix + ".hit", static_cast<double>(hits_));
    stats.add(prefix + ".miss", static_cast<double>(misses()));
    stats.add(prefix + ".fill", static_cast<double>(fills_));
    stats.add(prefix + ".evict", static_cast<double>(evictions_));
    stats.add(prefix + ".evict_dirty", static_cast<double>(dirtyEvictions_));
}

} // namespace bsched
