/**
 * @file
 * Unit tests for LCS (lazy CTA scheduling): the monitoring window, the
 * N_opt estimator, and the lazy throttling behaviour.
 */

#include <gtest/gtest.h>

#include "cta/lazy_cta_sched.hh"
#include "kernel/occupancy.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 1;
    c.ctaSched = CtaSchedKind::Lazy;
    return c;
}

KernelInfo
kernel(std::uint32_t grid, std::uint32_t trips = 50)
{
    KernelInfo k;
    k.name = "k";
    k.grid = {grid, 1, 1};
    k.cta = {256, 1, 1}; // 6 CTAs per core, thread-limited
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(trips).alu(1).endLoop();
    k.program = b.build();
    return k;
}

CoreList
makeCores(const GpuConfig& config)
{
    CoreList cores;
    for (std::uint32_t c = 0; c < config.numCores; ++c)
        cores.push_back(std::make_unique<SimtCore>(config, c));
    return cores;
}

/** Drive scheduler + cores for one cycle. */
void
step(Cycle t, LazyCtaScheduler& sched, std::vector<KernelInstance>& kernels,
     CoreList& cores)
{
    for (auto& core : cores) {
        core->tick(t);
        for (const CtaDoneEvent& ev : core->drainCompletedCtas()) {
            ++kernels[static_cast<std::size_t>(ev.kernelId)].ctasDone;
            sched.notifyCtaDone(t, ev, cores);
        }
    }
    sched.tick(t, kernels, cores);
}

TEST(Lcs, FillsToMaxDuringMonitoring)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(40);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    for (Cycle t = 0; t < 10; ++t)
        step(t, sched, kernels, cores);
    // Monitoring phase behaves like the baseline: full occupancy.
    EXPECT_EQ(cores[0]->residentCtas(), 6u);
    EXPECT_EQ(sched.decidedLimit(0, 0), 0u); // not decided yet
}

TEST(Lcs, DecidesAfterFirstCtaCompletion)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(40);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 100000)
        step(t++, sched, kernels, cores);
    ASSERT_GT(kernels[0].ctasDone, 0u);
    const std::uint32_t n = sched.decidedLimit(0, 0);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, config.maxCtasPerCore);
}

TEST(Lcs, ThrottlesDispatchToDecidedLimit)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(600, 100); // plenty of CTAs left
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 1000000)
        step(t++, sched, kernels, cores);
    const std::uint32_t n = sched.decidedLimit(0, 0);
    ASSERT_GE(n, 1u);
    // Run well past the drain phase; resident CTAs settle at the limit.
    for (Cycle end = t + 50000; t < end && !kernels[0].finished(); ++t)
        step(t, sched, kernels, cores);
    if (!kernels[0].finished()) {
        EXPECT_LE(cores[0]->residentCtas(), n);
    }
}

TEST(Lcs, EstimatorMathMatchesCounts)
{
    // Pure-ALU kernel under GTO: the greedy CTA hogs issue, so
    // I_total/I_greedy stays small and LCS decides a small N.
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(40, 2000);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 2000000)
        step(t++, sched, kernels, cores);
    // Recompute what decide() saw (idempotent; counts unchanged until
    // the next completion).
    const auto counts = cores[0]->ctaIssueCounts(0);
    std::uint64_t total = 0;
    std::uint64_t greedy = 0;
    for (auto c : counts) {
        total += c;
        greedy = std::max(greedy, c);
    }
    const std::uint32_t expected = std::min<std::uint32_t>(
        config.maxCtasPerCore,
        std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>((total + greedy - 1) / greedy) +
                   config.lcs.slackCtas));
    EXPECT_EQ(sched.decidedLimit(0, 0), expected);
}

TEST(Lcs, SlackAddsHeadroom)
{
    GpuConfig config = cfg();
    config.lcs.slackCtas = 2;
    auto cores = makeCores(config);
    const KernelInfo k = kernel(40, 2000);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 2000000)
        step(t++, sched, kernels, cores);
    // Dependent-chain ALU kernel: base estimate is tiny, slack adds 2.
    EXPECT_GE(sched.decidedLimit(0, 0), 3u);
}

TEST(Lcs, FixedWindowModeDecidesOnSchedule)
{
    GpuConfig config = cfg();
    config.lcs.windowMode = LcsWindowMode::FixedCycles;
    config.lcs.fixedWindowCycles = 200;
    auto cores = makeCores(config);
    const KernelInfo k = kernel(600, 500);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    for (Cycle t = 0; t < 150; ++t)
        step(t, sched, kernels, cores);
    EXPECT_EQ(sched.decidedLimit(0, 0), 0u);
    for (Cycle t = 150; t < 260; ++t)
        step(t, sched, kernels, cores);
    EXPECT_GE(sched.decidedLimit(0, 0), 1u);
}

TEST(Lcs, DecidedLimitRespectsOccupancyCap)
{
    // Regression: the FirstCtaDone window used to clamp N_opt against
    // the raw hardware slot count (config.maxCtasPerCore) instead of
    // the kernel's occupancy cap, so a smem-limited kernel could be
    // "throttled" to more CTAs than can ever co-reside — i.e. not
    // throttled at all (the FixedCycles window already used the cap).
    GpuConfig config = cfg();
    config.lcs.slackCtas = 4; // push estimate + slack past the cap
    auto cores = makeCores(config);
    KernelInfo k = kernel(40, 2000);
    k.smemBytesPerCta = 20 * 1024; // 48KB smem per core -> 2 CTAs max
    ASSERT_EQ(maxCtasPerCore(config, k), 2u);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 2000000)
        step(t++, sched, kernels, cores);
    ASSERT_GT(kernels[0].ctasDone, 0u);
    const std::uint32_t n = sched.decidedLimit(0, 0);
    ASSERT_GE(n, 1u);
    EXPECT_LE(n, maxCtasPerCore(config, k));
}

TEST(Lcs, PerKernelMonitorsAreIndependent)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo a = kernel(40, 10);   // finishes fast
    const KernelInfo b = kernel(40, 5000); // long
    std::vector<KernelInstance> kernels;
    KernelInstance ia;
    ia.info = &a;
    ia.id = 0;
    KernelInstance ib;
    ib.info = &b;
    ib.id = 1;
    ib.priority = 1;
    kernels.push_back(ia);
    kernels.push_back(ib);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 1000000)
        step(t++, sched, kernels, cores);
    EXPECT_GE(sched.decidedLimit(0, 0), 1u);
    // Kernel 1 may still be undecided; its monitor is separate.
    const std::uint32_t n1 = sched.decidedLimit(0, 1);
    EXPECT_LE(n1, config.maxCtasPerCore);
}

TEST(Lcs, ExportsDecisionStats)
{
    const GpuConfig config = cfg();
    auto cores = makeCores(config);
    const KernelInfo k = kernel(40);
    std::vector<KernelInstance> kernels;
    KernelInstance inst;
    inst.info = &k;
    inst.id = 0;
    kernels.push_back(inst);
    LazyCtaScheduler sched(config);
    Cycle t = 0;
    while (kernels[0].ctasDone == 0 && t < 1000000)
        step(t++, sched, kernels, cores);
    StatSet stats;
    sched.addStats(stats);
    EXPECT_TRUE(stats.has("lcs.core0.k0.n_opt"));
}

} // namespace
} // namespace bsched
