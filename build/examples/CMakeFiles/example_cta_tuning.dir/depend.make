# Empty dependencies file for example_cta_tuning.
# This may be replaced when dependencies are built.
