/**
 * @file
 * The whole-GPU model: SIMT cores, interconnect, memory partitions and
 * the CTA scheduler, advanced in lock-step one core clock at a time.
 */

#ifndef BSCHED_GPU_GPU_HH
#define BSCHED_GPU_GPU_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cta/cta_sched.hh"
#include "mem/interconnect.hh"
#include "mem/mem_partition.hh"
#include "obs/observer.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bsched {

/** Top-level simulator. */
class Gpu
{
  public:
    /**
     * @param obs optional observability hooks (non-owning; must outlive
     *        the Gpu). The default — no tracer, no sampler — is the
     *        zero-cost path: nothing is allocated or recorded.
     */
    explicit Gpu(const GpuConfig& config, Observer obs = {});

    /**
     * Register a kernel for execution. The KernelInfo must outlive the
     * Gpu. @p core_begin / @p core_end (exclusive, -1 = all) restrict the
     * kernel to a core range (spatial partitioning); @p priority orders
     * dispatch when kernels compete (lower first).
     * @return the kernel id.
     */
    int launchKernel(const KernelInfo& kernel, int core_begin = 0,
                     int core_end = -1, int priority = 0);

    /**
     * Advance one cycle; returns true while work remains. When the
     * cycle turns out to be quiet (no issue, no traffic, no dispatch)
     * and config().fastForward is set, the clock then jumps over the
     * provably-quiet span to the earliest next event — counters are
     * replayed so results are byte-identical to plain stepping.
     */
    bool stepCycle();

    /** Run to completion of all launched kernels. */
    void run();

    /**
     * Take the closing sample if the attached sampler has not already
     * sampled the current cycle: ties every series off at the final
     * cycle so cumulative counters end exactly at the StatSet totals.
     * run() calls this itself; external drivers (the serving engine)
     * call it once after their own event loop ends. No-op without a
     * sampler.
     */
    void finalizeSample();

    Cycle cycle() const { return cycle_; }

    /** True once every launched kernel has finished. */
    bool finished() const;

    /**
     * CTA-drain preemption (serving layer): while draining, kernel
     * @p kernel_id receives no new CTA dispatches — its in-flight CTAs
     * run to completion and the freed resources go to co-resident
     * kernels. Lifting the drain resumes dispatch from the frozen
     * cursor. Forwards to the CTA scheduler; valid for any policy.
     */
    void requestDrain(int kernel_id, bool draining);

    /** True while @p kernel_id is being drained. */
    bool kernelDraining(int kernel_id) const;

    /** CTAs of @p kernel_id currently resident, summed over cores. */
    std::uint32_t kernelResidentCtas(int kernel_id) const;

    /** Drains that reached zero residency (drain-preemption cost). */
    std::uint64_t drainsCompleted() const { return drainsCompleted_; }

    /** Drains lifted while the victim still had CTAs resident — the
     *  preemptor finished first, so the drain never reached zero. */
    std::uint64_t drainCancels() const { return drainCancels_; }

    /**
     * Total cycles from each requestDrain(true) to the retirement of
     * the victim's last in-flight CTA, summed over completed drains —
     * the latency bound on how fast CTA-drain preemption frees space.
     */
    std::uint64_t drainLatencyCycles() const { return drainLatencyCycles_; }

    /**
     * Bound for idle fast-forward jumps: an external agent (the serving
     * engine) promises to act at @p cycle, so quiet spans must not be
     * elided past it even when no internal component has an earlier
     * event. kCycleNever (the default) removes the bound. Purely a
     * fast-forward fence — with fast-forward off the caller simply
     * observes the cycle counter, so behaviour is byte-identical either
     * way.
     */
    void setExternalEventCycle(Cycle cycle) { externalEvent_ = cycle; }

    /** True when no memory traffic is in flight anywhere. */
    bool drained() const;

    const KernelInstance& kernel(int id) const;
    std::size_t kernelCount() const { return kernels_.size(); }

    /** Cycles from a kernel's launch to its last CTA completion. */
    Cycle kernelCycles(int id) const;

    /** Whole-GPU instructions per cycle over the simulated interval. */
    double ipc() const;

    /** IPC attributed to one kernel (its instructions / its runtime). */
    double kernelIpc(int id) const;

    std::uint64_t totalInstrsIssued() const;

    /** Instructions issued so far for one kernel, summed over cores
     *  (the serving predictor's monitoring-phase signal; valid while
     *  the kernel is still running). */
    std::uint64_t kernelInstrsIssued(int id) const;

    /** Collect statistics from every component. */
    StatSet stats() const;

    const GpuConfig& config() const { return config_; }
    const CoreList& cores() const { return cores_; }
    const CtaScheduler& ctaScheduler() const { return *ctaSched_; }

    const Observer& observer() const { return obs_; }

    /**
     * Cycles elided by idle fast-forward so far. Diagnostic only —
     * deliberately not a StatSet entry, so run artifacts stay
     * byte-identical with fast-forward on and off.
     */
    std::uint64_t elidedCycles() const { return elided_; }

  private:
    /** Shuffle traffic between cores, interconnect and partitions;
     *  true if anything moved. */
    bool moveMemoryTraffic();

    /**
     * Idle fast-forward: called right after a quiet cycle with cycle_
     * already advanced. Computes the earliest cycle any component can
     * act (cores, interconnect, partitions, CTA-scheduler deadlines,
     * sampler), replays the per-cycle counter effects of the elided
     * span, and jumps the clock. Skipping is sound because every
     * component's estimate is a lower bound on its next observable
     * event given that nothing external reaches it first.
     */
    void fastForward();

    /** Snapshot the sampled counter set into the interval sampler. */
    void collectSample(Cycle now);

    /** Snapshot the cumulative counter set and close the phase-telemetry
     *  window ending at @p now (only called with obs_.phase attached). */
    void closePhaseWindow(Cycle now);

    /** Account a drain that reached zero residency at @p now. */
    void noteDrainComplete(int kernel_id, Cycle now, Cycle latency);

    Observer obs_;
    GpuConfig config_;
    CoreList cores_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    Interconnect icnt_;
    std::unique_ptr<CtaScheduler> ctaSched_;
    std::vector<KernelInstance> kernels_;
    Cycle cycle_ = 0;
    std::uint64_t elided_ = 0; ///< cycles skipped by fastForward()
    Cycle externalEvent_ = kCycleNever; ///< fast-forward fence

    // Drain-latency accounting (CTA-drain preemption cost).
    std::map<int, Cycle> drainStart_; ///< in-flight drains, by kernel id
    std::uint64_t drainsCompleted_ = 0;
    std::uint64_t drainCancels_ = 0;
    std::uint64_t drainLatencyCycles_ = 0;

    // Interval-IPC bookkeeping for the sampler.
    Cycle lastSampleCycle_ = 0;
    std::uint64_t lastSampleInstrs_ = 0;
};

} // namespace bsched

#endif // BSCHED_GPU_GPU_HH
