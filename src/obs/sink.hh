/**
 * @file
 * Structured sinks — the third pillar of the observability subsystem.
 *
 * Serializers that turn RunResults, StatSets and sampled time series
 * into machine-readable artifacts with *stable schemas*:
 *
 *  - `bsched-run-v1`   one simulated run (writeRunJson)
 *  - `bsched-bench-v1` one figure/table binary's results (BenchReport)
 *
 * Output is deterministic byte-for-byte: map iteration gives name
 * order, and jsonNumber() formats doubles locale-independently with
 * round-trip precision. Because the parallel harness is deterministic,
 * the same experiment serialized from a `--jobs 1` and a `--jobs N` run
 * produces identical bytes — a property the tests pin.
 */

#ifndef BSCHED_OBS_SINK_HH
#define BSCHED_OBS_SINK_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"
#include "obs/sampler.hh"
#include "sim/stats.hh"

namespace bsched {

// --- JSON primitives ----------------------------------------------------

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string& s);

/**
 * Deterministic JSON literal for @p value: integral doubles print as
 * integers, everything else with round-trip (%.17g) precision;
 * non-finite values become null.
 */
std::string jsonNumber(double value);

// --- writers ------------------------------------------------------------

/** Write a StatSet as a flat JSON object in name order. */
void writeStatsJson(std::ostream& os, const StatSet& stats);

/** Write a StatSet as "name,value" CSV lines (header included). */
void writeStatsCsv(std::ostream& os, const StatSet& stats);

/** Write sampled time series as a JSON object (period, cycles, data). */
void writeSeriesJson(std::ostream& os, const IntervalSampler& sampler);

/**
 * Write one run with the `bsched-run-v1` schema: label, headline
 * numbers, derived metrics, the full StatSet, and — when @p sampler is
 * non-null — its time series.
 */
void writeRunJson(std::ostream& os, const RunResult& result,
                  const std::string& label,
                  const IntervalSampler* sampler = nullptr);

// --- bench report -------------------------------------------------------

/**
 * Accumulates one figure/table binary's results and serializes them
 * with the `bsched-bench-v1` schema (the BENCH_*.json artifacts).
 * Rows and metrics serialize in insertion order; nothing
 * parallelism-dependent (job counts, wall clock) is included, so the
 * bytes are identical for any --jobs value.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench_name);

    /** Append one simulated point (label must be unique per report). */
    void addRow(const std::string& label, const RunResult& result);

    /** Append one derived scalar (geomean speedup, oracle gap, ...). */
    void addMetric(const std::string& name, double value);

    std::size_t rows() const { return rows_.size(); }

    void writeJson(std::ostream& os) const;

    /** writeJson to a string (tests, byte-identity checks). */
    std::string toJson() const;

  private:
    struct Row
    {
        std::string label;
        Cycle cycles = 0;
        std::uint64_t instrs = 0;
        double ipc = 0.0;
        double l1MissRate = 0.0;
        double l2MissRate = 0.0;
        double dramRowHitRate = 0.0;
    };

    std::string name_;
    std::vector<Row> rows_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/**
 * Open @p path and hand the stream to @p writer; fatal() if the file
 * cannot be created. Returns the number of bytes written.
 */
std::size_t writeFile(const std::string& path,
                      const std::function<void(std::ostream&)>& writer);

} // namespace bsched

#endif // BSCHED_OBS_SINK_HH
