/**
 * @file
 * E8 — LCS monitoring-window sensitivity: geomean speedup over the
 * baseline when the window ends at the first CTA completion (paper
 * default) vs after fixed cycle counts. The estimator should be robust
 * across reasonable windows.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    struct Mode
    {
        std::string label;
        LcsWindowMode mode;
        Cycle window;
    };
    const std::vector<Mode> modes = {
        {"first-cta-done", LcsWindowMode::FirstCtaDone, 0},
        {"fixed-2k", LcsWindowMode::FixedCycles, 2000},
        {"fixed-5k", LcsWindowMode::FixedCycles, 5000},
        {"fixed-10k", LcsWindowMode::FixedCycles, 10000},
        {"fixed-20k", LcsWindowMode::FixedCycles, 20000},
    };

    std::printf("E8: LCS monitoring-window sensitivity (speedup over "
                "max-CTA baseline)\n\n");

    // Baselines once per workload.
    std::vector<double> base_ipc;
    const auto names = workloadNames();
    for (const auto& name : names)
        base_ipc.push_back(runKernel(base, makeWorkload(name)).ipc);

    Table table("speedup by monitoring window");
    std::vector<std::string> header = {"workload"};
    for (const auto& mode : modes)
        header.push_back(mode.label);
    table.setHeader(header);

    std::vector<std::vector<double>> speedups(
        modes.size(), std::vector<double>());
    std::vector<std::vector<std::string>> rows;
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t m = 0; m < modes.size(); ++m) {
            GpuConfig cfg = makeConfig(WarpSchedKind::GTO,
                                       CtaSchedKind::Lazy);
            cfg.lcs.windowMode = modes[m].mode;
            cfg.lcs.fixedWindowCycles = modes[m].window;
            const double s =
                runKernel(cfg, makeWorkload(names[w])).ipc / base_ipc[w];
            speedups[m].push_back(s);
            row.push_back(fmt(s, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (std::size_t m = 0; m < modes.size(); ++m)
        last.push_back(fmt(geomean(speedups[m]), 3));
    table.addRow(last);
    std::printf("%s", table.toText().c_str());
    return 0;
}
