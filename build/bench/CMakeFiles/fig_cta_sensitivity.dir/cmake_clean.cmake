file(REMOVE_RECURSE
  "CMakeFiles/fig_cta_sensitivity.dir/fig_cta_sensitivity.cc.o"
  "CMakeFiles/fig_cta_sensitivity.dir/fig_cta_sensitivity.cc.o.d"
  "fig_cta_sensitivity"
  "fig_cta_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cta_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
