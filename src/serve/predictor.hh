/**
 * @file
 * Online kernel-runtime predictor for the serving engine's reordering
 * policies. Two signals, combined:
 *
 *  - History: an EWMA of completed runtimes per workload name. The
 *    first completion seeds it; later completions blend in, so repeat
 *    launches of a suite kernel predict well almost immediately.
 *  - Monitoring-phase IPC: once a running kernel has been resident
 *    past the monitoring window, its observed instructions-per-cycle
 *    extrapolates the remaining instructions to remaining cycles —
 *    the same observe-then-commit structure LCS uses for N_opt, reused
 *    at the kernel granularity.
 *
 * Predictions only need to *order* queued work (shortest-job-first,
 * deadline risk); absolute accuracy is not required. Everything is
 * plain double arithmetic over deterministic counters in a fixed call
 * order, so predictions — and hence schedules — are reproducible.
 */

#ifndef BSCHED_SERVE_PREDICTOR_HH
#define BSCHED_SERVE_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/mem_profile.hh"
#include "sim/types.hh"

namespace bsched {

/** EWMA-over-history + monitored-IPC runtime estimator. */
class RuntimePredictor
{
  public:
    /**
     * @param fallback_ipc whole-kernel IPC assumed when no history
     *        exists yet (a deliberately rough machine-level guess; it
     *        only seeds the ordering until real completions arrive).
     */
    explicit RuntimePredictor(double fallback_ipc = 8.0,
                              double alpha = 0.5)
        : fallbackIpc_(fallback_ipc), alpha_(alpha)
    {}

    /** Predicted total runtime of @p workload from history, falling
     *  back to @p total_instrs / fallback_ipc. */
    Cycle predictTotal(const std::string& workload,
                       std::uint64_t total_instrs) const;

    /**
     * Predicted remaining runtime of a *running* kernel. Uses the
     * monitored IPC (@p issued instructions over @p elapsed cycles)
     * once @p elapsed >= @p monitor_cycles and issue has started;
     * before that, history minus elapsed.
     */
    Cycle predictRemaining(const std::string& workload,
                           std::uint64_t total_instrs,
                           std::uint64_t issued, Cycle elapsed,
                           Cycle monitor_cycles) const;

    /** Fold a completed run into the workload's history. */
    void recordCompletion(const std::string& workload, Cycle actual);

    /** Completions recorded so far (observability). */
    std::uint64_t completions() const { return completions_; }

  private:
    struct History
    {
        double ewmaCycles = 0.0;
        std::uint64_t samples = 0;
    };

    double fallbackIpc_;
    double alpha_; ///< EWMA weight of the newest sample
    std::map<std::string, History> history_;
    std::uint64_t completions_ = 0;
};

/**
 * Predicted-vs-actual accuracy tracker for the runtime predictor. Each
 * completed launch contributes one (predicted, actual) pair: the
 * absolute cycle error is binned into the shared power-of-two
 * LatencyHistogram, and the per-workload sample series preserves order
 * so EWMA convergence (error shrinking with each repeat launch of a
 * workload) is directly visible. Pure observation — the predictor
 * itself never reads this, so attaching it cannot change a schedule.
 */
class PredictorAccuracy
{
  public:
    struct Sample
    {
        Cycle predicted = 0;
        Cycle actual = 0;

        /** Absolute prediction error in cycles. */
        Cycle absError() const
        {
            return predicted > actual ? predicted - actual
                                      : actual - predicted;
        }

        /** Signed relative error (predicted - actual) / actual. */
        double relError() const
        {
            return (static_cast<double>(predicted) -
                    static_cast<double>(actual)) /
                static_cast<double>(actual);
        }
    };

    /** Fold one completed launch into the tracker. */
    void record(const std::string& workload, Cycle predicted,
                Cycle actual);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t overpredictions() const { return over_; }
    std::uint64_t underpredictions() const { return under_; }
    std::uint64_t exactPredictions() const { return exact_; }

    /** Mean |predicted - actual| over all samples (0 when empty). */
    double meanAbsError() const;

    /** |predicted - actual| binned into power-of-two buckets. */
    const LatencyHistogram& errorHistogram() const { return errorHist_; }

    /** Samples of one workload in completion order (EWMA convergence
     *  series); empty when the workload never completed. */
    const std::vector<Sample>& workloadSeries(
        const std::string& workload) const;

    /** All per-workload series, keyed by workload name. */
    const std::map<std::string, std::vector<Sample>>& byWorkload() const
    {
        return byWorkload_;
    }

  private:
    LatencyHistogram errorHist_;
    std::map<std::string, std::vector<Sample>> byWorkload_;
    std::uint64_t samples_ = 0;
    std::uint64_t over_ = 0;  ///< predicted > actual
    std::uint64_t under_ = 0; ///< predicted < actual
    std::uint64_t exact_ = 0;
};

} // namespace bsched

#endif // BSCHED_SERVE_PREDICTOR_HH
