file(REMOVE_RECURSE
  "libbsched.a"
)
