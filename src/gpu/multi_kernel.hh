/**
 * @file
 * Multi-kernel execution policies (the paper's third mechanism).
 *
 *  - Sequential: kernels run back-to-back on the whole GPU (the classic
 *    execution model).
 *  - Spatial: concurrent kernels on disjoint core subsets (Fermi-style
 *    concurrent kernel execution).
 *  - Mixed (MCK): concurrent kernels share every core; LCS monitoring
 *    limits each kernel to its per-core N_opt so the leftover resources
 *    host the partner kernel's CTAs.
 */

#ifndef BSCHED_GPU_MULTI_KERNEL_HH
#define BSCHED_GPU_MULTI_KERNEL_HH

#include <cstdint>
#include <vector>

#include "gpu/gpu.hh"
#include "kernel/kernel_info.hh"
#include "sim/config.hh"

namespace bsched {

/** How concurrent kernels share the machine. */
enum class MultiKernelPolicy
{
    Sequential,
    Spatial,
    Mixed,
};

const char* toString(MultiKernelPolicy policy);

/** Outcome of a multi-kernel run. */
struct MultiKernelReport
{
    MultiKernelPolicy policy{};
    Cycle totalCycles = 0;
    /** Per-kernel cycles when run alone on the whole GPU. */
    std::vector<Cycle> isolatedCycles;
    /** Per-kernel cycles under the policy (launch to completion). */
    std::vector<Cycle> sharedCycles;
    StatSet stats;

    /** System throughput: sum of per-kernel isolated/shared speedups. */
    double stp() const;

    /** Average normalized turnaround time: mean of shared/isolated. */
    double antt() const;
};

/**
 * Run @p kernels under @p policy on @p config. For Spatial, cores are
 * split evenly (in launch order) unless @p spatial_split gives explicit
 * boundaries (ascending core indices, one per kernel boundary).
 * Isolated baselines are simulated with the same config on the full
 * machine, unless @p isolated_cycles supplies precomputed values (one
 * per kernel), which avoids re-simulating them across policies.
 */
MultiKernelReport runMultiKernel(const GpuConfig& config,
                                 const std::vector<const KernelInfo*>& kernels,
                                 MultiKernelPolicy policy,
                                 std::vector<int> spatial_split = {},
                                 const std::vector<Cycle>* isolated_cycles =
                                     nullptr);

} // namespace bsched

#endif // BSCHED_GPU_MULTI_KERNEL_HH
