/**
 * @file
 * E12 — composition summary: baseline, LCS, BCS+BAWS and LCS+BCS+BAWS
 * across the whole suite (geomean speedup over the baseline). Shows the
 * mechanisms compose: LCS carries the peaked workloads, BCS+BAWS the
 * locality workloads, and the combination keeps both gains.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    struct Variant
    {
        const char* label;
        WarpSchedKind warp;
        CtaSchedKind cta;
    };
    const std::vector<Variant> variants = {
        {"lcs", WarpSchedKind::GTO, CtaSchedKind::Lazy},
        {"bcs+baws", WarpSchedKind::BAWS, CtaSchedKind::Block},
        {"lcs+bcs+baws", WarpSchedKind::BAWS, CtaSchedKind::LazyBlock},
    };

    std::printf("E12: combined mechanisms, whole suite (speedup over "
                "RR+GTO baseline; %u jobs)\n\n",
                jobs);
    Table table("composition");
    table.setHeader({"workload", "type", "lcs", "bcs+baws",
                     "lcs+bcs+baws"});
    std::vector<std::vector<double>> speedups(variants.size());

    // Config 0 is the baseline; 1..N the variants.
    std::vector<GpuConfig> configs = {base};
    for (const Variant& v : variants)
        configs.push_back(makeConfig(v.warp, v.cta));

    BenchReport report("fig_combined");
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const KernelInfo kernel = makeWorkload(names[w]);
        const double base_ipc = grid.at(w, 0).ipc;
        report.addRow(names[w] + "/base", grid.at(w, 0));
        std::vector<std::string> row = {names[w],
                                        toString(kernel.typeClass)};
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const double s = grid.at(w, v + 1).ipc / base_ipc;
            speedups[v].push_back(s);
            row.push_back(fmt(s, 3));
            report.addRow(names[w] + "/" + variants[v].label,
                          grid.at(w, v + 1));
            report.addMetric(names[w] + ".speedup_" + variants[v].label,
                             s);
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean", ""};
    for (std::size_t v = 0; v < variants.size(); ++v) {
        last.push_back(fmt(geomean(speedups[v]), 3));
        report.addMetric(std::string("geomean.speedup_") +
                             variants[v].label,
                         geomean(speedups[v]));
    }
    table.addRow(last);
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: LCS carries the peaked (type-3) set, BCS+BAWS "
                "the stencil set.\nInteraction note: the combination "
                "inherits BCS's pairing bubbles on\nnon-locality kernels, "
                "and BAWS's intra-block fairness weakens the greedy\n"
                "issue skew LCS monitors, so the composition is not "
                "strictly additive.\n");

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, configs[3], makeWorkload("srad"),
                              "srad/lcs+bcs+baws");
    return 0;
}
