/**
 * @file
 * E1 — the simulator-configuration table (the paper's "simulation
 * methodology" table): the GTX480-class machine every experiment uses.
 */

#include <cstdio>

#include "sim/config.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig config = GpuConfig::gtx480();
    config.validate();
    std::printf("E1: simulated machine configuration (GTX480-class)\n\n%s",
                config.toString().c_str());
    return 0;
}
