"""ff-soundness — every idle-elidable component must bound its next event.

Idle fast-forward (PR 6) is only sound if the minimum taken in
``Gpu::fastForward()`` is a true lower bound on the next observable
event. That property is distributed: every component whose tick/step
mutates model state must expose a ``nextEventCycle``/``nextWorkCycle``
estimate, and every CTA-scheduler subclass must *explicitly* override
``nextEventCycle`` — silently inheriting the base's kCycleNever means
nobody decided whether the policy has time-driven deadlines, which is
exactly how a new policy's windows get skipped over.
"""

from __future__ import annotations

import re

from ..engine import Context, Finding, line_at

NAME = "ff-soundness"

RULES = {
    "missing-next-event": "class declares a state-mutating tick()/"
                          "step() but neither nextEventCycle() nor "
                          "nextWorkCycle(); idle fast-forward cannot "
                          "bound its next observable event",
    "inherited-never": "CtaScheduler subclass does not override "
                       "nextEventCycle(); it silently inherits "
                       "kCycleNever — override it explicitly (return "
                       "kCycleNever with a justifying comment if the "
                       "policy is purely event-driven)",
}

# The scheduler base whose default (kCycleNever) must not be inherited
# silently.
SCHEDULER_BASE = "CtaScheduler"

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(:\s*[^;{]*)?\{"
)

# A tick/step *declaration* (bool/void return as the codebase writes
# them), as opposed to a call site like ``dram_.tick(now)``.
TICK_DECL_RE = re.compile(r"\b(?:bool|void)\s+(?:tick|step)\s*\(")

NEXT_EVENT_RE = re.compile(r"\bnext(?:Event|Work)Cycle\s*\(")


def _class_bodies(text: str):
    """Yield (name, bases, body, offset) for each class in ``text``.

    ``text`` must already be comment/string-stripped. Bodies are
    extracted by brace matching from the class-opening brace.
    """
    for match in CLASS_RE.finditer(text):
        name = match.group(1)
        base_clause = match.group(2) or ""
        bases = re.findall(r"[A-Za-z_]\w*(?=\s*(?:,|$|\{))",
                           base_clause.rstrip("{").strip())
        bases = [b for b in bases
                 if b not in ("public", "private", "protected",
                              "virtual", "final")]
        depth = 0
        start = match.end() - 1
        end = start
        for pos in range(start, len(text)):
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
                if depth == 0:
                    end = pos
                    break
        yield name, bases, text[start:end + 1], match.start()


def run(ctx: Context) -> list[Finding]:
    findings: list[Finding] = []

    # First sweep: collect every class declaration in model headers so
    # derivation from the scheduler base resolves transitively.
    classes: dict[str, tuple[str, int, str, list[str]]] = {}
    for src in ctx.in_dirs("src/"):
        if not src.rel.endswith(".hh"):
            continue
        for name, bases, body, offset in _class_bodies(src.stripped):
            classes[name] = (src.rel, line_at(src.stripped, offset),
                             body, bases)

    def derives_from(name: str, base: str) -> bool:
        seen: set[str] = set()
        work = list(classes[name][3]) if name in classes else []
        while work:
            cur = work.pop()
            if cur == base:
                return True
            if cur in seen or cur not in classes:
                continue
            seen.add(cur)
            work.extend(classes[cur][3])
        return False

    for name, (rel, line, body, bases) in sorted(classes.items()):
        if not rel.startswith(("src/core/", "src/cta/", "src/mem/",
                               "src/gpu/", "src/serve/")):
            continue
        if derives_from(name, SCHEDULER_BASE):
            if not NEXT_EVENT_RE.search(body):
                findings.append(Finding(
                    file=rel, line=line,
                    rule=f"{NAME}.inherited-never",
                    message=f"{name} derives from {SCHEDULER_BASE} but "
                            "does not override nextEventCycle() — "
                            + RULES["inherited-never"],
                ))
        elif not bases:
            # Standalone components: a tick/step declaration needs a
            # matching next-event estimate in the same class. Derived
            # classes are covered by the scheduler rule above; bases
            # with virtual tick declare the estimate themselves.
            if TICK_DECL_RE.search(body) and not NEXT_EVENT_RE.search(body):
                findings.append(Finding(
                    file=rel, line=line,
                    rule=f"{NAME}.missing-next-event",
                    message=f"{name}: " + RULES["missing-next-event"],
                ))
    return findings
