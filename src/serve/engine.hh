/**
 * @file
 * The kernel-launch serving engine: an admission/dispatch layer in
 * front of Gpu::launchKernel that serves a multi-tenant trace of
 * LaunchRequests on one simulated GPU.
 *
 * Policies:
 *  - Sequential      one kernel at a time, FCFS (classic execution model)
 *  - Spatial         FCFS onto disjoint core ranges (Fermi-style CKE)
 *  - Fcfs            shared cores, arrival order, LCS-headroom admission
 *  - Reorder         + queue reordering: shortest-predicted-job-first
 *                    with earliest-deadline escalation
 *  - ReorderPreempt  + CTA-drain preemption of the longest-remaining
 *                    kernel when a deadline-urgent request is stuck
 *
 * The engine is strictly event-driven: admission/preemption decisions
 * happen only when an arrival or a completion occurred, never on a
 * bare cycle count inside a quiet span. Combined with the GPU's
 * external-event fence (setExternalEventCycle bounds idle fast-forward
 * at the next pending arrival), every run is byte-identical with fast-
 * forward on or off — the contract the serving artifacts are gated on.
 */

#ifndef BSCHED_SERVE_ENGINE_HH
#define BSCHED_SERVE_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/kernel_info.hh"
#include "obs/observer.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bsched {

class Gpu;
struct ServeTrace;
struct ServeDecision;
enum class TraceEventKind : std::uint8_t;

/** How queued launches are admitted and scheduled. */
enum class ServePolicy : std::uint8_t
{
    Sequential,
    Spatial,
    Fcfs,
    Reorder,
    ReorderPreempt,
};

const char* toString(ServePolicy policy);

/** All ServePolicy values in canonical bench order. */
std::vector<ServePolicy> allServePolicies();

/** Serving-layer knobs. */
struct ServeConfig
{
    ServePolicy policy = ServePolicy::Fcfs;

    /** In-flight kernel cap for the shared-core policies. */
    std::uint32_t maxConcurrent = 2;

    /**
     * Free CTA slots (summed over cores, after the co-residents'
     * effective LCS caps) required before a second kernel is admitted
     * alongside running ones. 0 admits eagerly on the concurrency cap
     * alone.
     */
    std::uint32_t admitHeadroomSlots = 8;

    /** Cycles a kernel must run before its monitored IPC is trusted. */
    Cycle monitorCycles = 3000;

    /** Core-range partitions for ServePolicy::Spatial. */
    std::uint32_t spatialWays = 2;

    /**
     * Deadline-risk margin: a queued request is "urgent" when
     * now + riskNum/riskDen * predicted_total crosses its deadline.
     * Kept rational so the comparison stays integral.
     */
    std::uint32_t riskNum = 3;
    std::uint32_t riskDen = 2;

    /** Whole-kernel IPC assumed by the predictor before any history. */
    double fallbackIpc = 8.0;
};

/** One engine run: per-request outcomes plus engine-level counters. */
struct ServingRunResult
{
    std::vector<RequestOutcome> outcomes;
    Cycle totalCycles = 0;        ///< last completion cycle
    std::uint64_t preemptions = 0; ///< drain-preemptions triggered
    std::uint64_t reorders = 0;    ///< admissions out of arrival order

    // Drain-preemption cost (CTA-drain mechanics, from the GPU).
    std::uint64_t drainRequests = 0;  ///< drains requested
    std::uint64_t drainCancels = 0;   ///< drains lifted before zero
    std::uint64_t drainsCompleted = 0; ///< drains that reached zero
    std::uint64_t drainLatencyCycles = 0; ///< request -> last CTA retired

    StatSet stats;                 ///< engine-level counters
};

/**
 * Serves one trace on one freshly constructed GPU. The engine owns the
 * KernelInfo pool built from the trace's workload names (kernels must
 * outlive the Gpu), the runtime predictor, and all queue state; run()
 * may be called once per instance.
 */
class ServingEngine : public SampleSource
{
  public:
    ServingEngine(const GpuConfig& gpu_config, const ServeConfig& serve);

    /** Serve @p trace to completion and report per-request outcomes. */
    ServingRunResult run(const std::vector<LaunchRequest>& trace);

    /**
     * Attach the decision audit + predictor-accuracy bundle (may be
     * null). Pure observation: the engine only writes into it, never
     * reads, so attaching cannot change a schedule.
     */
    void setTrace(ServeTrace* trace) { trace_ = trace; }

    /**
     * Attach observability hooks for the Gpu built inside run().
     * A tracer gains one extra lane per tenant carrying the request
     * lifecycle spans (arrival -> queued -> dispatching -> running);
     * a sampler additionally receives the serving gauges (queue depth,
     * running kernels, occupied CTA slots, headroom, drains in flight)
     * on every fenced sample cycle.
     */
    void setObserver(const Observer& obs) { obs_ = obs; }

    /** SampleSource: append the serving gauges to a Gpu sample. */
    void recordSample(IntervalSampler& sampler, Cycle now) override;

  private:
    /** A request admitted to the GPU and not yet finished. */
    struct Active
    {
        std::size_t outcome = 0; ///< index into outcomes_
        int kernelId = kInvalidId;
        bool preemptor = false;  ///< admitted over a draining victim
        std::vector<int> victims; ///< kernel ids drained for this one
    };

    // --- trace bookkeeping ---------------------------------------------
    void ingest(const std::vector<LaunchRequest>& trace);
    bool releaseArrivals(Cycle now);   ///< pending -> ready; true if any
    bool collectCompletions(Gpu& gpu, Cycle now);
    Cycle nextArrivalCycle() const;    ///< earliest pending release

    // --- policy ---------------------------------------------------------
    void decide(Gpu& gpu, Cycle now);
    bool tryAdmit(Gpu& gpu, Cycle now);
    void tryPreempt(Gpu& gpu, Cycle now);

    /** Position in ready_ the policy would admit next. */
    std::size_t pickNext(const Gpu& gpu, Cycle now) const;

    /** Free CTA slots after the active kernels' effective claims. */
    std::uint64_t headroomSlots(const Gpu& gpu) const;

    /** True when @p ready_pos is deadline-urgent at @p now. */
    bool urgent(std::size_t ready_pos, Cycle now) const;

    Cycle predictTotalFor(const RequestOutcome& outcome) const;
    Cycle predictRemainingFor(const Gpu& gpu, const Active& active,
                              Cycle now) const;

    void launch(Gpu& gpu, Cycle now, std::size_t ready_pos,
                bool preemptor, std::vector<int> victims);

    // --- observability (pure observation; never read back) --------------

    /** Fill the shared decision-input fields for @p ready_pos. */
    void fillDecisionInputs(const Gpu& gpu, Cycle now,
                            std::size_t ready_pos,
                            ServeDecision& decision) const;

    /** Audit one denied admission for the would-be candidate. */
    void auditDefer(const Gpu& gpu, Cycle now, const char* reason);

    /** Tracer lane of @p tenant (fatal if lanes were not created). */
    std::uint32_t tenantTrack(int tenant) const;

    /** Emit a lifecycle event on @p tenant's lane (no-op sans tracer). */
    void emitServeEvent(int tenant, TraceEventKind kind, Cycle cycle,
                        Cycle duration, std::int64_t arg0,
                        std::int64_t arg1, int kernel_id) const;

    GpuConfig gpuConfig_;
    ServeConfig cfg_;

    /** Kernel pool by workload name; outlives the Gpu built in run(). */
    std::map<std::string, KernelInfo> pool_;
    RuntimePredictor predictor_;

    std::vector<RequestOutcome> outcomes_;
    /** Outcome indices not yet released, sorted by (release, seq). */
    std::vector<std::size_t> pending_;
    /** Per-tenant FIFOs of unreleased closed-loop outcome indices. */
    std::map<int, std::vector<std::size_t>> closed_;
    /** Released, not yet admitted (release order). */
    std::vector<std::size_t> ready_;
    std::vector<Active> active_;

    std::uint32_t admitSeq_ = 0;    ///< admission counter -> priority
    std::uint64_t preemptions_ = 0;
    std::uint64_t reorders_ = 0;
    std::uint64_t headroomDenials_ = 0;
    /** Spatial: which core-range slots are busy (by way index). */
    std::vector<char> wayBusy_;
    std::map<int, std::uint32_t> wayOf_; ///< kernelId -> way
    bool ran_ = false;

    // --- observability state --------------------------------------------
    ServeTrace* trace_ = nullptr;  ///< decision audit bundle (optional)
    Observer obs_;                 ///< hooks for the Gpu built in run()
    Gpu* gpu_ = nullptr;           ///< valid only inside run()
    std::map<int, std::uint32_t> tenantTrack_; ///< tenant -> tracer lane
};

} // namespace bsched

#endif // BSCHED_SERVE_ENGINE_HH
