/**
 * @file
 * E6 — the LCS headline figure: per-workload speedup of LCS over the
 * max-CTA baseline, alongside the oracle (best static per-core CTA
 * limit). The paper's claim: LCS captures most of the oracle's gain on
 * type-3 workloads while never hurting type-1/2.
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig lcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Lazy);

    std::printf("E6: LCS speedup over max-CTA baseline vs the static "
                "oracle\n(GTO warp scheduler everywhere)\n\n");

    Table table("speedup over baseline");
    table.setHeader({"workload", "type", "base-IPC", "LCS", "oracle",
                     "oracle-N"});
    std::vector<double> lcs_speedups;
    std::vector<double> oracle_speedups;
    std::vector<std::pair<std::string, double>> bars;

    for (const auto& name : workloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const RunResult baseline = runKernel(base, kernel);
        const RunResult lazy = runKernel(lcs, kernel);
        const OracleResult oracle = oracleStaticBest(base, kernel);
        const double s_lcs = lazy.ipc / baseline.ipc;
        const double s_oracle =
            oracle.byLimit[oracle.bestLimit - 1].ipc / baseline.ipc;
        lcs_speedups.push_back(s_lcs);
        oracle_speedups.push_back(s_oracle);
        table.addRow({name, toString(kernel.typeClass),
                      fmt(baseline.ipc, 2), fmt(s_lcs, 3), fmt(s_oracle, 3),
                      std::to_string(oracle.bestLimit)});
        bars.emplace_back(name, s_lcs);
    }
    table.addRow({"geomean", "", "", fmt(geomean(lcs_speedups), 3),
                  fmt(geomean(oracle_speedups), 3), ""});
    std::printf("%s\n", table.toText().c_str());
    std::printf("%s", barChart("LCS speedup over baseline", bars).c_str());
    return 0;
}
