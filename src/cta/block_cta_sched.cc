#include "cta/block_cta_sched.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

std::uint32_t
BlockCtaScheduler::residencyCap(std::uint32_t core_id,
                                const KernelInstance& kernel) const
{
    (void)core_id;
    return staticCap(*kernel.info);
}

void
BlockCtaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                        CoreList& cores)
{
    const std::uint32_t block = config_.bcs.blockSize;
    // Cycle-derived rotation, like the round-robin baseline: this policy
    // has ticked once per cycle since 0, so `now % n` equals the old
    // stored counter and survives elided quiet spans unchanged.
    std::vector<KernelInstance*>& order = dispatchOrder(kernels,
                                                        cores.size());
    if (order.empty())
        return;
    const std::uint32_t n = static_cast<std::uint32_t>(cores.size());
    const std::uint32_t start = static_cast<std::uint32_t>(now % n);

    for (KernelInstance* kernel : order) {
        for (std::uint32_t i = 0; i < n && !kernel->dispatchDone(); ++i) {
            const std::uint32_t c = (start + i) % n;
            SimtCore& core = *cores[c];
            if (usedScratch_[c] != 0 || !coreAllowed(*kernel, c))
                continue;
            // The tail of the grid may be smaller than a full block.
            const std::uint32_t remaining =
                kernel->info->gridCtas() - kernel->nextCta;
            const std::uint32_t want = std::min(block, remaining);
            const std::uint32_t cap = residencyCap(c, *kernel);
            if (core.residentCtas(kernel->id) >= cap)
                continue;
            // All-or-nothing: wait until the whole block fits, so the
            // consecutive CTAs land together.
            if (!coreFitsN(core, *kernel->info, want))
                continue;
            if (core.residentCtas(kernel->id) + want >
                std::max(cap, want)) {
                continue;
            }
            const std::uint64_t seq = blockSeqCounter_++;
            for (std::uint32_t b = 0; b < want; ++b)
                dispatch(now, *kernel, core, seq);
            // Block dispatch may overshoot the residency cap by at most
            // B-1 CTAs (the final partial block), never by a full block.
            BSCHED_INVARIANT(core.residentCtas(kernel->id) <=
                                 std::max(cap, want),
                             "bcs: block dispatch overshot the residency "
                             "cap on core ", c);
            if (tracer_ != nullptr && want >= 2) {
                TraceEvent event;
                event.cycle = now;
                event.kind = TraceEventKind::BcsPairForm;
                event.kernelId = kernel->id;
                event.arg0 = static_cast<std::int64_t>(seq);
                event.arg1 = want;
                tracer_->record(tracer_->coreTrack(c), event);
            }
            usedScratch_[c] = 1;
        }
    }
}

void
LazyBlockCtaScheduler::tick(Cycle now, std::vector<KernelInstance>& kernels,
                            CoreList& cores)
{
    lazy_.closeExpiredWindows(now, kernels, cores);
    BlockCtaScheduler::tick(now, kernels, cores);
}

void
LazyBlockCtaScheduler::notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                                     CoreList& cores)
{
    lazy_.notifyCtaDone(now, event, cores);
}

std::uint32_t
LazyBlockCtaScheduler::residencyCap(std::uint32_t core_id,
                                    const KernelInstance& kernel) const
{
    return lazy_.capFor(core_id, kernel);
}

void
LazyBlockCtaScheduler::addStats(StatSet& stats) const
{
    CtaScheduler::addStats(stats);
    lazy_.addStats(stats);
}

} // namespace bsched
