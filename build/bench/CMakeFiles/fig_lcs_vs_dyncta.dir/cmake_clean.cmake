file(REMOVE_RECURSE
  "CMakeFiles/fig_lcs_vs_dyncta.dir/fig_lcs_vs_dyncta.cc.o"
  "CMakeFiles/fig_lcs_vs_dyncta.dir/fig_lcs_vs_dyncta.cc.o.d"
  "fig_lcs_vs_dyncta"
  "fig_lcs_vs_dyncta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lcs_vs_dyncta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
