/**
 * @file
 * E9 — BCS on the inter-CTA-locality workloads: IPC speedup over the
 * baseline scheduler and the L1D miss-rate reduction from landing
 * consecutive CTAs on the same core. Shown with the plain GTO warp
 * scheduler (BAWS is added in E10).
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig bcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Block);

    std::printf("E9: BCS (block size 2, GTO warps) on the locality "
                "subset\n\n");
    Table table("BCS vs baseline");
    table.setHeader({"workload", "base-IPC", "bcs-IPC", "speedup",
                     "base-L1miss%", "bcs-L1miss%"});
    std::vector<double> speedups;
    for (const auto& name : localityWorkloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const RunResult a = runKernel(base, kernel);
        const RunResult b = runKernel(bcs, kernel);
        speedups.push_back(b.ipc / a.ipc);
        table.addRow({name, fmt(a.ipc, 2), fmt(b.ipc, 2),
                      fmt(b.ipc / a.ipc, 3), fmt(100 * a.l1MissRate(), 1),
                      fmt(100 * b.l1MissRate(), 1)});
    }
    table.addRow({"geomean", "", "", fmt(geomean(speedups), 3), "", ""});
    std::printf("%s\n", table.toText().c_str());

    // Control group: non-locality workloads should be unaffected.
    Table control("control (no inter-CTA locality)");
    control.setHeader({"workload", "speedup"});
    std::vector<double> control_speedups;
    for (const std::string name : {"bp", "gemm", "kmeans", "nn"}) {
        const KernelInfo kernel = makeWorkload(name);
        const double s =
            runKernel(bcs, kernel).ipc / runKernel(base, kernel).ipc;
        control_speedups.push_back(s);
        control.addRow({name, fmt(s, 3)});
    }
    control.addRow({"geomean", fmt(geomean(control_speedups), 3)});
    std::printf("%s", control.toText().c_str());
    return 0;
}
