/**
 * @file
 * The core's load/store unit: accepts coalesced access batches from
 * issued memory instructions, walks each batch's lines through the L1D
 * (hit queue / MSHR merge / request to the memory partition), and reports
 * completed loads so the core can release the destination register.
 *
 * The L1D is write-through, no-write-allocate (the GPGPU-Sim default for
 * global data): stores update an existing line but never allocate, and
 * every store is forwarded to L2.
 */

#ifndef BSCHED_CORE_LDST_UNIT_HH
#define BSCHED_CORE_LDST_UNIT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "mem/cache.hh"
#include "mem/mem_common.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/queues.hh"
#include "sim/stats.hh"

namespace bsched {

class MemProfiler;

/** A finished load batch: release @p reg of @p warpId. */
struct LoadCompletion
{
    int warpId = kInvalidId;
    std::int8_t reg = kNoReg;
};

/** Why the LD/ST unit refused to admit a memory instruction. */
enum class LdstRefusal : std::uint8_t
{
    None,         ///< would be admitted
    QueueFull,    ///< batch queue at ldstQueueDepth
    OutgoingFull, ///< per-core outgoing request buffer full
    MshrFull,     ///< no free L1D MSHR entry for a (potential) miss
};

/** Per-core LD/ST pipeline with L1 data cache. */
class LdstUnit
{
  public:
    LdstUnit(const GpuConfig& config, std::uint32_t core_id);

    /** True if a new memory instruction can enter the batch queue. */
    bool
    canAcceptBatch() const
    {
        return batchQ_.size() < config_.ldstQueueDepth;
    }

    /**
     * True if a newly issued memory instruction could make progress this
     * cycle: queue space, plus (conservatively) a free MSHR entry and
     * outgoing-request space. Gating issue on this is what turns an
     * MSHR-full condition into a *reservation failure at issue time*, so
     * the warp scheduler re-arbitrates the freed MSHR slots each cycle —
     * under GTO, older CTAs get the memory bandwidth first. Without this
     * gate a young CTA's access can camp at the queue head and invert
     * the priority.
     */
    bool
    canAdmit(bool write) const
    {
        return admitRefusal(write) == LdstRefusal::None;
    }

    /**
     * The admission decision with its reason — the refusal canAdmit()
     * collapses to a bool. The cycle profiler uses this to attribute a
     * stalled issue slot to the specific memory structural resource
     * (queue, outgoing buffer, MSHR file) that refused the warp.
     */
    LdstRefusal
    admitRefusal(bool write) const
    {
        if (!canAcceptBatch())
            return LdstRefusal::QueueFull;
        if (outgoing_.size() >= config_.coreMemQueue)
            return LdstRefusal::OutgoingFull;
        if (!write && mshr_.full())
            return LdstRefusal::MshrFull;
        return LdstRefusal::None;
    }

    /**
     * Enqueue the line set of one issued memory instruction.
     * @param reg destination register (kNoReg for stores).
     * @param kernel_id issuing warp's kernel (profiler attribution).
     * @param cta_key issuing CTA's global key (makeCtaKey; -1 unknown).
     */
    void pushBatch(Cycle now, int warp_id, std::int8_t reg, bool write,
                   std::vector<Addr> lines, int kernel_id = kInvalidId,
                   std::int64_t cta_key = -1);

    /**
     * Advance one cycle: service the head batch and the L1 hit queue.
     * Returns true when anything happened — a hit return, a processed
     * line, or a blocked-head retry (which mutates stall and tag-access
     * counters, so such a cycle is observable and must not be elided).
     */
    bool tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which this unit can do observable
     * work on its own: pending completions or outgoing requests (now),
     * a queued batch (now — head retries are observable every cycle),
     * or the L1 hit queue head's ready cycle. kCycleNever when only
     * external fills can wake it (all lines out at the memory system).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Deliver an L2 fill response (from the interconnect). @p req_id is
     * the profiler record the fill completes (0 untracked).
     */
    void onFill(Cycle now, Addr line_addr, std::uint32_t req_id = 0);

    /** Completed loads since the last drain; caller takes ownership. */
    std::vector<LoadCompletion> drainCompletions();

    /** Queued batches not yet walked through the L1 (tests/diagnostics). */
    std::size_t batchQueueLength() const { return batchQ_.size(); }

    /** Requests waiting to be injected into the network. */
    std::size_t outgoingCount() const { return outgoing_.size(); }

    /** True if a request is waiting to be injected into the network. */
    bool hasOutgoing() const { return !outgoing_.empty(); }
    const MemRequest& peekOutgoing() const;
    MemRequest popOutgoing();

    /** True if nothing is in flight anywhere in the unit. */
    bool drained() const;

    const TagArray& l1() const { return tags_; }
    const MshrFile& mshr() const { return mshr_; }
    std::uint64_t stallCycles() const { return stallCycles_; }

    /** Attach the event tracer to the L1D (observability). */
    void setTracer(Tracer* tracer, std::uint32_t track)
    {
        tags_.setTracer(tracer, track);
    }

    /**
     * Attach the memory profiler (observability): L1 read misses open
     * request records, fills close them, L1 evictions are attributed to
     * CTAs and the L1 MSHR occupancy is sampled every cycle. Null
     * detaches; the disabled cost is an untaken branch per event.
     */
    void setMemProfiler(MemProfiler* prof) { memProfiler_ = prof; }

    void addStats(StatSet& stats) const;

  private:
    struct Batch
    {
        bool inUse = false;
        int warpId = kInvalidId;
        std::int8_t reg = kNoReg;
        bool write = false;
        std::deque<Addr> pendingLines;
        std::uint32_t outstanding = 0;
        int kernelId = kInvalidId;   ///< profiler attribution
        std::int64_t ctaKey = -1;    ///< profiler attribution
    };

    std::uint32_t allocBatch();
    void maybeComplete(std::uint32_t batch_id, Cycle now);
    /** Try to process one line of the head batch; false on stall. */
    bool processLine(Cycle now);

    std::string name_;
    std::uint16_t coreId_;
    GpuConfig config_;
    TagArray tags_;
    MshrFile mshr_;
    std::vector<Batch> batches_;
    std::vector<std::uint32_t> freeBatches_;
    std::deque<std::uint32_t> batchQ_;
    TimedQueue<std::uint32_t> hitQ_; ///< batch ids completing an L1 hit
    std::deque<MemRequest> outgoing_;
    std::vector<LoadCompletion> completions_;

    std::uint64_t stallCycles_ = 0;
    std::uint64_t linesProcessed_ = 0;
    // Per-path line counts backing the access = hit + miss + bypass
    // conservation contract (writes bypass allocation: write-through).
    std::uint64_t hitLines_ = 0;
    std::uint64_t missLines_ = 0;
    std::uint64_t writeLines_ = 0;
    /**
     * Tag lookups that missed but could not allocate/merge this cycle
     * (MSHR or outgoing queue full). The head line retries and probes
     * the tags again next cycle, so each retry adds one tag access with
     * no processed line: accesses = processed + retries.
     */
    std::uint64_t retryTagLookups_ = 0;

    // Observability (null = disabled).
    MemProfiler* memProfiler_ = nullptr;
};

} // namespace bsched

#endif // BSCHED_CORE_LDST_UNIT_HH
