/**
 * @file
 * Quickstart: build a tiny kernel with the public API, run it on the
 * default GTX480-class GPU, and print the headline statistics.
 */

#include <cstdio>

#include "gpu/gpu.hh"
#include "kernel/program_builder.hh"
#include "sim/log.hh"
#include "sim/table.hh"

int
main()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug

    // 1. Describe a kernel: a grid of 60 CTAs x 128 threads streaming a
    //    vector through a short ALU chain (a saxpy-like kernel).
    ProgramBuilder builder;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x10000000;
    const auto x = builder.pattern(in);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0x20000000;
    const auto y = builder.pattern(out);
    builder.loop(32).load(x).alu(4).store(y).endLoop();

    KernelInfo kernel;
    kernel.name = "saxpy";
    kernel.grid = {60, 1, 1};
    kernel.cta = {128, 1, 1};
    kernel.regsPerThread = 12;
    kernel.program = builder.build();

    // 2. Configure the machine (Fermi-class defaults) and run.
    GpuConfig config = GpuConfig::gtx480();
    Gpu gpu(config);
    const int id = gpu.launchKernel(kernel);
    gpu.run();

    // 3. Inspect results.
    std::printf("kernel %s finished\n", kernel.name.c_str());
    std::printf("  cycles : %llu\n",
                static_cast<unsigned long long>(gpu.kernelCycles(id)));
    std::printf("  instrs : %llu\n",
                static_cast<unsigned long long>(gpu.totalInstrsIssued()));
    std::printf("  IPC    : %s\n", fmt(gpu.ipc(), 2).c_str());

    const StatSet stats = gpu.stats();
    std::printf("  L1D accesses: %.0f, misses: %.0f\n",
                stats.sumBySuffix(".l1d.access"),
                stats.sumBySuffix(".l1d.miss"));
    std::printf("  DRAM reads  : %.0f\n", stats.sumBySuffix(".dram.read"));
    return 0;
}
