/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace bsched {
namespace {

TEST(Mshr, PrimaryMissAllocatesEntry)
{
    MshrFile mshr(4, 2, "m");
    EXPECT_EQ(mshr.allocate(0x100, 1), MshrOutcome::NewEntry);
    EXPECT_TRUE(mshr.has(0x100));
    EXPECT_EQ(mshr.entriesInUse(), 1u);
}

TEST(Mshr, SecondaryMissMerges)
{
    MshrFile mshr(4, 2, "m");
    mshr.allocate(0x100, 1);
    EXPECT_EQ(mshr.allocate(0x100, 2), MshrOutcome::Merged);
    EXPECT_EQ(mshr.entriesInUse(), 1u);
}

TEST(Mshr, MergeCapacityEnforced)
{
    MshrFile mshr(4, 2, "m");
    mshr.allocate(0x100, 1);
    mshr.allocate(0x100, 2);
    EXPECT_EQ(mshr.allocate(0x100, 3), MshrOutcome::FullEntry);
}

TEST(Mshr, FileCapacityEnforced)
{
    MshrFile mshr(2, 8, "m");
    mshr.allocate(0x100, 1);
    mshr.allocate(0x200, 2);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.allocate(0x300, 3), MshrOutcome::FullFile);
    // But merging into existing entries still works when full.
    EXPECT_EQ(mshr.allocate(0x100, 4), MshrOutcome::Merged);
}

TEST(Mshr, CompleteReturnsAllWaitersInOrder)
{
    MshrFile mshr(4, 4, "m");
    mshr.allocate(0x100, 7);
    mshr.allocate(0x100, 8);
    mshr.allocate(0x100, 9);
    const auto waiters = mshr.complete(0x100);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0], 7u);
    EXPECT_EQ(waiters[1], 8u);
    EXPECT_EQ(waiters[2], 9u);
    EXPECT_FALSE(mshr.has(0x100));
    EXPECT_TRUE(mshr.empty());
}

TEST(Mshr, CompleteUnknownLineDies)
{
    MshrFile mshr(4, 4, "m");
    EXPECT_DEATH(mshr.complete(0xdead), "unknown line");
}

TEST(Mshr, StatsCountStalls)
{
    MshrFile mshr(1, 1, "m");
    mshr.allocate(0x100, 1);
    mshr.allocate(0x100, 2); // FullEntry
    mshr.allocate(0x200, 3); // FullFile
    StatSet stats;
    mshr.addStats(stats, "m");
    EXPECT_DOUBLE_EQ(stats.get("m.alloc"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("m.stall_entry"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("m.stall_file"), 1.0);
}

TEST(Mshr, ZeroCapacityDies)
{
    EXPECT_DEATH(MshrFile(0, 1, "m"), "zero capacity");
}

} // namespace
} // namespace bsched
