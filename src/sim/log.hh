/**
 * @file
 * Minimal logging and error-termination helpers, in the spirit of gem5's
 * logging.hh: fatal() for user/configuration errors, panic() for internal
 * invariant violations, warn()/inform() for status.
 */

#ifndef BSCHED_SIM_LOG_HH
#define BSCHED_SIM_LOG_HH

#include <sstream>
#include <string>

namespace bsched {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent, Warn, Info, Debug };

/** Process-wide log verbosity (default: Warn). */
LogLevel logLevel();

/** Set process-wide log verbosity. */
void setLogLevel(LogLevel level);

/**
 * Parse a verbosity name — "silent", "warn", "info" or "debug"
 * (case-insensitive); fatal() on anything else.
 */
LogLevel parseLogLevel(const std::string& name);

/**
 * Apply the BSCHED_LOG environment variable (same names as
 * parseLogLevel) to the process-wide verbosity; no-op when unset.
 */
void setLogLevelFromEnv();

namespace detail {
[[noreturn]] void fatalImpl(const std::string& msg);
[[noreturn]] void panicImpl(const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}
} // namespace detail

/**
 * Terminate because of a user-caused condition (bad configuration,
 * invalid arguments). Exits with code 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of an internal simulator bug (an invariant that should
 * never break regardless of user input). Calls abort().
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning about questionable behaviour. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace bsched

#endif // BSCHED_SIM_LOG_HH
