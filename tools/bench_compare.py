#!/usr/bin/env python3
"""Compare two benchmark artifacts and flag regressions.

Diffs a *current* artifact against a *baseline* artifact of the same
schema and prints a per-metric delta table. Two schemas are understood:

``bsched-simspeed-v1``
    Simulation-throughput artifact from ``micro_simspeed --emit-json``.
    The compared metric is ``sim_cycles_per_s`` per observer mode
    (higher is better); only a *slowdown* beyond the tolerance is a
    regression, because absolute rates are machine-dependent and
    speedups are never a problem. Absolute rates are judged at 4x the
    tolerance and overhead/speedup ratios at 2x (their honest
    run-to-run spread on shared/virtualized runners exceeds the 5%
    figure-artifact tolerance CI uses). On top of the baseline diff the
    *current* artifact must meet machine-independent budget floors:
    ``relative_rate.profiled_vs_plain >= 0.85`` (profiling overhead),
    ``relative_rate.servetraced_vs_plain >= 0.9`` (serving decision
    audit overhead), ``relative_rate.phase_vs_plain >= 0.9`` (phase
    telemetry overhead), ``fast_forward.idle_heavy.speedup >= 3.0`` (idle
    fast-forward must pay off) and ``fast_forward.busy.speedup >= 0.9``
    (and must not tax busy runs). Budget violations are hard failures
    regardless of ``--tolerance``.

``bsched-bench-v1``
    Figure artifact from any bench binary's ``--emit-json``. Rows are
    matched by label and compared field by field; named metrics are
    compared key by key. The simulator is bit-deterministic, so *any*
    relative change beyond the tolerance — in either direction — is
    flagged: a faster IPC you did not expect is as much a model change
    as a slower one. Added/removed rows, metrics and modes are reported
    but never fail the comparison (artifacts legitimately grow).

``bsched-serving-v1``
    Serving artifact from ``fig_serving --emit-json``. Runs are matched
    by (trace, policy) and judged in three classes: integer counters
    (requests, deadlines, misses, preemptions, reorders, total_cycles,
    the drain_* cost counters) must match the baseline *exactly* — the
    serving pipeline is bit-deterministic end to end, so any drift is a
    model change; latency quantiles and throughput are compared
    relatively at the tolerance; bounded [0, 1] quantities
    (deadline_miss_rate, fairness, per-tenant ANTT) are compared by
    *absolute* delta at the tolerance, because relative deltas explode
    as they approach 0.

``bsched-servetrace-v1``
    Decision-audit artifact from ``fig_serve_trace --emit-json`` (or
    any bench binary's ``--serve-trace``). Decision counts, drain
    counters, predictor sample counts and the decision-log length must
    match exactly; the predictor's mean absolute error is compared
    relatively.

``bsched-phase-v1``
    Phase-telemetry artifact from any bench binary's ``--phase``.
    Window counts, detected phase counts and every phase boundary
    (start window) must match the baseline exactly — the telemetry is
    a pure observer of a bit-deterministic run, so a moved boundary is
    a model or detector change; windowed series values and phase means
    are compared relatively at the tolerance.

Exit status: 0 when the artifacts match within tolerance (or
``--warn-only`` was given), 1 when at least one metric regressed or a
budget floor was missed, 2 on usage/schema errors. With ``--github``,
flagged lines are also emitted as ``::warning``/``::error`` workflow
commands so they surface in the GitHub UI; CI's perf-smoke job runs
this script as a hard gate against the committed
``bench/BENCH_simspeed.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Shared GitHub workflow-command formatting with tools/analyze.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from analyze.annotations import emit_annotation  # noqa: E402

KNOWN_SCHEMAS = ("bsched-simspeed-v1", "bsched-bench-v1",
                 "bsched-serving-v1", "bsched-servetrace-v1",
                 "bsched-phase-v1")


def usage_error(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_artifact(path: Path) -> dict:
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        usage_error(f"cannot read {path}: {err}")
    schema = artifact.get("schema")
    if schema not in KNOWN_SCHEMAS:
        usage_error(f"{path}: unknown schema {schema!r} "
                    f"(known: {', '.join(KNOWN_SCHEMAS)})")
    return artifact


class Comparison:
    """Accumulates per-metric deltas and the flagged subset."""

    def __init__(self, tolerance: float):
        self.tolerance = tolerance
        self.lines: list[str] = []
        self.flagged: list[str] = []
        self.notes: list[str] = []

    def compare(self, name: str, base: float, cur: float,
                lower_is_regression_only: bool = False,
                tolerance_scale: float = 1.0) -> None:
        """Diff *cur* against *base* at ``tolerance * tolerance_scale``.

        *tolerance_scale* widens the band for metrics whose honest
        run-to-run spread exceeds the caller's tolerance: wall-clock
        rates on virtualized runners drift tens of percent with host
        load, so judging them at the figure-artifact tolerance (5% in
        CI) would flag noise. Budget floors are unaffected — they gate
        hard at their absolute values.
        """
        if base == cur:
            delta = 0.0
        elif base == 0:
            delta = float("inf") if cur > 0 else float("-inf")
        else:
            delta = cur / base - 1.0
        tolerance = self.tolerance * tolerance_scale
        line = f"{name}: {base:g} -> {cur:g} ({delta:+.2%})"
        regressed = (delta < -tolerance) if lower_is_regression_only \
            else (abs(delta) > tolerance)
        self.lines.append(line)
        if regressed:
            self.flagged.append(line)

    def compare_abs(self, name: str, base: float, cur: float) -> None:
        """Diff *cur* against *base* by absolute delta at the tolerance.

        For quantities bounded in [0, 1] (miss rates, fairness scores)
        a relative delta explodes as the baseline approaches 0; a flat
        absolute band judges them evenly across their whole range.
        """
        delta = cur - base
        line = f"{name}: {base:g} -> {cur:g} ({delta:+g} abs)"
        self.lines.append(line)
        if abs(delta) > self.tolerance:
            self.flagged.append(line)

    def compare_exact(self, name: str, base: float, cur: float) -> None:
        """Flag any difference at all (bit-deterministic counters)."""
        line = f"{name}: {base:g} -> {cur:g} (exact)"
        self.lines.append(line)
        if base != cur:
            self.flagged.append(line)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def budget(self, name: str, floor: float, cur: float | None) -> None:
        """Enforce an absolute machine-independent floor on *cur*."""
        if cur is None:
            self.note(f"budget metric '{name}' absent from current "
                      f"artifact (floor {floor:g} not checked)")
            return
        line = f"{name}: {cur:g} (budget floor {floor:g})"
        self.lines.append(line)
        if cur < floor:
            self.flagged.append(line)


def compare_simspeed(base: dict, cur: dict, cmp: Comparison) -> None:
    # Tolerance widening per metric class. Absolute wall-clock rates
    # are the noisiest (host-speed drift between the baseline's and the
    # fresh artifact's runs does NOT cancel); paired ratios interleave
    # their two sides in time so drift mostly cancels, but a descheduled
    # trial still moves the median a few percent. CI runs --tolerance
    # 0.05, so these judge rates at 20% and ratios at 10% while the
    # budget floors below stay hard.
    RATE_SCALE = 4.0
    RATIO_SCALE = 2.0
    base_modes, cur_modes = base.get("modes", {}), cur.get("modes", {})
    for mode in base_modes:
        if mode not in cur_modes:
            cmp.note(f"mode '{mode}' missing from current artifact")
            continue
        cmp.compare(
            f"modes.{mode}.sim_cycles_per_s",
            base_modes[mode]["sim_cycles_per_s"],
            cur_modes[mode]["sim_cycles_per_s"],
            lower_is_regression_only=True,
            tolerance_scale=RATE_SCALE,
        )
    for mode in cur_modes:
        if mode not in base_modes:
            cmp.note(f"mode '{mode}' only in current artifact")
    # Relative rates are machine-independent observer overheads; report
    # them (lower = more overhead) but judge by the same slowdown rule.
    base_rel = base.get("relative_rate", {})
    cur_rel = cur.get("relative_rate", {})
    for key in base_rel:
        if key in cur_rel:
            cmp.compare(f"relative_rate.{key}", base_rel[key],
                        cur_rel[key], lower_is_regression_only=True,
                        tolerance_scale=RATIO_SCALE)
    # Fast-forward speedups are wall-clock ratios on the same machine,
    # so they diff cleanly across artifacts; only slowdowns matter.
    base_ff = base.get("fast_forward", {})
    cur_ff = cur.get("fast_forward", {})
    for workload in base_ff:
        if workload in cur_ff:
            cmp.compare(f"fast_forward.{workload}.speedup",
                        base_ff[workload]["speedup"],
                        cur_ff[workload]["speedup"],
                        lower_is_regression_only=True,
                        tolerance_scale=RATIO_SCALE)

    # Machine-independent budget floors on the *current* artifact —
    # these hold on any host, so they gate hard regardless of baseline.
    cmp.budget("relative_rate.profiled_vs_plain", 0.85,
               cur_rel.get("profiled_vs_plain"))
    cmp.budget("relative_rate.servetraced_vs_plain", 0.9,
               cur_rel.get("servetraced_vs_plain"))
    cmp.budget("relative_rate.phase_vs_plain", 0.9,
               cur_rel.get("phase_vs_plain"))
    cmp.budget("fast_forward.idle_heavy.speedup", 3.0,
               cur_ff.get("idle_heavy", {}).get("speedup"))
    cmp.budget("fast_forward.busy.speedup", 0.9,
               cur_ff.get("busy", {}).get("speedup"))
    # Absolute-rate floors from the ISSUE-6 acceptance, anchored to the
    # pre-fast-forward committed baseline (~150k sim-cycles/s): >=3x on
    # the idle-heavy microkernel and >=1.3x on the always-resident
    # micro kernel. Machine-dependent, but the measured margins (>20x
    # and >1.6x respectively) absorb host-speed spread.
    cmp.budget("fast_forward.idle_heavy.ff_on.sim_cycles_per_s", 450_000,
               cur_ff.get("idle_heavy", {}).get("ff_on", {})
               .get("sim_cycles_per_s"))
    cmp.budget("modes.plain.sim_cycles_per_s", 195_000,
               cur.get("modes", {}).get("plain", {})
               .get("sim_cycles_per_s"))


def compare_bench(base: dict, cur: dict, cmp: Comparison) -> None:
    base_rows = {row["label"]: row for row in base.get("rows", [])}
    cur_rows = {row["label"]: row for row in cur.get("rows", [])}
    for label, brow in base_rows.items():
        crow = cur_rows.get(label)
        if crow is None:
            cmp.note(f"row '{label}' missing from current artifact")
            continue
        for field, bval in brow.items():
            if field == "label" or not isinstance(bval, (int, float)):
                continue
            if field in crow:
                cmp.compare(f"rows[{label}].{field}", bval, crow[field])
    for label in cur_rows:
        if label not in base_rows:
            cmp.note(f"row '{label}' only in current artifact")

    base_metrics = base.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    for key, bval in base_metrics.items():
        if key not in cur_metrics:
            cmp.note(f"metric '{key}' missing from current artifact")
        elif isinstance(bval, (int, float)):
            cmp.compare(f"metrics.{key}", bval, cur_metrics[key])
    for key in cur_metrics:
        if key not in base_metrics:
            cmp.note(f"metric '{key}' only in current artifact")


def compare_serving(base: dict, cur: dict, cmp: Comparison) -> None:
    EXACT_FIELDS = ("requests", "deadlines", "misses", "preemptions",
                    "reorders", "total_cycles", "drain_requests",
                    "drain_cancels", "drains_completed",
                    "drain_latency_cycles")
    RELATIVE_FIELDS = ("throughput_per_mcycle", "p50_latency",
                       "p99_latency", "mean_latency")
    ABSOLUTE_FIELDS = ("deadline_miss_rate", "fairness")

    def run_key(run: dict) -> str:
        return f"{run.get('trace')}/{run.get('policy')}"

    base_runs = {run_key(r): r for r in base.get("runs", [])}
    cur_runs = {run_key(r): r for r in cur.get("runs", [])}
    for key, brun in base_runs.items():
        crun = cur_runs.get(key)
        if crun is None:
            cmp.note(f"run '{key}' missing from current artifact")
            continue
        for field in EXACT_FIELDS:
            if field in brun and field in crun:
                cmp.compare_exact(f"runs[{key}].{field}", brun[field],
                                  crun[field])
        for field in RELATIVE_FIELDS:
            if field in brun and field in crun:
                cmp.compare(f"runs[{key}].{field}", brun[field],
                            crun[field])
        for field in ABSOLUTE_FIELDS:
            if field in brun and field in crun:
                cmp.compare_abs(f"runs[{key}].{field}", brun[field],
                                crun[field])
        base_antt = brun.get("tenant_antt", [])
        cur_antt = crun.get("tenant_antt", [])
        if len(base_antt) != len(cur_antt):
            cmp.note(f"runs[{key}].tenant_antt changed arity "
                     f"({len(base_antt)} -> {len(cur_antt)})")
        else:
            # ANTT is a slowdown factor >= 1, so a relative band fits.
            for t, (bval, cval) in enumerate(zip(base_antt, cur_antt)):
                cmp.compare(f"runs[{key}].tenant_antt[{t}]", bval, cval)
    for key in cur_runs:
        if key not in base_runs:
            cmp.note(f"run '{key}' only in current artifact")

    base_metrics = dict(base.get("metrics", {}))
    cur_metrics = dict(cur.get("metrics", {}))
    for key, bval in base_metrics.items():
        if key not in cur_metrics:
            cmp.note(f"metric '{key}' missing from current artifact")
        elif key.endswith("miss_rate_delta_preempt"):
            cmp.compare_abs(f"metrics.{key}", bval, cur_metrics[key])
        else:
            cmp.compare(f"metrics.{key}", bval, cur_metrics[key])
    for key in cur_metrics:
        if key not in base_metrics:
            cmp.note(f"metric '{key}' only in current artifact")


def compare_servetrace(base: dict, cur: dict, cmp: Comparison) -> None:
    """Judge two ``bsched-servetrace-v1`` decision-audit artifacts.

    The audit is pure observation of a bit-deterministic pipeline, so
    every decision count, drain counter and predictor sample count must
    match the baseline exactly; only the predictor's mean absolute
    error is judged relatively (it shifts legitimately when predictor
    tuning changes, and the decision counts catch any behavioral
    drift). Individual decisions are not diffed here — the CI
    byte-gate (cmp against the committed baseline) already pins them.
    """

    def run_key(run: dict) -> str:
        return f"{run.get('trace')}/{run.get('policy')}"

    base_runs = {run_key(r): r for r in base.get("runs", [])}
    cur_runs = {run_key(r): r for r in cur.get("runs", [])}
    for key, brun in base_runs.items():
        crun = cur_runs.get(key)
        if crun is None:
            cmp.note(f"run '{key}' missing from current artifact")
            continue
        for field in ("requests", "total_cycles"):
            if field in brun and field in crun:
                cmp.compare_exact(f"runs[{key}].{field}", brun[field],
                                  crun[field])
        for group in ("counts", "drain"):
            bgrp, cgrp = brun.get(group, {}), crun.get(group, {})
            for field, bval in bgrp.items():
                if field in cgrp:
                    cmp.compare_exact(f"runs[{key}].{group}.{field}",
                                      bval, cgrp[field])
        bpred, cpred = brun.get("predictor", {}), crun.get("predictor", {})
        for field in ("samples", "over", "under", "exact"):
            if field in bpred and field in cpred:
                cmp.compare_exact(f"runs[{key}].predictor.{field}",
                                  bpred[field], cpred[field])
        if "mean_abs_error" in bpred and "mean_abs_error" in cpred:
            cmp.compare(f"runs[{key}].predictor.mean_abs_error",
                        bpred["mean_abs_error"], cpred["mean_abs_error"])
        blen = len(brun.get("decisions", []))
        clen = len(crun.get("decisions", []))
        cmp.compare_exact(f"runs[{key}].len(decisions)", blen, clen)
    for key in cur_runs:
        if key not in base_runs:
            cmp.note(f"run '{key}' only in current artifact")


def compare_phase(base: dict, cur: dict, cmp: Comparison) -> None:
    """Judge two ``bsched-phase-v1`` phase-telemetry artifacts.

    The telemetry is pure observation of a bit-deterministic run, so
    structure must match exactly: window count, per-scope phase counts
    and every phase boundary. Series values and phase means are judged
    relatively — they shift legitimately when the timing model changes,
    and the boundary checks catch detector drift. The CI byte-gate
    (cmp against the committed baseline) already pins exact values.
    """
    for field in ("window_cycles", "hysteresis"):
        bval = base.get("config", {}).get(field)
        cval = cur.get("config", {}).get(field)
        if bval is not None and cval is not None:
            cmp.compare_exact(f"config.{field}", bval, cval)
    cmp.compare_exact("windows", base.get("windows", 0),
                      cur.get("windows", 0))

    base_series = base.get("series", {})
    cur_series = cur.get("series", {})
    for name, bvals in base_series.items():
        cvals = cur_series.get(name)
        if cvals is None:
            cmp.note(f"series '{name}' missing from current artifact")
            continue
        if len(bvals) != len(cvals):
            cmp.note(f"series '{name}' changed arity "
                     f"({len(bvals)} -> {len(cvals)})")
            continue
        for w, (bval, cval) in enumerate(zip(bvals, cvals)):
            cmp.compare(f"series.{name}[{w}]", bval, cval)
    for name in cur_series:
        if name not in base_series:
            cmp.note(f"series '{name}' only in current artifact")

    def compare_scope(key: str, bscope: dict, cscope: dict) -> None:
        cmp.compare_exact(f"{key}.phase_count",
                          bscope.get("phase_count", 0),
                          cscope.get("phase_count", 0))
        bphases = bscope.get("phases", [])
        cphases = cscope.get("phases", [])
        for p, (bph, cph) in enumerate(zip(bphases, cphases)):
            cmp.compare_exact(f"{key}.phases[{p}].start_window",
                              bph.get("start_window", 0),
                              cph.get("start_window", 0))
            cmean = cph.get("mean", {})
            for channel, bval in bph.get("mean", {}).items():
                if channel in cmean:
                    cmp.compare(f"{key}.phases[{p}].mean.{channel}",
                                bval, cmean[channel])

    compare_scope("machine", base.get("machine", {}),
                  cur.get("machine", {}))
    for bscope, cscope in zip(base.get("cores", []), cur.get("cores", [])):
        compare_scope(f"cores[{bscope.get('core')}]", bscope, cscope)
    for bscope, cscope in zip(base.get("kernels", []),
                              cur.get("kernels", [])):
        compare_scope(f"kernels[{bscope.get('kernel')}]", bscope, cscope)
    if len(base.get("cores", [])) != len(cur.get("cores", [])):
        cmp.note(f"core-scope arity changed ({len(base.get('cores', []))}"
                 f" -> {len(cur.get('cores', []))})")
    if len(base.get("kernels", [])) != len(cur.get("kernels", [])):
        cmp.note(f"kernel-scope arity changed "
                 f"({len(base.get('kernels', []))}"
                 f" -> {len(cur.get('kernels', []))})")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="diff two bsched benchmark artifacts, flag regressions"
    )
    parser.add_argument("baseline", type=Path,
                        help="baseline artifact (e.g. the committed one)")
    parser.add_argument("current", type=Path,
                        help="current artifact to judge")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="relative delta beyond which a metric is flagged "
             "(default: 0.20)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit ::warning/::error workflow commands for flagged lines",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only flagged metrics and notes, not every delta",
    )
    args = parser.parse_args()

    base = load_artifact(args.baseline)
    cur = load_artifact(args.current)
    if base["schema"] != cur["schema"]:
        usage_error(f"schema mismatch: {args.baseline} is "
                    f"{base['schema']}, {args.current} is {cur['schema']}")

    cmp = Comparison(args.tolerance)
    if base["schema"] == "bsched-simspeed-v1":
        compare_simspeed(base, cur, cmp)
    elif base["schema"] == "bsched-serving-v1":
        compare_serving(base, cur, cmp)
    elif base["schema"] == "bsched-servetrace-v1":
        compare_servetrace(base, cur, cmp)
    elif base["schema"] == "bsched-phase-v1":
        compare_phase(base, cur, cmp)
    else:
        compare_bench(base, cur, cmp)

    if not args.quiet:
        for line in cmp.lines:
            marker = "  ! " if line in cmp.flagged else "    "
            print(f"{marker}{line}")
    for note in cmp.notes:
        print(f"  ~ {note}")

    if cmp.flagged:
        severity = "warning" if args.warn_only else "error"
        print(f"bench compare: {len(cmp.flagged)} metric(s) beyond "
              f"{args.tolerance:.0%} tolerance or under budget "
              f"({len(cmp.lines)} compared):")
        for line in cmp.flagged:
            print(f"  ! {line}")
            if args.github:
                emit_annotation(severity, "bench regression", line)
        return 0 if args.warn_only else 1

    print(f"bench compare: OK — {len(cmp.lines)} metric(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
