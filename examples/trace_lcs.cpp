/**
 * @file
 * Observability walkthrough: run a cache-sensitive kernel under LCS
 * with the event tracer and interval sampler attached, write a Chrome
 * trace_event file, and summarize what the trace shows — the monitoring
 * window closing on each core (with the chosen N_opt) and the CTA
 * dispatch throttling that follows.
 *
 * Open the output in chrome://tracing or https://ui.perfetto.dev:
 * one track per SIMT core (CTA lifetimes as spans, scheduler decisions
 * as instants), one per memory partition, one for the GPU, plus
 * counter tracks from the sampler (occupancy, interval IPC).
 */

#include <algorithm>
#include <cstdio>

#include "harness/runner.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "sim/log.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug

    // kmeans is the suite's most cache-sensitive workload: each CTA
    // re-walks a private centroid tile, so a few resident CTAs share
    // the L1 nicely and the occupancy maximum thrashes it. LCS
    // throttles it roughly in half — which makes the trace
    // interesting to look at.
    const KernelInfo kernel = makeWorkload("kmeans");
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::Lazy);

    // Attach the full observability stack and run.
    Tracer tracer(config.numCores, config.numMemPartitions);
    IntervalSampler sampler(256);
    const RunResult result =
        runKernel(config, kernel, Observer{&tracer, &sampler});

    const char* path = "trace_lcs.json";
    writeFile(path, [&](std::ostream& os) {
        tracer.writeChromeTrace(os, &sampler);
    });

    std::printf("ran %s (%u CTAs) under LCS: %llu cycles, IPC %s\n",
                kernel.name.c_str(), kernel.gridCtas(),
                static_cast<unsigned long long>(result.cycles),
                fmt(result.ipc, 2).c_str());
    std::printf("wrote %s (%llu events, %llu dropped) — open in "
                "chrome://tracing\n\n",
                path,
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));

    // Narrate the LCS story straight from the trace events.
    const auto closes = tracer.eventsOfKind(TraceEventKind::LcsWindowClose);
    std::printf("monitoring windows closed: %zu (one per core that ran "
                "the kernel)\n",
                closes.size());
    for (const TraceEvent& e : closes) {
        std::printf("  cycle %8llu: n_opt = %lld of n_max = %lld\n",
                    static_cast<unsigned long long>(e.cycle),
                    static_cast<long long>(e.arg0),
                    static_cast<long long>(e.arg1));
    }

    // Dispatches before vs after the first window close show the
    // throttle taking hold.
    Cycle first_close = result.cycles;
    for (const TraceEvent& e : closes)
        first_close = std::min(first_close, e.cycle);
    std::size_t before = 0;
    std::size_t after = 0;
    for (const TraceEvent& e :
         tracer.eventsOfKind(TraceEventKind::CtaDispatch)) {
        (e.cycle < first_close ? before : after) += 1;
    }
    std::printf("\nCTA dispatches: %zu before the first window close, "
                "%zu after\n",
                before, after);
    std::printf("(the post-close dispatch rate is what the n_opt cap "
                "meters out)\n");
    return 0;
}
