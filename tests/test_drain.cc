/**
 * @file
 * CTA-drain preemption invariants, across every CTA scheduler policy:
 * a draining kernel receives no new CTA dispatches, its in-flight CTAs
 * retire normally (freeing the cores for co-residents), the dispatch
 * cursor freezes exactly where the drain caught it, and undraining
 * resumes from that cursor with nothing skipped or repeated. Also the
 * Gpu::requestDrain plumbing: id validation, drainRequests accounting
 * and the kernelDraining view.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cta/cta_sched.hh"
#include "gpu/gpu.hh"
#include "kernel/program_builder.hh"
#include "obs/trace.hh"

namespace bsched {
namespace {

const std::vector<CtaSchedKind> kAllCtaScheds = {
    CtaSchedKind::RoundRobin, CtaSchedKind::Lazy, CtaSchedKind::Block,
    CtaSchedKind::LazyBlock, CtaSchedKind::Dynamic};

GpuConfig
cfg(CtaSchedKind kind)
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 4;
    c.numMemPartitions = 2;
    c.ctaSched = kind;
    return c;
}

/** Long-ish ALU kernel so a drain catches it mid-grid. */
KernelInfo
kernel(const char* name, std::uint32_t grid = 64, std::uint32_t trips = 60)
{
    KernelInfo k;
    k.name = name;
    k.grid = {grid, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(trips).alu(2, false).endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

/** Step until the predicate holds; fail the test on budget exhaustion. */
template <typename Pred>
void
stepUntil(Gpu& gpu, Pred pred, Cycle budget = 2000000)
{
    const Cycle start = gpu.cycle();
    while (!pred()) {
        ASSERT_TRUE(gpu.stepCycle()) << "simulation finished early";
        ASSERT_LT(gpu.cycle() - start, budget) << "budget exhausted";
    }
}

std::uint32_t
residentOf(const Gpu& gpu, int kernel_id)
{
    std::uint32_t resident = 0;
    for (const auto& core : gpu.cores())
        resident += core->residentCtas(kernel_id);
    return resident;
}

TEST(Drain, FreezesDispatchCursorOnEveryScheduler)
{
    for (const CtaSchedKind kind : kAllCtaScheds) {
        SCOPED_TRACE(toString(kind));
        const KernelInfo k = kernel("victim");
        Gpu gpu(cfg(kind));
        const int id = gpu.launchKernel(k);

        // Let dispatch get going, then drain mid-grid.
        stepUntil(gpu, [&] { return gpu.kernel(id).nextCta >= 8; });
        gpu.requestDrain(id, true);
        EXPECT_TRUE(gpu.kernelDraining(id));
        const std::uint32_t frozen = gpu.kernel(id).nextCta;
        ASSERT_LT(frozen, k.grid.x) << "drain caught the kernel too late";

        // In-flight CTAs retire; the cursor never moves while draining.
        stepUntil(gpu, [&] { return residentOf(gpu, id) == 0; });
        EXPECT_EQ(gpu.kernel(id).nextCta, frozen);
        EXPECT_EQ(gpu.kernel(id).ctasDone, frozen);
        EXPECT_FALSE(gpu.kernel(id).finished());

        // A drained machine is idle but alive: stepping is safe and
        // dispatches nothing.
        for (int i = 0; i < 200; ++i)
            gpu.stepCycle();
        EXPECT_EQ(gpu.kernel(id).nextCta, frozen);

        // Undrain: dispatch resumes from the frozen cursor and the
        // kernel completes the full grid exactly once.
        gpu.requestDrain(id, false);
        EXPECT_FALSE(gpu.kernelDraining(id));
        gpu.run();
        EXPECT_TRUE(gpu.kernel(id).finished());
        EXPECT_EQ(gpu.kernel(id).ctasDone, k.grid.x);
    }
}

TEST(Drain, FreesResourcesForCoResidentKernel)
{
    for (const CtaSchedKind kind : kAllCtaScheds) {
        SCOPED_TRACE(toString(kind));
        const KernelInfo victim = kernel("victim", 64);
        const KernelInfo beneficiary = kernel("beneficiary", 64);
        Gpu gpu(cfg(kind));
        const int vid = gpu.launchKernel(victim);
        const int bid = gpu.launchKernel(beneficiary);

        stepUntil(gpu, [&] { return gpu.kernel(vid).nextCta >= 8; });
        gpu.requestDrain(vid, true);
        const std::uint32_t victim_frozen = gpu.kernel(vid).nextCta;

        // The beneficiary finishes its whole grid while the victim
        // holds still.
        stepUntil(gpu, [&] { return gpu.kernel(bid).finished(); });
        EXPECT_EQ(gpu.kernel(vid).nextCta, victim_frozen);
        EXPECT_FALSE(gpu.kernel(vid).finished());

        // Once the victim's in-flight CTAs retired, the beneficiary
        // had the machine to itself.
        gpu.requestDrain(vid, false);
        gpu.run();
        EXPECT_TRUE(gpu.kernel(vid).finished());
        EXPECT_EQ(gpu.kernel(vid).ctasDone, victim.grid.x);
    }
}

TEST(Drain, RequestsAreCounted)
{
    const KernelInfo k = kernel("victim");
    GpuConfig config = cfg(CtaSchedKind::Lazy);
    Gpu gpu(config);
    const int id = gpu.launchKernel(k);
    gpu.stepCycle();

    // Every drain request (draining = true) is counted; undrains are
    // not.
    gpu.requestDrain(id, true);
    gpu.requestDrain(id, false);
    gpu.requestDrain(id, true);

    EXPECT_DOUBLE_EQ(gpu.stats().get("ctasched.drain_requests"), 2.0);
}

TEST(Drain, DrainingKernelStillRetiresAndFinishesIfGridDispatched)
{
    // Drain after the whole grid is already dispatched: nothing to
    // freeze, the kernel simply runs out.
    const KernelInfo k = kernel("victim", 8, 20);
    Gpu gpu(cfg(CtaSchedKind::RoundRobin));
    const int id = gpu.launchKernel(k);
    stepUntil(gpu, [&] { return gpu.kernel(id).dispatchDone(); });
    gpu.requestDrain(id, true);
    gpu.run();
    EXPECT_TRUE(gpu.kernel(id).finished());
    EXPECT_EQ(gpu.kernel(id).ctasDone, k.grid.x);
}

TEST(Drain, CompletionLatencyIsCounted)
{
    const KernelInfo k = kernel("victim");
    Gpu gpu(cfg(CtaSchedKind::Lazy));
    const int id = gpu.launchKernel(k);

    stepUntil(gpu, [&] { return gpu.kernel(id).nextCta >= 8; });
    EXPECT_EQ(gpu.drainsCompleted(), 0u);
    gpu.requestDrain(id, true);
    stepUntil(gpu, [&] { return residentOf(gpu, id) == 0; });

    // The drain reached zero residency: one completion, with the
    // request -> last-CTA-retired latency accumulated.
    EXPECT_EQ(gpu.drainsCompleted(), 1u);
    EXPECT_GT(gpu.drainLatencyCycles(), 0u);
    EXPECT_EQ(gpu.drainCancels(), 0u);
}

TEST(Drain, CompletionEmitsGpuTrackSpan)
{
    const GpuConfig config = cfg(CtaSchedKind::Lazy);
    Tracer tracer(config.numCores, config.numMemPartitions);
    Observer obs;
    obs.tracer = &tracer;
    const KernelInfo k = kernel("victim");
    Gpu gpu(config, obs);
    const int id = gpu.launchKernel(k);

    stepUntil(gpu, [&] { return gpu.kernel(id).nextCta >= 8; });
    gpu.requestDrain(id, true);
    stepUntil(gpu, [&] { return residentOf(gpu, id) == 0; });

    const auto spans = tracer.eventsOfKind(TraceEventKind::DrainComplete);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].kernelId, id);
    EXPECT_EQ(spans[0].duration, gpu.drainLatencyCycles());
    EXPECT_GT(spans[0].arg0, 0); // undispatched CTAs left behind
}

TEST(Drain, CancelBeforeZeroResidencyCounts)
{
    const KernelInfo k = kernel("victim");
    Gpu gpu(cfg(CtaSchedKind::Lazy));
    const int id = gpu.launchKernel(k);

    stepUntil(gpu, [&] { return residentOf(gpu, id) >= 1; });
    gpu.requestDrain(id, true);
    gpu.requestDrain(id, false); // lifted before residency hit zero

    EXPECT_EQ(gpu.drainCancels(), 1u);
    EXPECT_EQ(gpu.drainsCompleted(), 0u);
    EXPECT_EQ(gpu.drainLatencyCycles(), 0u);

    // Undraining when not draining is idempotent, not another cancel.
    gpu.requestDrain(id, false);
    EXPECT_EQ(gpu.drainCancels(), 1u);

    gpu.run();
    EXPECT_TRUE(gpu.kernel(id).finished());
}

TEST(Drain, DrainWithNothingResidentCompletesImmediately)
{
    const KernelInfo k = kernel("victim");
    Gpu gpu(cfg(CtaSchedKind::Lazy));
    const int id = gpu.launchKernel(k);

    // Before the first dispatch tick nothing is resident: the drain is
    // complete the moment it is requested, at zero latency.
    gpu.requestDrain(id, true);
    EXPECT_EQ(gpu.drainsCompleted(), 1u);
    EXPECT_EQ(gpu.drainLatencyCycles(), 0u);
}

TEST(Drain, BadKernelIdDies)
{
    const KernelInfo k = kernel("victim");
    Gpu gpu(cfg(CtaSchedKind::Lazy));
    const int id = gpu.launchKernel(k);
    (void)id;
    EXPECT_DEATH(gpu.requestDrain(7, true), "kernel id");
    EXPECT_DEATH(gpu.requestDrain(-1, true), "kernel id");
}

TEST(Drain, SchedulerLevelFilterAcrossPolicies)
{
    // Directly at the CtaScheduler interface: a draining kernel gets no
    // slots even with the machine empty.
    for (const CtaSchedKind kind : kAllCtaScheds) {
        SCOPED_TRACE(toString(kind));
        GpuConfig config = cfg(kind);
        auto sched = CtaScheduler::create(config);
        CoreList cores;
        for (std::uint32_t c = 0; c < config.numCores; ++c)
            cores.push_back(std::make_unique<SimtCore>(config, c));
        const KernelInfo k = kernel("k");
        KernelInstance inst;
        inst.info = &k;
        inst.id = 0;
        std::vector<KernelInstance> kernels = {inst};

        sched->setDraining(0, true);
        EXPECT_TRUE(sched->isDraining(0));
        for (Cycle t = 0; t < 50; ++t)
            sched->tick(t, kernels, cores);
        EXPECT_EQ(kernels[0].nextCta, 0u);
        for (const auto& core : cores)
            EXPECT_EQ(core->residentCtas(), 0u);

        sched->setDraining(0, false);
        for (Cycle t = 50; t < 100; ++t)
            sched->tick(t, kernels, cores);
        EXPECT_GT(kernels[0].nextCta, 0u);
    }
}

} // namespace
} // namespace bsched
