/**
 * @file
 * Unit tests for the memory partition (L2 bank + DRAM channel).
 */

#include <gtest/gtest.h>

#include "mem/mem_partition.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numMemPartitions = 1; // simplest local-line compaction
    return c;
}

/** Run ticks until a response shows up or the budget runs out. */
bool
runUntilResponse(MemPartition& part, Cycle& t, Cycle budget = 2000)
{
    const Cycle end = t + budget;
    while (t < end) {
        part.tick(t);
        if (part.responseReady())
            return true;
        ++t;
    }
    return false;
}

TEST(MemPartition, ReadMissFetchesFromDramAndReplies)
{
    MemPartition part(cfg(), 0);
    Cycle t = 0;
    part.pushRequest(t, {0x1000, false, 3});
    ASSERT_TRUE(runUntilResponse(part, t));
    const MemResponse resp = part.popResponse();
    EXPECT_EQ(resp.lineAddr, 0x1000u);
    EXPECT_EQ(resp.coreId, 3);
    EXPECT_EQ(part.dram().reads(), 1u);
    EXPECT_TRUE(part.drained());
}

TEST(MemPartition, ReadHitDoesNotTouchDram)
{
    MemPartition part(cfg(), 0);
    Cycle t = 0;
    part.pushRequest(t, {0x1000, false, 1});
    ASSERT_TRUE(runUntilResponse(part, t));
    part.popResponse();
    const std::uint64_t dram_reads = part.dram().reads();
    part.pushRequest(t, {0x1000, false, 2});
    ASSERT_TRUE(runUntilResponse(part, t));
    EXPECT_EQ(part.popResponse().coreId, 2);
    EXPECT_EQ(part.dram().reads(), dram_reads);
}

TEST(MemPartition, ConcurrentReadsToSameLineMergeInMshr)
{
    MemPartition part(cfg(), 0);
    Cycle t = 0;
    part.pushRequest(t, {0x2000, false, 1});
    part.pushRequest(t, {0x2000, false, 2});
    ASSERT_TRUE(runUntilResponse(part, t));
    // Both replies, one DRAM fetch.
    int replies = 0;
    const Cycle end = t + 100;
    while (t < end) {
        part.tick(t);
        while (part.responseReady()) {
            part.popResponse();
            ++replies;
        }
        ++t;
    }
    EXPECT_EQ(replies, 2);
    EXPECT_EQ(part.dram().reads(), 1u);
}

TEST(MemPartition, WriteMissFetchesAndDirtiesWithoutReply)
{
    MemPartition part(cfg(), 0);
    Cycle t = 0;
    part.pushRequest(t, {0x3000, true, 1});
    for (; t < 2000; ++t)
        part.tick(t);
    EXPECT_FALSE(part.responseReady());
    EXPECT_EQ(part.dram().reads(), 1u); // fetch-on-write
    EXPECT_TRUE(part.drained());
}

TEST(MemPartition, DirtyEvictionWritesBack)
{
    GpuConfig c = cfg();
    // Tiny L2: 2 sets x 2 ways.
    c.l2.sizeBytes = 512;
    c.l2.assoc = 2;
    MemPartition part(c, 0);
    Cycle t = 0;
    // Dirty line in set 0.
    part.pushRequest(t, {0, true, 1});
    for (; t < 2000; ++t)
        part.tick(t);
    // Two more fills into set 0 evict the dirty line.
    const Addr set_stride = 2 * 128;
    part.pushRequest(t, {set_stride, false, 1});
    part.pushRequest(t, {2 * set_stride, false, 1});
    for (Cycle end = t + 3000; t < end; ++t) {
        part.tick(t);
        while (part.responseReady())
            part.popResponse();
    }
    EXPECT_EQ(part.dram().writes(), 1u);
    EXPECT_TRUE(part.drained());
}

TEST(MemPartition, InputBackpressure)
{
    MemPartition part(cfg(), 0);
    int pushed = 0;
    while (part.canAcceptRequest()) {
        part.pushRequest(0, {static_cast<Addr>(pushed) * 128, false, 0});
        ++pushed;
    }
    EXPECT_GT(pushed, 0);
    EXPECT_FALSE(part.canAcceptRequest());
}

TEST(MemPartition, FlushRequiresDrained)
{
    MemPartition part(cfg(), 0);
    part.pushRequest(0, {0x100, false, 0});
    EXPECT_DEATH(part.flush(), "not drained");
}

TEST(MemPartition, StatsExported)
{
    MemPartition part(cfg(), 0);
    Cycle t = 0;
    part.pushRequest(t, {0x1000, false, 1});
    ASSERT_TRUE(runUntilResponse(part, t));
    part.popResponse();
    StatSet stats;
    part.addStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("part0.req_read"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("part0.l2.miss"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("part0.dram.read"), 1.0);
}

} // namespace
} // namespace bsched
