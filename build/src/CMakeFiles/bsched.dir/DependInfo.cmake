
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ldst_unit.cc" "src/CMakeFiles/bsched.dir/core/ldst_unit.cc.o" "gcc" "src/CMakeFiles/bsched.dir/core/ldst_unit.cc.o.d"
  "/root/repo/src/core/simt_core.cc" "src/CMakeFiles/bsched.dir/core/simt_core.cc.o" "gcc" "src/CMakeFiles/bsched.dir/core/simt_core.cc.o.d"
  "/root/repo/src/core/warp_sched.cc" "src/CMakeFiles/bsched.dir/core/warp_sched.cc.o" "gcc" "src/CMakeFiles/bsched.dir/core/warp_sched.cc.o.d"
  "/root/repo/src/cta/block_cta_sched.cc" "src/CMakeFiles/bsched.dir/cta/block_cta_sched.cc.o" "gcc" "src/CMakeFiles/bsched.dir/cta/block_cta_sched.cc.o.d"
  "/root/repo/src/cta/cta_sched.cc" "src/CMakeFiles/bsched.dir/cta/cta_sched.cc.o" "gcc" "src/CMakeFiles/bsched.dir/cta/cta_sched.cc.o.d"
  "/root/repo/src/cta/dyncta_sched.cc" "src/CMakeFiles/bsched.dir/cta/dyncta_sched.cc.o" "gcc" "src/CMakeFiles/bsched.dir/cta/dyncta_sched.cc.o.d"
  "/root/repo/src/cta/lazy_cta_sched.cc" "src/CMakeFiles/bsched.dir/cta/lazy_cta_sched.cc.o" "gcc" "src/CMakeFiles/bsched.dir/cta/lazy_cta_sched.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/bsched.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/bsched.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/multi_kernel.cc" "src/CMakeFiles/bsched.dir/gpu/multi_kernel.cc.o" "gcc" "src/CMakeFiles/bsched.dir/gpu/multi_kernel.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/bsched.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/bsched.dir/harness/runner.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/bsched.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/bsched.dir/isa/opcode.cc.o.d"
  "/root/repo/src/kernel/kernel_info.cc" "src/CMakeFiles/bsched.dir/kernel/kernel_info.cc.o" "gcc" "src/CMakeFiles/bsched.dir/kernel/kernel_info.cc.o.d"
  "/root/repo/src/kernel/mem_pattern.cc" "src/CMakeFiles/bsched.dir/kernel/mem_pattern.cc.o" "gcc" "src/CMakeFiles/bsched.dir/kernel/mem_pattern.cc.o.d"
  "/root/repo/src/kernel/occupancy.cc" "src/CMakeFiles/bsched.dir/kernel/occupancy.cc.o" "gcc" "src/CMakeFiles/bsched.dir/kernel/occupancy.cc.o.d"
  "/root/repo/src/kernel/program_builder.cc" "src/CMakeFiles/bsched.dir/kernel/program_builder.cc.o" "gcc" "src/CMakeFiles/bsched.dir/kernel/program_builder.cc.o.d"
  "/root/repo/src/kernel/warp_program.cc" "src/CMakeFiles/bsched.dir/kernel/warp_program.cc.o" "gcc" "src/CMakeFiles/bsched.dir/kernel/warp_program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/bsched.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/bsched.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/bsched.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/bsched.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/CMakeFiles/bsched.dir/mem/interconnect.cc.o" "gcc" "src/CMakeFiles/bsched.dir/mem/interconnect.cc.o.d"
  "/root/repo/src/mem/mem_partition.cc" "src/CMakeFiles/bsched.dir/mem/mem_partition.cc.o" "gcc" "src/CMakeFiles/bsched.dir/mem/mem_partition.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/CMakeFiles/bsched.dir/mem/mshr.cc.o" "gcc" "src/CMakeFiles/bsched.dir/mem/mshr.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/bsched.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/bsched.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/bsched.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/bsched.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/bsched.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/bsched.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/bsched.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/bsched.dir/sim/table.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/bsched.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/bsched.dir/workloads/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
