/**
 * @file
 * Edge-case coverage across modules: degenerate launch geometries,
 * store-only kernels, divergence extremes, full-occupancy mixes, and
 * kernel-boundary drain semantics.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

TEST(EdgeCases, SingleCtaSingleWarpGrid)
{
    KernelInfo k;
    k.name = "tiny";
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 8;
    ProgramBuilder b;
    b.alu(3);
    k.program = b.build();
    Gpu gpu(cfg());
    const int id = gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), 3u);
    EXPECT_GT(gpu.kernelCycles(id), 0u);
}

TEST(EdgeCases, MaxSizeCtaRuns)
{
    KernelInfo k;
    k.name = "big-cta";
    k.grid = {3, 1, 1};
    k.cta = {1024, 1, 1}; // 32 warps, one CTA per core by threads? 1536/1024=1
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(4).alu(2, false).endLoop();
    k.program = b.build();
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs());
}

TEST(EdgeCases, NonWarpMultipleCtaRoundsUp)
{
    KernelInfo k;
    k.name = "ragged";
    k.grid = {2, 1, 1};
    k.cta = {50, 1, 1}; // 2 warps worth of slots
    k.regsPerThread = 8;
    ProgramBuilder b;
    b.alu(1);
    k.program = b.build();
    EXPECT_EQ(k.warpsPerCta(), 2u);
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    // Both rounded-up warps execute the program.
    EXPECT_EQ(gpu.totalInstrsIssued(), 2u * 2u * 1u);
}

TEST(EdgeCases, StoreOnlyKernelDrains)
{
    KernelInfo k;
    k.name = "stores";
    k.grid = {8, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 8;
    ProgramBuilder b;
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0x30000000;
    const auto o = b.pattern(out);
    b.loop(6).alu(1).store(o).endLoop();
    k.program = b.build();
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_TRUE(gpu.drained());
    const StatSet stats = gpu.stats();
    // Fire-and-forget stores all reached the partitions by end of run.
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".req_write"),
                     8.0 * 2 * 6); // 8 CTAs x 2 warps x 6 stores (1 line)
}

TEST(EdgeCases, FullyDivergentSingleLaneLoads)
{
    KernelInfo k;
    k.name = "lane1";
    k.grid = {2, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 8;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x30000000;
    const auto i = b.pattern(in);
    b.loop(3).diverge(1).load(i).alu(1).endLoop();
    k.program = b.build();
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs());
}

TEST(EdgeCases, BarrierWithSingleWarpCta)
{
    // A one-warp CTA's barrier must release immediately (it is the only
    // participant), not deadlock.
    KernelInfo k;
    k.name = "solo-bar";
    k.grid = {2, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 8;
    ProgramBuilder b;
    b.loop(5).alu(1).barrier().endLoop();
    k.program = b.build();
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), 2u * 5 * 2);
}

TEST(EdgeCases, ManyKernelsInterleaved)
{
    Gpu gpu(cfg());
    std::vector<KernelInfo> kernels(5);
    for (int i = 0; i < 5; ++i) {
        KernelInfo& k = kernels[static_cast<std::size_t>(i)];
        k.name = "k" + std::to_string(i);
        k.grid = {4, 1, 1};
        k.cta = {64, 1, 1};
        k.regsPerThread = 8;
        ProgramBuilder b;
        b.loop(static_cast<std::uint32_t>(2 + i)).alu(2, false).endLoop();
        k.program = b.build();
    }
    std::uint64_t expected = 0;
    for (auto& k : kernels) {
        gpu.launchKernel(k);
        expected += k.totalDynamicInstrs();
    }
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), expected);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        EXPECT_TRUE(gpu.kernel(static_cast<int>(i)).finished());
}

TEST(EdgeCases, SmemOnlyKernelNeverTouchesMemorySystem)
{
    KernelInfo k;
    k.name = "smem-only";
    k.grid = {4, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 8;
    k.smemBytesPerCta = 1024;
    ProgramBuilder b;
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 1;
    const auto s = b.pattern(sh);
    b.loop(5).loadShared(s).alu(2).storeShared(s).endLoop();
    k.program = b.build();
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    const StatSet stats = gpu.stats();
    EXPECT_DOUBLE_EQ(stats.get("icnt.requests"), 0.0);
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".dram.read"), 0.0);
}

TEST(EdgeCases, ZeroTripLeadingSegment)
{
    KernelInfo k;
    k.name = "zero-head";
    k.grid = {2, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 8;
    WarpProgram prog;
    Segment skip;
    Instr alu;
    alu.op = Opcode::Alu;
    alu.dst = 4;
    skip.instrs = {alu};
    skip.trips = 0;
    prog.addSegment(skip);
    Segment body;
    body.instrs = {alu, alu};
    body.trips = 2;
    prog.addSegment(body);
    k.program = prog;
    Gpu gpu(cfg());
    gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(), 2u * 4);
}

TEST(EdgeCases, HeterogeneousKernelsShareACoreUnderPressure)
{
    // A shared-memory hog and a register hog must co-reside correctly.
    KernelInfo smem;
    smem.name = "smem-hog";
    smem.grid = {2, 1, 1};
    smem.cta = {64, 1, 1};
    smem.regsPerThread = 8;
    smem.smemBytesPerCta = 24 * 1024; // 2 per core by smem
    ProgramBuilder b1;
    b1.loop(30).alu(1).endLoop();
    smem.program = b1.build();

    KernelInfo regs;
    regs.name = "reg-hog";
    regs.grid = {2, 1, 1};
    regs.cta = {256, 1, 1};
    regs.regsPerThread = 60; // 2 per core by registers
    ProgramBuilder b2;
    b2.loop(30).alu(1).endLoop();
    regs.program = b2.build();

    Gpu gpu(cfg());
    gpu.launchKernel(smem);
    gpu.launchKernel(regs);
    gpu.run();
    EXPECT_EQ(gpu.totalInstrsIssued(),
              smem.totalDynamicInstrs() + regs.totalDynamicInstrs());
}

} // namespace
} // namespace bsched
