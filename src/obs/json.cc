#include "obs/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace bsched {

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        fatal("json: value is not a number");
    return number_;
}

const std::string&
JsonValue::asString() const
{
    if (type_ != Type::String)
        fatal("json: value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: value is not an array");
    return array_;
}

const std::map<std::string, JsonValue>&
JsonValue::asObject() const
{
    if (type_ != Type::Object)
        fatal("json: value is not an object");
    return object_;
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    const auto& members = asObject();
    auto it = members.find(key);
    if (it == members.end())
        fatal("json: missing key '", key, "'");
    return it->second;
}

bool
JsonValue::has(const std::string& key) const
{
    return type_ == Type::Object &&
        object_.find(key) != object_.end();
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent parser over a string, tracking position. */
class Parser
{
  public:
    explicit Parser(const std::string& text)
        : text_(text)
    {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& what) const
    {
        fatal("json parse error at offset ", pos_, ": ", what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool tryConsume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void literal(const char* word)
    {
        for (const char* p = word; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected ") + word);
            ++pos_;
        }
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            literal("true");
            return JsonValue::makeBool(true);
          case 'f':
            literal("false");
            return JsonValue::makeBool(false);
          case 'n':
            literal("null");
            return JsonValue::makeNull();
          default:
            return parseNumber();
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The sinks only escape control characters, which stay
                // in the single-byte range.
                if (code > 0xff)
                    fail("\\u escape above 0xff unsupported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
            any = true;
        }
        if (!any)
            fail("expected a number");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number '" + token + "'");
        return JsonValue::makeNumber(value);
    }

    JsonValue parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        if (tryConsume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            items.push_back(parseValue());
            if (tryConsume(']'))
                return JsonValue::makeArray(std::move(items));
            expect(',');
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        std::map<std::string, JsonValue> members;
        if (tryConsume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWs();
            std::string key = parseString();
            expect(':');
            members.emplace(std::move(key), parseValue());
            if (tryConsume('}'))
                return JsonValue::makeObject(std::move(members));
            expect(',');
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string& text)
{
    return Parser(text).parseDocument();
}

JsonValue
parseJsonFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '", path, "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseJson(buffer.str());
}

} // namespace bsched
