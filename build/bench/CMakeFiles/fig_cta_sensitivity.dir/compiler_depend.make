# Empty compiler generated dependencies file for fig_cta_sensitivity.
# This may be replaced when dependencies are built.
