/**
 * @file
 * E5 — warp-scheduler baseline: GTO vs LRR IPC across the suite. The
 * paper builds LCS on a greedy scheduler; this figure establishes GTO as
 * a sound baseline (it matches or beats LRR nearly everywhere).
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig lrr = makeConfig(WarpSchedKind::LRR,
                                     CtaSchedKind::RoundRobin);
    const GpuConfig tl = makeConfig(WarpSchedKind::TwoLevel,
                                    CtaSchedKind::RoundRobin);
    const GpuConfig gto = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::RoundRobin);

    std::printf("E5: warp scheduler comparison (baseline RR CTA "
                "scheduler, max CTAs)\n\n");
    Table table("IPC by warp scheduler");
    table.setHeader({"workload", "LRR", "2LVL", "GTO", "GTO/LRR"});
    std::vector<double> ratios;
    for (const auto& name : workloadNames()) {
        const KernelInfo kernel = makeWorkload(name);
        const RunResult a = runKernel(lrr, kernel);
        const RunResult t = runKernel(tl, kernel);
        const RunResult b = runKernel(gto, kernel);
        ratios.push_back(b.ipc / a.ipc);
        table.addRow(name, {a.ipc, t.ipc, b.ipc, b.ipc / a.ipc});
    }
    table.addRow("geomean", {0.0, 0.0, 0.0, geomean(ratios)});
    std::printf("%s", table.toText().c_str());
    return 0;
}
