/**
 * @file
 * E-profile — the paper's motivation, seen through cycle accounting:
 * sweep the static per-core CTA limit for one workload of each type and
 * decompose every scheduler-slot cycle into the profiler's exclusive
 * stall categories. For memory-intensive (Type-2/3) kernels the
 * memory-attributed share (`mem_structural + scoreboard`) keeps growing
 * past the CTA count LCS chooses — maximum residency buys TLP that the
 * memory system immediately taxes back, which is *why* fewer CTAs run
 * faster. Compute-bound Type-1 kernels show a flat, pipeline-dominated
 * breakdown instead.
 *
 * Reproduces: the motivation analysis (Section 3) with stall
 * attribution instead of IPC alone.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/occupancy.hh"
#include "obs/profile.hh"
#include "sim/log.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

/** One profiled sweep point: the run plus its machine-wide counts. */
struct ProfiledPoint
{
    RunResult result;
    SlotCounts counts;
};

/**
 * Run @p kernel at static CTA limit @p limit with a CycleProfiler
 * attached and check the conservation invariant before returning.
 */
ProfiledPoint
profiledRun(GpuConfig config, const KernelInfo& kernel,
            std::uint32_t limit)
{
    config.staticCtaLimit = limit;
    CycleProfiler profiler;
    ProfiledPoint point;
    point.result = runKernel(config, kernel, Observer{
        nullptr, nullptr, &profiler});
    point.counts = profiler.total();
    const double slot_cycles =
        point.result.stats.sumBySuffix(".active_cycles") *
        config.numSchedulersPerCore;
    if (static_cast<double>(point.counts.total()) != slot_cycles) {
        fatal("fig_stall_breakdown: conservation violated for ",
              kernel.name, "/n", limit, ": ", point.counts.total(),
              " slot cycles accounted vs ", slot_cycles, " expected");
    }
    return point;
}

/**
 * The CTA limit LCS converges to for @p kernel: the median of the
 * per-core `lcs.coreC.k0.n_opt` decisions of one LCS run.
 */
std::uint32_t
lcsChosenLimit(const GpuConfig& base, const KernelInfo& kernel)
{
    GpuConfig config = base;
    config.ctaSched = CtaSchedKind::Lazy;
    const RunResult result = runKernel(config, kernel);
    std::vector<double> decisions;
    for (const auto& [name, value] : result.stats.entries()) {
        if (name.rfind("lcs.core", 0) == 0 &&
            name.size() >= 6 &&
            name.compare(name.size() - 6, 6, ".n_opt") == 0) {
            decisions.push_back(value);
        }
    }
    if (decisions.empty())
        return 0;
    std::sort(decisions.begin(), decisions.end());
    return static_cast<std::uint32_t>(decisions[decisions.size() / 2]);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    // One workload per paper type plus a second Type-3: the stall mix,
    // not just the IPC curve, is what separates the classes.
    const std::vector<std::string> names = {"bp", "srad", "kmeans", "bfs"};

    std::printf("E-profile: issue-slot stall breakdown vs CTAs/core "
                "(GTO, RR CTA scheduler; %u jobs)\n\n",
                opts.jobs);

    BenchReport report("fig_stall_breakdown");
    const ParallelRunner runner(opts.jobs);
    for (const std::string& name : names) {
        const KernelInfo kernel = makeWorkload(name);
        const std::uint32_t n_max = maxCtasPerCore(base, kernel);
        const std::uint32_t n_lcs = lcsChosenLimit(base, kernel);

        const std::vector<ProfiledPoint> sweep =
            runner.map<ProfiledPoint>(n_max, [&](std::size_t i) {
                return profiledRun(base, kernel,
                                   static_cast<std::uint32_t>(i) + 1);
            });

        Table table(name + " (" + toString(kernel.typeClass) +
                    "): slot-cycle shares by CTA limit");
        table.setHeader({"N", "ipc", "issued", "barrier", "scoreboard",
                         "mem_struct", "pipeline", "empty", "mem-attr",
                         ""});
        for (std::uint32_t n = 1; n <= n_max; ++n) {
            const ProfiledPoint& point = sweep[n - 1];
            const double total =
                static_cast<double>(point.counts.total());
            auto share = [&](SlotCat cat) {
                return fmt(static_cast<double>(point.counts[cat]) / total,
                           3);
            };
            const double mem_share =
                static_cast<double>(point.counts.memAttributed()) / total;
            table.addRow({std::to_string(n), fmt(point.result.ipc, 2),
                          share(SlotCat::Issued), share(SlotCat::Barrier),
                          share(SlotCat::Scoreboard),
                          share(SlotCat::MemStructural),
                          share(SlotCat::Pipeline), share(SlotCat::Empty),
                          fmt(mem_share, 3),
                          n == n_lcs ? "<- LCS N_opt" : ""});
            report.addRow(name + "/n" + std::to_string(n), point.result);
            report.addMetric(name + ".mem_share.n" + std::to_string(n),
                             mem_share);
        }
        report.addMetric(name + ".n_max", n_max);
        report.addMetric(name + ".lcs_n_opt", n_lcs);
        std::printf("%s\n", table.toText().c_str());
    }

    std::printf("Reading: for Type-2/3 rows the mem-attr share "
                "(scoreboard + mem_struct) keeps climbing past the LCS "
                "pick —\nextra CTAs past N_opt only deepen the memory "
                "bottleneck; Type-1 rows stay pipeline-bound and flat.\n");

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, base, makeWorkload("kmeans"),
                             "kmeans/base");
    return 0;
}
