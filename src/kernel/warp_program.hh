/**
 * @file
 * Loop-structured warp programs. All warps of a kernel execute the same
 * program: a sequence of segments, each repeated for a trip count. Trip
 * counts may vary deterministically per CTA (work imbalance), except in
 * programs containing barriers.
 */

#ifndef BSCHED_KERNEL_WARP_PROGRAM_HH
#define BSCHED_KERNEL_WARP_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "isa/instr.hh"
#include "kernel/mem_pattern.hh"

namespace bsched {

/** A straight-line block of instructions repeated @c trips times. */
struct Segment
{
    std::vector<Instr> instrs;
    std::uint32_t trips = 1;
    /**
     * Per-CTA trip variation in percent: CTA c runs
     * trips * (1 +- jitter), deterministically hashed from c. Must be 0
     * when the segment (or any segment of the program) contains Bar.
     */
    std::uint32_t tripJitterPct = 0;
};

/** The complete per-warp instruction stream plus its pattern table. */
class WarpProgram
{
  public:
    /** Append a segment; returns its index. */
    std::size_t addSegment(Segment segment);

    /** Register a memory pattern; returns its patternId. */
    std::uint8_t addPattern(MemPattern pattern);

    const std::vector<Segment>& segments() const { return segments_; }
    const std::vector<MemPattern>& patterns() const { return patterns_; }

    const MemPattern& pattern(std::uint8_t id) const;

    /** Number of distinct virtual registers referenced (scoreboard size). */
    int regCount() const { return regCount_; }

    /** Effective trip count of @p seg for CTA @p cta (jitter applied). */
    std::uint32_t tripsFor(std::size_t seg, std::uint32_t cta) const;

    /** Total dynamic instructions one warp of CTA @p cta executes. */
    std::uint64_t dynamicInstrCount(std::uint32_t cta) const;

    /** True if any instruction is a barrier. */
    bool hasBarrier() const;

    /** Fatal() on malformed programs (bad regs, bad patterns, bar+jitter). */
    void validate() const;

    bool empty() const { return segments_.empty(); }

  private:
    std::vector<Segment> segments_;
    std::vector<MemPattern> patterns_;
    int regCount_ = 0;
};

/**
 * A warp's dynamic position inside a program: (segment, trip, offset).
 * advance() steps through the loop structure; done() marks completion.
 */
struct ProgramCursor
{
    std::uint32_t seg = 0;
    std::uint32_t trip = 0;
    std::uint32_t pc = 0;

    /** Current instruction; program must not be done. */
    const Instr& instr(const WarpProgram& prog) const;

    /**
     * Iteration key for address generation: the trip index within the
     * current segment. Two memory instructions in one loop body thus share
     * a key per trip, which models intra-iteration reuse.
     */
    std::uint64_t iterKey() const { return trip; }

    /** Step past the current instruction. */
    void advance(const WarpProgram& prog, std::uint32_t cta);

    /** True when the program has been fully executed. */
    bool done(const WarpProgram& prog) const;

    /** Reset to program start. */
    void reset() { seg = trip = pc = 0; }

    /** Reset and skip any leading zero-trip segments for CTA @p cta. */
    void init(const WarpProgram& prog, std::uint32_t cta);
};

} // namespace bsched

#endif // BSCHED_KERNEL_WARP_PROGRAM_HH
