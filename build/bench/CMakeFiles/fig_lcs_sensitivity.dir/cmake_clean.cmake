file(REMOVE_RECURSE
  "CMakeFiles/fig_lcs_sensitivity.dir/fig_lcs_sensitivity.cc.o"
  "CMakeFiles/fig_lcs_sensitivity.dir/fig_lcs_sensitivity.cc.o.d"
  "fig_lcs_sensitivity"
  "fig_lcs_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lcs_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
