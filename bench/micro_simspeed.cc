/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * simulated-cycles-per-second for a small kernel, cache and coalescer
 * throughput. Guards against performance regressions in the hot loops
 * that every experiment depends on.
 *
 * Before the microbenchmarks run, a harness self-check times the same
 * multi-point sweep serially (--jobs 1) and with the requested worker
 * count, verifies the per-point results are byte-identical, and reports
 * points/sec for both. This is the quickest way to see what the
 * parallel harness buys on a given machine.
 *
 * `--emit-json FILE` additionally writes a `bsched-simspeed-v1`
 * artifact: the sim rate of the small kernel bare, with the
 * tracer+sampler stack, with the cycle-accounting profiler, with the
 * request-level memory profiler, and with the phase telemetry; a
 * serving-engine pair with and
 * without the decision audit attached (serve_plain/servetraced); plus
 * a `fast_forward` section timing an idle-heavy and a fully-busy
 * microkernel with idle fast-forward on and off. The committed
 * bench/BENCH_simspeed.json
 * baseline is produced this way and CI's perf-smoke step diffs a fresh
 * artifact against it with tools/bench_compare.py, which hard-gates
 * the machine-independent ratios (fast-forward speedups, profiler
 * overhead budgets).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "gpu/gpu.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "mem/cache.hh"
#include "obs/mem_profile.hh"
#include "obs/phase/phase.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"
#include "serve/engine.hh"
#include "serve/serve_trace.hh"
#include "serve/traffic.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

KernelInfo
smallKernel()
{
    KernelInfo k;
    k.name = "micro";
    k.grid = {30, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder builder;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = builder.pattern(in);
    builder.loop(16).load(i).alu(4).endLoop();
    k.program = builder.build();
    return k;
}

/**
 * Idle-heavy microkernel: a single warp chasing dependent long-latency
 * loads on an otherwise empty GPU. With exactly one request in flight
 * at a time every memory hop (interconnect, L2, DRAM, return path) is
 * a quiet span of the full hop latency, so the overwhelming majority
 * of cycles are elidable. This is the idle fast-forward showcase — and
 * with fast-forward off, the worst case for the plain tick loop.
 */
KernelInfo
idleHeavyKernel()
{
    KernelInfo k;
    k.name = "idle_heavy";
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder builder;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x2000000;
    const auto i = builder.pattern(in);
    builder.loop(256).load(i).alu(1).endLoop();
    k.program = builder.build();
    return k;
}

/**
 * Fully-busy microkernel: maximum-occupancy pure-ALU CTAs that issue
 * every cycle on every core. Fast-forward never fires here, so the
 * ff_on/ff_off ratio bounds the overhead of the quiet-cycle gate
 * itself.
 */
KernelInfo
busyKernel()
{
    KernelInfo k;
    k.name = "busy";
    k.grid = {60, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder builder;
    builder.loop(64).alu(1).endLoop();
    k.program = builder.build();
    return k;
}

void
BM_SimulateSmallKernel(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Gpu gpu(config);
        gpu.launchKernel(kernel);
        gpu.run();
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernel)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with the full observability stack attached (tracer on
 * every component plus a 512-cycle interval sampler). Comparing against
 * BM_SimulateSmallKernel bounds the enabled-path overhead; the disabled
 * path is BM_SimulateSmallKernel itself (null tracer, no sampler).
 */
void
BM_SimulateSmallKernelObserved(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Tracer tracer(config.numCores, config.numMemPartitions);
        IntervalSampler sampler(512);
        Gpu gpu(config, Observer{&tracer, &sampler});
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(tracer.recorded());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelObserved)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with only the cycle-accounting profiler attached.
 * Comparing against BM_SimulateSmallKernel bounds the per-slot
 * classification overhead of --profile runs; the disabled path — a
 * null profiler pointer — is BM_SimulateSmallKernel itself.
 */
void
BM_SimulateSmallKernelProfiled(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        CycleProfiler profiler;
        Gpu gpu(config, Observer{nullptr, nullptr, &profiler});
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(profiler.total().total());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelProfiled)->Unit(benchmark::kMillisecond);

/**
 * The same kernel with only the request-level memory profiler attached.
 * Comparing against BM_SimulateSmallKernel bounds the per-request
 * bookkeeping overhead of --mem-profile runs; the disabled path — null
 * memProfiler pointers throughout the memory system — is
 * BM_SimulateSmallKernel itself and is pinned to the ≤5% budget by the
 * perf-smoke trajectory.
 */
void
BM_SimulateSmallKernelMemProfiled(benchmark::State& state)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MemProfiler profiler;
        Observer obs;
        obs.memProfiler = &profiler;
        Gpu gpu(config, obs);
        gpu.launchKernel(kernel);
        gpu.run();
        benchmark::DoNotOptimize(profiler.completedRequests());
        cycles += gpu.cycle();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernelMemProfiled)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State& state)
{
    CacheConfig cfg;
    TagArray tags(cfg, "bench.l1");
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr line = (n * 127) % 4096 * cfg.lineBytes;
        benchmark::DoNotOptimize(tags.access(line, n));
        if (!tags.probe(line))
            tags.fill(line, n);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalescer(benchmark::State& state)
{
    MemPattern p;
    p.kind = AccessKind::Strided;
    p.strideElems = static_cast<std::uint32_t>(state.range(0));
    KernelGeom geom{256, 120};
    std::uint64_t iter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            coalesce(p, geom, 3, 2, iter++, kWarpSize, 128));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_Coalescer)->Arg(1)->Arg(8)->Arg(32);

void
BM_WorkloadConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        for (const auto& name : workloadNames())
            benchmark::DoNotOptimize(makeWorkload(name));
    }
}
BENCHMARK(BM_WorkloadConstruction)->Unit(benchmark::kMillisecond);

/**
 * Pull `--jobs N` / `--jobs=N` / `-jN` and `--emit-json FILE` out of the
 * command line (so the rest can go to benchmark::Initialize). Unlike
 * bench::parseJobs this is lenient about unknown arguments —
 * google-benchmark owns them here.
 */
unsigned
extractJobsArg(int& argc, char** argv, std::string& emit_json,
               std::string& serve_trace)
{
    unsigned requested = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc)
            value = argv[++i];
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            value = arg + 7;
        else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0')
            value = arg + 2;
        else if (std::strcmp(arg, "--emit-json") == 0 && i + 1 < argc) {
            emit_json = argv[++i];
            continue;
        } else if (std::strncmp(arg, "--emit-json=", 12) == 0) {
            emit_json = arg + 12;
            continue;
        } else if (std::strcmp(arg, "--serve-trace") == 0 && i + 1 < argc) {
            serve_trace = argv[++i];
            continue;
        } else if (std::strncmp(arg, "--serve-trace=", 14) == 0) {
            serve_trace = arg + 14;
            continue;
        } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
            setDefaultFastForward(false);
            continue;
        }
        if (value != nullptr) {
            const long parsed = std::strtol(value, nullptr, 10);
            if (parsed <= 0)
                fatal("--jobs expects a positive integer, got '", value, "'");
            requested = static_cast<unsigned>(parsed);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return requested;
}

/** One measured simulator configuration for the simspeed artifact. */
struct RateSample
{
    double simCyclesPerSec = 0.0;       ///< best trial
    std::uint64_t cyclesPerRep = 0;
    double wallSec = 0.0;               ///< wall time of the best trial
    std::vector<double> trialRates;     ///< every trial, in time order
};

/**
 * Timed trials per measured configuration. The artifact's gated ratios
 * are medians over per-trial pairs (pairedRatio below), so this is
 * also the sample count behind every overhead/speedup figure.
 */
constexpr int kRateTrials = 5;

/** Which observers the measured runs attach. */
enum class ObsMode
{
    Plain,       ///< no observers — the null-pointer disabled path
    Observed,    ///< tracer + interval sampler (as --trace runs)
    Profiled,    ///< cycle-accounting profiler only (as --profile runs)
    MemProfiled, ///< memory profiler only (as --mem-profile runs)
    Phased,      ///< phase telemetry only (as --phase runs)
    ServePlain,  ///< serving engine, no audit — the null-trace_ path
    ServeTraced  ///< serving engine with the decision audit attached
};

/**
 * Small serving trace for the serve_plain/servetraced overhead pair:
 * two closed-loop tenants cycling the suite's shortest kernels, so the
 * run is dominated by engine decisions (admissions, completions,
 * predictor updates) rather than one long kernel — the worst realistic
 * case for per-decision audit bookkeeping.
 */
TrafficSpec
serveSpec()
{
    TrafficSpec spec;
    spec.seed = 7;
    TenantSpec t0;
    t0.process = ArrivalProcess::ClosedLoop;
    t0.mix = {"lud", "nw"};
    t0.requests = 8;
    t0.closedDepth = 2;
    t0.meanGapCycles = 5000;
    TenantSpec t1;
    t1.process = ArrivalProcess::ClosedLoop;
    t1.mix = {"pf"};
    t1.requests = 6;
    t1.closedDepth = 1;
    t1.meanGapCycles = 8000;
    spec.tenants = {t0, t1};
    return spec;
}

/** One complete simulation with the observers of @p mode attached. */
std::uint64_t
simulateOnce(const GpuConfig& config, const KernelInfo& kernel, ObsMode mode)
{
    if (mode == ObsMode::ServePlain || mode == ObsMode::ServeTraced) {
        // Serving-engine pair: @p kernel is unused — the engine builds
        // its own pool from the trace's workload names.
        ServeConfig serve;
        serve.policy = ServePolicy::ReorderPreempt;
        ServingEngine engine(config, serve);
        ServeTrace trace;
        if (mode == ObsMode::ServeTraced)
            engine.setTrace(&trace);
        const ServingRunResult result = engine.run(generateTrace(serveSpec()));
        benchmark::DoNotOptimize(trace.audit.decisions.size());
        return result.totalCycles;
    }

    // Construct only the observers the mode attaches: an idle
    // Tracer still allocates its event buffers, which would bill a
    // constant per-rep cost against every mode — enough to distort
    // the short fast-forwarded reps this function times.
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<IntervalSampler> sampler;
    std::unique_ptr<CycleProfiler> profiler;
    std::unique_ptr<MemProfiler> mem_profiler;
    std::unique_ptr<PhaseTelemetry> phase;
    Observer obs;
    if (mode == ObsMode::Observed) {
        tracer = std::make_unique<Tracer>(config.numCores,
                                          config.numMemPartitions);
        sampler = std::make_unique<IntervalSampler>(512);
        obs.tracer = tracer.get();
        obs.sampler = sampler.get();
    } else if (mode == ObsMode::Profiled) {
        profiler = std::make_unique<CycleProfiler>();
        obs.profiler = profiler.get();
    } else if (mode == ObsMode::MemProfiled) {
        mem_profiler = std::make_unique<MemProfiler>();
        obs.memProfiler = mem_profiler.get();
    } else if (mode == ObsMode::Phased) {
        // Phase telemetry alone: this is the --phase overhead on the
        // always-available counters; interference channels (a
        // MemProfiler riding along) are billed by MemProfiled above.
        phase = std::make_unique<PhaseTelemetry>();
        obs.phase = phase.get();
    }
    Gpu gpu(config, obs);
    gpu.launchKernel(kernel);
    gpu.run();
    return gpu.cycle();
}

/** One measurement request for measureInterleaved(). */
struct RatePoint
{
    const GpuConfig* config = nullptr;
    const KernelInfo* kernel = nullptr;
    ObsMode mode = ObsMode::Plain;
};

/**
 * Time @p reps simulations of every point, kRateTrials trials each,
 * with the trial loop on the *outside*: trial t of every point runs
 * back-to-back before trial t+1 of any. Ratios between two points'
 * same-index trials therefore compare measurements taken milliseconds
 * apart — see pairedRatio() for why that matters.
 */
std::vector<RateSample>
measureInterleaved(const std::vector<RatePoint>& points, int reps)
{
    using Clock = std::chrono::steady_clock;
    std::vector<RateSample> samples(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        // Warmup, also pins the per-rep cycle count.
        samples[i].cyclesPerRep = simulateOnce(
            *points[i].config, *points[i].kernel, points[i].mode);
    }
    for (int trial = 0; trial < kRateTrials; ++trial) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Clock::time_point t0 = Clock::now();
            std::uint64_t total_cycles = 0;
            for (int rep = 0; rep < reps; ++rep) {
                total_cycles += simulateOnce(*points[i].config,
                                             *points[i].kernel,
                                             points[i].mode);
            }
            const double wall =
                std::chrono::duration<double>(Clock::now() - t0).count();
            if (wall <= 0.0)
                continue;
            const double rate = static_cast<double>(total_cycles) / wall;
            RateSample& sample = samples[i];
            sample.trialRates.push_back(rate);
            if (rate > sample.simCyclesPerSec) {
                sample.simCyclesPerSec = rate;
                sample.wallSec = wall;
            }
        }
    }
    return samples;
}

/**
 * Robust ratio of two rate measurements: the median of the per-trial
 * rate ratios (trial i of @p num against trial i of @p den). The two
 * mode's trials are interleaved in time by the caller, so host-speed
 * drift — the dominant noise on virtualized runners, where wall rates
 * can swing tens of percent between seconds — hits both sides of each
 * pair about equally and cancels in the ratio; the median then absorbs
 * one descheduled pair. Dividing best-of-N rates instead (the obvious
 * alternative) compares trials from *different* moments, which is
 * exactly the drift this avoids.
 */
double
pairedRatio(const RateSample& num, const RateSample& den)
{
    std::vector<double> ratios;
    const std::size_t n =
        std::min(num.trialRates.size(), den.trialRates.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (den.trialRates[i] > 0.0)
            ratios.push_back(num.trialRates[i] / den.trialRates[i]);
    }
    if (ratios.empty())
        return 0.0;
    std::sort(ratios.begin(), ratios.end());
    return ratios[ratios.size() / 2];
}

/**
 * Write the `bsched-simspeed-v1` artifact: the sim rate of the small
 * kernel with no observers, with the tracer+sampler stack, with the
 * cycle-accounting profiler, with the memory profiler, and with the
 * phase telemetry, plus the
 * enabled-path overhead ratios, plus a `fast_forward` section timing
 * the idle-heavy and fully-busy microkernels with idle fast-forward on
 * and off. CI's perf-smoke step compares a fresh artifact against the
 * committed bench/BENCH_simspeed.json baseline with
 * tools/bench_compare.py; absolute rates are machine-dependent (gated
 * with tolerance), while the overhead and speedup ratios are
 * machine-independent budgets gated with hard floors.
 */
void
writeSimspeedJson(const std::string& path)
{
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    constexpr int kReps = 20;

    // Fast-forward on/off configs; explicit flags so the section
    // measures both paths regardless of the process-wide default.
    GpuConfig ff_on_cfg = config;
    ff_on_cfg.fastForward = true;
    GpuConfig ff_off_cfg = config;
    ff_off_cfg.fastForward = false;
    const KernelInfo idle_kernel = idleHeavyKernel();
    const KernelInfo busy_kernel = busyKernel();

    // All eleven points in ONE interleaved trial schedule, so every
    // gated ratio (observer overheads, serve-audit overhead,
    // fast-forward speedups) divides measurements taken moments apart.
    const std::vector<RatePoint> points = {
        {&config, &kernel, ObsMode::Plain},
        {&config, &kernel, ObsMode::Observed},
        {&config, &kernel, ObsMode::Profiled},
        {&config, &kernel, ObsMode::MemProfiled},
        {&config, &kernel, ObsMode::Phased},
        {&ff_on_cfg, &idle_kernel, ObsMode::Plain},
        {&ff_off_cfg, &idle_kernel, ObsMode::Plain},
        {&ff_on_cfg, &busy_kernel, ObsMode::Plain},
        {&ff_off_cfg, &busy_kernel, ObsMode::Plain},
        {&config, &kernel, ObsMode::ServePlain},
        {&config, &kernel, ObsMode::ServeTraced},
    };
    const std::vector<RateSample> samples = measureInterleaved(points, kReps);
    const RateSample& plain = samples[0];
    const RateSample& observed = samples[1];
    const RateSample& profiled = samples[2];
    const RateSample& mem_profiled = samples[3];
    const RateSample& phased = samples[4];
    const RateSample& idle_on = samples[5];
    const RateSample& idle_off = samples[6];
    const RateSample& busy_on = samples[7];
    const RateSample& busy_off = samples[8];
    const RateSample& serve_plain = samples[9];
    const RateSample& serve_traced = samples[10];

    auto mode_json = [](std::ostream& os, const char* name,
                        const RateSample& s, bool last) {
        os << "    \"" << name << "\": {\"sim_cycles_per_s\": "
           << jsonNumber(s.simCyclesPerSec) << ", \"cycles_per_rep\": "
           << s.cyclesPerRep << ", \"wall_s\": " << jsonNumber(s.wallSec)
           << "}" << (last ? "\n" : ",\n");
    };
    auto ratio = [&](const RateSample& s) { return pairedRatio(s, plain); };
    auto speedup = [](const RateSample& on, const RateSample& off) {
        return pairedRatio(on, off);
    };
    auto ff_json = [&](std::ostream& os, const char* name,
                       const RateSample& on, const RateSample& off,
                       bool last) {
        os << "    \"" << name << "\": {\n";
        os << "  ";
        mode_json(os, "ff_on", on, false);
        os << "  ";
        mode_json(os, "ff_off", off, false);
        os << "      \"speedup\": " << jsonNumber(speedup(on, off))
           << "\n    }" << (last ? "\n" : ",\n");
    };
    const std::size_t bytes = writeFile(path, [&](std::ostream& os) {
        os << "{\n  \"schema\": \"bsched-simspeed-v1\",\n"
           << "  \"kernel\": \"" << jsonEscape(kernel.name) << "\",\n"
           << "  \"reps\": " << kReps << ",\n  \"modes\": {\n";
        mode_json(os, "plain", plain, false);
        mode_json(os, "observed", observed, false);
        mode_json(os, "profiled", profiled, false);
        mode_json(os, "memprofiled", mem_profiled, false);
        mode_json(os, "phased", phased, false);
        mode_json(os, "serve_plain", serve_plain, false);
        mode_json(os, "servetraced", serve_traced, true);
        os << "  },\n  \"relative_rate\": {\"observed_vs_plain\": "
           << jsonNumber(ratio(observed)) << ", \"profiled_vs_plain\": "
           << jsonNumber(ratio(profiled))
           << ", \"memprofiled_vs_plain\": "
           << jsonNumber(ratio(mem_profiled))
           << ", \"phase_vs_plain\": "
           << jsonNumber(ratio(phased))
           << ", \"servetraced_vs_plain\": "
           << jsonNumber(pairedRatio(serve_traced, serve_plain)) << "},\n"
           << "  \"fast_forward\": {\n";
        ff_json(os, "idle_heavy", idle_on, idle_off, false);
        ff_json(os, "busy", busy_on, busy_off, true);
        os << "  }\n}\n";
    });
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), bytes);
}

/**
 * Time the same sweep serially and with @p jobs workers, check the
 * per-point results match exactly, and report points/sec for both.
 */
void
harnessSelfCheck(unsigned jobs)
{
    using Clock = std::chrono::steady_clock;
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
    const KernelInfo kernel = smallKernel();
    const std::uint32_t limits = 8; // >= 8 independent simulation points

    const auto t0 = Clock::now();
    const auto serial = sweepCtaLimit(config, kernel, limits, 1);
    const auto t1 = Clock::now();
    const auto parallel = sweepCtaLimit(config, kernel, limits, jobs);
    const auto t2 = Clock::now();

    if (serial.size() != parallel.size())
        fatal("harness self-check: point-count mismatch");
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].cycles != parallel[i].cycles ||
            serial[i].instrs != parallel[i].instrs ||
            serial[i].ipc != parallel[i].ipc) {
            fatal("harness self-check: point ", i,
                  " differs between --jobs 1 and --jobs ", jobs,
                  " (determinism violated)");
        }
    }

    const auto secs = [](Clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    const double s_serial = secs(t1 - t0);
    const double s_parallel = secs(t2 - t1);
    std::printf("harness self-check: %u-point sweep, per-point results "
                "identical\n",
                limits);
    std::printf("  --jobs 1:  %6.2f points/s (%.3fs)\n", limits / s_serial,
                s_serial);
    std::printf("  --jobs %-2u: %6.2f points/s (%.3fs), %.2fx\n", jobs,
                limits / s_parallel, s_parallel, s_serial / s_parallel);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string emit_json;
    std::string serve_trace;
    const unsigned jobs = bsched::resolveJobs(
        extractJobsArg(argc, argv, emit_json, serve_trace));
    harnessSelfCheck(jobs);
    if (!emit_json.empty())
        writeSimspeedJson(emit_json);
    if (!serve_trace.empty()) {
        bsched::bench::BenchOptions serve_opts;
        serve_opts.serveTracePath = serve_trace;
        bsched::bench::writeServeTraceArtifact(serve_opts);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
