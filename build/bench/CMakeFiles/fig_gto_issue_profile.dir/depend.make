# Empty dependencies file for fig_gto_issue_profile.
# This may be replaced when dependencies are built.
