/**
 * @file
 * Inter-CTA locality walkthrough: a hotspot-like stencil whose
 * neighbouring CTAs share halo rows. Shows how the baseline scheduler
 * wastes that locality by spraying consecutive CTAs across cores, and
 * how BCS (paired dispatch) plus BAWS (block-aware warp scheduling)
 * recover it.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "sim/log.hh"
#include "sim/table.hh"

namespace {

bsched::KernelInfo
makeStencil()
{
    using namespace bsched;
    setLogLevelFromEnv(); // honour BSCHED_LOG=silent|warn|info|debug
    ProgramBuilder builder;
    // Each CTA processes 4 rows of a 1KB-wide grid and reads 2 halo
    // rows on each side: 50% of each CTA's input is shared with its
    // neighbours.
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = 0x40000000;
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = builder.pattern(halo);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0x80000000;
    const auto o = builder.pattern(out);
    builder.loop(32).load(h).alu(2).load(h).alu(2).endLoop();
    builder.loop(2).alu(1).store(o).endLoop();

    KernelInfo kernel;
    kernel.name = "stencil";
    kernel.grid = {480, 1, 1};
    kernel.cta = {256, 1, 1};
    kernel.regsPerThread = 32; // register-limited to 4 CTAs/core
    kernel.program = builder.build();
    return kernel;
}

} // namespace

int
main()
{
    using namespace bsched;
    const KernelInfo kernel = makeStencil();

    struct Variant
    {
        const char* label;
        WarpSchedKind warp;
        CtaSchedKind cta;
    };
    const Variant variants[] = {
        {"baseline (RR spray + GTO)", WarpSchedKind::GTO,
         CtaSchedKind::RoundRobin},
        {"BCS pairs + GTO", WarpSchedKind::GTO, CtaSchedKind::Block},
        {"BCS pairs + BAWS", WarpSchedKind::BAWS, CtaSchedKind::Block},
    };

    Table table("stencil under CTA-placement policies");
    table.setHeader({"policy", "IPC", "speedup", "L1 miss %",
                     "DRAM reads"});
    double base_ipc = 0.0;
    for (const Variant& v : variants) {
        const RunResult r = runKernel(makeConfig(v.warp, v.cta), kernel);
        if (base_ipc == 0.0)
            base_ipc = r.ipc;
        table.addRow({v.label, fmt(r.ipc, 2), fmt(r.ipc / base_ipc, 3),
                      fmt(100 * r.l1MissRate(), 1),
                      fmt(r.stats.sumBySuffix(".dram.read"), 0)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Consecutive CTAs share 4 of their 8 input rows; pairing\n"
                "them on one core turns the partner's halo fetches into\n"
                "L1 hits (watch the miss-rate column drop by a third),\n"
                "and BAWS keeps the pair at even progress so the shared\n"
                "lines are still resident when reused. How much of the\n"
                "miss reduction converts into IPC depends on how exposed\n"
                "the latency is — see bench/fig_baws for the full sweep\n"
                "and EXPERIMENTS.md (E9/E10) for the discussion.\n");
    return 0;
}
