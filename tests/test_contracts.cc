/**
 * @file
 * Contract-layer tests: the BSCHED_CHECK/BSCHED_INVARIANT macros
 * themselves (gating, throw mode, compile-out) and one injected
 * violation per instrumented module proving its contract actually
 * fires. Violation tests run only in builds with contracts compiled in
 * (Debug or -DBSCHED_VALIDATE=ON) and skip elsewhere — the Release
 * tests below instead pin that contracts cost nothing when disabled.
 */

#include <gtest/gtest.h>

#include "core/ldst_unit.hh"
#include "core/scoreboard.hh"
#include "core/simt_core.hh"
#include "core/warp_sched.hh"
#include "cta/block_cta_sched.hh"
#include "cta/cta_sched.hh"
#include "cta/dyncta_sched.hh"
#include "cta/lazy_cta_sched.hh"
#include "gpu/gpu.hh"
#include "gpu/multi_kernel.hh"
#include "kernel/kernel_info.hh"
#include "kernel/program_builder.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/mem_partition.hh"
#include "mem/mshr.hh"
#include "serve/predictor.hh"
#include "serve/serve_trace.hh"
#include "sim/check.hh"

namespace bsched {
namespace {

#define SKIP_UNLESS_CHECKS()                                              \
    if (!checksEnabled())                                                 \
        GTEST_SKIP() << "contracts compiled out (Release without "        \
                        "BSCHED_VALIDATE)";

// --- macro semantics ----------------------------------------------------

TEST(Contracts, EnabledMatchesBuildConfiguration)
{
#if !defined(NDEBUG) || defined(BSCHED_VALIDATE)
    EXPECT_TRUE(checksEnabled());
    EXPECT_EQ(BSCHED_CHECKS_ENABLED, 1);
#else
    EXPECT_FALSE(checksEnabled());
    EXPECT_EQ(BSCHED_CHECKS_ENABLED, 0);
#endif
}

TEST(Contracts, PassingChecksAreSilentAndEvaluateOnce)
{
    int evals = 0;
    BSCHED_CHECK(++evals > 0, "never shown");
    BSCHED_INVARIANT(++evals > 0);
    BSCHED_DCHECK(++evals > 0);
    // Enabled: each condition evaluated exactly once. Disabled: the
    // expressions are parsed (sizeof) but never executed — this is the
    // zero-overhead guarantee Release builds rely on.
    EXPECT_EQ(evals, checksEnabled() ? 3 : 0);
}

TEST(Contracts, DisabledChecksDoNotEvaluateMessageArguments)
{
    int message_evals = 0;
    const auto expensive = [&message_evals] {
        ++message_evals;
        return std::string("costly");
    };
    // Disabled contracts drop message arguments at preprocessing time,
    // so reference the lambda explicitly to stay -Werror clean there.
    static_cast<void>(expensive);
    if (checksEnabled()) {
        ScopedContractThrows guard;
        EXPECT_THROW(BSCHED_CHECK(false, expensive()), ContractViolation);
        EXPECT_EQ(message_evals, 1);
    } else {
        BSCHED_CHECK(false, expensive());
        EXPECT_EQ(message_evals, 0);
    }
}

TEST(Contracts, ViolationCarriesKindExpressionAndLocation)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    try {
        BSCHED_INVARIANT(1 + 1 == 3, "math broke: ", 42);
        FAIL() << "invariant did not fire";
    } catch (const ContractViolation& violation) {
        EXPECT_EQ(violation.kind(), "invariant");
        EXPECT_EQ(violation.expression(), "1 + 1 == 3");
        const std::string what = violation.what();
        EXPECT_NE(what.find("test_contracts.cc"), std::string::npos);
        EXPECT_NE(what.find("math broke: 42"), std::string::npos);
    }
}

TEST(Contracts, ScopedThrowModeRestoresPreviousSetting)
{
    EXPECT_FALSE(contractThrows());
    {
        ScopedContractThrows outer;
        EXPECT_TRUE(contractThrows());
        {
            ScopedContractThrows inner;
            EXPECT_TRUE(contractThrows());
        }
        EXPECT_TRUE(contractThrows());
    }
    EXPECT_FALSE(contractThrows());
}

// --- violation injection, one per instrumented module -------------------

TEST(ContractViolations, MshrDoubleFillFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    MshrFile mshr(4, 2, "t");
    ASSERT_EQ(mshr.allocate(0x1000, 7), MshrOutcome::NewEntry);
    EXPECT_EQ(mshr.complete(0x1000).size(), 1u); // legitimate fill
    // Second fill of the same line: the entry is gone, the fetch was
    // duplicated somewhere upstream.
    EXPECT_THROW(mshr.complete(0x1000), ContractViolation);
}

TEST(ContractViolations, ScoreboardDoubleReleaseFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    Scoreboard sb;
    sb.setPendingUntilRelease(3);
    sb.release(3, 10); // paired release
    EXPECT_THROW(sb.release(3, 11), ContractViolation);
}

TEST(ContractViolations, ScoreboardDoubleAcquireFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    Scoreboard sb;
    sb.setPendingUntilRelease(5);
    EXPECT_THROW(sb.setPendingUntilRelease(5), ContractViolation);
}

TEST(ContractViolations, CtaSlotLeakFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;

    GpuConfig config = GpuConfig::gtx480();
    config.maxCtasPerCore = 1; // one slot: the second launch must leak
    SimtCore core(config, 0);

    KernelInfo kernel;
    kernel.name = "slots";
    kernel.grid = {4, 1, 1};
    kernel.cta = {64, 1, 1};
    kernel.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(64).alu(2, false).endLoop();
    kernel.program = b.build();
    kernel.validate();

    core.launchCta(0, kernel, 0, 0, 0);
    ASSERT_FALSE(core.canAccept(kernel));
    EXPECT_THROW(core.launchCta(0, kernel, 0, 1, 1), ContractViolation);
}

TEST(ContractViolations, CacheDoubleFillFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    TagArray tags(CacheConfig{}, "t");
    tags.fill(0x2000, 1);
    EXPECT_THROW(tags.fill(0x2000, 2), ContractViolation);
}

TEST(ContractViolations, LcsCtaDoneWithoutKernelInfoFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    GpuConfig config = GpuConfig::gtx480();
    config.ctaSched = CtaSchedKind::Lazy;
    LazyCtaScheduler lcs(config);
    CtaDoneEvent event;
    event.coreId = 0;
    event.kernelId = 0;
    event.info = nullptr; // the contract input LCS depends on
    CoreList cores;
    EXPECT_THROW(lcs.notifyCtaDone(0, event, cores), ContractViolation);
}

TEST(ContractViolations, DispatchPastEndOfGridFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;

    GpuConfig config = GpuConfig::gtx480();
    // Expose the protected dispatch() boundary the policies share.
    struct Probe : RoundRobinCtaScheduler
    {
        using RoundRobinCtaScheduler::dispatch;
        using RoundRobinCtaScheduler::RoundRobinCtaScheduler;
    } sched(config);

    KernelInfo kernel;
    kernel.name = "grid";
    kernel.grid = {1, 1, 1};
    kernel.cta = {32, 1, 1};
    kernel.regsPerThread = 16;
    ProgramBuilder b;
    b.alu(2, false);
    kernel.program = b.build();
    kernel.validate();

    KernelInstance inst;
    inst.info = &kernel;
    inst.id = 0;
    inst.nextCta = kernel.gridCtas(); // grid exhausted
    SimtCore core(config, 0);
    EXPECT_THROW(sched.dispatch(0, inst, core, 0), ContractViolation);
}

TEST(ContractViolations, DramPopWithoutResponseFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    DramChannel dram(DramConfig{}, 128, 1, "t");
    ASSERT_FALSE(dram.responseReady(0));
    EXPECT_THROW(dram.popResponse(0), ContractViolation);
}

TEST(ContractViolations, InterconnectPopWithoutRequestFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    Interconnect noc(GpuConfig::gtx480());
    ASSERT_FALSE(noc.requestReady(0, 0));
    EXPECT_THROW(noc.popRequest(0, 0), ContractViolation);
}

TEST(ContractViolations, InterconnectPopWithoutResponseFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    Interconnect noc(GpuConfig::gtx480());
    ASSERT_FALSE(noc.responseReady(0, 0));
    EXPECT_THROW(noc.popResponse(0, 0), ContractViolation);
}

TEST(ContractViolations, MemPartitionPopWithoutResponseFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    MemPartition partition(GpuConfig::gtx480(), 0);
    ASSERT_FALSE(partition.responseReady());
    EXPECT_THROW(partition.popResponse(), ContractViolation);
}

TEST(ContractViolations, DynctaTargetOutOfRangeFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    const GpuConfig config = GpuConfig::gtx480();
    DynctaScheduler dyncta(config);
    EXPECT_THROW(dyncta.target(config.numCores), ContractViolation);
}

TEST(ContractViolations, PredictorZeroRuntimeCompletionFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    RuntimePredictor predictor;
    EXPECT_THROW(predictor.recordCompletion("w", 0), ContractViolation);
}

TEST(ContractViolations, PredictorAccuracyZeroActualFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    PredictorAccuracy accuracy;
    EXPECT_THROW(accuracy.record("w", 100, 0), ContractViolation);
}

TEST(ContractViolations, ServeAuditOutOfOrderDecisionFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    ServeAudit audit;
    ServeDecision decision;
    decision.cycle = 10;
    audit.record(decision);
    decision.cycle = 5; // audit log must stay in cycle order
    EXPECT_THROW(audit.record(decision), ContractViolation);
}

TEST(ContractViolations, LdstEmptyBatchFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    LdstUnit ldst(GpuConfig::gtx480(), 0);
    EXPECT_THROW(ldst.pushBatch(0, 0, kNoReg, false, {}),
                 ContractViolation);
}

TEST(ContractViolations, GpuDrainUnknownKernelFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    Gpu gpu(GpuConfig::gtx480());
    EXPECT_THROW(gpu.requestDrain(0, true), ContractViolation);
}

TEST(ContractViolations, WarpSchedEmptyReadySetFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    const std::vector<int> ready;
    const std::vector<Warp> warps;
    LrrScheduler lrr;
    EXPECT_THROW(lrr.pick(ready, warps), ContractViolation);
    GtoScheduler gto;
    EXPECT_THROW(gto.pick(ready, warps), ContractViolation);
    TwoLevelScheduler two_level(8);
    EXPECT_THROW(two_level.pick(ready, warps), ContractViolation);
    BawsScheduler baws;
    EXPECT_THROW(baws.pick(ready, warps), ContractViolation);
}

TEST(ContractViolations, IsolatedCacheZeroCycleInsertFires)
{
    SKIP_UNLESS_CHECKS();
    ScopedContractThrows guard;
    IsolatedCycleCache cache;
    EXPECT_THROW(cache.insert(1, 0), ContractViolation);
}

// --- fast-forward soundness regressions ---------------------------------

TEST(FfSoundness, GreedySchedulersDeclareEventDriven)
{
    // RoundRobin and Block opt into kCycleNever *explicitly* (the
    // ff-soundness analysis pass rejects a silent inherit): their
    // dispatch eligibility only changes on CTA completions, which end
    // a fast-forwarded span anyway.
    const GpuConfig config = GpuConfig::gtx480();
    const std::vector<KernelInstance> kernels;
    const CoreList cores;
    RoundRobinCtaScheduler rr(config);
    EXPECT_EQ(rr.nextEventCycle(0, kernels, cores), kCycleNever);
    BlockCtaScheduler block(config);
    EXPECT_EQ(block.nextEventCycle(123, kernels, cores), kCycleNever);
}

} // namespace
} // namespace bsched
