/**
 * @file
 * E14 (ablation) — the LCS estimator: the paper's issue-ratio formula
 * N_opt = ceil(I_total/I_greedy) against the threshold variant that
 * counts CTAs contributing >= 40% of the greedy CTA's issue. Both read
 * only the monitored instruction counts; they differ in how they treat
 * the long tail of barely-progressing CTAs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    // Config 0 is the baseline; 1..3 the estimator variants.
    std::vector<GpuConfig> configs = {base};
    for (const auto& [est, pct] :
         std::vector<std::pair<LcsEstimator, std::uint32_t>>{
             {LcsEstimator::IssueRatio, 0},
             {LcsEstimator::Threshold, 40},
             {LcsEstimator::Threshold, 60}}) {
        GpuConfig cfg = makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
        cfg.lcs.estimator = est;
        if (pct)
            cfg.lcs.thresholdPct = pct;
        configs.push_back(cfg);
    }

    std::printf("E14: LCS estimator ablation (speedup over baseline; "
                "%u jobs)\n\n",
                jobs);
    Table table("issue-ratio vs threshold estimator");
    table.setHeader({"workload", "issue-ratio", "threshold-40",
                     "threshold-60"});
    const std::vector<std::string> labels = {"issue_ratio", "threshold40",
                                             "threshold60"};
    BenchReport report("fig_lcs_estimators");
    std::vector<std::vector<double>> speedups(3);
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const double base_ipc = grid.at(w, 0).ipc;
        report.addRow(names[w] + "/base", grid.at(w, 0));
        std::vector<std::string> row = {names[w]};
        for (std::size_t v = 0; v < 3; ++v) {
            const double s = grid.at(w, v + 1).ipc / base_ipc;
            speedups[v].push_back(s);
            row.push_back(fmt(s, 3));
            report.addRow(names[w] + "/" + labels[v], grid.at(w, v + 1));
            report.addMetric(names[w] + ".speedup_" + labels[v], s);
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (std::size_t v = 0; v < speedups.size(); ++v) {
        last.push_back(fmt(geomean(speedups[v]), 3));
        report.addMetric("geomean.speedup_" + labels[v],
                         geomean(speedups[v]));
    }
    table.addRow(last);
    std::printf("%s", table.toText().c_str());

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, configs[1], makeWorkload("kmeans"),
                              "kmeans/issue_ratio");
    return 0;
}
