#include "kernel/warp_program.hh"

#include "sim/log.hh"
#include "sim/rng.hh"

namespace bsched {

std::size_t
WarpProgram::addSegment(Segment segment)
{
    for (const Instr& instr : segment.instrs) {
        for (int reg : {int(instr.dst), int(instr.src0), int(instr.src1)}) {
            if (reg >= regCount_)
                regCount_ = reg + 1;
        }
    }
    segments_.push_back(std::move(segment));
    return segments_.size() - 1;
}

std::uint8_t
WarpProgram::addPattern(MemPattern pattern)
{
    pattern.validate();
    if (patterns_.size() >= 255)
        fatal("warp program: too many memory patterns");
    patterns_.push_back(pattern);
    return static_cast<std::uint8_t>(patterns_.size() - 1);
}

const MemPattern&
WarpProgram::pattern(std::uint8_t id) const
{
    if (id >= patterns_.size())
        panic("warp program: bad pattern id ", int(id));
    return patterns_[id];
}

std::uint32_t
WarpProgram::tripsFor(std::size_t seg, std::uint32_t cta) const
{
    const Segment& s = segments_.at(seg);
    if (s.tripJitterPct == 0)
        return s.trips;
    // Deterministic per-CTA imbalance in [-jitter, +jitter] percent.
    const std::uint64_t h = mix64(cta + 0x5eedULL + seg * 131ULL);
    const std::int64_t span = 2LL * s.tripJitterPct + 1;
    const std::int64_t pct =
        static_cast<std::int64_t>(h % span) - s.tripJitterPct;
    std::int64_t trips =
        static_cast<std::int64_t>(s.trips) +
        static_cast<std::int64_t>(s.trips) * pct / 100;
    return trips < 1 ? 1 : static_cast<std::uint32_t>(trips);
}

std::uint64_t
WarpProgram::dynamicInstrCount(std::uint32_t cta) const
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        count += static_cast<std::uint64_t>(tripsFor(i, cta)) *
            segments_[i].instrs.size();
    }
    return count;
}

bool
WarpProgram::hasBarrier() const
{
    for (const Segment& s : segments_) {
        for (const Instr& instr : s.instrs) {
            if (instr.op == Opcode::Bar)
                return true;
        }
    }
    return false;
}

void
WarpProgram::validate() const
{
    if (segments_.empty())
        fatal("warp program: empty");
    if (regCount_ > kMaxWarpRegs)
        fatal("warp program: uses ", regCount_, " regs, scoreboard max ",
              kMaxWarpRegs);
    const bool has_bar = hasBarrier();
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const Segment& s = segments_[i];
        if (s.instrs.empty() && s.trips > 0)
            fatal("warp program: segment ", i, " has no instructions");
        if (has_bar && s.tripJitterPct != 0)
            fatal("warp program: barrier programs cannot use trip jitter");
        for (const Instr& instr : s.instrs) {
            if (instr.activeLanes == 0 || instr.activeLanes > kWarpSize)
                fatal("warp program: bad activeLanes ",
                      int(instr.activeLanes));
            if (isMemory(instr.op)) {
                if (instr.patternId >= patterns_.size())
                    fatal("warp program: memory op references pattern ",
                          int(instr.patternId), " of ", patterns_.size());
                const MemPattern& p = patterns_[instr.patternId];
                const bool shared_op = instr.op == Opcode::LdShared ||
                    instr.op == Opcode::StShared;
                if (shared_op != (p.space == MemSpace::Shared))
                    fatal("warp program: op/pattern space mismatch");
            }
            if (isLoad(instr.op) && instr.dst == kNoReg)
                fatal("warp program: load without destination register");
        }
    }
}

const Instr&
ProgramCursor::instr(const WarpProgram& prog) const
{
    // Hot path: called once per warp-readiness check; bounds are
    // guaranteed by advance()/done().
    return prog.segments()[seg].instrs[pc];
}

void
ProgramCursor::advance(const WarpProgram& prog, std::uint32_t cta)
{
    const auto& segs = prog.segments();
    ++pc;
    if (pc < segs[seg].instrs.size())
        return;
    pc = 0;
    ++trip;
    if (trip < prog.tripsFor(seg, cta))
        return;
    trip = 0;
    ++seg;
    // Skip zero-trip segments.
    while (seg < segs.size() && prog.tripsFor(seg, cta) == 0)
        ++seg;
}

void
ProgramCursor::init(const WarpProgram& prog, std::uint32_t cta)
{
    reset();
    while (seg < prog.segments().size() && prog.tripsFor(seg, cta) == 0)
        ++seg;
}

bool
ProgramCursor::done(const WarpProgram& prog) const
{
    return seg >= prog.segments().size();
}

} // namespace bsched
