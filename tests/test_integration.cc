/**
 * @file
 * End-to-end integration tests reproducing the paper's qualitative
 * claims on small, fast configurations: GTO skew, LCS throttling on a
 * cache-thrashing kernel, BCS locality capture, and mixed-kernel
 * co-execution.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/gpu.hh"
#include "gpu/multi_kernel.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
machine(WarpSchedKind warp, CtaSchedKind cta)
{
    GpuConfig c = makeConfig(warp, cta);
    c.numCores = 4;
    c.numMemPartitions = 2;
    return c;
}

/** Cache-thrashing tile kernel in the calibrated type-3 regime. */
KernelInfo
tileKernel(std::uint32_t grid = 96)
{
    KernelInfo k;
    k.name = "tile";
    k.grid = {grid, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 20;
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = 0x40000000;
    tile.footprintBytes = 8 * 1024;
    const auto t = b.pattern(tile);
    b.loop(40).load(t).alu(4).load(t).alu(4).endLoop();
    k.program = b.build();
    return k;
}

/** Latency-bound compute kernel (type-2 flavour). */
KernelInfo
computeKernel(std::uint32_t grid = 32)
{
    KernelInfo k;
    k.name = "compute";
    k.grid = {grid, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 32;
    ProgramBuilder b;
    b.loop(60).alu(8).sfu(1).endLoop();
    k.program = b.build();
    return k;
}

/** Halo stencil with 50% row sharing between neighbours. */
KernelInfo
stencilKernel(std::uint32_t grid = 128)
{
    KernelInfo k;
    k.name = "stencil";
    k.grid = {grid, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 32;
    ProgramBuilder b;
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = 0x40000000;
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = b.pattern(halo);
    b.loop(32).load(h).alu(2).load(h).alu(2).endLoop();
    k.program = b.build();
    return k;
}

TEST(Integration, GtoSkewsPerCtaIssueOnThrashingKernel)
{
    // The LCS sensor: under GTO, issue concentrates on older CTAs.
    const GpuConfig config =
        machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const KernelInfo k = tileKernel();
    Gpu gpu(config);
    gpu.launchKernel(k);
    const SimtCore& core = *gpu.cores().front();
    while (gpu.stepCycle()) {
        const auto counts = core.ctaIssueCounts(0);
        if (counts.size() > core.residentCtas(0))
            break;
    }
    auto counts = core.ctaIssueCounts(0);
    ASSERT_GE(counts.size(), 4u);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    // Skewed: the greedy CTA owns well over its equal share.
    EXPECT_GT(static_cast<double>(counts[0]),
              1.5 * static_cast<double>(total) /
                  static_cast<double>(counts.size()));
}

TEST(Integration, StaticCtaSweepShowsPeakedCurve)
{
    // The paper's central observation: max CTAs != max performance.
    const GpuConfig config =
        machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const OracleResult oracle = oracleStaticBest(config, tileKernel());
    EXPECT_LT(oracle.bestLimit, oracle.maxLimit);
    const double best = oracle.byLimit[oracle.bestLimit - 1].ipc;
    const double at_max = oracle.byLimit[oracle.maxLimit - 1].ipc;
    EXPECT_GT(best, 1.05 * at_max);
}

TEST(Integration, LcsBeatsMaxCtaBaselineOnThrashingKernel)
{
    const KernelInfo k = tileKernel();
    const RunResult base =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin), k);
    const RunResult lcs =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::Lazy), k);
    EXPECT_GT(lcs.ipc, 1.02 * base.ipc);
}

TEST(Integration, LcsHarmlessOnComputeKernel)
{
    const KernelInfo k = computeKernel();
    const RunResult base =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin), k);
    const RunResult lcs =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::Lazy), k);
    EXPECT_GT(lcs.ipc, 0.93 * base.ipc);
}

TEST(Integration, GtoBeatsLrrOnThrashingKernel)
{
    const KernelInfo k = tileKernel();
    const RunResult lrr =
        runKernel(machine(WarpSchedKind::LRR, CtaSchedKind::RoundRobin), k);
    const RunResult gto =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin), k);
    EXPECT_GT(gto.ipc, lrr.ipc);
}

TEST(Integration, BcsReducesL1MissesOnStencil)
{
    const KernelInfo k = stencilKernel();
    const RunResult base =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin), k);
    const RunResult bcs =
        runKernel(machine(WarpSchedKind::GTO, CtaSchedKind::Block), k);
    EXPECT_LT(bcs.l1MissRate(), base.l1MissRate());
}

TEST(Integration, MixedBeatsSpatialOnComplementaryPair)
{
    // A memory-thrashing kernel paired with a compute kernel: mixing on
    // every core should beat dedicating half the cores to each.
    const GpuConfig config =
        machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const KernelInfo a = tileKernel(64);
    const KernelInfo b = computeKernel(48);
    const auto spatial = runMultiKernel(config, {&a, &b},
                                        MultiKernelPolicy::Spatial);
    const auto mixed = runMultiKernel(config, {&a, &b},
                                      MultiKernelPolicy::Mixed);
    EXPECT_LT(mixed.totalCycles,
              static_cast<Cycle>(1.05 * spatial.totalCycles));
}

TEST(Integration, WholeGpuDrainsCleanly)
{
    // After run(), no component should hold in-flight state: re-running
    // a second kernel on the same GPU produces identical behaviour to a
    // fresh GPU (warm caches aside, cycle counts must be close).
    const GpuConfig config =
        machine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const KernelInfo k = stencilKernel(32);
    Gpu reused(config);
    const int first = reused.launchKernel(k);
    reused.run();
    const Cycle first_cycles = reused.kernelCycles(first);
    const int second = reused.launchKernel(k);
    reused.run();
    const Cycle second_cycles = reused.kernelCycles(second);
    // Warm L2 can only help; the second run must not be slower by much.
    EXPECT_LE(second_cycles,
              static_cast<Cycle>(1.02 * first_cycles));
}

} // namespace
} // namespace bsched
