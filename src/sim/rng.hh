/**
 * @file
 * Deterministic hashing / pseudo-random utilities. Address-pattern
 * generators need a stateless, reproducible hash so that the same (cta,
 * warp, lane, iteration) tuple always maps to the same address regardless
 * of simulation interleaving.
 */

#ifndef BSCHED_SIM_RNG_HH
#define BSCHED_SIM_RNG_HH

#include <cstdint>

namespace bsched {

/** SplitMix64 finalizer: high-quality stateless 64-bit mix. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/**
 * Small deterministic PRNG (xorshift64*), for stateful uses such as
 * randomized property tests.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /**
     * Uniform integer in [0, bound). bound must be > 0.
     *
     * Lemire's multiply-shift with rejection (Lemire, "Fast Random
     * Integer Generation in an Interval", 2019): map next() into
     * [0, bound) via the high 64 bits of a 128-bit product, rejecting
     * the sliver of low products that would over-represent the first
     * 2^64 mod bound values. Unlike the modulo reduction this is exactly
     * uniform, so property tests draw without bias.
     */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(product);
        if (low < bound) {
            // 2^64 mod bound, computed without 128-bit division.
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                product = static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(product);
            }
        }
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace bsched

#endif // BSCHED_SIM_RNG_HH
