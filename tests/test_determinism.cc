/**
 * @file
 * Determinism regression tests backing the determinism pass of
 * tools/analyze: the containers it forced from unordered_map to std::map (MSHR
 * outstanding set, BAWS per-block rotation) must not leak insertion /
 * encounter order into waiter lists, schedule decisions, or the
 * serialized bsched-run-v1 artifact.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/warp_sched.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "mem/mshr.hh"
#include "obs/sink.hh"

namespace bsched {
namespace {

/** Serialize an MSHR file's observable state: stats + per-line waiters. */
std::string
mshrFingerprint(MshrFile& mshr, const std::vector<Addr>& lines)
{
    std::ostringstream os;
    StatSet stats;
    mshr.addStats(stats, "m.");
    writeStatsCsv(os, stats);
    for (Addr line : lines) {
        os << std::hex << line << ":";
        for (MshrWaiter waiter : mshr.complete(line))
            os << waiter << ",";
        os << "\n";
    }
    return os.str();
}

TEST(MshrDeterminism, LineInsertionOrderDoesNotLeak)
{
    // Same misses, two line-allocation orders. Per-line waiter order is
    // architectural (merge order on that line) and is kept fixed; only
    // the interleaving across lines is permuted. Everything observable —
    // stats and the waiters each fill returns — must be identical.
    const std::vector<Addr> lines = {0x40, 0x9000, 0x140, 0x7fff00};

    MshrFile forward(8, 4, "m");
    for (Addr line : lines)
        ASSERT_EQ(forward.allocate(line, 1), MshrOutcome::NewEntry);
    for (Addr line : lines)
        ASSERT_EQ(forward.allocate(line, 2), MshrOutcome::Merged);

    MshrFile reverse(8, 4, "m");
    for (auto it = lines.rbegin(); it != lines.rend(); ++it)
        ASSERT_EQ(reverse.allocate(*it, 1), MshrOutcome::NewEntry);
    for (auto it = lines.rbegin(); it != lines.rend(); ++it)
        ASSERT_EQ(reverse.allocate(*it, 2), MshrOutcome::Merged);

    EXPECT_EQ(mshrFingerprint(forward, lines), mshrFingerprint(reverse, lines));
}

TEST(BawsDeterminism, BlockEncounterOrderDoesNotLeak)
{
    // Warp table: two dispatch blocks, two warps each.
    std::vector<Warp> warps(4);
    for (int i = 0; i < 4; ++i) {
        warps[i].valid = true;
        warps[i].ctaSeq = static_cast<std::uint64_t>(i / 2);
        warps[i].blockSeq = (i < 2) ? 7 : 3;
    }

    // Scheduler A meets block 7 first, scheduler B meets block 3 first.
    BawsScheduler a;
    a.notifyIssued(0, warps); // block 7
    a.notifyIssued(2, warps); // block 3
    BawsScheduler b;
    b.notifyIssued(2, warps);
    b.notifyIssued(0, warps);
    // Same rotation state per block -> encounter order must not matter.
    // B last issued from block 7, so force A's greedy pointer there too.
    a.notifyIssued(0, warps);
    b.notifyIssued(0, warps);

    const std::vector<int> ready = {0, 1, 2, 3};
    for (int step = 0; step < 8; ++step) {
        const int pa = a.pick(ready, warps);
        const int pb = b.pick(ready, warps);
        ASSERT_EQ(pa, pb) << "diverged at step " << step;
        a.notifyIssued(pa, warps);
        b.notifyIssued(pb, warps);
    }
}

/**
 * End-to-end pin: a config exercising both converted containers (BCS
 * dispatch + BAWS rotation + MSHR-heavy loads) serializes to
 * byte-identical bsched-run-v1 artifacts across repeated runs, and to
 * byte-identical bsched-bench-v1 reports across --jobs counts.
 */
TEST(RunDeterminism, RunJsonBytesIdenticalAcrossRepeatsAndJobs)
{
    GpuConfig config = makeConfig(WarpSchedKind::BAWS, CtaSchedKind::Block);
    config.numCores = 2;
    config.numMemPartitions = 2;

    KernelInfo k;
    k.name = "determinism";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(4).load(i).alu(3).endLoop();
    k.program = b.build();
    k.validate();

    std::string run_bytes[2];
    for (auto& bytes : run_bytes) {
        std::ostringstream os;
        writeRunJson(os, runKernel(config, k), "determinism");
        bytes = os.str();
    }
    EXPECT_EQ(run_bytes[0], run_bytes[1]);

    std::string report_bytes[2];
    const unsigned job_counts[2] = {1, 3};
    for (int r = 0; r < 2; ++r) {
        const auto sweep = sweepCtaLimit(config, k, 4, job_counts[r]);
        BenchReport report("determinism");
        for (std::size_t n = 0; n < sweep.size(); ++n)
            report.addRow("limit" + std::to_string(n + 1), sweep[n]);
        report_bytes[r] = report.toJson();
    }
    EXPECT_EQ(report_bytes[0], report_bytes[1]);
}

} // namespace
} // namespace bsched
