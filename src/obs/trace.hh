/**
 * @file
 * Event tracer — the first pillar of the observability subsystem.
 *
 * Components record typed, fixed-size TraceEvents into per-track ring
 * buffers (one track per SIMT core, one per memory partition, one for
 * the whole GPU). Recording is O(1), allocation-free after construction
 * and guarded at every call site by a null-pointer check, so a run
 * without a Tracer attached pays only an untaken branch.
 *
 * The buffers export Chrome `trace_event` JSON (the format consumed by
 * chrome://tracing and Perfetto): CTA and kernel lifetimes become
 * duration ("X") events, scheduler decisions become instant ("i")
 * events, and sampled gauges become counter ("C") tracks. One simulated
 * cycle maps to one microsecond of trace time.
 */

#ifndef BSCHED_OBS_TRACE_HH
#define BSCHED_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bsched {

class IntervalSampler;

/** Everything the simulator knows how to trace. */
enum class TraceEventKind : std::uint8_t
{
    KernelLaunch,    ///< gpu track; arg0 = grid CTAs
    KernelRetire,    ///< gpu track; span over the kernel's lifetime
    CtaDispatch,     ///< core track; arg0 = CTA id
    CtaComplete,     ///< core track; span; arg0 = CTA id, arg1 = issued
    LcsWindowClose,  ///< core track; arg0 = chosen n_opt, arg1 = n_max
    BcsPairForm,     ///< core track; arg0 = block seq, arg1 = block size
    DynctaAdjust,    ///< core track; arg0 = new target, arg1 = +1/-1
    CacheMissBurst,  ///< core/partition track; arg0 = burst length
    DramRowConflict, ///< partition track; arg0 = bank, arg1 = new row
    DrainRequest,    ///< gpu track; arg0 = 1 drain/0 resume, arg1 = cursor
    DrainComplete,   ///< gpu track; span over the drain; arg0 = CTAs left
    ServeArrival,    ///< tenant track; arg0 = request seq
    ServeQueued,     ///< tenant track; span release→admit; arg0 = seq
    ServeDispatching,///< tenant track; span admit→1st CTA; arg0 = seq
    ServeRunning,    ///< tenant track; span 1st CTA→finish; arg0 = seq
    ServeDrainVictim,///< tenant track; arg0 = victim kernel id
    PhaseChange,     ///< phase track; arg0 = new phase index, arg1 =
                     ///< core id (-1 = machine/kernel scope)
};

/** Stable event-kind name used in exported JSON ("cta.dispatch", ...). */
const char* toString(TraceEventKind kind);

/** True for kinds exported as Chrome duration ("X") events. */
bool isSpan(TraceEventKind kind);

/** One fixed-size trace record. */
struct TraceEvent
{
    Cycle cycle = 0; ///< event time; for spans, the *end* of the span
    Cycle duration = 0; ///< span length; 0 = instant event
    std::int64_t arg0 = 0;
    std::int64_t arg1 = 0;
    std::int32_t kernelId = kInvalidId;
    TraceEventKind kind = TraceEventKind::CtaDispatch;
};

/** Per-track ring-buffer event recorder with Chrome JSON export. */
class Tracer
{
  public:
    /** Default per-track capacity (events); oldest events are dropped. */
    static constexpr std::size_t kDefaultCapacity = 1 << 14;

    Tracer(std::uint32_t num_cores, std::uint32_t num_partitions,
           std::size_t capacity_per_track = kDefaultCapacity);

    // --- track ids -----------------------------------------------------
    std::uint32_t coreTrack(std::uint32_t core) const { return core; }
    std::uint32_t partitionTrack(std::uint32_t partition) const
    {
        return numCores_ + partition;
    }
    std::uint32_t gpuTrack() const { return numCores_ + numPartitions_; }
    std::uint32_t numTracks() const
    {
        return static_cast<std::uint32_t>(tracks_.size());
    }

    /**
     * Append a named track (e.g. one lane per serving tenant) after the
     * fixed core/partition/gpu tracks. Returns the new track id.
     */
    std::uint32_t addTrack(const std::string& name);

    /** Human-readable track name ("core3", "part0", "gpu", extras). */
    std::string trackName(std::uint32_t track) const;

    // --- recording -----------------------------------------------------

    /** Append @p event to @p track, dropping the oldest when full. */
    void record(std::uint32_t track, const TraceEvent& event);

    /** Events recorded (including any that were later dropped). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events evicted from full ring buffers. */
    std::uint64_t dropped() const { return dropped_; }

    /** Events currently held on @p track, oldest first. */
    std::vector<TraceEvent> events(std::uint32_t track) const;

    /** All retained events of @p kind across every track. */
    std::vector<TraceEvent> eventsOfKind(TraceEventKind kind) const;

    // --- export --------------------------------------------------------

    /**
     * Write Chrome trace_event JSON. If @p sampler is non-null its gauge
     * series are embedded as counter ("C") events on the gpu track.
     */
    void writeChromeTrace(std::ostream& os,
                          const IntervalSampler* sampler = nullptr) const;

  private:
    struct Ring
    {
        std::vector<TraceEvent> buf;
        std::size_t head = 0;  ///< index of the oldest event
        std::size_t count = 0;
    };

    std::uint32_t numCores_;
    std::uint32_t numPartitions_;
    std::size_t capacity_;
    std::vector<Ring> tracks_;
    std::vector<std::string> extraNames_; ///< names of addTrack() tracks
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace bsched

#endif // BSCHED_OBS_TRACE_HH
