# Empty dependencies file for example_stencil_locality.
# This may be replaced when dependencies are built.
