/**
 * @file
 * E8 — LCS monitoring-window sensitivity: geomean speedup over the
 * baseline when the window ends at the first CTA completion (paper
 * default) vs after fixed cycle counts. The estimator should be robust
 * across reasonable windows.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    struct Mode
    {
        std::string label;
        LcsWindowMode mode;
        Cycle window;
    };
    const std::vector<Mode> modes = {
        {"first-cta-done", LcsWindowMode::FirstCtaDone, 0},
        {"fixed-2k", LcsWindowMode::FixedCycles, 2000},
        {"fixed-5k", LcsWindowMode::FixedCycles, 5000},
        {"fixed-10k", LcsWindowMode::FixedCycles, 10000},
        {"fixed-20k", LcsWindowMode::FixedCycles, 20000},
    };

    std::printf("E8: LCS monitoring-window sensitivity (speedup over "
                "max-CTA baseline; %u jobs)\n\n",
                jobs);

    // Config 0 is the baseline; 1..N the window modes.
    std::vector<GpuConfig> configs = {base};
    for (const Mode& mode : modes) {
        GpuConfig cfg = makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
        cfg.lcs.windowMode = mode.mode;
        cfg.lcs.fixedWindowCycles = mode.window;
        configs.push_back(cfg);
    }

    Table table("speedup by monitoring window");
    std::vector<std::string> header = {"workload"};
    for (const auto& mode : modes)
        header.push_back(mode.label);
    table.setHeader(header);

    BenchReport report("fig_lcs_sensitivity");
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    std::vector<std::vector<double>> speedups(
        modes.size(), std::vector<double>());
    for (std::size_t w = 0; w < names.size(); ++w) {
        const double base_ipc = grid.at(w, 0).ipc;
        report.addRow(names[w] + "/base", grid.at(w, 0));
        std::vector<std::string> row = {names[w]};
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const double s = grid.at(w, m + 1).ipc / base_ipc;
            speedups[m].push_back(s);
            row.push_back(fmt(s, 3));
            report.addRow(names[w] + "/" + modes[m].label,
                          grid.at(w, m + 1));
            report.addMetric(names[w] + ".speedup_" + modes[m].label, s);
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (std::size_t m = 0; m < modes.size(); ++m) {
        last.push_back(fmt(geomean(speedups[m]), 3));
        report.addMetric("geomean.speedup_" + modes[m].label,
                         geomean(speedups[m]));
    }
    table.addRow(last);
    std::printf("%s", table.toText().c_str());

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, configs[1], makeWorkload("kmeans"),
                              "kmeans/first-cta-done");
    return 0;
}
