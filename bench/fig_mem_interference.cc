/**
 * @file
 * E17 — the figure that *explains* LCS: sweep the static per-core CTA
 * limit on the cache-sensitive workloads and watch the interference
 * mechanism directly with the request-level memory profiler. Past the
 * CTA count LCS converges to, the cross-CTA eviction rate (fills of one
 * CTA displacing another CTA's live lines in L1/L2, per kilocycle) keeps
 * climbing and the aggregate DRAM queueing grows — reported as the
 * time-weighted DRAM-queue occupancy, i.e. the mean number of requests
 * waiting at DRAM, which by Little's law is mean queue latency times
 * arrival rate — while the DRAM row-buffer hit rate falls. More
 * resident CTAs buy TLP that is immediately taxed back as cache thrash
 * and memory queueing, which is why fewer CTAs run faster.
 *
 * Reproduces: the resource-interference reading of the paper's
 * motivation (Section 3), in the spirit of the direct interference
 * measurements of Elvinger et al. and Jatala et al. (PAPERS.md).
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "kernel/occupancy.hh"
#include "obs/mem_profile.hh"
#include "sim/log.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

/** One profiled sweep point: the run plus its memory profile. */
struct MemPoint
{
    RunResult result;
    std::shared_ptr<MemProfiler> prof; ///< shared: runner.map copies
    std::uint32_t limit = 0;
};

double
meanOf(const LatencyHistogram& h)
{
    return h.mean();
}

/**
 * Run @p kernel at static CTA limit @p limit with a MemProfiler
 * attached and check the conservation laws before returning.
 */
MemPoint
profiledRun(GpuConfig config, const KernelInfo& kernel,
            std::uint32_t limit)
{
    config.staticCtaLimit = limit;
    MemPoint point;
    point.limit = limit;
    point.prof = std::make_shared<MemProfiler>();
    Observer obs;
    obs.memProfiler = point.prof.get();
    point.result = runKernel(config, kernel, obs);

    const MemProfiler& prof = *point.prof;
    if (prof.outstandingRequests() != 0 ||
        prof.begunRequests() != prof.completedRequests()) {
        fatal("fig_mem_interference: ", kernel.name, "/n", limit, ": ",
              prof.outstandingRequests(),
              " requests still outstanding after drain");
    }
    const StageProfile total = prof.total();
    if (total.stageCycleSum() != total.endToEnd.sum()) {
        fatal("fig_mem_interference: conservation violated for ",
              kernel.name, "/n", limit, ": stage cycles ",
              total.stageCycleSum(), " vs end-to-end ",
              total.endToEnd.sum());
    }
    if (total.completed() != prof.completedRequests()) {
        fatal("fig_mem_interference: histogram total ", total.completed(),
              " != completed requests ", prof.completedRequests());
    }
    return point;
}

/**
 * The CTA limit LCS converges to for @p kernel: the median of the
 * per-core `lcs.coreC.k0.n_opt` decisions of one LCS run.
 */
std::uint32_t
lcsChosenLimit(const GpuConfig& base, const KernelInfo& kernel)
{
    GpuConfig config = base;
    config.ctaSched = CtaSchedKind::Lazy;
    const RunResult result = runKernel(config, kernel);
    std::vector<double> decisions;
    for (const auto& [name, value] : result.stats.entries()) {
        if (name.rfind("lcs.core", 0) == 0 &&
            name.size() >= 6 &&
            name.compare(name.size() - 6, 6, ".n_opt") == 0) {
            decisions.push_back(value);
        }
    }
    if (decisions.empty())
        return 0;
    std::sort(decisions.begin(), decisions.end());
    return static_cast<std::uint32_t>(decisions[decisions.size() / 2]);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    // The cache-sensitive pair: srad is the Type-2 (increasing) kernel,
    // kmeans the Type-3 (peaked) one whose L1/L2 reuse the extra CTAs
    // visibly destroy — the workload where LCS's N_opt pick pays most.
    const std::vector<std::string> names = {"srad", "kmeans"};

    std::printf("E17: inter-CTA memory interference vs CTAs/core "
                "(GTO, RR CTA scheduler; %u jobs)\n\n",
                opts.jobs);

    BenchReport report("fig_mem_interference");
    std::vector<MemProfilePoint> artifact;
    std::vector<MemPoint> keep; ///< keeps profilers alive for export
    const ParallelRunner runner(opts.jobs);
    for (const std::string& name : names) {
        const KernelInfo kernel = makeWorkload(name);
        const std::uint32_t n_max = maxCtasPerCore(base, kernel);
        const std::uint32_t n_lcs = lcsChosenLimit(base, kernel);

        const std::vector<MemPoint> sweep =
            runner.map<MemPoint>(n_max, [&](std::size_t i) {
                return profiledRun(base, kernel,
                                   static_cast<std::uint32_t>(i) + 1);
            });

        Table table(name + " (" + toString(kernel.typeClass) +
                    "): memory interference by CTA limit");
        table.setHeader({"N", "ipc", "l1_xcta/kc", "l2_xcta/kc",
                         "l2_xfrac", "dram_qocc", "dram_q", "e2e",
                         "rowhit", ""});
        for (const MemPoint& point : sweep) {
            const std::uint32_t n = point.limit;
            const MemProfiler& prof = *point.prof;
            const StageProfile total = prof.total();
            const double kilocycles =
                static_cast<double>(point.result.cycles) / 1000.0;
            // Cross-CTA eviction *rates* (per kilocycle): unlike the
            // eviction fraction these keep climbing with N even when
            // same-CTA capacity misses grow alongside.
            const double l1x_rate = static_cast<double>(
                prof.interference(MemLevel::L1).crossCtaEvictions) /
                kilocycles;
            const double l2x_rate = static_cast<double>(
                prof.interference(MemLevel::L2).crossCtaEvictions) /
                kilocycles;
            const double l2x_frac =
                prof.interference(MemLevel::L2).crossCtaFraction();
            const LatencyHistogram& dq_hist =
                total.stages[static_cast<std::size_t>(MemStage::DramQueue)];
            // Time-weighted DRAM-queue occupancy: total request-cycles
            // spent waiting in the DRAM queue per simulated cycle = the
            // mean number of waiting requests (Little's law: mean queue
            // latency x arrival rate). The per-request mean alone hides
            // the pressure once the request count explodes.
            const double dram_qocc = static_cast<double>(dq_hist.sum()) /
                static_cast<double>(point.result.cycles);
            const double dram_q = meanOf(dq_hist);
            const double e2e = meanOf(total.endToEnd);
            const double row_hit = point.result.dramRowHitRate();
            table.addRow({std::to_string(n), fmt(point.result.ipc, 2),
                          fmt(l1x_rate, 1), fmt(l2x_rate, 1),
                          fmt(l2x_frac, 3), fmt(dram_qocc, 1),
                          fmt(dram_q, 1), fmt(e2e, 1), fmt(row_hit, 3),
                          n == n_lcs ? "<- LCS N_opt" : ""});

            const std::string label = name + "/n" + std::to_string(n);
            report.addRow(label, point.result);
            report.addMetric(name + ".l1_cross_cta_rate.n" +
                             std::to_string(n), l1x_rate);
            report.addMetric(name + ".l2_cross_cta_rate.n" +
                             std::to_string(n), l2x_rate);
            report.addMetric(name + ".l2_cross_cta.n" + std::to_string(n),
                             l2x_frac);
            report.addMetric(name + ".dram_q_occupancy.n" +
                             std::to_string(n), dram_qocc);
            report.addMetric(name + ".dram_q_mean.n" + std::to_string(n),
                             dram_q);
            report.addMetric(name + ".row_hit_rate.n" + std::to_string(n),
                             row_hit);

            MemProfilePoint ap;
            ap.label = label;
            ap.params = {{"cta_limit", static_cast<double>(n)},
                         {"lcs_n_opt", static_cast<double>(n_lcs)},
                         {"ipc", point.result.ipc},
                         {"l1_cross_cta_rate", l1x_rate},
                         {"l2_cross_cta_rate", l2x_rate},
                         {"l2_cross_cta_fraction", l2x_frac},
                         {"dram_q_occupancy", dram_qocc},
                         {"dram_q_mean", dram_q},
                         {"row_hit_rate", row_hit}};
            ap.prof = point.prof.get();
            artifact.push_back(ap);
            keep.push_back(point);
        }
        report.addMetric(name + ".n_max", n_max);
        report.addMetric(name + ".lcs_n_opt", n_lcs);
        std::printf("%s\n", table.toText().c_str());
    }

    std::printf("Reading: past the LCS pick the cross-CTA eviction rates "
                "keep rising and the DRAM queue keeps filling\n"
                "(dram_qocc = mean requests waiting at DRAM) while the "
                "row-buffer hit rate falls — extra CTAs evict\neach "
                "other's live lines, and the refetch traffic queues at "
                "DRAM. That interference is the mechanism\nthe N_opt "
                "occupancy cap removes.\n");

    bench::writeReport(opts, report);
    if (!opts.memProfilePath.empty()) {
        // The E17 artifact is the full sweep, not one representative
        // run: every point of every workload in one
        // `bsched-memprofile-v1` file.
        const std::size_t bytes =
            writeFile(opts.memProfilePath, [&](std::ostream& os) {
                writeMemProfileJson(os, artifact, "fig_mem_interference");
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %zu points)\n",
                     opts.memProfilePath.c_str(), bytes, artifact.size());
    }
    bench::BenchOptions rest = opts;
    rest.memProfilePath.clear(); // the sweep artifact above replaces it
    bench::writeRunArtifacts(rest, base, makeWorkload("kmeans"),
                             "kmeans/base");
    return 0;
}
