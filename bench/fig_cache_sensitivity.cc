/**
 * @file
 * E15 (sensitivity) — L1D capacity sweep: the type-3 effect and LCS's
 * benefit should shrink as the L1 grows (more resident CTA working
 * sets fit) and grow as it shrinks. Representative kernels from each
 * class.
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const std::vector<std::uint32_t> sizes = {8, 16, 32, 64};
    const std::vector<std::string> names = {"kmeans", "sc", "gemm", "bp"};

    std::printf("E15: L1D capacity sensitivity (LCS speedup over "
                "baseline at each size)\n\n");
    Table table("LCS speedup by L1D size");
    std::vector<std::string> header = {"workload"};
    for (auto kb : sizes)
        header.push_back(std::to_string(kb) + "KB");
    table.setHeader(header);

    for (const auto& name : names) {
        const KernelInfo kernel = makeWorkload(name);
        std::vector<std::string> row = {name};
        for (std::uint32_t kb : sizes) {
            GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);
            base.l1d.sizeBytes = kb * 1024;
            GpuConfig lcs = base;
            lcs.ctaSched = CtaSchedKind::Lazy;
            const double s =
                runKernel(lcs, kernel).ipc / runKernel(base, kernel).ipc;
            row.push_back(fmt(s, 3));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: the cache-sensitive (type-3) rows benefit most "
                "at small L1 sizes;\nby 64KB every resident working set "
                "fits and LCS is neutral.\n");
    return 0;
}
