/**
 * @file
 * BCS — Block CTA Scheduling (the paper's second mechanism), plus the
 * LCS+BCS combination.
 *
 * The baseline round-robin scheduler sprays consecutive CTAs across
 * different cores, destroying the inter-CTA data locality of stencil and
 * tiled kernels. BCS dispatches CTAs in *blocks* of B consecutive ids to
 * one core: a core only receives CTAs when B of them fit, and then
 * receives B sequential ids sharing one blockSeq, which the BAWS warp
 * scheduler uses to keep the pair at even progress.
 *
 * LazyBlockCtaScheduler layers the LCS per-core CTA limit on top: blocks
 * are only dispatched while the resident count is below the decided
 * N_opt (the final block may overshoot by at most B-1).
 */

#ifndef BSCHED_CTA_BLOCK_CTA_SCHED_HH
#define BSCHED_CTA_BLOCK_CTA_SCHED_HH

#include "cta/lazy_cta_sched.hh"

namespace bsched {

/** Paired dispatch of consecutive CTAs. */
class BlockCtaScheduler : public CtaScheduler
{
  public:
    explicit BlockCtaScheduler(const GpuConfig& config)
        : CtaScheduler(config)
    {}

    void tick(Cycle now, std::vector<KernelInstance>& kernels,
              CoreList& cores) override;

    /**
     * Purely event-driven: a block becomes dispatchable only when B
     * slots fit on a core, i.e. after CTA completions — which end a
     * fast-forwarded span anyway. No time-driven deadlines of its own
     * (the LCS overlay adds those in LazyBlockCtaScheduler).
     */
    Cycle
    nextEventCycle(Cycle now, const std::vector<KernelInstance>& kernels,
                   const CoreList& cores) const override
    {
        (void)now;
        (void)kernels;
        (void)cores;
        return kCycleNever;
    }

    const char* name() const override { return "bcs"; }

  protected:
    /**
     * Per-core resident cap for @p kernel (hook for the LCS overlay);
     * the base policy only applies the static/occupancy cap.
     */
    virtual std::uint32_t residencyCap(std::uint32_t core_id,
                                       const KernelInstance& kernel) const;
};

/** LCS + BCS: paired dispatch limited by the monitored N_opt. */
class LazyBlockCtaScheduler : public BlockCtaScheduler
{
  public:
    explicit LazyBlockCtaScheduler(const GpuConfig& config)
        : BlockCtaScheduler(config), lazy_(config)
    {}

    void tick(Cycle now, std::vector<KernelInstance>& kernels,
              CoreList& cores) override;

    void notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                       CoreList& cores) override;

    Cycle nextEventCycle(Cycle now,
                         const std::vector<KernelInstance>& kernels,
                         const CoreList& cores) const override
    {
        // The embedded LCS carries the only time-driven deadlines
        // (fixed monitoring windows); block dispatch itself is
        // event-driven.
        return lazy_.nextEventCycle(now, kernels, cores);
    }

    const char* name() const override { return "lcs+bcs"; }

    /** The embedded LCS monitor (headroom queries by the serving
     *  engine's admission signal). */
    const LazyCtaScheduler& lazy() const { return lazy_; }

    void addStats(StatSet& stats) const override;

    void setTracer(Tracer* tracer) override
    {
        CtaScheduler::setTracer(tracer);
        lazy_.setTracer(tracer);
    }

  protected:
    std::uint32_t residencyCap(std::uint32_t core_id,
                               const KernelInstance& kernel) const override;

  private:
    /** Monitoring/limit logic is delegated to an embedded LCS. */
    LazyCtaScheduler lazy_;
};

} // namespace bsched

#endif // BSCHED_CTA_BLOCK_CTA_SCHED_HH
