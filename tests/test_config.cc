/**
 * @file
 * Unit tests for GpuConfig validation and derived quantities.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

namespace bsched {
namespace {

TEST(GpuConfig, DefaultValidates)
{
    GpuConfig config = GpuConfig::gtx480();
    config.validate(); // must not die
    EXPECT_EQ(config.numCores, 15u);
    EXPECT_EQ(config.maxWarpsPerCore(), 48u);
}

TEST(GpuConfig, CacheGeometryDerived)
{
    const GpuConfig config = GpuConfig::gtx480();
    EXPECT_EQ(config.l1d.numSets(), 32u);
    EXPECT_EQ(config.l2.numSets(), 128u);
}

TEST(GpuConfig, RejectsZeroCores)
{
    GpuConfig config = GpuConfig::gtx480();
    config.numCores = 0;
    EXPECT_DEATH(config.validate(), "numCores");
}

TEST(GpuConfig, RejectsNonWarpMultipleThreads)
{
    GpuConfig config = GpuConfig::gtx480();
    config.maxThreadsPerCore = 1000;
    EXPECT_DEATH(config.validate(), "warp size");
}

TEST(GpuConfig, RejectsNonPow2CacheSets)
{
    GpuConfig config = GpuConfig::gtx480();
    config.l1d.sizeBytes = 24 * 1024; // 48 sets
    EXPECT_DEATH(config.validate(), "power of two");
}

TEST(GpuConfig, RejectsMismatchedLineSizes)
{
    GpuConfig config = GpuConfig::gtx480();
    config.l2.lineBytes = 64;
    EXPECT_DEATH(config.validate(), "");
}

TEST(GpuConfig, RejectsExcessiveStaticLimit)
{
    GpuConfig config = GpuConfig::gtx480();
    config.staticCtaLimit = config.maxCtasPerCore + 1;
    EXPECT_DEATH(config.validate(), "staticCtaLimit");
}

TEST(GpuConfig, RejectsOversizedBcsBlock)
{
    GpuConfig config = GpuConfig::gtx480();
    config.bcs.blockSize = config.maxCtasPerCore + 1;
    EXPECT_DEATH(config.validate(), "block size");
}

TEST(GpuConfig, EnumNames)
{
    EXPECT_STREQ(toString(WarpSchedKind::GTO), "gto");
    EXPECT_STREQ(toString(WarpSchedKind::BAWS), "baws");
    EXPECT_STREQ(toString(CtaSchedKind::LazyBlock), "lcs+bcs");
    EXPECT_STREQ(toString(LcsWindowMode::FirstCtaDone), "first-cta-done");
}

TEST(GpuConfig, ToStringMentionsKeyParameters)
{
    const std::string text = GpuConfig::gtx480().toString();
    EXPECT_NE(text.find("15"), std::string::npos);
    EXPECT_NE(text.find("gto"), std::string::npos);
    EXPECT_NE(text.find("16 KB"), std::string::npos);
}

} // namespace
} // namespace bsched
