/**
 * @file
 * E4 — per-CTA issue shares during the LCS monitoring window, under GTO
 * and LRR. The LCS estimator assumes GTO concentrates issue on a greedy
 * CTA; this figure shows the issue histogram is skewed under GTO and
 * flat under LRR, which is why LCS mandates a greedy warp scheduler.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

/**
 * Run @p name until the first CTA completes on core 0 and return the
 * per-CTA issue counts of core 0 at that moment (the monitoring-window
 * snapshot LCS sees).
 */
std::vector<std::uint64_t>
monitorSnapshot(const std::string& name, bsched::WarpSchedKind sched)
{
    using namespace bsched;
    const GpuConfig config = makeConfig(sched, CtaSchedKind::RoundRobin);
    const KernelInfo kernel = makeWorkload(name);
    Gpu gpu(config);
    gpu.launchKernel(kernel);
    const SimtCore& core = *gpu.cores().front();
    while (gpu.stepCycle()) {
        const auto counts = core.ctaIssueCounts(0);
        if (counts.size() > core.residentCtas(0))
            return counts; // a CTA on core 0 has completed
    }
    return core.ctaIssueCounts(0);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const std::vector<std::string> names = {"kmeans", "sc", "bp", "gemm"};
    const std::vector<WarpSchedKind> scheds = {WarpSchedKind::GTO,
                                               WarpSchedKind::LRR};

    std::printf("E4: per-CTA issue share on core 0 at the end of the "
                "monitoring window\n(first CTA completion; %u jobs)\n\n",
                jobs);

    // Each (workload, scheduler) snapshot steps its own Gpu — an
    // independent simulation point for the generic fan-out.
    const ParallelRunner runner(jobs);
    const auto snapshots = runner.map<std::vector<std::uint64_t>>(
        names.size() * scheds.size(), [&](std::size_t i) {
            return monitorSnapshot(names[i / scheds.size()],
                                   scheds[i % scheds.size()]);
        });

    BenchReport report("fig_gto_issue_profile");
    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto& name = names[w];
        for (std::size_t s = 0; s < scheds.size(); ++s) {
            const WarpSchedKind sched = scheds[s];
            auto counts = snapshots[w * scheds.size() + s];
            std::sort(counts.rbegin(), counts.rend());
            std::uint64_t total = 0;
            for (auto c : counts)
                total += c;
            std::vector<std::pair<std::string, double>> bars;
            for (std::size_t i = 0; i < counts.size(); ++i) {
                bars.emplace_back("cta#" + std::to_string(i),
                                  total ? 100.0 * counts[i] / total : 0.0);
            }
            std::printf("%s", barChart(name + " / " + toString(sched) +
                                       " (issue share %, I_total/I_greedy=" +
                                       fmt(counts.empty() || !counts[0]
                                           ? 0.0
                                           : double(total) / counts[0], 2) +
                                       ")", bars, 40, 1).c_str());
            std::printf("\n");
            report.addMetric(name + "." + toString(sched) +
                                 ".issue_ratio",
                             counts.empty() || !counts[0]
                                 ? 0.0
                                 : double(total) / counts[0]);
        }
    }
    std::printf("Reading: GTO concentrates issue on one greedy CTA "
                "(skewed bars); LRR is flat.\nThe skew makes "
                "I_total/I_greedy a usable estimate of the needed CTA "
                "count.\n");

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(
        opts, makeConfig(WarpSchedKind::GTO, CtaSchedKind::RoundRobin),
        makeWorkload("kmeans"), "kmeans/gto");
    return 0;
}
