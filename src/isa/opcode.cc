#include "isa/opcode.hh"

namespace bsched {

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
      case Opcode::LdShared:
      case Opcode::StShared:
        return true;
      default:
        return false;
    }
}

bool
isGlobalMemory(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::StGlobal;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::LdShared;
}

bool
isStore(Opcode op)
{
    return op == Opcode::StGlobal || op == Opcode::StShared;
}

const char*
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Alu: return "alu";
      case Opcode::Sfu: return "sfu";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Exit: return "exit";
    }
    return "?";
}

} // namespace bsched
