#include "sim/log.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bsched {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
parseLogLevel(const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (lower == "silent")
        return LogLevel::Silent;
    if (lower == "warn")
        return LogLevel::Warn;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "debug")
        return LogLevel::Debug;
    fatal("unknown log level '", name,
          "' (expected silent, warn, info or debug)");
}

void
setLogLevelFromEnv()
{
    const char* env = std::getenv("BSCHED_LOG");
    if (env != nullptr && env[0] != '\0')
        setLogLevel(parseLogLevel(env));
}

namespace detail {

void
fatalImpl(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string& msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (g_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace bsched
