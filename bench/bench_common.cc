#include "bench_common.hh"

#include <cstdlib>
#include <cstring>

#include "sim/log.hh"
#include "workloads/suite.hh"

namespace bsched::bench {

unsigned
parseJobs(int argc, char** argv)
{
    unsigned requested = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            value = arg + 2;
        } else {
            fatal("unknown argument '", arg,
                  "' (figures accept --jobs N / --jobs=N / -jN)");
        }
        const long parsed = std::strtol(value, nullptr, 10);
        if (parsed <= 0)
            fatal("--jobs expects a positive integer, got '", value, "'");
        requested = static_cast<unsigned>(parsed);
    }
    return resolveJobs(requested);
}

GridResults
runKernelGrid(const std::vector<KernelInfo>& kernels,
              const std::vector<GpuConfig>& configs, unsigned jobs)
{
    std::vector<SimPoint> points;
    points.reserve(kernels.size() * configs.size());
    for (const KernelInfo& kernel : kernels) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            points.push_back({configs[c], kernel,
                              kernel.name + "/cfg" + std::to_string(c)});
        }
    }
    GridResults results;
    results.numConfigs = configs.size();
    results.flat = runGrid(points, jobs);
    return results;
}

GridResults
runWorkloadGrid(const std::vector<std::string>& names,
                const std::vector<GpuConfig>& configs, unsigned jobs)
{
    std::vector<KernelInfo> kernels;
    kernels.reserve(names.size());
    for (const std::string& name : names)
        kernels.push_back(makeWorkload(name));
    return runKernelGrid(kernels, configs, jobs);
}

} // namespace bsched::bench
