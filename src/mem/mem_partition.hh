/**
 * @file
 * A memory partition: one L2 bank (write-back, write-allocate) fronting
 * one DRAM channel. The GPU has numMemPartitions of these; lines are
 * interleaved across partitions at line granularity.
 */

#ifndef BSCHED_MEM_MEM_PARTITION_HH
#define BSCHED_MEM_MEM_PARTITION_HH

#include <cstdint>
#include <deque>
#include <string>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_common.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/queues.hh"

namespace bsched {

class MemProfiler;

/** L2 bank + DRAM channel. */
class MemPartition
{
  public:
    MemPartition(const GpuConfig& config, std::uint32_t id);

    /** True if the L2 input queue can take another request. */
    bool canAcceptRequest() const { return input_.canPush(); }

    /** Deliver a request from the interconnect. */
    void pushRequest(Cycle now, const MemRequest& request);

    /**
     * Advance one cycle: DRAM, fills, L2 pipeline. Returns true when
     * anything happened — a DRAM service or fill, an L2 lookup
     * (including a head-of-line retry, which mutates stall counters), or
     * a writeback push. A false return means the cycle was quiet and a
     * repeat of it may be elided by idle fast-forward.
     */
    bool tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which this partition can do
     * observable work, assuming no new request is delivered meanwhile:
     * a buffered reply (now), the L2 input queue head's ready cycle, or
     * the DRAM channel's next event. kCycleNever when drained.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** True if a read response waits for the interconnect. */
    bool responseReady() const { return !replies_.empty(); }

    /** Oldest response without removing it. */
    const MemResponse& peekResponse() const;

    /** Pop the oldest response. */
    MemResponse popResponse();

    /** True when no request is anywhere in the partition. */
    bool drained() const;

    /** Invalidate L2 contents (kernel-boundary flush). */
    void flush();

    const TagArray& l2() const { return tags_; }
    const MshrFile& l2Mshr() const { return mshr_; }
    const DramChannel& dram() const { return dram_; }

    /**
     * Attach the event tracer (observability): L2 miss bursts and DRAM
     * row conflicts are reported on this partition's track.
     */
    void setTracer(Tracer* tracer);

    /**
     * Attach the memory profiler: requests report their L2-side stage
     * transitions (l2_q / dram_q / l2_mshr / l2_ret), L2 fills carry
     * CTA owners for eviction attribution, and the L2 MSHR occupancy is
     * sampled every cycle. Null detaches.
     */
    void setMemProfiler(MemProfiler* prof);

    void addStats(StatSet& stats) const;

  private:
    /** Waiter token marking a write-allocate fetch (no reply needed). */
    static constexpr MshrWaiter kWriteWaiter = ~MshrWaiter{0};

    /**
     * Read waiters pack the profiler request id above the core id so a
     * fill can address its reply and close the request's stage.
     */
    static MshrWaiter
    packWaiter(std::uint32_t req_id, std::uint16_t core_id)
    {
        return (static_cast<MshrWaiter>(req_id) << 16) | core_id;
    }

    static std::uint16_t
    waiterCore(MshrWaiter waiter)
    {
        return static_cast<std::uint16_t>(waiter & 0xffffu);
    }

    static std::uint32_t
    waiterReqId(MshrWaiter waiter)
    {
        return static_cast<std::uint32_t>(waiter >> 16);
    }

    /** Requests the L2 pipeline accepts per cycle. */
    static constexpr unsigned kL2PortsPerCycle = 2;

    /** L2 input queue capacity. */
    static constexpr std::size_t kInputCapacity = 32;

    bool handleDramResponses(Cycle now);
    bool handleRequest(Cycle now, const MemRequest& request);
    void evictIfDirty(const Eviction& eviction);

    std::uint32_t id_;
    std::string name_;
    GpuConfig config_;
    TimedQueue<MemRequest> input_;
    TagArray tags_;
    MshrFile mshr_;
    DramChannel dram_;
    std::deque<MemResponse> replies_;
    std::deque<Addr> writebacks_; ///< dirty victims awaiting DRAM space

    std::uint64_t readRequests_ = 0;
    std::uint64_t writeRequests_ = 0;
    std::uint64_t stallCycles_ = 0;

    MemProfiler* memProfiler_ = nullptr;
};

} // namespace bsched

#endif // BSCHED_MEM_MEM_PARTITION_HH
