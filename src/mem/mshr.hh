/**
 * @file
 * Miss Status Holding Registers. An MSHR file tracks outstanding miss
 * lines and merges secondary misses onto the primary. Waiters are opaque
 * 64-bit tokens owned by the client (the core's LD/ST unit uses access-
 * batch indices; the L2 packs a profiler request id and a core id).
 */

#ifndef BSCHED_MEM_MSHR_HH
#define BSCHED_MEM_MSHR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace bsched {

/** Outcome of attempting to register a miss. */
enum class MshrOutcome
{
    NewEntry,  ///< primary miss: entry allocated, fetch must be sent
    Merged,    ///< secondary miss merged; no new fetch
    FullEntry, ///< entry exists but merge capacity exhausted -> retry
    FullFile,  ///< no free entries -> retry
};

/** Opaque waiter token stored per merged miss (client-defined). */
using MshrWaiter = std::uint64_t;

/** MSHR file with per-line merge capacity. */
class MshrFile
{
  public:
    /**
     * @param entries distinct outstanding lines.
     * @param max_merged waiters per line (including the primary).
     */
    MshrFile(std::uint32_t entries, std::uint32_t max_merged,
             std::string name);

    /** Try to record a miss for @p line_addr with @p waiter. */
    MshrOutcome allocate(Addr line_addr, MshrWaiter waiter);

    /** True if a fetch for @p line_addr is already outstanding. */
    bool has(Addr line_addr) const;

    /**
     * Complete the fetch of @p line_addr: removes the entry and returns
     * its waiters (panic() if absent).
     */
    std::vector<MshrWaiter> complete(Addr line_addr);

    std::uint32_t entriesInUse() const
    {
        return static_cast<std::uint32_t>(map_.size());
    }
    bool full() const { return entriesInUse() >= entries_; }
    bool empty() const { return map_.empty(); }

    void addStats(StatSet& stats, const std::string& prefix) const;

  private:
    std::uint32_t entries_;
    std::uint32_t maxMerged_;
    std::string name_;
    /**
     * Ordered by line address so any iteration (stats, debug dumps) is
     * deterministic — an unordered_map here would let hash order leak
     * into anything that ever walks the outstanding set.
     */
    std::map<Addr, std::vector<MshrWaiter>> map_;
    std::uint64_t allocs_ = 0;
    std::uint64_t merges_ = 0;
    std::uint64_t completes_ = 0;
    std::uint64_t fullEntryStalls_ = 0;
    std::uint64_t fullFileStalls_ = 0;
};

} // namespace bsched

#endif // BSCHED_MEM_MSHR_HH
