#include "sim/config.hh"

#include <sstream>

#include "sim/log.hh"

namespace bsched {

const char*
toString(WarpSchedKind kind)
{
    switch (kind) {
      case WarpSchedKind::LRR: return "lrr";
      case WarpSchedKind::GTO: return "gto";
      case WarpSchedKind::TwoLevel: return "two-level";
      case WarpSchedKind::BAWS: return "baws";
    }
    return "?";
}

const char*
toString(CtaSchedKind kind)
{
    switch (kind) {
      case CtaSchedKind::RoundRobin: return "rr";
      case CtaSchedKind::Lazy: return "lcs";
      case CtaSchedKind::Block: return "bcs";
      case CtaSchedKind::LazyBlock: return "lcs+bcs";
      case CtaSchedKind::Dynamic: return "dyncta";
    }
    return "?";
}

const char*
toString(LcsEstimator estimator)
{
    switch (estimator) {
      case LcsEstimator::IssueRatio: return "issue-ratio";
      case LcsEstimator::Threshold: return "threshold";
    }
    return "?";
}

const char*
toString(LcsWindowMode mode)
{
    switch (mode) {
      case LcsWindowMode::FirstCtaDone: return "first-cta-done";
      case LcsWindowMode::FixedCycles: return "fixed-cycles";
    }
    return "?";
}

namespace {
bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

bool defaultFastForward_ = true;
} // namespace

void
setDefaultFastForward(bool enabled)
{
    defaultFastForward_ = enabled;
}

bool
defaultFastForward()
{
    return defaultFastForward_;
}

void
GpuConfig::validate() const
{
    if (numCores == 0)
        fatal("config: numCores must be > 0");
    if (maxCtasPerCore == 0)
        fatal("config: maxCtasPerCore must be > 0");
    if (maxThreadsPerCore % kWarpSize != 0)
        fatal("config: maxThreadsPerCore must be a multiple of warp size");
    if (numSchedulersPerCore == 0)
        fatal("config: numSchedulersPerCore must be > 0");
    if (numMemPartitions == 0)
        fatal("config: numMemPartitions must be > 0");
    auto check_cache = [](const char* name, const CacheConfig& c) {
        if (c.lineBytes == 0 || !isPow2(c.lineBytes))
            fatal("config: ", name, " line size must be a power of two");
        if (c.sizeBytes % (c.lineBytes * c.assoc) != 0)
            fatal("config: ", name, " size not divisible by line*assoc");
        if (!isPow2(c.numSets()))
            fatal("config: ", name, " set count must be a power of two");
        if (c.mshrEntries == 0 || c.mshrMaxMerged == 0)
            fatal("config: ", name, " MSHR geometry must be nonzero");
        if (c.missQueueSize == 0)
            fatal("config: ", name, " miss queue must be nonzero");
    };
    check_cache("l1d", l1d);
    check_cache("l2", l2);
    if (l1d.lineBytes != l2.lineBytes)
        fatal("config: L1/L2 line sizes must match");
    if (dram.rowBytes % l2.lineBytes != 0)
        fatal("config: DRAM row size must be a multiple of the line size");
    if (dram.banksPerChannel == 0 || !isPow2(dram.banksPerChannel))
        fatal("config: banksPerChannel must be a power of two");
    if (dram.queueCapacity == 0)
        fatal("config: DRAM queue capacity must be nonzero");
    if (staticCtaLimit > maxCtasPerCore)
        fatal("config: staticCtaLimit exceeds maxCtasPerCore");
    if (bcs.blockSize == 0)
        fatal("config: BCS block size must be > 0");
    if (bcs.blockSize > maxCtasPerCore)
        fatal("config: BCS block size exceeds maxCtasPerCore");
    if (maxCycles == 0)
        fatal("config: maxCycles must be > 0");
}

GpuConfig
GpuConfig::gtx480()
{
    return GpuConfig{};
}

std::string
GpuConfig::toString() const
{
    std::ostringstream os;
    os << "SIMT cores            : " << numCores << "\n"
       << "Max CTAs / core       : " << maxCtasPerCore << "\n"
       << "Max threads / core    : " << maxThreadsPerCore
       << " (" << maxWarpsPerCore() << " warps)\n"
       << "Register file / core  : " << regFileSizePerCore << " regs\n"
       << "Shared memory / core  : " << smemBytesPerCore / 1024 << " KB\n"
       << "Warp schedulers / core: " << numSchedulersPerCore << "\n"
       << "Warp scheduler        : " << bsched::toString(warpSched) << "\n"
       << "CTA scheduler         : " << bsched::toString(ctaSched) << "\n"
       << "L1D                   : " << l1d.sizeBytes / 1024 << " KB, "
       << l1d.assoc << "-way, " << l1d.lineBytes << "B lines, "
       << l1d.mshrEntries << " MSHRs\n"
       << "L2 (per partition)    : " << l2.sizeBytes / 1024 << " KB, "
       << l2.assoc << "-way (" << numMemPartitions << " partitions, "
       << l2.sizeBytes / 1024 * numMemPartitions << " KB total)\n"
       << "Memory partitions     : " << numMemPartitions << "\n"
       << "Interconnect          : " << icntLatency << " cyc one-way, "
       << icntFlitsPerCycle << " req/cycle/partition\n"
       << "DRAM                  : " << dram.banksPerChannel
       << " banks/channel, row " << dram.rowBytes << "B, hit "
       << dram.rowHitLatency << " / miss " << dram.rowMissLatency
       << " cyc, burst " << dram.dataBusCycles << " cyc\n"
       << "ALU/SFU/SMEM latency  : " << aluLatency << "/" << sfuLatency
       << "/" << smemLatency << " cyc\n";
    return os.str();
}

} // namespace bsched
