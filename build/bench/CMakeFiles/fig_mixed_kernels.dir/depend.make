# Empty dependencies file for fig_mixed_kernels.
# This may be replaced when dependencies are built.
