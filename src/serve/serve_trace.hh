/**
 * @file
 * Serving-layer decision audit and the `bsched-servetrace-v1` artifact.
 *
 * A ServeTrace is an optional, purely observational bundle attached to
 * a ServingEngine before run(): the engine records every admission,
 * deferral, preemption and drain-cancel decision it takes — together
 * with the inputs that drove it (queue depth, headroom slots, predicted
 * runtimes, deadline urgency, chosen victim) — and feeds every
 * completed launch's predicted-vs-actual runtime into a
 * PredictorAccuracy tracker. Nothing in here is read back by the
 * engine, so attaching a ServeTrace can never change a schedule; the
 * artifact is therefore byte-identical for any --jobs count and with
 * fast-forward on or off, the same contract the serving artifact is
 * CI-gated on.
 *
 * ServeTraceReport serializes a set of (policy, trace) runs — audit
 * log, per-request lifecycle timestamps and predictor error histograms
 * — deterministically as the `bsched-servetrace-v1` JSON schema
 * (committed baseline: bench/BENCH_servetrace.json).
 */

#ifndef BSCHED_SERVE_SERVE_TRACE_HH
#define BSCHED_SERVE_SERVE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/engine.hh"
#include "serve/predictor.hh"
#include "sim/types.hh"

namespace bsched {

/** What the serving engine decided at one decision point. */
enum class ServeDecisionKind : std::uint8_t
{
    Admit,       ///< a ready request was launched on the GPU
    Defer,       ///< admission was denied (see reason)
    Preempt,     ///< a victim was drained and the urgent request launched
    DrainCancel, ///< a victim's drain was lifted (preemptor finished)
};

/** Stable kind name used in the exported JSON. */
const char* toString(ServeDecisionKind kind);

/** One audited decision with the inputs that drove it. */
struct ServeDecision
{
    Cycle cycle = 0;
    ServeDecisionKind kind = ServeDecisionKind::Admit;

    /** Subject request (Admit/Defer/Preempt: the candidate). */
    std::uint64_t seq = 0;
    int tenant = -1;
    std::string workload;

    // --- decision inputs ------------------------------------------------
    std::uint64_t queueDepth = 0;   ///< ready requests at decision time
    std::uint64_t running = 0;      ///< kernels in flight
    std::uint64_t headroomSlots = 0; ///< free CTA slots after LCS claims
    Cycle predictedTotal = 0;       ///< predicted runtime of the subject
    Cycle deadline = kCycleNever;   ///< absolute deadline (never = none)
    bool urgent = false;            ///< deadline-at-risk at this cycle
    bool reordered = false;         ///< admitted out of arrival order

    /** Why ("admitted", "previous_running", "no_free_way",
     *  "concurrency_cap", "headroom", "deadline_urgent",
     *  "preemptor_finished"). */
    std::string reason;

    // --- preemption inputs (Preempt/DrainCancel) ------------------------
    int victim = kInvalidId;            ///< drained kernel id
    Cycle victimPredictedRemaining = 0; ///< victim's predicted remainder
};

/** Append-only decision log with per-kind counts. */
struct ServeAudit
{
    std::vector<ServeDecision> decisions;
    std::uint64_t admits = 0;
    std::uint64_t defers = 0;
    std::uint64_t preempts = 0;
    std::uint64_t drainCancels = 0;

    void record(const ServeDecision& decision);
};

/**
 * The bundle a caller attaches to a ServingEngine (setTrace) to audit
 * one run. Plain data; copy it out of the engine's scope freely.
 */
struct ServeTrace
{
    ServeAudit audit;
    PredictorAccuracy accuracy;
};

/**
 * Accumulates audited runs and writes the `bsched-servetrace-v1`
 * artifact. Runs serialize in insertion order; decisions, request
 * lifecycles and predictor series are already deterministic, so the
 * bytes are identical for any --jobs value and fast-forward setting.
 */
class ServeTraceReport
{
  public:
    explicit ServeTraceReport(std::string bench_name);

    /** Append one audited (policy, trace) run. */
    void addRun(const std::string& policy, const std::string& trace,
                const ServingRunResult& result,
                const ServeTrace& serve_trace);

    std::size_t runs() const { return runs_.size(); }

    void writeJson(std::ostream& os) const;

    /** writeJson to a string (tests, byte-identity checks). */
    std::string toJson() const;

  private:
    struct Run
    {
        std::string policy;
        std::string trace;
        ServingRunResult result;
        ServeTrace serveTrace;
    };

    std::string name_;
    std::vector<Run> runs_;
};

} // namespace bsched

#endif // BSCHED_SERVE_SERVE_TRACE_HH
