#include "kernel/kernel_info.hh"

#include "sim/log.hh"

namespace bsched {

const char*
toString(WorkloadType type)
{
    switch (type) {
      case WorkloadType::Unknown: return "?";
      case WorkloadType::Saturating: return "type-1";
      case WorkloadType::Increasing: return "type-2";
      case WorkloadType::Peaked: return "type-3";
    }
    return "?";
}

std::uint64_t
KernelInfo::totalDynamicInstrs() const
{
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < gridCtas(); ++c)
        total += program.dynamicInstrCount(c) * warpsPerCta();
    return total;
}

void
KernelInfo::validate() const
{
    if (name.empty())
        fatal("kernel: empty name");
    if (grid.total() == 0 || cta.total() == 0)
        fatal("kernel ", name, ": zero grid or CTA dimension");
    if (grid.total() > (1ULL << 31))
        fatal("kernel ", name, ": grid too large");
    if (ctaThreads() > 1024)
        fatal("kernel ", name, ": CTA exceeds 1024 threads");
    if (regsPerThread == 0)
        fatal("kernel ", name, ": regsPerThread must be > 0");
    program.validate();
}

} // namespace bsched
