/**
 * @file
 * Unit tests for the DRAM channel model: row-buffer behaviour, FR-FCFS
 * scheduling, bus serialization and the starvation guard.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/stats.hh"

namespace bsched {
namespace {

DramConfig
cfg()
{
    DramConfig c;
    c.banksPerChannel = 4;
    c.rowBytes = 1024; // 8 lines of 128B per row
    c.rowHitLatency = 10;
    c.rowMissLatency = 50;
    c.dataBusCycles = 4;
    c.queueCapacity = 16;
    return c;
}

/** Line address of partition-local line index i (stride 1). */
Addr
line(std::uint64_t i)
{
    return i * 128;
}

TEST(Dram, ReadCompletesAfterMissLatencyPlusBurst)
{
    DramChannel dram(cfg(), 128, 1, "d");
    dram.push(0, line(0), false);
    dram.tick(0);
    EXPECT_FALSE(dram.responseReady(53));
    EXPECT_TRUE(dram.responseReady(54)); // 50 + 4
    EXPECT_EQ(dram.popResponse(54), line(0));
    EXPECT_EQ(dram.rowMisses(), 1u);
}

TEST(Dram, SecondAccessToOpenRowIsAHit)
{
    DramChannel dram(cfg(), 128, 1, "d");
    dram.push(0, line(0), false);
    dram.tick(0);
    Cycle t = 54;
    while (!dram.responseReady(t))
        ++t;
    dram.popResponse(t);
    dram.push(100, line(1), false); // same row (8 lines/row)
    dram.tick(100);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_TRUE(dram.responseReady(100 + 10 + 4));
}

TEST(Dram, RowHitPreferredOverOlderMiss)
{
    DramChannel dram(cfg(), 128, 1, "d");
    // Open row 0 of bank 0.
    dram.push(0, line(0), false);
    dram.tick(0);
    // Queue: first a row miss (row 1 of bank 1), then a row hit (bank 0).
    dram.push(1, line(8), false);  // bank 1 (next row group)
    dram.push(2, line(1), false);  // bank 0, open row -> hit
    // Wait for bank 0 to free, then tick: hit should win over FCFS order
    // once the miss's bank is busy... serve both and compare counters.
    for (Cycle t = 1; t < 300; ++t)
        dram.tick(t);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Dram, BusSerializesBackToBackBursts)
{
    DramChannel dram(cfg(), 128, 1, "d");
    // Two hits to the same open row must be spaced by dataBusCycles.
    dram.push(0, line(0), false);
    dram.tick(0);
    Cycle t = 0;
    while (!dram.responseReady(t))
        dram.tick(++t);
    dram.popResponse(t);

    dram.push(t, line(1), false);
    dram.push(t, line(2), false);
    Cycle first = t;
    while (!dram.responseReady(first))
        dram.tick(first++);
    dram.popResponse(first);
    Cycle second = first;
    while (!dram.responseReady(second))
        dram.tick(second++);
    EXPECT_GE(second - first, cfg().dataBusCycles);
}

TEST(Dram, WritesProduceNoResponse)
{
    DramChannel dram(cfg(), 128, 1, "d");
    dram.push(0, line(0), true);
    for (Cycle t = 0; t < 200; ++t)
        dram.tick(t);
    EXPECT_FALSE(dram.responseReady(200));
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_TRUE(dram.idle());
}

TEST(Dram, StarvationGuardBoundsWaiting)
{
    DramConfig c = cfg();
    c.maxStarveCycles = 100;
    DramChannel dram(c, 128, 1, "d");
    // Victim: a row-miss to bank 0 row 1.
    dram.push(0, line(8 * 4), false); // local line 32: bank 0, row 1
    // Open bank 0 row 0 and keep streaming hits to it.
    Cycle t = 0;
    std::uint64_t next_hit = 0;
    int served = 0;
    while (t < 2000) {
        if (dram.canAccept() && next_hit < 8)
            dram.push(t, line(next_hit++), false);
        dram.tick(t);
        while (dram.responseReady(t)) {
            dram.popResponse(t);
            ++served;
        }
        ++t;
    }
    // The victim must have been served despite the hit stream.
    EXPECT_TRUE(dram.idle());
    EXPECT_EQ(served, 9);
}

TEST(Dram, BankAndRowDecompositionWithPartitionStride)
{
    DramChannel dram(cfg(), 128, 6, "d");
    // Global lines 0,6,12,... belong to this partition; local lines
    // compact by dividing by 6.
    EXPECT_EQ(dram.bankOf(0), 0u);
    EXPECT_EQ(dram.rowOf(0), 0u);
    // Local line 8 (global line 48) -> row group 1 -> bank 1.
    EXPECT_EQ(dram.bankOf(48 * 128), 1u);
    // Local line 32 -> bank 0, row 1.
    EXPECT_EQ(dram.bankOf(32 * 6 * 128 / 6), dram.bankOf(line(32 * 6)));
}

TEST(Dram, PerBankStatsSumToChannelTotalsAndExport)
{
    DramChannel dram(cfg(), 128, 1, "d");
    Cycle t = 0;
    const auto access = [&](std::uint64_t i) {
        dram.push(t, line(i), false);
        dram.tick(t);
        while (!dram.responseReady(t))
            ++t;
        EXPECT_EQ(dram.popResponse(t), line(i));
        ++t;
    };
    // cfg(): 8 lines/row, 4 banks -> bank = (i/8) % 4, row = i/32.
    access(0);  // bank0 row0: miss, bank idle -> no conflict
    access(1);  // bank0 row0: hit
    access(32); // bank0 row1: miss closing open row0 -> conflict
    access(8);  // bank1 row0: miss, bank idle -> no conflict

    EXPECT_EQ(dram.numBanks(), 4u);
    ASSERT_LT(2u, dram.numBanks());
    EXPECT_EQ(dram.bankStats(0).rowHits, 1u);
    EXPECT_EQ(dram.bankStats(0).rowMisses, 2u);
    EXPECT_EQ(dram.bankStats(0).conflicts, 1u);
    EXPECT_EQ(dram.bankStats(1).rowMisses, 1u);
    EXPECT_EQ(dram.bankStats(1).conflicts, 0u);

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t conflicts = 0;
    for (std::uint32_t b = 0; b < dram.numBanks(); ++b) {
        hits += dram.bankStats(b).rowHits;
        misses += dram.bankStats(b).rowMisses;
        conflicts += dram.bankStats(b).conflicts;
    }
    EXPECT_EQ(hits, dram.rowHits());
    EXPECT_EQ(misses, dram.rowMisses());
    EXPECT_EQ(conflicts, dram.rowConflicts());

    StatSet stats;
    dram.addStats(stats, "dram");
    EXPECT_EQ(stats.get("dram.row_conflict"), 1.0);
    EXPECT_EQ(stats.get("dram.bank0.row_hit"), 1.0);
    EXPECT_EQ(stats.get("dram.bank0.row_miss"), 2.0);
    EXPECT_EQ(stats.get("dram.bank0.row_conflict"), 1.0);
    EXPECT_EQ(stats.get("dram.bank3.row_miss"), 0.0);
}

TEST(Dram, RowConflictNeedsAnOpenRow)
{
    // A conflict is a row *switch*: the first miss into an idle bank
    // opens a row without closing one and must not count.
    DramChannel dram(cfg(), 128, 1, "d");
    dram.push(0, line(0), false);
    dram.tick(0);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 0u);
}

TEST(Dram, PushIntoFullQueueDies)
{
    DramConfig c = cfg();
    c.queueCapacity = 1;
    DramChannel dram(c, 128, 1, "d");
    dram.push(0, line(0), false);
    EXPECT_FALSE(dram.canAccept());
    EXPECT_DEATH(dram.push(0, line(1), false), "full queue");
}

} // namespace
} // namespace bsched
