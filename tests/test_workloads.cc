/**
 * @file
 * Tests for the workload suite: every workload is well-formed, fits the
 * machine, has the documented structure, and the registry is consistent.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernel/occupancy.hh"
#include "workloads/suite.hh"

namespace bsched {
namespace {

TEST(Workloads, SuiteHasFifteenDistinctKernels)
{
    const auto names = workloadNames();
    EXPECT_EQ(names.size(), 15u);
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Workloads, EveryWorkloadValidatesAndFits)
{
    const GpuConfig config = GpuConfig::gtx480();
    for (const auto& name : workloadNames()) {
        const KernelInfo k = makeWorkload(name);
        k.validate(); // would fatal on malformed programs
        EXPECT_GE(maxCtasPerCore(config, k), 1u) << name;
        EXPECT_EQ(k.name, name);
        EXPECT_GT(k.totalDynamicInstrs(), 0u) << name;
    }
}

TEST(Workloads, ConstructionIsDeterministic)
{
    for (const auto& name : workloadNames()) {
        const KernelInfo a = makeWorkload(name);
        const KernelInfo b = makeWorkload(name);
        EXPECT_EQ(a.totalDynamicInstrs(), b.totalDynamicInstrs()) << name;
        EXPECT_EQ(a.grid, b.grid) << name;
    }
}

TEST(Workloads, AddressRegionsAreDisjoint)
{
    // Each workload gets its own 1GiB slot: no global pattern base of
    // one workload falls in another's region.
    std::set<Addr> slots;
    for (const auto& name : workloadNames()) {
        const KernelInfo k = makeWorkload(name);
        for (const MemPattern& p : k.program.patterns()) {
            if (p.space == MemSpace::Global && p.base != 0)
                slots.insert(p.base >> 30);
        }
    }
    // At least half the suite uses distinct regions (some kernels are
    // shared-memory only).
    EXPECT_GE(slots.size(), 7u);
}

TEST(Workloads, UnknownNameDies)
{
    EXPECT_DEATH(makeWorkload("no-such-kernel"), "unknown workload");
    EXPECT_DEATH(workloadNotes("no-such-kernel"), "unknown workload");
}

TEST(Workloads, LocalitySubsetIsInSuite)
{
    const auto names = workloadNames();
    const std::set<std::string> all(names.begin(), names.end());
    for (const auto& name : localityWorkloadNames()) {
        EXPECT_TRUE(all.count(name)) << name;
        // Locality workloads must contain a HaloRows pattern.
        const KernelInfo k = makeWorkload(name);
        bool has_halo = false;
        for (const MemPattern& p : k.program.patterns())
            has_halo |= p.kind == AccessKind::HaloRows;
        EXPECT_TRUE(has_halo) << name;
    }
}

TEST(Workloads, SuiteSpansAllThreeTypes)
{
    std::set<WorkloadType> types;
    for (const KernelInfo& k : makeSuite())
        types.insert(k.typeClass);
    EXPECT_TRUE(types.count(WorkloadType::Saturating));
    EXPECT_TRUE(types.count(WorkloadType::Increasing));
    EXPECT_TRUE(types.count(WorkloadType::Peaked));
}

TEST(Workloads, SuiteSpansOccupancyLimiters)
{
    const GpuConfig config = GpuConfig::gtx480();
    std::set<OccupancyLimiter> limiters;
    for (const KernelInfo& k : makeSuite())
        limiters.insert(occupancyLimiter(config, k));
    EXPECT_GE(limiters.size(), 3u);
}

TEST(Workloads, NotesExistForEveryWorkload)
{
    for (const auto& name : workloadNames())
        EXPECT_FALSE(workloadNotes(name).empty()) << name;
}

TEST(Workloads, BarrierKernelsHaveNoJitter)
{
    for (const KernelInfo& k : makeSuite()) {
        if (!k.program.hasBarrier())
            continue;
        for (std::size_t s = 0; s < k.program.segments().size(); ++s)
            EXPECT_EQ(k.program.segments()[s].tripJitterPct, 0u) << k.name;
    }
}

} // namespace
} // namespace bsched
