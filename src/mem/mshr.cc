#include "mem/mshr.hh"

#include "sim/log.hh"

namespace bsched {

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t max_merged,
                   std::string name)
    : entries_(entries), maxMerged_(max_merged), name_(std::move(name))
{
    if (entries_ == 0 || maxMerged_ == 0)
        fatal("mshr ", name_, ": zero capacity");
}

MshrOutcome
MshrFile::allocate(Addr line_addr, std::uint32_t waiter)
{
    auto it = map_.find(line_addr);
    if (it != map_.end()) {
        if (it->second.size() >= maxMerged_) {
            ++fullEntryStalls_;
            return MshrOutcome::FullEntry;
        }
        it->second.push_back(waiter);
        ++merges_;
        return MshrOutcome::Merged;
    }
    if (full()) {
        ++fullFileStalls_;
        return MshrOutcome::FullFile;
    }
    map_.emplace(line_addr, std::vector<std::uint32_t>{waiter});
    ++allocs_;
    return MshrOutcome::NewEntry;
}

bool
MshrFile::has(Addr line_addr) const
{
    return map_.find(line_addr) != map_.end();
}

std::vector<std::uint32_t>
MshrFile::complete(Addr line_addr)
{
    auto it = map_.find(line_addr);
    if (it == map_.end())
        panic("mshr ", name_, ": complete of unknown line");
    std::vector<std::uint32_t> waiters = std::move(it->second);
    map_.erase(it);
    return waiters;
}

void
MshrFile::addStats(StatSet& stats, const std::string& prefix) const
{
    stats.add(prefix + ".alloc", static_cast<double>(allocs_));
    stats.add(prefix + ".merge", static_cast<double>(merges_));
    stats.add(prefix + ".stall_entry", static_cast<double>(fullEntryStalls_));
    stats.add(prefix + ".stall_file", static_cast<double>(fullFileStalls_));
}

} // namespace bsched
