/**
 * @file
 * Tests for the interval sampler: alignment invariants, the query
 * helpers, and the central property — counter-kind series sampled
 * during a run must end exactly at the final StatSet totals.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/sampler.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = makeConfig(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    c.numCores = 2;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
kernel()
{
    KernelInfo k;
    k.name = "sampled";
    k.grid = {12, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Strided;
    in.strideElems = 8;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(6).load(i).alu(3).endLoop();
    k.program = b.build();
    return k;
}

TEST(IntervalSampler, ZeroPeriodIsFatal)
{
    EXPECT_DEATH(IntervalSampler(0), "period");
}

TEST(IntervalSampler, DueEveryPeriod)
{
    IntervalSampler s(100);
    EXPECT_FALSE(s.due(99));
    EXPECT_TRUE(s.due(100));
    s.begin(100);
    s.record("x", 1.0, SeriesKind::Counter);
    EXPECT_FALSE(s.due(199));
    EXPECT_TRUE(s.due(200));
}

TEST(IntervalSampler, RecordsAlignedSeries)
{
    IntervalSampler s(10);
    s.begin(10);
    s.record("a", 1.0, SeriesKind::Counter);
    s.record("g", 5.0, SeriesKind::Gauge);
    s.begin(20);
    s.record("a", 4.0, SeriesKind::Counter);
    s.record("g", 2.0, SeriesKind::Gauge);

    EXPECT_EQ(s.samples(), 2u);
    ASSERT_NE(s.find("a"), nullptr);
    EXPECT_EQ(s.find("a")->kind, SeriesKind::Counter);
    EXPECT_DOUBLE_EQ(s.last("a"), 4.0);
    EXPECT_DOUBLE_EQ(s.last("absent", -1.0), -1.0);

    const auto deltas = s.deltas("a");
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(deltas[0], 1.0); // first delta is from 0
    EXPECT_DOUBLE_EQ(deltas[1], 3.0);
}

TEST(IntervalSampler, DeltasOfGaugeIsFatal)
{
    IntervalSampler s(10);
    s.begin(10);
    s.record("g", 5.0, SeriesKind::Gauge);
    EXPECT_DEATH(s.deltas("g"), "gauge");
}

TEST(IntervalSampler, MisalignedRecordingDies)
{
    IntervalSampler s(10);
    // record() before any begin().
    EXPECT_DEATH(s.record("a", 1.0, SeriesKind::Counter), "begin");

    s.begin(10);
    s.record("a", 1.0, SeriesKind::Counter);
    // Same series twice in one sample row.
    EXPECT_DEATH(s.record("a", 2.0, SeriesKind::Counter), "twice");

    // A series joining after the first sample would misalign the axis.
    s.begin(20);
    s.record("a", 2.0, SeriesKind::Counter);
    EXPECT_DEATH(s.record("late", 1.0, SeriesKind::Counter), "joined");

    // Non-monotonic cycle axis.
    EXPECT_DEATH(s.begin(20), "not after");
}

TEST(IntervalSampler, CsvHasHeaderAndOneRowPerSample)
{
    IntervalSampler s(10);
    s.begin(10);
    s.record("a", 1.0, SeriesKind::Counter);
    s.begin(20);
    s.record("a", 2.5, SeriesKind::Counter);

    std::ostringstream os;
    s.writeCsv(os);
    EXPECT_EQ(os.str(), "cycle,a\n10,1\n20,2.5\n");
}

/**
 * The property the sampler exists to uphold: for every counter-kind
 * series the last sample equals the corresponding final StatSet total
 * (the run ends with a closing sample), and summed deltas reconstruct
 * the same total.
 */
TEST(IntervalSampler, CounterSeriesEndAtStatSetTotals)
{
    const GpuConfig config = cfg();
    IntervalSampler sampler(128);
    const RunResult r =
        runKernel(config, kernel(), Observer{nullptr, &sampler});

    ASSERT_GT(sampler.samples(), 1u);

    // The closing sample is taken at the final cycle.
    EXPECT_EQ(sampler.cycles().back(), r.cycles);

    // Cycle axis strictly increasing.
    for (std::size_t i = 1; i < sampler.cycles().size(); ++i)
        EXPECT_GT(sampler.cycles()[i], sampler.cycles()[i - 1]);

    const std::map<std::string, std::string> totals = {
        {"gpu.instrs", "gpu.instrs"},
        {"core.issue_cycles", ".issue_cycles"},
        {"core.stall_mem", ".stall_mem"},
        {"core.stall_idle", ".stall_idle"},
        {"l1d.access", ".l1d.access"},
        {"l1d.miss", ".l1d.miss"},
        {"l2.access", ".l2.access"},
        {"l2.miss", ".l2.miss"},
        {"dram.row_hit", ".dram.row_hit"},
        {"dram.row_miss", ".dram.row_miss"},
        {"dram.row_conflict", ".dram.row_conflict"},
    };
    for (const auto& [series, suffix] : totals) {
        const SampleSeries* s = sampler.find(series);
        ASSERT_NE(s, nullptr) << series;
        ASSERT_EQ(s->kind, SeriesKind::Counter) << series;

        const double total = series == "gpu.instrs"
            ? r.stats.get("gpu.instrs")
            : r.stats.sumBySuffix(suffix);
        EXPECT_DOUBLE_EQ(sampler.last(series), total) << series;

        // Counters are cumulative, so the series is monotone and the
        // deltas resum to the total.
        double sum = 0.0;
        double prev = 0.0;
        for (const double v : s->values) {
            EXPECT_GE(v, prev) << series;
            prev = v;
        }
        for (const double d : sampler.deltas(series))
            sum += d;
        EXPECT_DOUBLE_EQ(sum, total) << series;
    }

    // Gauges exist and stay in range.
    const SampleSeries* active = sampler.find("gpu.active_ctas");
    ASSERT_NE(active, nullptr);
    EXPECT_EQ(active->kind, SeriesKind::Gauge);
    for (const double v : active->values) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, config.numCores * config.maxCtasPerCore);
    }
}

} // namespace
} // namespace bsched
