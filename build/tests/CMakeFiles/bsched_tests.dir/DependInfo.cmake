
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bcs.cc" "tests/CMakeFiles/bsched_tests.dir/test_bcs.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_bcs.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/bsched_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/bsched_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_config_sweeps.cc" "tests/CMakeFiles/bsched_tests.dir/test_config_sweeps.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_config_sweeps.cc.o.d"
  "/root/repo/tests/test_cta_sched.cc" "tests/CMakeFiles/bsched_tests.dir/test_cta_sched.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_cta_sched.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/bsched_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_dyncta.cc" "tests/CMakeFiles/bsched_tests.dir/test_dyncta.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_dyncta.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/bsched_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_gpu.cc" "tests/CMakeFiles/bsched_tests.dir/test_gpu.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_gpu.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/bsched_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interconnect.cc" "tests/CMakeFiles/bsched_tests.dir/test_interconnect.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_interconnect.cc.o.d"
  "/root/repo/tests/test_lcs.cc" "tests/CMakeFiles/bsched_tests.dir/test_lcs.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_lcs.cc.o.d"
  "/root/repo/tests/test_ldst_unit.cc" "tests/CMakeFiles/bsched_tests.dir/test_ldst_unit.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_ldst_unit.cc.o.d"
  "/root/repo/tests/test_mem_partition.cc" "tests/CMakeFiles/bsched_tests.dir/test_mem_partition.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_mem_partition.cc.o.d"
  "/root/repo/tests/test_mem_pattern.cc" "tests/CMakeFiles/bsched_tests.dir/test_mem_pattern.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_mem_pattern.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/bsched_tests.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_multi_kernel.cc" "tests/CMakeFiles/bsched_tests.dir/test_multi_kernel.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_multi_kernel.cc.o.d"
  "/root/repo/tests/test_occupancy.cc" "tests/CMakeFiles/bsched_tests.dir/test_occupancy.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_occupancy.cc.o.d"
  "/root/repo/tests/test_program_builder.cc" "tests/CMakeFiles/bsched_tests.dir/test_program_builder.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_program_builder.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/bsched_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_queues.cc" "tests/CMakeFiles/bsched_tests.dir/test_queues.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_queues.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/bsched_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_scoreboard.cc" "tests/CMakeFiles/bsched_tests.dir/test_scoreboard.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_scoreboard.cc.o.d"
  "/root/repo/tests/test_simt_core.cc" "tests/CMakeFiles/bsched_tests.dir/test_simt_core.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_simt_core.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/bsched_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/bsched_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_warp_program.cc" "tests/CMakeFiles/bsched_tests.dir/test_warp_program.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_warp_program.cc.o.d"
  "/root/repo/tests/test_warp_sched.cc" "tests/CMakeFiles/bsched_tests.dir/test_warp_sched.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_warp_sched.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/bsched_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/bsched_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
