file(REMOVE_RECURSE
  "CMakeFiles/fig_cache_sensitivity.dir/fig_cache_sensitivity.cc.o"
  "CMakeFiles/fig_cache_sensitivity.dir/fig_cache_sensitivity.cc.o.d"
  "fig_cache_sensitivity"
  "fig_cache_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
