#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/mem_profile.hh"
#include "obs/phase/phase.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "serve/engine.hh"
#include "serve/serve_trace.hh"
#include "serve/traffic.hh"
#include "serve_traces.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace bsched::bench {

namespace {

/** Sampler period used for --trace runs when --sample-every is unset. */
constexpr Cycle kDefaultSamplePeriod = 512;

long
parsePositive(const char* flag, const char* value)
{
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (parsed <= 0 || end == value || *end != '\0')
        fatal(flag, " expects a positive integer, got '", value, "'");
    return parsed;
}

} // namespace

BenchOptions
parseArgs(int argc, char** argv)
{
    setLogLevelFromEnv();

    BenchOptions opts;
    unsigned requested = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc)
                fatal(flag, " requires a value");
            return argv[++i];
        };
        if (std::strcmp(arg, "--jobs") == 0) {
            requested = static_cast<unsigned>(
                parsePositive("--jobs", next("--jobs")));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            requested =
                static_cast<unsigned>(parsePositive("--jobs", arg + 7));
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            requested =
                static_cast<unsigned>(parsePositive("-j", arg + 2));
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.tracePath = next("--trace");
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            opts.tracePath = arg + 8;
        } else if (std::strcmp(arg, "--profile") == 0) {
            opts.profilePath = next("--profile");
        } else if (std::strncmp(arg, "--profile=", 10) == 0) {
            opts.profilePath = arg + 10;
        } else if (std::strcmp(arg, "--mem-profile") == 0) {
            opts.memProfilePath = next("--mem-profile");
        } else if (std::strncmp(arg, "--mem-profile=", 14) == 0) {
            opts.memProfilePath = arg + 14;
        } else if (std::strcmp(arg, "--serve-trace") == 0) {
            opts.serveTracePath = next("--serve-trace");
        } else if (std::strncmp(arg, "--serve-trace=", 14) == 0) {
            opts.serveTracePath = arg + 14;
        } else if (std::strcmp(arg, "--phase") == 0) {
            opts.phasePath = next("--phase");
        } else if (std::strncmp(arg, "--phase=", 8) == 0) {
            opts.phasePath = arg + 8;
        } else if (std::strcmp(arg, "--progress") == 0) {
            opts.progress = true;
        } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
            // Escape hatch: force plain cycle-by-cycle stepping in every
            // simulation this process runs (results are byte-identical
            // either way; this exists to prove exactly that).
            setDefaultFastForward(false);
        } else if (std::strcmp(arg, "--emit-json") == 0) {
            opts.emitJsonPath = next("--emit-json");
        } else if (std::strncmp(arg, "--emit-json=", 12) == 0) {
            opts.emitJsonPath = arg + 12;
        } else if (std::strcmp(arg, "--sample-every") == 0) {
            opts.sampleEvery = static_cast<Cycle>(
                parsePositive("--sample-every", next("--sample-every")));
        } else if (std::strncmp(arg, "--sample-every=", 15) == 0) {
            opts.sampleEvery = static_cast<Cycle>(
                parsePositive("--sample-every", arg + 15));
        } else if (std::strcmp(arg, "--log") == 0) {
            setLogLevel(parseLogLevel(next("--log")));
        } else if (std::strncmp(arg, "--log=", 6) == 0) {
            setLogLevel(parseLogLevel(arg + 6));
        } else {
            fatal("unknown argument '", arg,
                  "' (figures accept --jobs N, --trace FILE, "
                  "--profile FILE, --mem-profile FILE, --serve-trace FILE, "
                  "--phase FILE, --emit-json FILE, --sample-every N, "
                  "--progress, --no-fast-forward, --log LEVEL)");
        }
    }
    opts.jobs = resolveJobs(requested);
    if (!opts.progress) {
        const char* env = std::getenv("BSCHED_PROGRESS");
        opts.progress = env != nullptr && *env != '\0' &&
            std::strcmp(env, "0") != 0;
    }
    setHarnessProgress(opts.progress);
    return opts;
}

unsigned
parseJobs(int argc, char** argv)
{
    return parseArgs(argc, argv).jobs;
}

void
writeReport(const BenchOptions& opts, const BenchReport& report)
{
    if (opts.emitJsonPath.empty())
        return;
    const std::size_t bytes =
        writeFile(opts.emitJsonPath, [&](std::ostream& os) {
            report.writeJson(os);
        });
    std::fprintf(stderr, "wrote %s (%zu bytes)\n",
                 opts.emitJsonPath.c_str(), bytes);
}

void
writeServeTraceArtifact(const BenchOptions& opts)
{
    if (opts.serveTracePath.empty())
        return;

    // Everything here is pinned — trace, policy, machine — so the
    // artifact bytes never depend on which binary wrote it, on --jobs,
    // or on fast-forward.
    const ServeTraceDef def = canonicalServeTrace();
    const GpuConfig config =
        makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
    ServeConfig serve;
    serve.policy = ServePolicy::ReorderPreempt;

    ServeTrace trace;
    ServingEngine engine(config, serve);
    engine.setTrace(&trace);
    const ServingRunResult result = engine.run(generateTrace(def.spec));

    ServeTraceReport report("serve_trace");
    report.addRun(toString(serve.policy), def.name, result, trace);
    const std::size_t bytes =
        writeFile(opts.serveTracePath, [&](std::ostream& os) {
            report.writeJson(os);
        });
    std::fprintf(stderr,
                 "wrote %s (%zu bytes, %s/%s, %zu decisions)\n",
                 opts.serveTracePath.c_str(), bytes, def.name.c_str(),
                 toString(serve.policy),
                 trace.audit.decisions.size());
}

void
writeRunArtifacts(const BenchOptions& opts, const GpuConfig& config,
                  const KernelInfo& kernel, const std::string& label)
{
    writeServeTraceArtifact(opts);

    const bool want_trace = !opts.tracePath.empty();
    const bool want_profile = !opts.profilePath.empty();
    const bool want_mem = !opts.memProfilePath.empty();
    const bool want_phase = !opts.phasePath.empty();
    if (!want_trace && !want_profile && !want_mem && !want_phase)
        return;

    const Cycle period =
        opts.sampleEvery > 0 ? opts.sampleEvery : kDefaultSamplePeriod;
    Tracer tracer(config.numCores, config.numMemPartitions);
    IntervalSampler sampler(period);
    CycleProfiler profiler;
    MemProfiler mem_profiler;
    PhaseTelemetry phase;
    Observer obs;
    if (want_trace) {
        obs.tracer = &tracer;
        obs.sampler = &sampler;
    }
    if (want_profile)
        obs.profiler = &profiler;
    // --phase rides the memory profiler so the exported windows carry
    // the interference channels; the detectors themselves never read
    // them, so boundaries match a phase-only attachment.
    if (want_mem || want_phase)
        obs.memProfiler = &mem_profiler;
    if (want_phase)
        obs.phase = &phase;
    runKernel(config, kernel, obs);

    if (want_trace) {
        const std::size_t bytes =
            writeFile(opts.tracePath, [&](std::ostream& os) {
                tracer.writeChromeTrace(os, &sampler);
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %s, %llu events",
                     opts.tracePath.c_str(), bytes, label.c_str(),
                     static_cast<unsigned long long>(tracer.recorded()));
        if (tracer.dropped() > 0) {
            std::fprintf(stderr, ", %llu dropped",
                         static_cast<unsigned long long>(tracer.dropped()));
        }
        std::fprintf(stderr, ")\n");
    }
    if (want_profile) {
        const std::size_t bytes =
            writeFile(opts.profilePath, [&](std::ostream& os) {
                writeProfileJson(os, profiler, label);
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %s)\n",
                     opts.profilePath.c_str(), bytes, label.c_str());
    }
    if (want_mem) {
        const std::size_t bytes =
            writeFile(opts.memProfilePath, [&](std::ostream& os) {
                writeMemProfileJson(os, mem_profiler, label);
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %s, %llu requests)\n",
                     opts.memProfilePath.c_str(), bytes, label.c_str(),
                     static_cast<unsigned long long>(
                         mem_profiler.completedRequests()));
    }
    if (want_phase) {
        const std::size_t bytes =
            writeFile(opts.phasePath, [&](std::ostream& os) {
                writePhaseJson(os, phase, label);
            });
        std::fprintf(stderr, "wrote %s (%zu bytes, %s, %zu windows, "
                             "%zu phases)\n",
                     opts.phasePath.c_str(), bytes, label.c_str(),
                     phase.metrics().windows(),
                     phase.machine().phases().size());
    }
}

GridResults
runKernelGrid(const std::vector<KernelInfo>& kernels,
              const std::vector<GpuConfig>& configs, unsigned jobs)
{
    std::vector<SimPoint> points;
    points.reserve(kernels.size() * configs.size());
    for (const KernelInfo& kernel : kernels) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            points.push_back({configs[c], kernel,
                              kernel.name + "/cfg" + std::to_string(c)});
        }
    }
    GridResults results;
    results.numConfigs = configs.size();
    results.flat = runGrid(points, jobs);
    return results;
}

GridResults
runWorkloadGrid(const std::vector<std::string>& names,
                const std::vector<GpuConfig>& configs, unsigned jobs)
{
    std::vector<KernelInfo> kernels;
    kernels.reserve(names.size());
    for (const std::string& name : names)
        kernels.push_back(makeWorkload(name));
    return runKernelGrid(kernels, configs, jobs);
}

} // namespace bsched::bench
