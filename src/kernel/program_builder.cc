#include "kernel/program_builder.hh"

#include "sim/log.hh"

namespace bsched {

ProgramBuilder::ProgramBuilder(int reg_window)
    : regWindow_(reg_window)
{
    if (reg_window <= kFirstDynReg || reg_window > kMaxWarpRegs)
        fatal("program builder: reg window must be in (",
              kFirstDynReg, ", ", kMaxWarpRegs, "]");
}

std::uint8_t
ProgramBuilder::pattern(const MemPattern& p)
{
    return prog_.addPattern(p);
}

ProgramBuilder&
ProgramBuilder::loop(std::uint32_t trips, std::uint32_t trip_jitter_pct)
{
    if (open_)
        endLoop();
    current_ = Segment{};
    current_.trips = trips;
    current_.tripJitterPct = trip_jitter_pct;
    open_ = true;
    return *this;
}

ProgramBuilder&
ProgramBuilder::endLoop()
{
    if (!open_)
        fatal("program builder: endLoop without open segment");
    prog_.addSegment(std::move(current_));
    current_ = Segment{};
    open_ = false;
    return *this;
}

void
ProgramBuilder::ensureOpen()
{
    if (!open_) {
        current_ = Segment{};
        current_.trips = 1;
        open_ = true;
    }
}

std::int8_t
ProgramBuilder::allocReg()
{
    std::int8_t reg = static_cast<std::int8_t>(nextReg_);
    ++nextReg_;
    if (nextReg_ >= regWindow_)
        nextReg_ = kFirstDynReg;
    prevDst_ = lastDst_;
    lastDst_ = reg;
    return reg;
}

void
ProgramBuilder::emit(Instr instr)
{
    ensureOpen();
    instr.activeLanes = activeLanes_;
    current_.instrs.push_back(instr);
}

ProgramBuilder&
ProgramBuilder::alu(int count, bool dependent)
{
    for (int i = 0; i < count; ++i) {
        Instr instr;
        instr.op = Opcode::Alu;
        if (dependent) {
            instr.src0 = lastDst_;
            instr.src1 = prevDst_;
        } else {
            instr.src0 = 0;
            instr.src1 = 1;
        }
        instr.dst = allocReg();
        emit(instr);
    }
    return *this;
}

ProgramBuilder&
ProgramBuilder::sfu(int count)
{
    for (int i = 0; i < count; ++i) {
        Instr instr;
        instr.op = Opcode::Sfu;
        instr.src0 = lastDst_;
        instr.dst = allocReg();
        emit(instr);
    }
    return *this;
}

ProgramBuilder&
ProgramBuilder::load(std::uint8_t pattern_id)
{
    Instr instr;
    instr.op = Opcode::LdGlobal;
    instr.patternId = pattern_id;
    instr.dst = allocReg();
    emit(instr);
    return *this;
}

ProgramBuilder&
ProgramBuilder::loadShared(std::uint8_t pattern_id)
{
    Instr instr;
    instr.op = Opcode::LdShared;
    instr.patternId = pattern_id;
    instr.dst = allocReg();
    emit(instr);
    return *this;
}

ProgramBuilder&
ProgramBuilder::store(std::uint8_t pattern_id)
{
    Instr instr;
    instr.op = Opcode::StGlobal;
    instr.patternId = pattern_id;
    instr.src0 = lastDst_;
    emit(instr);
    return *this;
}

ProgramBuilder&
ProgramBuilder::storeShared(std::uint8_t pattern_id)
{
    Instr instr;
    instr.op = Opcode::StShared;
    instr.patternId = pattern_id;
    instr.src0 = lastDst_;
    emit(instr);
    return *this;
}

ProgramBuilder&
ProgramBuilder::barrier()
{
    Instr instr;
    instr.op = Opcode::Bar;
    emit(instr);
    return *this;
}

ProgramBuilder&
ProgramBuilder::diverge(std::uint8_t active_lanes)
{
    if (active_lanes == 0 || active_lanes > kWarpSize)
        fatal("program builder: bad active lane count ", int(active_lanes));
    activeLanes_ = active_lanes;
    return *this;
}

WarpProgram
ProgramBuilder::build()
{
    if (built_)
        fatal("program builder: build() called twice");
    if (open_)
        endLoop();
    built_ = true;
    prog_.validate();
    return std::move(prog_);
}

} // namespace bsched
