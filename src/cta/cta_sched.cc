#include "cta/cta_sched.hh"

#include <algorithm>

#include "cta/block_cta_sched.hh"
#include "cta/dyncta_sched.hh"
#include "cta/lazy_cta_sched.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

CtaScheduler::CtaScheduler(const GpuConfig& config)
    : config_(config)
{}

void
CtaScheduler::notifyCtaDone(Cycle now, const CtaDoneEvent& event,
                            CoreList& cores)
{
    (void)now;
    (void)event;
    (void)cores;
}

void
CtaScheduler::addStats(StatSet& stats) const
{
    stats.add("ctasched.dispatches", static_cast<double>(dispatches_));
    stats.add("ctasched.drain_requests",
              static_cast<double>(drainRequests_));
}

void
CtaScheduler::setDraining(int kernel_id, bool draining)
{
    BSCHED_CHECK(kernel_id >= 0, "cta scheduler: drain request for "
                                 "invalid kernel id ", kernel_id);
    if (kernel_id < 0)
        panic("cta scheduler: drain request for invalid kernel id");
    const auto idx = static_cast<std::size_t>(kernel_id);
    if (idx >= draining_.size())
        draining_.resize(idx + 1, 0);
    if (draining)
        ++drainRequests_;
    draining_[idx] = draining ? 1 : 0;
}

bool
CtaScheduler::isDraining(int kernel_id) const
{
    if (kernel_id < 0)
        return false;
    const auto idx = static_cast<std::size_t>(kernel_id);
    return idx < draining_.size() && draining_[idx] != 0;
}

Cycle
CtaScheduler::nextEventCycle(Cycle now,
                             const std::vector<KernelInstance>& kernels,
                             const CoreList& cores) const
{
    (void)now;
    (void)kernels;
    (void)cores;
    return kCycleNever;
}

std::vector<KernelInstance*>&
CtaScheduler::dispatchOrder(std::vector<KernelInstance>& kernels,
                            std::size_t num_cores)
{
    orderScratch_.clear();
    for (KernelInstance& kernel : kernels) {
        // Draining kernels are invisible to every policy's dispatch
        // loop: their cursor freezes while in-flight CTAs retire.
        if (!kernel.dispatchDone() && !isDraining(kernel.id))
            orderScratch_.push_back(&kernel);
    }
    if (!orderScratch_.empty()) {
        std::stable_sort(orderScratch_.begin(), orderScratch_.end(),
                         [](const KernelInstance* a,
                            const KernelInstance* b) {
                             return a->priority < b->priority;
                         });
        usedScratch_.assign(num_cores, 0);
    }
    return orderScratch_;
}

std::unique_ptr<CtaScheduler>
CtaScheduler::create(const GpuConfig& config)
{
    switch (config.ctaSched) {
      case CtaSchedKind::RoundRobin:
        return std::make_unique<RoundRobinCtaScheduler>(config);
      case CtaSchedKind::Lazy:
        return std::make_unique<LazyCtaScheduler>(config);
      case CtaSchedKind::Block:
        return std::make_unique<BlockCtaScheduler>(config);
      case CtaSchedKind::LazyBlock:
        return std::make_unique<LazyBlockCtaScheduler>(config);
      case CtaSchedKind::Dynamic:
        return std::make_unique<DynctaScheduler>(config);
    }
    panic("unknown CTA scheduler kind");
}

bool
CtaScheduler::coreAllowed(const KernelInstance& kernel,
                          std::uint32_t core) const
{
    const int begin = kernel.coreBegin;
    const int end =
        kernel.coreEnd < 0 ? static_cast<int>(config_.numCores)
                           : kernel.coreEnd;
    return static_cast<int>(core) >= begin && static_cast<int>(core) < end;
}

bool
CtaScheduler::coreFitsN(const SimtCore& core, const KernelInfo& kernel,
                        std::uint32_t n) const
{
    const CtaFootprint fp = ctaFootprint(kernel);
    const CoreResources& res = core.resources();
    return res.freeCtaSlots() >= n &&
        res.freeThreads() >= n * fp.threads &&
        res.freeRegs() >= n * fp.regs &&
        res.freeSmem() >= n * fp.smemBytes;
}

std::uint32_t
CtaScheduler::staticCap(const KernelInfo& kernel) const
{
    const std::uint32_t occ = maxCtasPerCore(config_, kernel);
    if (config_.staticCtaLimit == 0)
        return occ;
    return std::min(occ, config_.staticCtaLimit);
}

void
CtaScheduler::dispatch(Cycle now, KernelInstance& kernel, SimtCore& core,
                       std::uint64_t block_seq)
{
    // Grid accounting: a policy must stop offering a kernel once every
    // CTA id has been dispatched (contract is the testable layer, panic
    // the Release backstop against corrupting nextCta).
    BSCHED_CHECK(!kernel.dispatchDone(),
                 "cta scheduler: dispatch past end of grid (kernel ",
                 kernel.id, ", nextCta ", kernel.nextCta, ")");
    if (kernel.dispatchDone())
        panic("cta scheduler: dispatch past end of grid");
    // Drain contract: a draining kernel must never receive new CTAs —
    // dispatchOrder() filters it from every policy's candidate list, so
    // reaching here with the flag set means a policy bypassed the
    // shared ordering helper.
    BSCHED_CHECK(!isDraining(kernel.id),
                 "cta scheduler: dispatched a CTA of draining kernel ",
                 kernel.id);
    core.launchCta(now, *kernel.info, kernel.id, kernel.nextCta, block_seq);
    if (kernel.firstDispatchCycle == kCycleNever)
        kernel.firstDispatchCycle = now;
    ++kernel.nextCta;
    ++dispatches_;
    // Dispatch conservation for this kernel: retired + in-flight (over
    // the whole GPU, so >= this core's share) can never exceed what was
    // dispatched, and dispatch never overruns the grid.
    BSCHED_INVARIANT(kernel.ctasDone < kernel.nextCta &&
                         kernel.nextCta <= kernel.info->gridCtas(),
                     "cta scheduler: kernel ", kernel.id,
                     " dispatched/done counters out of range");
}

void
RoundRobinCtaScheduler::tick(Cycle now,
                             std::vector<KernelInstance>& kernels,
                             CoreList& cores)
{
    // At most one CTA dispatched per core per cycle, kernels offered in
    // priority order, cores visited round-robin. The rotation index is
    // derived from the cycle — this policy has ticked once per cycle
    // since 0, so `now % n` equals the old stored counter, and elided
    // quiet spans cannot desynchronise the visiting order.
    std::vector<KernelInstance*>& order = dispatchOrder(kernels,
                                                        cores.size());
    if (order.empty())
        return;
    const std::uint32_t n = static_cast<std::uint32_t>(cores.size());
    const std::uint32_t start = static_cast<std::uint32_t>(now % n);

    for (KernelInstance* kernel : order) {
        const std::uint32_t cap = staticCap(*kernel->info);
        for (std::uint32_t i = 0; i < n && !kernel->dispatchDone(); ++i) {
            const std::uint32_t c = (start + i) % n;
            SimtCore& core = *cores[c];
            if (usedScratch_[c] != 0 || !coreAllowed(*kernel, c))
                continue;
            if (core.residentCtas(kernel->id) >= cap)
                continue;
            if (!core.canAccept(*kernel->info))
                continue;
            dispatch(now, *kernel, core, blockSeqCounter_++);
            usedScratch_[c] = 1;
        }
    }
}

} // namespace bsched
