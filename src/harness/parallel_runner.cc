#include "harness/parallel_runner.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <type_traits>

#include "harness/thread_pool.hh"

namespace bsched {

// The lock-free contract of the grid runner: a point must be able to own
// private copies of its inputs. If GpuConfig or KernelInfo ever grow
// reference semantics (shared caches, interned programs, global pools),
// concurrent points would start aliasing state and the no-locking claim
// below breaks — revisit ParallelRunner before removing these.
static_assert(std::is_copy_constructible_v<GpuConfig>,
              "grid points must own their GpuConfig copy");
static_assert(std::is_copy_constructible_v<KernelInfo>,
              "grid points must own their KernelInfo copy");

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("BSCHED_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{}

void
ParallelRunner::forEachIndex(std::size_t n,
                             const std::function<void(std::size_t)>& fn) const
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<RunResult>
ParallelRunner::run(const std::vector<SimPoint>& points) const
{
    return map<RunResult>(points.size(), [&](std::size_t i) {
        return runKernel(points[i].config, points[i].kernel);
    });
}

std::vector<RunResult>
runGrid(const std::vector<SimPoint>& points, unsigned jobs)
{
    return ParallelRunner(jobs).run(points);
}

} // namespace bsched
