/**
 * @file
 * E5 — warp-scheduler baseline: GTO vs LRR IPC across the suite. The
 * paper builds LCS on a greedy scheduler; this figure establishes GTO as
 * a sound baseline (it matches or beats LRR nearly everywhere).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig lrr = makeConfig(WarpSchedKind::LRR,
                                     CtaSchedKind::RoundRobin);
    const GpuConfig tl = makeConfig(WarpSchedKind::TwoLevel,
                                    CtaSchedKind::RoundRobin);
    const GpuConfig gto = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::RoundRobin);

    std::printf("E5: warp scheduler comparison (baseline RR CTA "
                "scheduler, max CTAs; %u jobs)\n\n",
                jobs);
    Table table("IPC by warp scheduler");
    table.setHeader({"workload", "LRR", "2LVL", "GTO", "GTO/LRR"});
    BenchReport report("fig_warp_sched");
    std::vector<double> ratios;
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, {lrr, tl, gto}, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string& name = names[w];
        const RunResult& a = grid.at(w, 0);
        const RunResult& t = grid.at(w, 1);
        const RunResult& b = grid.at(w, 2);
        ratios.push_back(b.ipc / a.ipc);
        table.addRow(name, {a.ipc, t.ipc, b.ipc, b.ipc / a.ipc});
        report.addRow(name + "/lrr", a);
        report.addRow(name + "/2lvl", t);
        report.addRow(name + "/gto", b);
        report.addMetric(name + ".gto_over_lrr", b.ipc / a.ipc);
    }
    table.addRow("geomean", {0.0, 0.0, 0.0, geomean(ratios)});
    std::printf("%s", table.toText().c_str());
    report.addMetric("geomean.gto_over_lrr", geomean(ratios));

    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, gto, makeWorkload("kmeans"),
                              "kmeans/gto");
    return 0;
}
