/**
 * @file
 * Latency/bandwidth-modelling queues used to wire simulator components
 * together. A TimedQueue carries items that become visible only after a
 * fixed latency and enforces a maximum occupancy, which is how
 * backpressure propagates between pipeline stages (core -> interconnect ->
 * L2 -> DRAM and back).
 */

#ifndef BSCHED_SIM_QUEUES_HH
#define BSCHED_SIM_QUEUES_HH

#include <cstddef>
#include <deque>
#include <utility>

#include "sim/log.hh"
#include "sim/types.hh"

namespace bsched {

/**
 * FIFO whose entries become poppable @p latency cycles after being pushed,
 * with a bounded capacity. Capacity 0 means unbounded.
 */
template <typename T>
class TimedQueue
{
  public:
    /**
     * @param latency Cycles between push and earliest pop.
     * @param capacity Maximum occupancy (0 = unbounded).
     */
    explicit TimedQueue(Cycle latency = 0, std::size_t capacity = 0)
        : latency_(latency), capacity_(capacity)
    {}

    /** True if another item can be pushed this cycle. */
    bool
    canPush() const
    {
        return capacity_ == 0 || entries_.size() < capacity_;
    }

    /**
     * Push an item at time @p now; it becomes poppable at now + latency.
     * Pushing into a full queue is a simulator bug.
     */
    void
    push(Cycle now, T item)
    {
        if (!canPush())
            panic("TimedQueue overflow (capacity ", capacity_, ")");
        entries_.emplace_back(now + latency_, std::move(item));
    }

    /** True if the head item is poppable at time @p now. */
    bool
    ready(Cycle now) const
    {
        return !entries_.empty() && entries_.front().first <= now;
    }

    /** Access the head item; only valid when ready(). */
    const T&
    front() const
    {
        if (entries_.empty())
            panic("TimedQueue::front on empty queue");
        return entries_.front().second;
    }

    /** Pop and return the head item; only valid when ready(now). */
    T
    pop(Cycle now)
    {
        if (!ready(now))
            panic("TimedQueue::pop before ready");
        T item = std::move(entries_.front().second);
        entries_.pop_front();
        return item;
    }

    /**
     * Cycle at which the head item becomes poppable; kCycleNever when
     * empty. Entries are pushed with monotone ready cycles, so this is
     * the queue's next-event estimate for idle fast-forwarding.
     */
    Cycle
    nextReady() const
    {
        return entries_.empty() ? kCycleNever : entries_.front().first;
    }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    Cycle latency() const { return latency_; }

    void clear() { entries_.clear(); }

  private:
    Cycle latency_;
    std::size_t capacity_;
    /** (readyCycle, payload) in push order; readyCycle is monotone. */
    std::deque<std::pair<Cycle, T>> entries_;
};

/**
 * Rate limiter granting at most @p perCycle tokens each cycle. Components
 * call tryConsume() to model per-cycle bandwidth (e.g. crossbar ports,
 * DRAM data bus).
 */
class BandwidthThrottle
{
  public:
    explicit BandwidthThrottle(unsigned per_cycle = 1)
        : perCycle_(per_cycle)
    {}

    /** Consume one token at time @p now if available. */
    bool
    tryConsume(Cycle now)
    {
        if (now != cycle_) {
            cycle_ = now;
            used_ = 0;
        }
        if (used_ >= perCycle_)
            return false;
        ++used_;
        return true;
    }

    unsigned perCycle() const { return perCycle_; }

  private:
    unsigned perCycle_;
    Cycle cycle_ = kCycleNever;
    unsigned used_ = 0;
};

} // namespace bsched

#endif // BSCHED_SIM_QUEUES_HH
