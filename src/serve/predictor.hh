/**
 * @file
 * Online kernel-runtime predictor for the serving engine's reordering
 * policies. Two signals, combined:
 *
 *  - History: an EWMA of completed runtimes per workload name. The
 *    first completion seeds it; later completions blend in, so repeat
 *    launches of a suite kernel predict well almost immediately.
 *  - Monitoring-phase IPC: once a running kernel has been resident
 *    past the monitoring window, its observed instructions-per-cycle
 *    extrapolates the remaining instructions to remaining cycles —
 *    the same observe-then-commit structure LCS uses for N_opt, reused
 *    at the kernel granularity.
 *
 * Predictions only need to *order* queued work (shortest-job-first,
 * deadline risk); absolute accuracy is not required. Everything is
 * plain double arithmetic over deterministic counters in a fixed call
 * order, so predictions — and hence schedules — are reproducible.
 */

#ifndef BSCHED_SERVE_PREDICTOR_HH
#define BSCHED_SERVE_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/types.hh"

namespace bsched {

/** EWMA-over-history + monitored-IPC runtime estimator. */
class RuntimePredictor
{
  public:
    /**
     * @param fallback_ipc whole-kernel IPC assumed when no history
     *        exists yet (a deliberately rough machine-level guess; it
     *        only seeds the ordering until real completions arrive).
     */
    explicit RuntimePredictor(double fallback_ipc = 8.0,
                              double alpha = 0.5)
        : fallbackIpc_(fallback_ipc), alpha_(alpha)
    {}

    /** Predicted total runtime of @p workload from history, falling
     *  back to @p total_instrs / fallback_ipc. */
    Cycle predictTotal(const std::string& workload,
                       std::uint64_t total_instrs) const;

    /**
     * Predicted remaining runtime of a *running* kernel. Uses the
     * monitored IPC (@p issued instructions over @p elapsed cycles)
     * once @p elapsed >= @p monitor_cycles and issue has started;
     * before that, history minus elapsed.
     */
    Cycle predictRemaining(const std::string& workload,
                           std::uint64_t total_instrs,
                           std::uint64_t issued, Cycle elapsed,
                           Cycle monitor_cycles) const;

    /** Fold a completed run into the workload's history. */
    void recordCompletion(const std::string& workload, Cycle actual);

    /** Completions recorded so far (observability). */
    std::uint64_t completions() const { return completions_; }

  private:
    struct History
    {
        double ewmaCycles = 0.0;
        std::uint64_t samples = 0;
    };

    double fallbackIpc_;
    double alpha_; ///< EWMA weight of the newest sample
    std::map<std::string, History> history_;
    std::uint64_t completions_ = 0;
};

} // namespace bsched

#endif // BSCHED_SERVE_PREDICTOR_HH
