/**
 * @file
 * Unit tests for the fluent ProgramBuilder.
 */

#include <gtest/gtest.h>

#include "kernel/program_builder.hh"

namespace bsched {
namespace {

TEST(ProgramBuilder, BuildsLoopedProgram)
{
    ProgramBuilder b;
    b.loop(10).alu(3).endLoop();
    const WarpProgram prog = b.build();
    ASSERT_EQ(prog.segments().size(), 1u);
    EXPECT_EQ(prog.segments()[0].trips, 10u);
    EXPECT_EQ(prog.segments()[0].instrs.size(), 3u);
    EXPECT_EQ(prog.dynamicInstrCount(0), 30u);
}

TEST(ProgramBuilder, ImplicitSegmentForStraightLineCode)
{
    ProgramBuilder b;
    b.alu(2);
    const WarpProgram prog = b.build();
    ASSERT_EQ(prog.segments().size(), 1u);
    EXPECT_EQ(prog.segments()[0].trips, 1u);
}

TEST(ProgramBuilder, DependentAluFormsChain)
{
    ProgramBuilder b;
    b.alu(2, true);
    const WarpProgram prog = b.build();
    const auto& instrs = prog.segments()[0].instrs;
    // Second ALU reads the first one's destination.
    EXPECT_EQ(instrs[1].src0, instrs[0].dst);
}

TEST(ProgramBuilder, IndependentAluReadsConstants)
{
    ProgramBuilder b;
    b.alu(2, false);
    const WarpProgram prog = b.build();
    const auto& instrs = prog.segments()[0].instrs;
    EXPECT_EQ(instrs[1].src0, 0);
    EXPECT_EQ(instrs[1].src1, 1);
}

TEST(ProgramBuilder, LoadDefinesStoreConsumes)
{
    ProgramBuilder b;
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    const auto id = b.pattern(p);
    b.load(id).store(id);
    const WarpProgram prog = b.build();
    const auto& instrs = prog.segments()[0].instrs;
    EXPECT_EQ(instrs[0].op, Opcode::LdGlobal);
    EXPECT_NE(instrs[0].dst, kNoReg);
    EXPECT_EQ(instrs[1].op, Opcode::StGlobal);
    EXPECT_EQ(instrs[1].src0, instrs[0].dst);
    EXPECT_EQ(instrs[1].dst, kNoReg);
}

TEST(ProgramBuilder, DivergeAppliesToSubsequentInstrs)
{
    ProgramBuilder b;
    b.alu(1).diverge(8).alu(1).converge().alu(1);
    const WarpProgram prog = b.build();
    const auto& instrs = prog.segments()[0].instrs;
    EXPECT_EQ(instrs[0].activeLanes, kWarpSize);
    EXPECT_EQ(instrs[1].activeLanes, 8);
    EXPECT_EQ(instrs[2].activeLanes, kWarpSize);
}

TEST(ProgramBuilder, RegisterWindowWraps)
{
    ProgramBuilder b(8); // regs 4..7 cycle
    b.alu(20);
    const WarpProgram prog = b.build();
    EXPECT_LE(prog.regCount(), 8);
}

TEST(ProgramBuilder, BarrierEmitsBarOpcode)
{
    ProgramBuilder b;
    b.loop(2).alu(1).barrier().endLoop();
    const WarpProgram prog = b.build();
    EXPECT_TRUE(prog.hasBarrier());
}

TEST(ProgramBuilder, SharedOpsUseSharedPattern)
{
    ProgramBuilder b;
    MemPattern p;
    p.kind = AccessKind::SharedBank;
    p.space = MemSpace::Shared;
    const auto id = b.pattern(p);
    b.loadShared(id).storeShared(id);
    const WarpProgram prog = b.build();
    const auto& instrs = prog.segments()[0].instrs;
    EXPECT_EQ(instrs[0].op, Opcode::LdShared);
    EXPECT_EQ(instrs[1].op, Opcode::StShared);
}

TEST(ProgramBuilder, DoubleBuildDies)
{
    ProgramBuilder b;
    b.alu(1);
    (void)b.build();
    EXPECT_DEATH(b.build(), "twice");
}

TEST(ProgramBuilder, EndLoopWithoutLoopDies)
{
    ProgramBuilder b;
    EXPECT_DEATH(b.endLoop(), "endLoop");
}

TEST(ProgramBuilder, BadRegWindowDies)
{
    EXPECT_DEATH(ProgramBuilder(2), "reg window");
    EXPECT_DEATH(ProgramBuilder(65), "reg window");
}

TEST(ProgramBuilder, BadDivergeDies)
{
    ProgramBuilder b;
    EXPECT_DEATH(b.diverge(0), "lane");
    EXPECT_DEATH(b.diverge(40), "lane");
}

} // namespace
} // namespace bsched
