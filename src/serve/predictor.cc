#include "serve/predictor.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

Cycle
RuntimePredictor::predictTotal(const std::string& workload,
                               std::uint64_t total_instrs) const
{
    const auto it = history_.find(workload);
    if (it != history_.end() && it->second.samples > 0)
        return static_cast<Cycle>(it->second.ewmaCycles);
    const double cycles =
        static_cast<double>(total_instrs) / fallbackIpc_;
    return std::max<Cycle>(1, static_cast<Cycle>(cycles));
}

Cycle
RuntimePredictor::predictRemaining(const std::string& workload,
                                   std::uint64_t total_instrs,
                                   std::uint64_t issued, Cycle elapsed,
                                   Cycle monitor_cycles) const
{
    if (issued >= total_instrs)
        return 1; // issue done; only in-flight memory left
    if (elapsed >= monitor_cycles && issued > 0) {
        // Monitoring window over: extrapolate the observed rate.
        const double ipc = static_cast<double>(issued) /
            static_cast<double>(elapsed);
        const double rem =
            static_cast<double>(total_instrs - issued) / ipc;
        return std::max<Cycle>(1, static_cast<Cycle>(rem));
    }
    const Cycle total = predictTotal(workload, total_instrs);
    return total > elapsed ? total - elapsed : 1;
}

void
RuntimePredictor::recordCompletion(const std::string& workload,
                                   Cycle actual)
{
    // A zero-cycle completion would poison the EWMA toward predicting
    // instant kernels (fatal is the always-on backup).
    BSCHED_CHECK(actual > 0,
                 "predictor: zero-cycle completion for ", workload);
    if (actual == 0)
        fatal("predictor: zero-cycle completion for ", workload);
    History& h = history_[workload];
    if (h.samples == 0)
        h.ewmaCycles = static_cast<double>(actual);
    else
        h.ewmaCycles = alpha_ * static_cast<double>(actual) +
            (1.0 - alpha_) * h.ewmaCycles;
    ++h.samples;
    ++completions_;
}

void
PredictorAccuracy::record(const std::string& workload, Cycle predicted,
                          Cycle actual)
{
    // relError() divides by actual (fatal is the always-on backup).
    BSCHED_CHECK(actual > 0,
                 "predictor accuracy: zero-cycle actual for ", workload);
    if (actual == 0)
        fatal("predictor accuracy: zero-cycle actual for ", workload);
    Sample sample;
    sample.predicted = predicted;
    sample.actual = actual;
    errorHist_.record(sample.absError());
    byWorkload_[workload].push_back(sample);
    ++samples_;
    if (predicted > actual)
        ++over_;
    else if (predicted < actual)
        ++under_;
    else
        ++exact_;
}

double
PredictorAccuracy::meanAbsError() const
{
    return samples_ == 0 ? 0.0 : errorHist_.mean();
}

const std::vector<PredictorAccuracy::Sample>&
PredictorAccuracy::workloadSeries(const std::string& workload) const
{
    static const std::vector<Sample> kEmpty;
    const auto it = byWorkload_.find(workload);
    return it == byWorkload_.end() ? kEmpty : it->second;
}

} // namespace bsched
