#include "sim/check.hh"

#include <atomic>

namespace bsched {

namespace {
std::atomic<bool> g_contractThrows{false};
} // namespace

bool
setContractThrows(bool enabled)
{
    return g_contractThrows.exchange(enabled, std::memory_order_relaxed);
}

bool
contractThrows()
{
    return g_contractThrows.load(std::memory_order_relaxed);
}

namespace detail {

void
contractFail(const char* kind, const char* expr, const char* file, int line,
             const std::string& message)
{
    std::string what = concat("contract ", kind, " failed: ", expr, " at ",
                              file, ":", line);
    if (!message.empty())
        what += concat(": ", message);
    if (contractThrows())
        throw ContractViolation(kind, expr, what);
    panic(what);
}

} // namespace detail
} // namespace bsched
