/**
 * @file
 * Unit tests for TimedQueue and BandwidthThrottle.
 */

#include <gtest/gtest.h>

#include "sim/queues.hh"

namespace bsched {
namespace {

TEST(TimedQueue, ItemsBecomeVisibleAfterLatency)
{
    TimedQueue<int> q(5, 0);
    q.push(10, 42);
    EXPECT_FALSE(q.ready(10));
    EXPECT_FALSE(q.ready(14));
    EXPECT_TRUE(q.ready(15));
    EXPECT_EQ(q.pop(15), 42);
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, ZeroLatencyIsImmediatelyReady)
{
    TimedQueue<int> q(0, 0);
    q.push(3, 7);
    EXPECT_TRUE(q.ready(3));
    EXPECT_EQ(q.front(), 7);
}

TEST(TimedQueue, PreservesFifoOrder)
{
    TimedQueue<int> q(1, 0);
    q.push(0, 1);
    q.push(0, 2);
    q.push(1, 3);
    EXPECT_EQ(q.pop(5), 1);
    EXPECT_EQ(q.pop(5), 2);
    EXPECT_EQ(q.pop(5), 3);
}

TEST(TimedQueue, CapacityLimitsPush)
{
    TimedQueue<int> q(0, 2);
    EXPECT_TRUE(q.canPush());
    q.push(0, 1);
    q.push(0, 2);
    EXPECT_FALSE(q.canPush());
    q.pop(0);
    EXPECT_TRUE(q.canPush());
}

TEST(TimedQueue, UnboundedWhenCapacityZero)
{
    TimedQueue<int> q(0, 0);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(q.canPush());
        q.push(0, i);
    }
    EXPECT_EQ(q.size(), 1000u);
}

TEST(TimedQueue, PopBeforeReadyDies)
{
    TimedQueue<int> q(10, 0);
    q.push(0, 1);
    EXPECT_DEATH(q.pop(5), "before ready");
}

TEST(TimedQueue, OverflowDies)
{
    TimedQueue<int> q(0, 1);
    q.push(0, 1);
    EXPECT_DEATH(q.push(0, 2), "overflow");
}

TEST(BandwidthThrottle, GrantsPerCycleBudget)
{
    BandwidthThrottle bw(2);
    EXPECT_TRUE(bw.tryConsume(0));
    EXPECT_TRUE(bw.tryConsume(0));
    EXPECT_FALSE(bw.tryConsume(0));
    EXPECT_TRUE(bw.tryConsume(1));
}

TEST(BandwidthThrottle, BudgetResetsEachCycle)
{
    BandwidthThrottle bw(1);
    for (Cycle c = 0; c < 10; ++c) {
        EXPECT_TRUE(bw.tryConsume(c));
        EXPECT_FALSE(bw.tryConsume(c));
    }
}

} // namespace
} // namespace bsched
