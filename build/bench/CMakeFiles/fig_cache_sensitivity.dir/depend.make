# Empty dependencies file for fig_cache_sensitivity.
# This may be replaced when dependencies are built.
