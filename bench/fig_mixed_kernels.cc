/**
 * @file
 * E11 — mixed concurrent kernel execution: resource-complementary
 * kernel pairs (a peaked/memory kernel with an increasing/compute
 * kernel) run (a) sequentially, (b) spatially partitioned, and (c)
 * mixed on every core with LCS carving out the space. Reports total
 * runtime speedup over sequential, STP and ANTT.
 */

#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "gpu/multi_kernel.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace bsched;
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);

    // Resource-complementary pairs first (the kernels are limited by
    // different resources, so both fit on one core), then conflicting
    // pairs (both register/thread-limited) as the partner-selection
    // ablation: MCK only pays off when the pair is complementary.
    const std::vector<std::tuple<std::string, std::string, bool>> pairs = {
        {"kmeans", "lud", true}, {"sc", "lud", true},
        {"bfs", "lud", true},    {"nn", "lavamd", true},
        {"kmeans", "gemm", false}, {"srad", "gemm", false},
    };

    std::printf("E11: mixed concurrent kernel execution on kernel pairs\n"
                "(speedup = sequential total cycles / policy total "
                "cycles)\n\n");
    Table table("multi-kernel policies");
    table.setHeader({"pair", "fit", "seq-cycles", "spatial-speedup",
                     "mixed-speedup", "spatial-STP", "mixed-STP",
                     "spatial-ANTT", "mixed-ANTT"});
    std::vector<double> spatial_speedups;
    std::vector<double> mixed_speedups;

    // Isolated runtimes are policy-independent; compute each once.
    std::map<std::string, Cycle> isolated;
    auto isolated_of = [&](const std::string& name) {
        auto it = isolated.find(name);
        if (it != isolated.end())
            return it->second;
        const KernelInfo k = makeWorkload(name);
        Gpu gpu(config);
        const int id = gpu.launchKernel(k);
        gpu.run();
        return isolated[name] = gpu.kernelCycles(id);
    };

    for (const auto& [a, b, complementary] : pairs) {
        const KernelInfo ka = makeWorkload(a);
        const KernelInfo kb = makeWorkload(b);
        const std::vector<const KernelInfo*> kernels = {&ka, &kb};
        const std::vector<Cycle> iso = {isolated_of(a), isolated_of(b)};

        const auto seq = runMultiKernel(config, kernels,
                                        MultiKernelPolicy::Sequential,
                                        {}, &iso);
        const auto spa = runMultiKernel(config, kernels,
                                        MultiKernelPolicy::Spatial,
                                        {}, &iso);
        const auto mix = runMultiKernel(config, kernels,
                                        MultiKernelPolicy::Mixed,
                                        {}, &iso);
        const double s_spatial = static_cast<double>(seq.totalCycles) /
            static_cast<double>(spa.totalCycles);
        const double s_mixed = static_cast<double>(seq.totalCycles) /
            static_cast<double>(mix.totalCycles);
        if (complementary) {
            spatial_speedups.push_back(s_spatial);
            mixed_speedups.push_back(s_mixed);
        }
        table.addRow({a + "+" + b, complementary ? "compl." : "conflict",
                      std::to_string(seq.totalCycles),
                      fmt(s_spatial, 3), fmt(s_mixed, 3),
                      fmt(spa.stp(), 2), fmt(mix.stp(), 2),
                      fmt(spa.antt(), 2), fmt(mix.antt(), 2)});
    }
    table.addRow({"geomean (compl.)", "", "",
                  fmt(geomean(spatial_speedups), 3),
                  fmt(geomean(mixed_speedups), 3), "", "", "", ""});
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: mixing pays off when the pair is limited by\n"
                "different resources (memory kernel + smem/SFU kernel);\n"
                "pairing two register/thread-limited kernels shrinks the\n"
                "compute kernel's occupancy and loses to sequential.\n");
    return 0;
}
