# Empty dependencies file for fig_bcs_speedup.
# This may be replaced when dependencies are built.
