/**
 * @file
 * Plain-text table, CSV and ASCII bar-chart rendering for the experiment
 * harness. Every bench binary uses these to print the paper-style rows
 * and series.
 */

#ifndef BSCHED_SIM_TABLE_HH
#define BSCHED_SIM_TABLE_HH

#include <string>
#include <vector>

namespace bsched {

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. Must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision into a row. */
    void addRow(const std::string& label, const std::vector<double>& values,
                int precision = 3);

    /** Render column-aligned text. */
    std::string toText() const;

    /** Render RFC-4180-ish CSV (no quoting of embedded commas needed). */
    std::string toCsv() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Horizontal ASCII bar chart: one labelled bar per (label, value) pair,
 * scaled so the longest bar is @p width characters. Used to render the
 * paper's figures in terminal output.
 */
std::string barChart(const std::string& title,
                     const std::vector<std::pair<std::string, double>>& data,
                     int width = 50, int precision = 3);

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

} // namespace bsched

#endif // BSCHED_SIM_TABLE_HH
