/**
 * @file
 * The Observer bundle: the non-owning handles a Gpu needs to feed the
 * observability subsystem. Both pointers default to null, which is the
 * zero-cost-disabled state — no component allocates or records anything
 * unless the caller attached a sink before the run.
 */

#ifndef BSCHED_OBS_OBSERVER_HH
#define BSCHED_OBS_OBSERVER_HH

namespace bsched {

class Tracer;
class IntervalSampler;
class CycleProfiler;
class MemProfiler;

/** Non-owning observability hooks handed to Gpu at construction. */
struct Observer
{
    Tracer* tracer = nullptr;
    IntervalSampler* sampler = nullptr;
    CycleProfiler* profiler = nullptr;
    MemProfiler* memProfiler = nullptr;

    bool enabled() const
    {
        return tracer != nullptr || sampler != nullptr ||
            profiler != nullptr || memProfiler != nullptr;
    }
};

} // namespace bsched

#endif // BSCHED_OBS_OBSERVER_HH
