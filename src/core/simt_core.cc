#include "core/simt_core.hh"

#include <algorithm>

#include "kernel/mem_pattern.hh"
#include "obs/mem_profile.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

SimtCore::SimtCore(const GpuConfig& config, std::uint32_t id)
    : config_(config),
      id_(id),
      name_("core" + std::to_string(id)),
      warps_(config.maxWarpsPerCore()),
      ctas_(config.maxCtasPerCore),
      resources_(config),
      ldst_(config, id),
      warpWake_(config.maxWarpsPerCore(), 0),
      warpKernel_(config.maxWarpsPerCore(), kInvalidId),
      freeWarpSlots_(config.maxWarpsPerCore())
{
    for (std::uint32_t s = 0; s < config.numSchedulersPerCore; ++s) {
        schedulers_.push_back(WarpScheduler::create(
            config.warpSched, config.twoLevelActiveSize));
    }
}

bool
SimtCore::canAccept(const KernelInfo& kernel) const
{
    const CtaFootprint fp = ctaFootprint(kernel);
    if (!resources_.fits(fp))
        return false;
    // Need free warp *slots* too (one per warp).
    return freeWarpSlots_ >= fp.warps;
}

int
SimtCore::launchCta(Cycle now, const KernelInfo& kernel, int kernel_id,
                    std::uint32_t cta_id, std::uint64_t block_seq)
{
    // CTA slot accounting: the scheduler may only place a CTA when the
    // core has capacity (slots, threads, registers, shared memory and
    // free warp contexts) — a launch past capacity is a slot leak in the
    // dispatch policy. Contract first (throwable for injection tests),
    // panic as the Release backstop.
    BSCHED_CHECK(canAccept(kernel), name_,
                 ": CTA slot leak — launch without capacity (resident ",
                 residentCtas(), ")");
    if (!canAccept(kernel))
        panic(name_, ": launchCta without capacity");
    const CtaFootprint fp = ctaFootprint(kernel);
    int slot = kInvalidId;
    for (std::size_t i = 0; i < ctas_.size(); ++i) {
        if (!ctas_[i].valid) {
            slot = static_cast<int>(i);
            break;
        }
    }
    if (slot == kInvalidId)
        panic(name_, ": no free HW CTA slot");

    HwCta& cta = ctas_[static_cast<std::size_t>(slot)];
    cta = HwCta{};
    cta.valid = true;
    cta.kernelId = kernel_id;
    cta.ctaId = cta_id;
    cta.ctaSeq = ctaSeqCounter_++;
    cta.blockSeq = block_seq;
    cta.warpsTotal = fp.warps;
    cta.footprint = fp;
    cta.kernel = &kernel;
    cta.launchCycle = now;
    resources_.allocate(fp);

    std::uint32_t placed = 0;
    for (std::size_t w = 0; w < warps_.size() && placed < fp.warps; ++w) {
        Warp& warp = warps_[w];
        if (warp.valid)
            continue;
        warp.clear();
        warp.valid = true;
        warp.hwCta = slot;
        warp.kernelId = kernel_id;
        warp.ctaId = cta_id;
        warp.warpInCta = placed;
        warp.ctaSeq = cta.ctaSeq;
        warp.blockSeq = block_seq;
        warp.kernel = &kernel;
        warp.cursor.init(kernel.program, cta_id);
        warp.sb.reset();
        warpWake_[w] = 0;
        warpKernel_[w] = kernel_id;
        --freeWarpSlots_;
        if (warp.cursor.done(kernel.program)) {
            // Degenerate empty program: warp is born finished.
            warp.done = true;
            ++cta.warpsDone;
        }
        ++placed;
    }
    if (placed != fp.warps)
        panic(name_, ": warp slot accounting mismatch");

    KernelTrack& track = kernels_[kernel_id];
    if (track.firstLaunch == kCycleNever)
        track.firstLaunch = now;
    ++ctasLaunched_;
    // CTA conservation on this core: every launched CTA is either
    // resident or has completed, and residency never exceeds the
    // hardware slot count.
    BSCHED_INVARIANT(ctasLaunched_ == ctasCompleted_ + residentCtas(),
                     name_, ": CTA launch/retire balance broken");
    BSCHED_INVARIANT(residentCtas() <= config_.maxCtasPerCore, name_,
                     ": resident CTAs exceed hardware slots");

    if (tracer_ != nullptr) {
        TraceEvent event;
        event.cycle = now;
        event.kind = TraceEventKind::CtaDispatch;
        event.kernelId = kernel_id;
        event.arg0 = cta_id;
        tracer_->record(track_, event);
    }

    if (cta.warpsDone == cta.warpsTotal)
        completeCta(slot, now);
    return slot;
}

std::vector<CtaDoneEvent>
SimtCore::drainCompletedCtas()
{
    std::vector<CtaDoneEvent> out;
    out.swap(completed_);
    return out;
}

void
SimtCore::deliverResponse(Cycle now, const MemResponse& response)
{
    ldst_.onFill(now, response.lineAddr, response.reqId);
}

bool
SimtCore::idle() const
{
    return residentCtas() == 0 && ldst_.drained();
}

std::uint32_t
SimtCore::residentCtas(int kernel_id) const
{
    std::uint32_t count = 0;
    for (const HwCta& cta : ctas_) {
        if (cta.valid && cta.kernelId == kernel_id)
            ++count;
    }
    return count;
}

std::uint64_t
SimtCore::instrsIssued(int kernel_id) const
{
    auto it = kernels_.find(kernel_id);
    return it == kernels_.end() ? 0 : it->second.issued;
}

Cycle
SimtCore::kernelFirstLaunch(int kernel_id) const
{
    auto it = kernels_.find(kernel_id);
    return it == kernels_.end() ? kCycleNever : it->second.firstLaunch;
}

std::vector<std::uint64_t>
SimtCore::ctaIssueCounts(int kernel_id) const
{
    std::vector<std::uint64_t> counts;
    auto it = kernels_.find(kernel_id);
    if (it != kernels_.end())
        counts = it->second.completedCtaIssued;
    for (const HwCta& cta : ctas_) {
        if (cta.valid && cta.kernelId == kernel_id)
            counts.push_back(cta.issued);
    }
    return counts;
}

bool
SimtCore::structuralReady(const Instr& instr, Cycle now) const
{
    switch (instr.op) {
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
        return memIssuedThisCycle_ < config_.ldstUnits &&
            ldst_.canAdmit(instr.op == Opcode::StGlobal);
      case Opcode::LdShared:
      case Opcode::StShared:
        return memIssuedThisCycle_ < config_.ldstUnits &&
            smemBusyUntil_ <= now;
      case Opcode::Sfu:
        return sfuIssuedThisCycle_ < config_.sfuUnits;
      case Opcode::Alu:
      case Opcode::Bar:
      case Opcode::Exit:
        return true;
    }
    return false;
}

bool
SimtCore::warpReady(const Warp& warp, Cycle now) const
{
    const Instr& instr = warp.cursor.instr(warp.kernel->program);
    return warp.sb.canIssue(instr, now) && structuralReady(instr, now);
}

IssueRefusal
SimtCore::warpRefusal(const Warp& warp, Cycle now) const
{
    const Instr& instr = warp.cursor.instr(warp.kernel->program);
    if (!warp.sb.canIssue(instr, now)) {
        // A load-pending operand dominates: even if a fixed-latency
        // result is also in flight, the warp resumes only when the
        // memory system answers.
        return warp.sb.blockedOnRelease(instr) ? IssueRefusal::WaitLoad
                                               : IssueRefusal::WaitExec;
    }
    switch (instr.op) {
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
        if (memIssuedThisCycle_ >= config_.ldstUnits)
            return IssueRefusal::MemPort;
        if (ldst_.admitRefusal(instr.op == Opcode::StGlobal) !=
            LdstRefusal::None) {
            return IssueRefusal::MemUnit;
        }
        return IssueRefusal::None;
      case Opcode::LdShared:
      case Opcode::StShared:
        if (memIssuedThisCycle_ >= config_.ldstUnits)
            return IssueRefusal::MemPort;
        if (smemBusyUntil_ > now)
            return IssueRefusal::SmemBusy;
        return IssueRefusal::None;
      case Opcode::Sfu:
        return sfuIssuedThisCycle_ < config_.sfuUnits
            ? IssueRefusal::None
            : IssueRefusal::SfuPort;
      case Opcode::Alu:
      case Opcode::Bar:
      case Opcode::Exit:
        return IssueRefusal::None;
    }
    return IssueRefusal::None;
}

std::pair<int, SlotCat>
SimtCore::classifyStalledSlot(std::size_t slot, Cycle now) const
{
    // Classify one exclusive category for a slot that issued nothing.
    // Priority when warps on the slot are blocked for different reasons:
    // a structurally refused memory access (the warp *would* issue if
    // the memory pipe had room) outranks a scoreboard wait on a load,
    // which outranks execution-pipeline waits — the categories closest
    // to an actionable resource bottleneck win the slot.
    bool any_live = false;
    int barrier_kernel = kInvalidId;
    int sb_kernel = kInvalidId;
    int pipe_kernel = kInvalidId;
    for (std::size_t w = slot; w < warps_.size();
         w += schedulers_.size()) {
        const Warp& warp = warps_[w];
        if (!warp.live())
            continue;
        any_live = true;
        if (warp.atBarrier) {
            if (barrier_kernel == kInvalidId)
                barrier_kernel = warp.kernelId;
            continue;
        }
        // SoA fast path: the issue scan caches every scoreboard-blocked
        // warp's wake time, so blocked warps classify from one array
        // read — kCycleNever marks an outstanding load (`scoreboard`),
        // a finite future cycle a fixed-latency result (`pipeline`).
        const Cycle wake = warpWake_[w];
        if (wake > now) {
            if (wake == kCycleNever) {
                if (sb_kernel == kInvalidId)
                    sb_kernel = warp.kernelId;
            } else if (pipe_kernel == kInvalidId) {
                pipe_kernel = warp.kernelId;
            }
            continue;
        }
        switch (warpRefusal(warp, now)) {
          case IssueRefusal::MemPort:
          case IssueRefusal::MemUnit:
          case IssueRefusal::SmemBusy:
            // Highest-priority category: no later warp can change the
            // slot's classification, and first-seen wins the kernel
            // attribution either way.
            return {warp.kernelId, SlotCat::MemStructural};
          case IssueRefusal::WaitLoad:
            if (sb_kernel == kInvalidId)
                sb_kernel = warp.kernelId;
            break;
          case IssueRefusal::WaitExec:
          case IssueRefusal::SfuPort:
            if (pipe_kernel == kInvalidId)
                pipe_kernel = warp.kernelId;
            break;
          case IssueRefusal::None:
            // Unreachable for a stalled slot: a refusal-free warp would
            // have been in the ready set and the slot would have issued.
            if (pipe_kernel == kInvalidId)
                pipe_kernel = warp.kernelId;
            break;
        }
    }
    if (!any_live)
        return {kInvalidId, SlotCat::Empty};
    if (sb_kernel != kInvalidId)
        return {sb_kernel, SlotCat::Scoreboard};
    if (pipe_kernel != kInvalidId)
        return {pipe_kernel, SlotCat::Pipeline};
    return {barrier_kernel, SlotCat::Barrier};
}

void
SimtCore::issueFrom(int warp_id, Cycle now)
{
    Warp& warp = warps_[static_cast<std::size_t>(warp_id)];
    const WarpProgram& prog = warp.kernel->program;
    const Instr& instr = warp.cursor.instr(prog);

    switch (instr.op) {
      case Opcode::Alu:
        warp.sb.setPending(instr.dst, now + config_.aluLatency);
        ++issuedAlu_;
        break;
      case Opcode::Sfu:
        warp.sb.setPending(instr.dst, now + config_.sfuLatency);
        ++sfuIssuedThisCycle_;
        ++issuedSfu_;
        break;
      case Opcode::LdGlobal: {
        auto lines = coalesce(prog.pattern(instr.patternId),
                              warp.kernel->geom(), warp.ctaId,
                              warp.warpInCta, warp.cursor.iterKey(),
                              instr.activeLanes, config_.l1d.lineBytes);
        warp.sb.setPendingUntilRelease(instr.dst);
        ldst_.pushBatch(now, warp_id, instr.dst, false, std::move(lines),
                        warp.kernelId,
                        makeCtaKey(warp.kernelId, warp.ctaId));
        ++memIssuedThisCycle_;
        ++issuedMem_;
        break;
      }
      case Opcode::StGlobal: {
        auto lines = coalesce(prog.pattern(instr.patternId),
                              warp.kernel->geom(), warp.ctaId,
                              warp.warpInCta, warp.cursor.iterKey(),
                              instr.activeLanes, config_.l1d.lineBytes);
        ldst_.pushBatch(now, warp_id, kNoReg, true, std::move(lines),
                        warp.kernelId,
                        makeCtaKey(warp.kernelId, warp.ctaId));
        ++memIssuedThisCycle_;
        ++issuedMem_;
        break;
      }
      case Opcode::LdShared: {
        const std::uint32_t factor = sharedConflictFactor(
            prog.pattern(instr.patternId), instr.activeLanes);
        warp.sb.setPending(instr.dst,
                           now + config_.smemLatency + factor - 1);
        smemBusyUntil_ = now + factor;
        ++memIssuedThisCycle_;
        ++issuedMem_;
        break;
      }
      case Opcode::StShared: {
        const std::uint32_t factor = sharedConflictFactor(
            prog.pattern(instr.patternId), instr.activeLanes);
        smemBusyUntil_ = now + factor;
        ++memIssuedThisCycle_;
        ++issuedMem_;
        break;
      }
      case Opcode::Bar:
        warp.atBarrier = true;
        ++issuedBar_;
        break;
      case Opcode::Exit:
        break;
    }

    ++warp.instrsIssued;
    ++issuedTotal_;
    HwCta& cta = ctas_[static_cast<std::size_t>(warp.hwCta)];
    ++cta.issued;
    ++kernels_[warp.kernelId].issued;

    const bool was_barrier = instr.op == Opcode::Bar;
    warp.cursor.advance(prog, warp.ctaId);
    if (warp.cursor.done(prog))
        finishWarp(warp_id, now);
    else if (was_barrier)
        checkBarrier(warp.hwCta);
}

void
SimtCore::finishWarp(int warp_id, Cycle now)
{
    Warp& warp = warps_[static_cast<std::size_t>(warp_id)];
    warp.done = true;
    HwCta& cta = ctas_[static_cast<std::size_t>(warp.hwCta)];
    ++cta.warpsDone;
    if (cta.warpsDone == cta.warpsTotal)
        completeCta(warp.hwCta, now);
    else
        checkBarrier(warp.hwCta); // a finished warp may unblock a barrier
}

void
SimtCore::completeCta(int hw_cta, Cycle now)
{
    HwCta& cta = ctas_[static_cast<std::size_t>(hw_cta)];
    if (!cta.valid)
        panic(name_, ": completing invalid CTA slot");

    for (Warp& warp : warps_) {
        if (warp.valid && warp.hwCta == hw_cta) {
            warp.clear();
            ++freeWarpSlots_;
        }
    }
    // If this was the block's last resident CTA, let the warp schedulers
    // drop their per-block state (keeps BAWS's rotation map bounded by
    // the number of *live* blocks instead of every block ever seen).
    bool block_live = false;
    for (const HwCta& peer : ctas_) {
        if (peer.valid && &peer != &cta && peer.blockSeq == cta.blockSeq) {
            block_live = true;
            break;
        }
    }
    if (!block_live) {
        for (auto& sched : schedulers_)
            sched->notifyBlockRetired(cta.blockSeq);
    }
    resources_.release(cta.footprint);
    kernels_[cta.kernelId].completedCtaIssued.push_back(cta.issued);
    completed_.push_back(
        {id_, cta.kernelId, cta.ctaId, cta.issued, now, cta.kernel});
    ++ctasCompleted_;

    if (tracer_ != nullptr) {
        TraceEvent event;
        event.cycle = now;
        event.duration = now - cta.launchCycle;
        event.kind = TraceEventKind::CtaComplete;
        event.kernelId = cta.kernelId;
        event.arg0 = cta.ctaId;
        event.arg1 = static_cast<std::int64_t>(cta.issued);
        tracer_->record(track_, event);
    }
    cta.valid = false;
    BSCHED_INVARIANT(ctasLaunched_ == ctasCompleted_ + residentCtas(),
                     name_, ": CTA launch/retire balance broken");
}

void
SimtCore::setTracer(Tracer* tracer)
{
    tracer_ = tracer;
    track_ = tracer != nullptr ? tracer->coreTrack(id_) : 0;
    ldst_.setTracer(tracer, track_);
}

void
SimtCore::checkBarrier(int hw_cta)
{
    std::uint32_t live = 0;
    std::uint32_t arrived = 0;
    for (const Warp& warp : warps_) {
        if (!warp.valid || warp.hwCta != hw_cta || warp.done)
            continue;
        ++live;
        if (warp.atBarrier)
            ++arrived;
    }
    if (live > 0 && arrived == live) {
        for (Warp& warp : warps_) {
            if (warp.valid && warp.hwCta == hw_cta)
                warp.atBarrier = false;
        }
    }
}

bool
SimtCore::applyCompletions(Cycle now)
{
    bool applied = false;
    for (const LoadCompletion& done : ldst_.drainCompletions()) {
        Warp& warp = warps_[static_cast<std::size_t>(done.warpId)];
        // The warp slot may have been recycled only if its CTA finished,
        // which is impossible with a load in flight.
        warp.sb.release(done.reg, now);
        warpWake_[static_cast<std::size_t>(done.warpId)] = 0;
        applied = true;
    }
    return applied;
}

bool
SimtCore::tick(Cycle now)
{
    bool did_work = applyCompletions(now);
    did_work |= ldst_.tick(now);
    did_work |= applyCompletions(now);

    memIssuedThisCycle_ = 0;
    sfuIssuedThisCycle_ = 0;

    if (residentCtas() > 0)
        ++activeCycles_;
    else
        return did_work;

    bool issued_any = false;
    std::uint32_t issuedThisCycle = 0;
    const bool profiling = profiler_ != nullptr;
    std::vector<int>& ready = readyScratch_;
    for (std::size_t s = 0; s < schedulers_.size(); ++s) {
        ready.clear();
        // Stall classification is fused into the issue scan: the scan
        // touches exactly the warps classifyStalledSlot would re-read,
        // so when the profiler is attached the first-seen candidate per
        // category is collected here instead of in a second pass.
        int barrier_kernel = kInvalidId;
        int mem_kernel = kInvalidId;
        int sb_kernel = kInvalidId;
        int pipe_kernel = kInvalidId;
        for (std::size_t w = s; w < warps_.size();
             w += schedulers_.size()) {
            // SoA fast path: a slot whose cached scoreboard wake time
            // is in the future cannot issue — skip without touching
            // the warp record (warpKernel_ mirrors the occupying
            // warp's kernel; a cached wake implies the warp is live).
            const Cycle cached_wake = warpWake_[w];
            if (cached_wake > now) {
                BSCHED_CHECK(
                    warps_[w].live() && !warps_[w].atBarrier &&
                        !warps_[w].sb.canIssue(
                            warps_[w].cursor.instr(warps_[w].kernel->program),
                            now),
                    name_, ": stale warp wake cache for warp ", w,
                    " (cached ", cached_wake, " at cycle ", now, ")");
                if (profiling) {
                    if (cached_wake == kCycleNever) {
                        if (sb_kernel == kInvalidId)
                            sb_kernel = warpKernel_[w];
                    } else if (pipe_kernel == kInvalidId) {
                        pipe_kernel = warpKernel_[w];
                    }
                }
                continue;
            }
            const Warp& warp = warps_[w];
            if (!warp.live())
                continue;
            if (warp.atBarrier) {
                if (barrier_kernel == kInvalidId)
                    barrier_kernel = warp.kernelId;
                continue;
            }
            const Instr& instr = warp.cursor.instr(warp.kernel->program);
            if (!warp.sb.canIssue(instr, now)) {
                // Cache the wake time; cleared on release/issue/launch.
                const Cycle wake = warp.sb.nextReadyCycle(instr);
                warpWake_[w] = wake;
                if (profiling) {
                    if (wake == kCycleNever) {
                        if (sb_kernel == kInvalidId)
                            sb_kernel = warp.kernelId;
                    } else if (pipe_kernel == kInvalidId) {
                        pipe_kernel = warp.kernelId;
                    }
                }
                continue;
            }
            if (structuralReady(instr, now)) {
                ready.push_back(static_cast<int>(w));
            } else if (profiling) {
                // The refusal kind follows from the opcode alone: only
                // memory ops (LD/ST port, LD/ST queue, MSHRs, shared
                // memory) and the SFU port can structurally refuse a
                // scoreboard-clear warp.
                if (instr.op == Opcode::Sfu) {
                    if (pipe_kernel == kInvalidId)
                        pipe_kernel = warp.kernelId;
                } else if (mem_kernel == kInvalidId) {
                    mem_kernel = warp.kernelId;
                }
            }
        }
        if (ready.empty()) {
            if (profiling) {
                // Same exclusive priority as classifyStalledSlot:
                // mem_structural > scoreboard > pipeline > barrier;
                // a slot with no live warp at all is `empty`.
                int kernel = kInvalidId;
                SlotCat cat = SlotCat::Empty;
                if (mem_kernel != kInvalidId) {
                    kernel = mem_kernel;
                    cat = SlotCat::MemStructural;
                } else if (sb_kernel != kInvalidId) {
                    kernel = sb_kernel;
                    cat = SlotCat::Scoreboard;
                } else if (pipe_kernel != kInvalidId) {
                    kernel = pipe_kernel;
                    cat = SlotCat::Pipeline;
                } else if (barrier_kernel != kInvalidId) {
                    kernel = barrier_kernel;
                    cat = SlotCat::Barrier;
                }
                profiler_->recordSlot(id_, kernel, cat);
            }
            continue;
        }
        const int chosen = schedulers_[s]->pick(ready, warps_);
        if (chosen < 0)
            panic(name_, ": scheduler returned no warp from ready set");
        warpWake_[static_cast<std::size_t>(chosen)] = 0;
        // Notify before issuing: issueFrom can retire the warp's CTA and
        // recycle the slot, after which its metadata is gone.
        schedulers_[s]->notifyIssued(chosen, warps_);
        if (profiler_ != nullptr) {
            // Attribute before issueFrom for the same recycling reason.
            profiler_->recordSlot(
                id_, warps_[static_cast<std::size_t>(chosen)].kernelId,
                SlotCat::Issued);
        }
        issueFrom(chosen, now);
        issued_any = true;
        ++issuedThisCycle;
    }
    // Issue-bandwidth conservation: one instruction per scheduler slot
    // per cycle, and the structural units never exceed their budgets.
    BSCHED_INVARIANT(issuedThisCycle <= schedulers_.size(), name_,
                     ": issued ", issuedThisCycle, " instructions with ",
                     schedulers_.size(), " scheduler slots");
    BSCHED_INVARIANT(memIssuedThisCycle_ <= config_.ldstUnits, name_,
                     ": memory issues exceed LD/ST ports");
    BSCHED_INVARIANT(sfuIssuedThisCycle_ <= config_.sfuUnits, name_,
                     ": SFU issues exceed SFU ports");
    if (issued_any) {
        ++issueCycles_;
    } else if (!ldst_.drained()) {
        ++stallMemCycles_;
    } else {
        ++stallIdleCycles_;
    }
    if (profiler_ != nullptr && !issued_any)
        profiler_->recordNoIssueCycle(id_);
    return did_work || issued_any;
}

Cycle
SimtCore::nextWorkCycle(Cycle now) const
{
    Cycle next = ldst_.nextEventCycle(now);
    if (residentCtas() == 0)
        return next;
    for (std::size_t w = 0; w < warps_.size(); ++w) {
        const Warp& warp = warps_[w];
        if (!warp.live() || warp.atBarrier)
            continue;
        const Instr& instr = warp.cursor.instr(warp.kernel->program);
        Cycle wake = warp.sb.nextReadyCycle(instr);
        switch (instr.op) {
          case Opcode::LdShared:
          case Opcode::StShared:
            wake = std::max(wake, smemBusyUntil_);
            break;
          case Opcode::LdGlobal:
          case Opcode::StGlobal:
            if (wake < now) {
                // Scoreboard-clear at the quiet cycle (`now` - 1) yet
                // not issued, so it was structurally refused then.
                // Queue/outgoing refusals pin the LD/ST unit's
                // nextEventCycle at `now` already; an MSHR-full refusal
                // clears only on a fill, an external event the GPU's
                // memory-side estimates bound. A warp with wake == now
                // carries no such evidence — its scoreboard clears only
                // this cycle and it may issue right here, so it must
                // pin the estimate (the max() below yields `now`).
                continue;
            }
            break;
          default:
            break;
        }
        if (wake == kCycleNever)
            continue; // wakes on a load fill (event, not time)
        next = std::min(next, std::max(wake, now));
    }
    return next;
}

void
SimtCore::accountQuietSpan(Cycle now, std::uint64_t n, MemProfiler* memprof)
{
    if (n == 0)
        return;
    // The LD/ST unit samples its MSHR occupancy every cycle, resident
    // CTAs or not; occupancy is constant across a quiet span.
    if (memprof != nullptr) {
        memprof->recordMshrOccupancySpan(MemLevel::L1,
                                         ldst_.mshr().entriesInUse(), n);
    }
    if (residentCtas() == 0)
        return;
    activeCycles_ += n;
    if (!ldst_.drained())
        stallMemCycles_ += n;
    else
        stallIdleCycles_ += n;
    if (profiler_ != nullptr) {
        for (std::size_t s = 0; s < schedulers_.size(); ++s) {
            const auto [kernel, cat] = classifyStalledSlot(s, now);
            profiler_->recordSlotSpan(id_, kernel, cat, n);
        }
        profiler_->recordNoIssueSpan(id_, n);
    }
}

void
SimtCore::addStats(StatSet& stats) const
{
    ldst_.addStats(stats);
    stats.add(name_ + ".issued", static_cast<double>(issuedTotal_));
    stats.add(name_ + ".issued_alu", static_cast<double>(issuedAlu_));
    stats.add(name_ + ".issued_sfu", static_cast<double>(issuedSfu_));
    stats.add(name_ + ".issued_mem", static_cast<double>(issuedMem_));
    stats.add(name_ + ".issued_bar", static_cast<double>(issuedBar_));
    stats.add(name_ + ".active_cycles", static_cast<double>(activeCycles_));
    stats.add(name_ + ".issue_cycles", static_cast<double>(issueCycles_));
    stats.add(name_ + ".stall_mem", static_cast<double>(stallMemCycles_));
    stats.add(name_ + ".stall_idle", static_cast<double>(stallIdleCycles_));
    stats.add(name_ + ".ctas_launched", static_cast<double>(ctasLaunched_));
    stats.add(name_ + ".ctas_done", static_cast<double>(ctasCompleted_));
}

} // namespace bsched
