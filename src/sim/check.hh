/**
 * @file
 * Simulator contract layer. Encodes the model's conservation laws at
 * module boundaries as checkable contracts that are *always on* in
 * Debug builds and in builds configured with -DBSCHED_VALIDATE=ON, and
 * compiled out entirely (the condition is never evaluated) in plain
 * Release/RelWithDebInfo builds.
 *
 * Taxonomy — pick the macro by what the condition means, not by cost:
 *
 *  - BSCHED_CHECK(cond, ...):     precondition at a module boundary —
 *    the caller handed us a state that must already hold (e.g. "this
 *    core has a free CTA slot", "this MSHR line is outstanding").
 *  - BSCHED_INVARIANT(cond, ...): conservation law internal to a module
 *    — a quantity that the module's own bookkeeping must keep balanced
 *    (e.g. "allocations == completions + entries in use", "warps issued
 *    this cycle <= scheduler slots").
 *  - BSCHED_DCHECK(cond, ...):    hot-loop sanity check that is cheap
 *    enough for the per-cycle path but adds no information at a module
 *    boundary; same gating, separate name so readers can tell contract
 *    surface from belt-and-braces.
 *
 * A failed contract calls panic() (abort) by default. Tests flip the
 * process into throw mode (ScopedContractThrows) so violation-injection
 * tests can assert that a specific contract fires without spawning a
 * death-test subprocess.
 *
 * Trailing arguments after the condition are streamed into the failure
 * message (same formatting as panic()); they are not evaluated when the
 * contract holds or when contracts are compiled out.
 */

#ifndef BSCHED_SIM_CHECK_HH
#define BSCHED_SIM_CHECK_HH

#include <stdexcept>
#include <string>

#include "sim/log.hh"

/** True when contract macros are compiled in. */
#if !defined(NDEBUG) || defined(BSCHED_VALIDATE)
#define BSCHED_CHECKS_ENABLED 1
#else
#define BSCHED_CHECKS_ENABLED 0
#endif

namespace bsched {

/** Compile-time mirror of BSCHED_CHECKS_ENABLED for `if constexpr`. */
inline constexpr bool kChecksEnabled = BSCHED_CHECKS_ENABLED != 0;

/** Runtime query (tests, tools): are contracts compiled into this build? */
constexpr bool
checksEnabled()
{
    return kChecksEnabled;
}

/** Thrown instead of abort() when contract throw mode is active. */
class ContractViolation : public std::logic_error
{
  public:
    ContractViolation(std::string kind, std::string expr, std::string what)
        : std::logic_error(std::move(what)),
          kind_(std::move(kind)),
          expr_(std::move(expr))
    {}

    /** "check", "invariant" or "dcheck". */
    const std::string& kind() const { return kind_; }
    /** The stringified condition that failed. */
    const std::string& expression() const { return expr_; }

  private:
    std::string kind_;
    std::string expr_;
};

/**
 * Enable/disable contract throw mode process-wide; returns the previous
 * setting. Test-only: production failures must abort so a broken
 * conservation law can never be swallowed by an exception handler.
 */
bool setContractThrows(bool enabled);

/** True if contract failures currently throw instead of aborting. */
bool contractThrows();

/** RAII throw-mode scope for violation-injection tests. */
class ScopedContractThrows
{
  public:
    ScopedContractThrows() : previous_(setContractThrows(true)) {}
    ~ScopedContractThrows() { setContractThrows(previous_); }

    ScopedContractThrows(const ScopedContractThrows&) = delete;
    ScopedContractThrows& operator=(const ScopedContractThrows&) = delete;

  private:
    bool previous_;
};

namespace detail {

/**
 * Report a failed contract: throws ContractViolation in throw mode,
 * panic() (abort) otherwise.
 */
[[noreturn]] void contractFail(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& message);

/** Format the optional trailing message arguments (empty for none). */
template <typename... Args>
std::string
contractMsg(Args&&... args)
{
    if constexpr (sizeof...(Args) == 0)
        return std::string();
    else
        return concat(std::forward<Args>(args)...);
}

} // namespace detail
} // namespace bsched

#if BSCHED_CHECKS_ENABLED

#define BSCHED_CONTRACT_IMPL(kind, cond, ...)                                \
    ((cond) ? static_cast<void>(0)                                           \
            : ::bsched::detail::contractFail(                                \
                  kind, #cond, __FILE__, __LINE__,                           \
                  ::bsched::detail::contractMsg(__VA_ARGS__)))

#define BSCHED_CHECK(cond, ...)                                              \
    BSCHED_CONTRACT_IMPL("check", cond, __VA_ARGS__)
#define BSCHED_INVARIANT(cond, ...)                                          \
    BSCHED_CONTRACT_IMPL("invariant", cond, __VA_ARGS__)
#define BSCHED_DCHECK(cond, ...)                                             \
    BSCHED_CONTRACT_IMPL("dcheck", cond, __VA_ARGS__)

#else // !BSCHED_CHECKS_ENABLED

// Compiled out: the condition and message arguments are never evaluated
// (sizeof keeps the expression parsed, so contract-only variables stay
// "used" and a contract that stops compiling is caught in every build).
#define BSCHED_CONTRACT_DISABLED(cond)                                       \
    static_cast<void>(sizeof(static_cast<bool>(cond) ? 0 : 0))

#define BSCHED_CHECK(cond, ...) BSCHED_CONTRACT_DISABLED(cond)
#define BSCHED_INVARIANT(cond, ...) BSCHED_CONTRACT_DISABLED(cond)
#define BSCHED_DCHECK(cond, ...) BSCHED_CONTRACT_DISABLED(cond)

#endif // BSCHED_CHECKS_ENABLED

#endif // BSCHED_SIM_CHECK_HH
