/**
 * @file
 * Unit tests for the interconnect: latency, bandwidth, hashing.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/interconnect.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.icntLatency = 5;
    c.icntFlitsPerCycle = 2;
    return c;
}

TEST(Interconnect, RequestArrivesAfterLatency)
{
    Interconnect icnt(cfg());
    MemRequest req{0x1000, false, 2};
    const std::uint32_t p = icnt.partitionFor(req.lineAddr);
    icnt.sendRequest(10, req);
    EXPECT_FALSE(icnt.requestReady(p, 14));
    EXPECT_TRUE(icnt.requestReady(p, 15));
    const MemRequest out = icnt.popRequest(p, 15);
    EXPECT_EQ(out.lineAddr, 0x1000u);
    EXPECT_EQ(out.coreId, 2);
}

TEST(Interconnect, ResponseArrivesAfterLatency)
{
    Interconnect icnt(cfg());
    icnt.sendResponse(0, 4, {0x2000, 4});
    EXPECT_FALSE(icnt.responseReady(4, 4));
    EXPECT_TRUE(icnt.responseReady(4, 5));
    EXPECT_EQ(icnt.popResponse(4, 5).lineAddr, 0x2000u);
}

TEST(Interconnect, EjectionBandwidthIsPerCycle)
{
    Interconnect icnt(cfg());
    EXPECT_TRUE(icnt.ejectBudget(0, 0));
    EXPECT_TRUE(icnt.ejectBudget(0, 0));
    EXPECT_FALSE(icnt.ejectBudget(0, 0));
    EXPECT_TRUE(icnt.ejectBudget(0, 1));
    // Independent per partition.
    EXPECT_TRUE(icnt.ejectBudget(1, 0));
}

TEST(Interconnect, ResponseEjectBandwidthPerCore)
{
    Interconnect icnt(cfg());
    EXPECT_TRUE(icnt.responseEjectBudget(3, 7));
    EXPECT_TRUE(icnt.responseEjectBudget(3, 7));
    EXPECT_FALSE(icnt.responseEjectBudget(3, 7));
}

TEST(Interconnect, PartitionHashCoversAllPartitionsEvenly)
{
    const GpuConfig c = cfg();
    Interconnect icnt(c);
    std::vector<int> hits(c.numMemPartitions, 0);
    // A power-of-two stride that would camp under modulo interleaving.
    for (std::uint64_t i = 0; i < 6000; ++i)
        ++hits[icnt.partitionFor(i * 1024)];
    for (std::uint32_t p = 0; p < c.numMemPartitions; ++p) {
        EXPECT_GT(hits[p], 700) << "partition " << p << " starved";
        EXPECT_LT(hits[p], 1300) << "partition " << p << " camped";
    }
}

TEST(Interconnect, PartitionMappingIsStable)
{
    Interconnect icnt(cfg());
    for (Addr a = 0; a < 100 * 128; a += 128)
        EXPECT_EQ(icnt.partitionFor(a), icnt.partitionFor(a));
    // Sub-line offsets map with their line.
    EXPECT_EQ(icnt.partitionFor(0x1000), icnt.partitionFor(0x1004));
}

TEST(Interconnect, DrainedTracksInFlight)
{
    Interconnect icnt(cfg());
    EXPECT_TRUE(icnt.drained());
    icnt.sendRequest(0, {0x100, false, 0});
    EXPECT_FALSE(icnt.drained());
    const std::uint32_t p = icnt.partitionFor(0x100);
    icnt.popRequest(p, 100);
    EXPECT_TRUE(icnt.drained());
}

TEST(Interconnect, FifoOrderPerChannel)
{
    Interconnect icnt(cfg());
    // Find two lines on the same partition.
    Addr a = 0;
    Addr b = 128;
    while (icnt.partitionFor(b) != icnt.partitionFor(a))
        b += 128;
    icnt.sendRequest(0, {a, false, 0});
    icnt.sendRequest(0, {b, false, 0});
    const std::uint32_t p = icnt.partitionFor(a);
    EXPECT_EQ(icnt.popRequest(p, 100).lineAddr, a);
    EXPECT_EQ(icnt.popRequest(p, 100).lineAddr, b);
}

} // namespace
} // namespace bsched
