/**
 * @file
 * The canonical serving scenarios shared by the serving figures
 * (fig_serving / E18 and fig_serve_trace / E19) and the --serve-trace
 * artifact writer in bench_common. One definition means the committed
 * bsched-serving-v1 and bsched-servetrace-v1 baselines are built from
 * byte-identical traces — a drift in one figure's copy can't silently
 * desynchronize the other's.
 */

#ifndef BSCHED_BENCH_SERVE_TRACES_HH
#define BSCHED_BENCH_SERVE_TRACES_HH

#include <string>
#include <vector>

#include "serve/traffic.hh"

namespace bsched::bench {

/** A named serving scenario. */
struct ServeTraceDef
{
    std::string name;
    TrafficSpec spec;
};

/** The three serving scenarios. Gaps are tuned against the suite's
 *  isolated runtimes (about 8k cycles for lud up to 624k for bp) so
 *  queues actually form without the trace running away. */
inline std::vector<ServeTraceDef>
makeServeTraces()
{
    std::vector<ServeTraceDef> traces;

    // Steady mixed load: two open-loop tenants, no deadlines.
    {
        TrafficSpec spec;
        spec.seed = 11;
        TenantSpec t0;
        t0.process = ArrivalProcess::Poisson;
        t0.mix = {"kmeans", "sc", "gemm"};
        t0.requests = 8;
        t0.meanGapCycles = 200000;
        TenantSpec t1;
        t1.process = ArrivalProcess::Poisson;
        t1.mix = {"srad", "hs", "lavamd"};
        t1.requests = 8;
        t1.meanGapCycles = 200000;
        spec.tenants = {t0, t1};
        traces.push_back({"poisson_mix", spec});
    }

    // The preemption showcase: a latency tenant firing bursts of short
    // deadline-bound kernels into a batch tenant's long Type-1/3
    // kernels. FCFS strands the bursts behind a long resident pair;
    // reordering admits them first when a slot frees; drain preemption
    // makes room immediately.
    {
        TrafficSpec spec;
        spec.seed = 23;
        TenantSpec latency;
        latency.process = ArrivalProcess::Bursty;
        latency.mix = {"lud", "nw", "lavamd"};
        latency.requests = 12;
        latency.burstLen = 4;
        latency.meanGapCycles = 600000;
        latency.intraBurstGapCycles = 1000;
        latency.deadlineSlack = 150000;
        TenantSpec batch;
        batch.process = ArrivalProcess::Poisson;
        batch.mix = {"bp", "bfs"};
        batch.requests = 4;
        batch.meanGapCycles = 700000;
        spec.tenants = {latency, batch};
        traces.push_back({"bursty_mix", spec});
    }

    // Closed loops: a single-outstanding long-kernel tenant against a
    // depth-2 short-kernel tenant.
    {
        TrafficSpec spec;
        spec.seed = 37;
        TenantSpec t0;
        t0.process = ArrivalProcess::ClosedLoop;
        t0.mix = {"mummer"};
        t0.requests = 4;
        t0.closedDepth = 1;
        t0.meanGapCycles = 20000;
        TenantSpec t1;
        t1.process = ArrivalProcess::ClosedLoop;
        t1.mix = {"lud", "nw", "pf"};
        t1.requests = 10;
        t1.closedDepth = 2;
        t1.meanGapCycles = 10000;
        spec.tenants = {t0, t1};
        traces.push_back({"closed_pair", spec});
    }
    return traces;
}

/**
 * The canonical scenario behind --serve-trace: the bursty deadline
 * trace (the only one that exercises preemption, so its audit log and
 * drain counters are the interesting ones). Every bench binary writes
 * the artifact from this same trace under the same fixed policy and
 * config, so --serve-trace output is byte-identical no matter which
 * binary produced it.
 */
inline ServeTraceDef
canonicalServeTrace()
{
    return makeServeTraces()[1];
}

} // namespace bsched::bench

#endif // BSCHED_BENCH_SERVE_TRACES_HH
