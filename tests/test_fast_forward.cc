/**
 * @file
 * Idle fast-forward equivalence suite: eliding provably-quiet cycles
 * must be invisible in every serialized artifact. Each test runs the
 * same simulation with fast-forward on and off and compares the
 * concatenated `bsched-run-v1` + `bsched-profile-v1` +
 * `bsched-memprofile-v1` bytes — across all four warp schedulers, the
 * LCS/BCS/DynCTA CTA schedulers, multi-kernel policies and harness job
 * counts. Also holds the regression tests for the launchKernel
 * core-range validation and response-injection fairness fixes that
 * shipped with the fast-forward work.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gpu/multi_kernel.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "obs/mem_profile.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"

namespace bsched {
namespace {

/** Small mixed load/ALU kernel with barriers of memory idleness. */
KernelInfo
ffKernel(const std::string& name, std::uint32_t grid_ctas = 12)
{
    KernelInfo k;
    k.name = name;
    k.grid = {grid_ctas, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    const auto i = b.pattern(in);
    b.loop(4).load(i).alu(3).endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

/**
 * Streaming load/ALU/store kernel (the backprop shape): the store at
 * the loop tail sits behind a fixed-latency ALU chain, so its
 * scoreboard clears at an exact future cycle with no structural
 * refusal in sight — the case a next-event estimate is most tempted
 * to skip. Saturating enough to keep the memory system busy.
 */
KernelInfo
ffStoreKernel(const std::string& name, std::uint32_t grid_ctas = 16)
{
    KernelInfo k;
    k.name = name;
    k.grid = {grid_ctas, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x1000000;
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = 0x1000000 + (1u << 26);
    const auto i = b.pattern(in);
    const auto o = b.pattern(out);
    b.loop(8).load(i).alu(6).store(o).endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

/** Shrunk machine: quick runs, still multi-core and multi-partition. */
GpuConfig
smallConfig(WarpSchedKind warp_sched, CtaSchedKind cta_sched)
{
    GpuConfig config = makeConfig(warp_sched, cta_sched);
    config.numCores = 2;
    config.numMemPartitions = 2;
    return config;
}

/**
 * Run @p kernel with the full profiling stack attached and serialize
 * everything observable: the run artifact (stats + sampled series),
 * the cycle-accounting profile and the memory profile.
 */
std::string
artifactBytes(GpuConfig config, const KernelInfo& kernel, bool fast_forward)
{
    config.fastForward = fast_forward;
    IntervalSampler sampler(64);
    CycleProfiler profiler;
    MemProfiler mem_profiler;
    Observer obs;
    obs.sampler = &sampler;
    obs.profiler = &profiler;
    obs.memProfiler = &mem_profiler;
    const RunResult result = runKernel(config, kernel, obs);

    std::ostringstream os;
    writeRunJson(os, result, kernel.name, &sampler);
    writeProfileJson(os, profiler, kernel.name);
    writeMemProfileJson(os, mem_profiler, kernel.name);
    return os.str();
}

TEST(FastForwardEquivalence, AllWarpSchedulers)
{
    const KernelInfo kernel = ffKernel("ff_warp");
    for (WarpSchedKind ws :
         {WarpSchedKind::LRR, WarpSchedKind::GTO, WarpSchedKind::TwoLevel,
          WarpSchedKind::BAWS}) {
        const GpuConfig config = smallConfig(ws, CtaSchedKind::RoundRobin);
        EXPECT_EQ(artifactBytes(config, kernel, true),
                  artifactBytes(config, kernel, false))
            << "warp scheduler " << toString(ws);
    }
}

TEST(FastForwardEquivalence, StoreHeavyKernels)
{
    // Regression for the store-path off-by-one: a warp whose scoreboard
    // clears exactly at the first elidable cycle (a store behind an ALU
    // chain) must pin the core's next-event estimate. The bug only
    // surfaced under schedulers whose pick depends on readiness timing,
    // so sweep all of them.
    const KernelInfo kernel = ffStoreKernel("ff_store");
    for (WarpSchedKind ws :
         {WarpSchedKind::LRR, WarpSchedKind::GTO, WarpSchedKind::TwoLevel,
          WarpSchedKind::BAWS}) {
        const GpuConfig config = smallConfig(ws, CtaSchedKind::RoundRobin);
        EXPECT_EQ(artifactBytes(config, kernel, true),
                  artifactBytes(config, kernel, false))
            << "warp scheduler " << toString(ws);
    }
}

TEST(FastForwardEquivalence, AllCtaSchedulers)
{
    const KernelInfo kernel = ffKernel("ff_cta");
    for (CtaSchedKind cs :
         {CtaSchedKind::RoundRobin, CtaSchedKind::Lazy, CtaSchedKind::Block,
          CtaSchedKind::LazyBlock, CtaSchedKind::Dynamic}) {
        const GpuConfig config = smallConfig(WarpSchedKind::GTO, cs);
        EXPECT_EQ(artifactBytes(config, kernel, true),
                  artifactBytes(config, kernel, false))
            << "cta scheduler " << toString(cs);
    }
}

TEST(FastForwardEquivalence, LcsFixedWindowDeadlines)
{
    // FixedCycles windows close at exact deadlines that can fall in the
    // middle of an otherwise quiet stretch; the scheduler's next-event
    // estimate must wake the GPU for them.
    const KernelInfo kernel = ffKernel("ff_lcs_window");
    for (CtaSchedKind cs : {CtaSchedKind::Lazy, CtaSchedKind::LazyBlock}) {
        GpuConfig config = smallConfig(WarpSchedKind::GTO, cs);
        config.lcs.windowMode = LcsWindowMode::FixedCycles;
        config.lcs.fixedWindowCycles = 300;
        EXPECT_EQ(artifactBytes(config, kernel, true),
                  artifactBytes(config, kernel, false))
            << "cta scheduler " << toString(cs);
    }
}

/** Serialize everything observable about a multi-kernel run. */
std::string
multiKernelBytes(GpuConfig config, const KernelInfo& a, const KernelInfo& b,
                 MultiKernelPolicy policy, bool fast_forward)
{
    config.fastForward = fast_forward;
    const MultiKernelReport report =
        runMultiKernel(config, {&a, &b}, policy);
    std::ostringstream os;
    os << toString(policy) << " total=" << report.totalCycles << "\n";
    for (Cycle c : report.isolatedCycles)
        os << c << ",";
    for (Cycle c : report.sharedCycles)
        os << c << ",";
    os << "\n";
    writeStatsCsv(os, report.stats);
    return os.str();
}

TEST(FastForwardEquivalence, MultiKernelPolicies)
{
    const KernelInfo a = ffKernel("ff_mck_a", 10);
    const KernelInfo b = ffKernel("ff_mck_b", 6);
    const GpuConfig config = smallConfig(WarpSchedKind::GTO,
                                         CtaSchedKind::Lazy);
    for (MultiKernelPolicy policy :
         {MultiKernelPolicy::Sequential, MultiKernelPolicy::Spatial,
          MultiKernelPolicy::Mixed}) {
        EXPECT_EQ(multiKernelBytes(config, a, b, policy, true),
                  multiKernelBytes(config, a, b, policy, false))
            << "policy " << toString(policy);
    }
}

TEST(FastForwardEquivalence, JobCountsAndBenchReports)
{
    // The bsched-bench-v1 report must be byte-identical across
    // fast-forward on/off and across --jobs counts, in any combination.
    const KernelInfo kernel = ffKernel("ff_jobs");
    GpuConfig config = smallConfig(WarpSchedKind::BAWS, CtaSchedKind::Block);

    std::vector<std::string> reports;
    for (bool ff : {true, false}) {
        config.fastForward = ff;
        for (unsigned jobs : {1u, 4u}) {
            const auto sweep = sweepCtaLimit(config, kernel, 4, jobs);
            BenchReport report("ff_jobs");
            for (std::size_t n = 0; n < sweep.size(); ++n)
                report.addRow("limit" + std::to_string(n + 1), sweep[n]);
            reports.push_back(report.toJson());
        }
    }
    for (std::size_t r = 1; r < reports.size(); ++r)
        EXPECT_EQ(reports[0], reports[r]) << "variant " << r;
}

TEST(LaunchKernel, RejectsEmptyOrInvertedCoreRange)
{
    const KernelInfo kernel = ffKernel("ff_range");
    const GpuConfig config = smallConfig(WarpSchedKind::GTO,
                                         CtaSchedKind::RoundRobin);
    // Empty range: end == begin leaves no core.
    EXPECT_DEATH(
        {
            Gpu gpu(config);
            gpu.launchKernel(kernel, 1, 1);
        },
        "empty core range");
    // Inverted range: end < begin.
    EXPECT_DEATH(
        {
            Gpu gpu(config);
            gpu.launchKernel(kernel, 1, 0);
        },
        "empty core range");
    // A negative end still means "all cores" and must keep working.
    Gpu gpu(config);
    gpu.launchKernel(kernel, 1, -1);
    gpu.run();
    EXPECT_TRUE(gpu.finished());
}

TEST(ResponseInjection, RotationBoundsRequestLatencyUnderContention)
{
    // One core fed by four partitions through capacity-limited response
    // channels: with a fixed partition-0-first injection order, a
    // saturated channel lets low-numbered partitions starve the rest,
    // growing the worst-case latency far beyond the mean. The rotating
    // order bounds every request's wait to roughly its fair share.
    GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                  CtaSchedKind::RoundRobin);
    config.numCores = 1;
    config.numMemPartitions = 4;

    KernelInfo k;
    k.name = "hot_core";
    k.grid = {8, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = 0x4000000;
    const auto i = b.pattern(in);
    b.loop(8).load(i).alu(1).endLoop();
    k.program = b.build();
    k.validate();

    MemProfiler profiler;
    Observer obs;
    obs.memProfiler = &profiler;
    const RunResult result = runKernel(config, k, obs);
    ASSERT_GT(result.cycles, 0u);

    const StageProfile total = profiler.total();
    ASSERT_GT(total.completed(), 0u);
    // Worst case stays within a small multiple of the mean — starvation
    // shows up as a max tens of times the mean.
    EXPECT_LT(static_cast<double>(total.endToEnd.max()),
              8.0 * total.endToEnd.mean())
        << "max " << total.endToEnd.max() << " mean "
        << total.endToEnd.mean();
}

} // namespace
} // namespace bsched
