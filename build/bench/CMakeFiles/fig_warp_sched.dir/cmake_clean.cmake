file(REMOVE_RECURSE
  "CMakeFiles/fig_warp_sched.dir/fig_warp_sched.cc.o"
  "CMakeFiles/fig_warp_sched.dir/fig_warp_sched.cc.o.d"
  "fig_warp_sched"
  "fig_warp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_warp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
