/**
 * @file
 * Machine configuration for the simulated GPU. Defaults model a Fermi
 * GTX480-class part (the configuration class used by the paper's
 * GPGPU-Sim setup): 15 SIMT cores, 48 warps / 1536 threads / 8 CTAs per
 * core, 16KB L1D, 768KB L2 over 6 memory partitions.
 */

#ifndef BSCHED_SIM_CONFIG_HH
#define BSCHED_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace bsched {

/** Warp scheduler selection policies implemented by the SIMT core. */
enum class WarpSchedKind
{
    LRR,      ///< loose round-robin
    GTO,      ///< greedy-then-oldest (paper's baseline, the LCS sensor)
    TwoLevel, ///< two-level RR: small active set, swap on long stalls
    BAWS,     ///< block-aware warp scheduling (paper section on BCS)
};

/** CTA (thread block) scheduler policies. */
enum class CtaSchedKind
{
    RoundRobin, ///< baseline GigaThread-like greedy round-robin
    Lazy,       ///< LCS: lazy CTA scheduling with issue-ratio monitoring
    Block,      ///< BCS: paired dispatch of consecutive CTAs
    LazyBlock,  ///< LCS + BCS combined
    Dynamic,    ///< DYNCTA-style periodic up/down controller (comparator)
};

/** How the LCS monitoring window ends. */
enum class LcsWindowMode
{
    FirstCtaDone, ///< window ends when the first CTA on the core finishes
    FixedCycles,  ///< window ends after a fixed cycle count
};

const char* toString(WarpSchedKind kind);
const char* toString(CtaSchedKind kind);
const char* toString(LcsWindowMode mode);

/**
 * Process-wide default for GpuConfig::fastForward, consulted when a
 * config is constructed. Lets a bench binary's `--no-fast-forward`
 * flag reach every config it builds (including GpuConfig::gtx480())
 * without threading a parameter through each call site. Defaults to
 * true; tests that want a specific mode set config.fastForward
 * directly instead.
 */
void setDefaultFastForward(bool enabled);
bool defaultFastForward();

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t assoc = 4;
    std::uint32_t mshrEntries = 32;   ///< distinct outstanding miss lines
    std::uint32_t mshrMaxMerged = 8;  ///< requests merged per miss line
    std::uint32_t missQueueSize = 8;  ///< buffered misses toward next level
    Cycle hitLatency = 1;
    bool writeAllocate = false;       ///< false: write-through no-allocate

    std::uint32_t numSets() const { return sizeBytes / (lineBytes * assoc); }
};

/** DRAM channel timing (core-clock cycles) and geometry. */
struct DramConfig
{
    std::uint32_t banksPerChannel = 8;
    std::uint32_t rowBytes = 2048;       ///< row-buffer size per bank
    Cycle rowHitLatency = 40;            ///< CAS-only access
    Cycle rowMissLatency = 110;          ///< precharge + activate + CAS
    Cycle dataBusCycles = 4;             ///< bus occupancy per 128B burst
    std::uint32_t queueCapacity = 32;    ///< per-channel request queue
    /**
     * FR-FCFS starvation guard: once the oldest request has waited this
     * long, row-hit reordering is suspended until it is served. Without
     * this, a steady row-hit stream can starve an unlucky request
     * indefinitely.
     */
    Cycle maxStarveCycles = 400;
};

/** How LCS turns the monitored per-CTA issue counts into N_opt. */
enum class LcsEstimator
{
    /** Paper formula: N_opt = ceil(I_total / I_greedy). */
    IssueRatio,
    /**
     * Robust variant: count CTAs whose issued instructions reach
     * thresholdPct% of the greedy CTA's. Coincides with IssueRatio for
     * ideal skew (dominated CTAs near zero) but discounts long tails.
     */
    Threshold,
};

const char* toString(LcsEstimator estimator);

/** Parameters of the LCS (lazy CTA scheduling) mechanism. */
struct LcsConfig
{
    LcsWindowMode windowMode = LcsWindowMode::FirstCtaDone;
    Cycle fixedWindowCycles = 10000; ///< used when windowMode==FixedCycles
    /**
     * Safety margin added to the estimate:
     * N_opt = ceil(I_total / I_greedy) + slack. One spare CTA absorbs
     * estimator false-positives on kernels whose greedy skew does not
     * come with a throttle-friendly cache footprint (ablated in E8).
     */
    std::uint32_t slackCtas = 1;
    LcsEstimator estimator = LcsEstimator::IssueRatio;
    /** Contribution cut-off for the Threshold estimator (percent). */
    std::uint32_t thresholdPct = 40;
};

/** Parameters of the DYNCTA-style dynamic controller (comparator). */
struct DynctaConfig
{
    Cycle samplePeriod = 2048;
    /** Fraction of the period spent memory-stalled to trigger a
     *  decrease (percent). */
    std::uint32_t memHighPct = 60;
    /** Below this memory-stall fraction an idle-starved core may
     *  increase its CTA target (percent). */
    std::uint32_t memLowPct = 20;
    /** Idle-stall fraction that signals too little TLP (percent). */
    std::uint32_t idleHighPct = 10;
};

/** Parameters of the BCS (block CTA scheduling) mechanism. */
struct BcsConfig
{
    std::uint32_t blockSize = 2; ///< consecutive CTAs dispatched together
};

/** Complete machine + policy configuration. */
struct GpuConfig
{
    // --- SIMT core geometry -------------------------------------------
    std::uint32_t numCores = 15;
    std::uint32_t maxCtasPerCore = 8;
    std::uint32_t maxThreadsPerCore = 1536;
    std::uint32_t regFileSizePerCore = 32768; ///< 32-bit registers
    std::uint32_t smemBytesPerCore = 48 * 1024;
    std::uint32_t numSchedulersPerCore = 2;   ///< issue slots per cycle
    /** Active-set size (fetch group) for the two-level scheduler. */
    std::uint32_t twoLevelActiveSize = 8;

    // --- execution latencies ------------------------------------------
    Cycle aluLatency = 4;
    Cycle sfuLatency = 16;
    Cycle smemLatency = 24;      ///< shared-memory load-to-use
    std::uint32_t sfuUnits = 1;  ///< SFU issue ports (ALU assumed matched)
    std::uint32_t ldstUnits = 1; ///< memory instructions issued per cycle
    /**
     * Memory instructions buffered in the LD/ST pipeline. Keep shallow:
     * when the pipeline is blocked, admission is re-arbitrated by the
     * warp scheduler each cycle, which is how GTO's greediness reaches
     * the memory system (the effect LCS's monitor measures).
     */
    std::uint32_t ldstQueueDepth = 1;

    // --- memory system -------------------------------------------------
    CacheConfig l1d{};
    CacheConfig l2{128 * 1024, 128, 8, 64, 16, 16, 8, true};
    std::uint32_t numMemPartitions = 6;
    Cycle icntLatency = 12;           ///< one-way core<->partition
    std::uint32_t icntFlitsPerCycle = 2; ///< per-partition accept rate
    std::uint32_t coreMemQueue = 16;  ///< per-core outgoing request buffer
    DramConfig dram{};

    // --- scheduling policies --------------------------------------------
    WarpSchedKind warpSched = WarpSchedKind::GTO;
    CtaSchedKind ctaSched = CtaSchedKind::RoundRobin;
    /** Static per-core CTA cap for oracle sweeps; 0 = no extra cap. */
    std::uint32_t staticCtaLimit = 0;
    LcsConfig lcs{};
    BcsConfig bcs{};
    DynctaConfig dyncta{};

    // --- simulation control ---------------------------------------------
    Cycle maxCycles = 200'000'000; ///< hard stop (deadlock guard)
    /**
     * Skip quiet cycles by jumping to the machine's next event instead
     * of ticking every component. Purely a simulation-speed knob: all
     * observable behaviour (stats, traces, samples, artifacts) is
     * byte-identical either way, which the fast-forward equivalence
     * tests pin. The member initializer reads the process-wide default
     * so bench binaries can disable it via `--no-fast-forward`.
     */
    bool fastForward = defaultFastForward();

    /** Warps per core implied by the thread budget. */
    std::uint32_t maxWarpsPerCore() const
    {
        return maxThreadsPerCore / kWarpSize;
    }

    /** Abort with fatal() on inconsistent parameters. */
    void validate() const;

    /** The default Fermi-class configuration (Table "config"). */
    static GpuConfig gtx480();

    /** Human-readable multi-line description (bench/tab_config). */
    std::string toString() const;
};

} // namespace bsched

#endif // BSCHED_SIM_CONFIG_HH
