#include "workloads/suite.hh"

#include <functional>
#include <map>

#include "kernel/program_builder.hh"
#include "sim/log.hh"

namespace bsched {

namespace {

/** Disjoint 1 GiB address region per workload slot. */
Addr
region(int slot)
{
    return static_cast<Addr>(slot) << 30;
}

/**
 * kmeans-like: each CTA repeatedly re-walks a private ~10KB centroid
 * tile. One resident CTA fits in the 16KB L1; the occupancy maximum
 * (6 CTAs) thrashes it. Trip jitter models uneven cluster sizes.
 */
KernelInfo
makeKmeans(int slot)
{
    KernelInfo k;
    k.name = "kmeans";
    k.grid = {360, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 20;
    k.typeClass = WorkloadType::Peaked;
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot);
    tile.footprintBytes = 8 * 1024;
    const auto t = b.pattern(tile);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = region(slot) + (1 << 24);
    const auto o = b.pattern(out);
    b.loop(60, 25)
        .load(t).alu(4)
        .load(t).alu(4)
        .endLoop();
    b.loop(4).alu(2).store(o).endLoop();
    k.program = b.build();
    return k;
}

/**
 * bfs-like: divergent pointer chasing over a 2MB frontier plus a small
 * per-CTA visited tile; latency-bound and cache-sensitive.
 */
KernelInfo
makeBfs(int slot)
{
    KernelInfo k;
    k.name = "bfs";
    k.grid = {180, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 12;
    k.typeClass = WorkloadType::Peaked;
    ProgramBuilder b;
    MemPattern rnd;
    rnd.kind = AccessKind::Random;
    rnd.base = region(slot);
    rnd.footprintBytes = 1024 * 1024;
    const auto r = b.pattern(rnd);
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot) + (1 << 24);
    tile.footprintBytes = 6 * 1024;
    const auto t = b.pattern(tile);
    b.loop(30, 40)
        .diverge(8).load(r).alu(2)
        .converge().load(t).alu(4)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * streamcluster-like: a 6KB per-CTA working set revisited while a
 * coalesced stream passes through; two resident CTAs fit, eight thrash.
 */
KernelInfo
makeStreamcluster(int slot)
{
    KernelInfo k;
    k.name = "sc";
    k.grid = {480, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 24;
    k.typeClass = WorkloadType::Peaked;
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot);
    tile.footprintBytes = 4 * 1024;
    const auto t = b.pattern(tile);
    b.loop(60, 20)
        .load(t).alu(4)
        .load(t).alu(4)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * srad-like: 8-rows-per-CTA stencil with a 2-row halo shared with each
 * neighbouring CTA (BCS target) plus per-CTA coefficient reuse.
 */
KernelInfo
makeSrad(int slot)
{
    KernelInfo k;
    k.name = "srad";
    k.grid = {480, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 28; // register-limited to 4 CTAs/core
    k.typeClass = WorkloadType::Increasing;
    ProgramBuilder b;
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = region(slot);
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = b.pattern(halo);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = region(slot) + (1 << 26);
    const auto o = b.pattern(out);
    b.loop(40)
        .load(h).alu(3)
        .load(h).alu(3)
        .endLoop();
    b.loop(4).alu(1).store(o).endLoop();
    k.program = b.build();
    return k;
}

/**
 * backprop-like: coalesced streaming with a moderate dependent ALU
 * chain; DRAM bandwidth saturates after a few CTAs.
 */
KernelInfo
makeBackprop(int slot)
{
    KernelInfo k;
    k.name = "bp";
    k.grid = {240, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 16;
    k.typeClass = WorkloadType::Saturating;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = region(slot);
    const auto i = b.pattern(in);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = region(slot) + (1 << 26);
    const auto o = b.pattern(out);
    b.loop(50)
        .load(i).alu(6).store(o)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * pathfinder-like: small stencil with shared-memory staging and
 * per-iteration barriers (BCS target; saturating).
 */
KernelInfo
makePathfinder(int slot)
{
    KernelInfo k;
    k.name = "pf";
    k.grid = {480, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 24; // register-limited to 5 CTAs/core
    k.smemBytesPerCta = 4 * 1024;
    k.typeClass = WorkloadType::Saturating;
    ProgramBuilder b;
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = region(slot);
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = b.pattern(halo);
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 1;
    const auto s = b.pattern(sh);
    b.loop(36)
        .load(h).alu(2)
        .loadShared(s).alu(2)
        .barrier()
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * lud-like: shared-memory tiles, dependent arithmetic and double
 * barriers per iteration; shared-memory-limited occupancy.
 */
KernelInfo
makeLud(int slot)
{
    (void)slot;
    KernelInfo k;
    k.name = "lud";
    k.grid = {80, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 24;
    k.smemBytesPerCta = 8 * 1024;
    k.typeClass = WorkloadType::Increasing;
    ProgramBuilder b;
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 1;
    const auto s = b.pattern(sh);
    b.loop(44)
        .loadShared(s).alu(4)
        .barrier()
        .loadShared(s).alu(4)
        .barrier()
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * nw-like: tiny 2-warp CTAs over a diagonal wavefront; halo rows shared
 * with the next CTA (BCS target).
 */
KernelInfo
makeNw(int slot)
{
    KernelInfo k;
    k.name = "nw";
    k.grid = {160, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 20;
    k.smemBytesPerCta = 4 * 1024;
    k.typeClass = WorkloadType::Increasing;
    ProgramBuilder b;
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = region(slot);
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = b.pattern(halo);
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 1;
    const auto s = b.pattern(sh);
    b.loop(40)
        .load(h).alu(3)
        .loadShared(s)
        .barrier()
        .alu(3)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * sgemm-like: global tile staged into shared memory behind a barrier,
 * then a long dependent FMA chain; register-limited to 4 CTAs and
 * hungry for every warp it can get (Type-2).
 */
KernelInfo
makeGemm(int slot)
{
    KernelInfo k;
    k.name = "gemm";
    k.grid = {96, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 32;
    k.smemBytesPerCta = 8 * 1024;
    k.typeClass = WorkloadType::Increasing;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = region(slot);
    const auto i = b.pattern(in);
    MemPattern sh;
    sh.kind = AccessKind::SharedBank;
    sh.space = MemSpace::Shared;
    sh.bankStride = 1;
    const auto s = b.pattern(sh);
    b.loop(30)
        .load(i).storeShared(s)
        .barrier()
        .loadShared(s).alu(10)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * lavaMD-like: particle interactions — SFU-heavy dependent compute with
 * a small per-CTA neighbour tile (Type-2).
 */
KernelInfo
makeLavamd(int slot)
{
    KernelInfo k;
    k.name = "lavamd";
    k.grid = {90, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 28;
    k.typeClass = WorkloadType::Peaked;
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot);
    tile.footprintBytes = 2 * 1024;
    const auto t = b.pattern(tile);
    b.loop(64)
        .alu(4).sfu(1)
        .load(t).alu(4)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * hotspot-like: 4-rows-per-CTA stencil with a 1-row halo and a real
 * compute tail; the flagship BCS/BAWS workload.
 */
KernelInfo
makeHotspot(int slot)
{
    KernelInfo k;
    k.name = "hs";
    k.grid = {480, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 32; // register-limited to 4 CTAs/core
    k.typeClass = WorkloadType::Increasing;
    ProgramBuilder b;
    MemPattern halo;
    halo.kind = AccessKind::HaloRows;
    halo.base = region(slot);
    halo.rowBytes = 1024;
    halo.rowsPerCta = 4;
    halo.haloRows = 2;
    const auto h = b.pattern(halo);
    MemPattern out;
    out.kind = AccessKind::Coalesced;
    out.base = region(slot) + (1 << 26);
    const auto o = b.pattern(out);
    b.loop(32)
        .load(h).alu(2)
        .load(h).alu(2)
        .endLoop();
    b.loop(2).alu(1).store(o).endLoop();
    k.program = b.build();
    return k;
}

/**
 * nn-like: pure coalesced streaming with an SFU per element; bandwidth
 * saturates almost immediately.
 */
KernelInfo
makeNn(int slot)
{
    KernelInfo k;
    k.name = "nn";
    k.grid = {150, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 10;
    k.typeClass = WorkloadType::Saturating;
    ProgramBuilder b;
    MemPattern in;
    in.kind = AccessKind::Coalesced;
    in.base = region(slot);
    const auto i = b.pattern(in);
    b.loop(40)
        .load(i).alu(1).sfu(1)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * spmv-like: column-strided value fetches (8 lines per warp access)
 * against a coalesced row-pointer stream; bandwidth-amplified.
 */
KernelInfo
makeSpmv(int slot)
{
    KernelInfo k;
    k.name = "spmv";
    k.grid = {120, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    k.typeClass = WorkloadType::Saturating;
    ProgramBuilder b;
    MemPattern vals;
    vals.kind = AccessKind::Strided;
    vals.base = region(slot);
    vals.strideElems = 8;
    const auto v = b.pattern(vals);
    MemPattern rows;
    rows.kind = AccessKind::Coalesced;
    rows.base = region(slot) + (1 << 27);
    const auto r = b.pattern(rows);
    b.loop(24, 30)
        .load(r).alu(1)
        .load(v).alu(2)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * mummergpu-like: heavily divergent random walks over an 8MB suffix
 * tree; pure latency-bound pointer chasing.
 */
KernelInfo
makeMummer(int slot)
{
    KernelInfo k;
    k.name = "mummer";
    k.grid = {120, 1, 1};
    k.cta = {192, 1, 1};
    k.regsPerThread = 20;
    k.typeClass = WorkloadType::Peaked;
    ProgramBuilder b;
    MemPattern rnd;
    rnd.kind = AccessKind::Random;
    rnd.base = region(slot);
    rnd.footprintBytes = 2 * 1024 * 1024;
    const auto r = b.pattern(rnd);
    b.loop(32, 40)
        .diverge(8).load(r).alu(2)
        .converge().alu(2)
        .endLoop();
    k.program = b.build();
    return k;
}

/**
 * Phase-shifting composite: a compute-bound prologue (SFU-throttled
 * lavamd-style loop over a 1KB per-CTA tile that stays L1-resident
 * even at full occupancy) followed by a cache-thrashing epilogue
 * (8KB per-CTA tile — six resident CTAs thrash the 16KB L1,
 * kmeans-style). One wave of 90 CTAs (6 per core on 15 cores) with
 * zero trip jitter. The SFU in the prologue keeps machine IPC below
 * the issue cap, which matters for detection: warps trickle into the
 * epilogue under GTO, and with headroom the machine IPC tracks the
 * compute/thrash mix continuously instead of sitting pinned at the
 * cap until the last compute warp drains — so the detector's IPC
 * channel and the E17 interference counters move together through
 * the transition (the E20 cross-validation). The halves are exported
 * standalone (makePhasedPrologue / makePhasedEpilogue) so per-regime
 * static optima can be measured against the composite's one-shot
 * CTA-limit choice.
 */
KernelInfo
phasedShell(const char* name)
{
    KernelInfo k;
    k.name = name;
    k.grid = {90, 1, 1};
    k.cta = {256, 1, 1};
    k.regsPerThread = 20;
    k.typeClass = WorkloadType::Peaked;
    return k;
}

void
buildPhasedPrologue(ProgramBuilder& b, int slot)
{
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot);
    tile.footprintBytes = 1024;
    const auto t = b.pattern(tile);
    // 3 SFU per 5 instructions: the single SFU port caps core IPC at
    // 5/3 against an issue width of 2, so the compute regime runs
    // below the issue cap (see the composite's doc comment).
    b.loop(96).sfu(2).load(t).sfu(1).alu(1).endLoop();
}

void
buildPhasedEpilogue(ProgramBuilder& b, int slot)
{
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = region(slot) + (1 << 24);
    tile.footprintBytes = 8 * 1024;
    const auto t = b.pattern(tile);
    b.loop(64).load(t).alu(2).load(t).alu(2).endLoop();
}

KernelInfo
makePhased(int slot)
{
    KernelInfo k = phasedShell("phased");
    ProgramBuilder b;
    buildPhasedPrologue(b, slot);
    buildPhasedEpilogue(b, slot);
    k.program = b.build();
    return k;
}

struct Entry
{
    std::function<KernelInfo(int)> make;
    std::string notes;
};

const std::vector<std::pair<std::string, Entry>>&
registry()
{
    static const std::vector<std::pair<std::string, Entry>> reg = {
        {"kmeans", {makeKmeans,
            "per-CTA 8KB tile reuse; L1-capacity sensitive"}},
        {"bfs", {makeBfs,
            "divergent random frontier + visited tile"}},
        {"sc", {makeStreamcluster,
            "4KB per-CTA working set, 8 resident thrash the L1"}},
        {"srad", {makeSrad,
            "4-row stencil, 2-row halo; BCS target"}},
        {"bp", {makeBackprop,
            "coalesced stream + ALU chain; BW saturating"}},
        {"pf", {makePathfinder,
            "small stencil + smem + barrier; BCS target"}},
        {"lud", {makeLud,
            "smem tiles, double barrier, smem-limited"}},
        {"nw", {makeNw,
            "2-warp CTAs, halo + smem + barrier; BCS target"}},
        {"gemm", {makeGemm,
            "smem-staged FMA chains, reg-limited"}},
        {"lavamd", {makeLavamd,
            "SFU-heavy dependent compute"}},
        {"hs", {makeHotspot,
            "4-row stencil, 2-row halo, reg-limited; BCS flagship"}},
        {"nn", {makeNn,
            "pure streaming + SFU; BW-bound"}},
        {"spmv", {makeSpmv,
            "8-line strided value fetch; BW-amplified"}},
        {"mummer", {makeMummer,
            "divergent 2MB random walk; latency-bound"}},
        {"phased", {makePhased,
            "compute prologue into cache-thrash epilogue; phase target"}},
    };
    return reg;
}

/** Registry slot (address-region id) of workload @p name. */
int
slotOf(const std::string& name)
{
    const auto& reg = registry();
    for (std::size_t i = 0; i < reg.size(); ++i) {
        if (reg[i].first == name)
            return static_cast<int>(i) + 1;
    }
    fatal("unknown workload: ", name);
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto& [name, entry] : registry())
        names.push_back(name);
    return names;
}

KernelInfo
makeWorkload(const std::string& name)
{
    const auto& reg = registry();
    for (std::size_t i = 0; i < reg.size(); ++i) {
        if (reg[i].first == name) {
            KernelInfo k = reg[i].second.make(static_cast<int>(i) + 1);
            k.validate();
            return k;
        }
    }
    fatal("unknown workload: ", name);
}

std::vector<KernelInfo>
makeSuite()
{
    std::vector<KernelInfo> suite;
    for (const auto& name : workloadNames())
        suite.push_back(makeWorkload(name));
    return suite;
}

std::vector<std::string>
localityWorkloadNames()
{
    return {"hs", "srad", "pf", "nw"};
}

KernelInfo
makePhasedPrologue()
{
    KernelInfo k = phasedShell("phased_pro");
    ProgramBuilder b;
    buildPhasedPrologue(b, slotOf("phased"));
    k.program = b.build();
    k.validate();
    return k;
}

KernelInfo
makePhasedEpilogue()
{
    KernelInfo k = phasedShell("phased_epi");
    ProgramBuilder b;
    buildPhasedEpilogue(b, slotOf("phased"));
    k.program = b.build();
    k.validate();
    return k;
}

std::string
workloadNotes(const std::string& name)
{
    for (const auto& [n, entry] : registry()) {
        if (n == name)
            return entry.notes;
    }
    fatal("unknown workload: ", name);
}

} // namespace bsched
