/**
 * @file
 * Property-based tests: invariants that must hold across randomized
 * kernels and the whole policy cross-product, exercised with
 * parameterized gtest sweeps.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "kernel/program_builder.hh"
#include "sim/rng.hh"

namespace bsched {
namespace {

GpuConfig
smallMachine(WarpSchedKind warp, CtaSchedKind cta)
{
    GpuConfig c = makeConfig(warp, cta);
    c.numCores = 3;
    c.numMemPartitions = 2;
    return c;
}

/** A randomized but reproducible kernel drawn from @p seed. */
KernelInfo
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelInfo k;
    k.name = "rand" + std::to_string(seed);
    k.grid = {static_cast<std::uint32_t>(4 + rng.nextBelow(12)), 1, 1};
    k.cta = {static_cast<std::uint32_t>(32 * (1 + rng.nextBelow(4))), 1, 1};
    k.regsPerThread = static_cast<std::uint32_t>(8 + rng.nextBelow(24));
    ProgramBuilder b;
    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.base = 0x40000000;
    tile.footprintBytes = 1024 << rng.nextBelow(4);
    const auto t = b.pattern(tile);
    MemPattern stream;
    stream.kind = AccessKind::Coalesced;
    stream.base = 0x80000000;
    const auto s = b.pattern(stream);
    const bool barrier = rng.nextBelow(2) == 0;
    b.loop(static_cast<std::uint32_t>(2 + rng.nextBelow(8)),
           barrier ? 0 : static_cast<std::uint32_t>(rng.nextBelow(30)));
    b.load(t).alu(static_cast<int>(1 + rng.nextBelow(5)));
    if (rng.nextBelow(2) == 0)
        b.load(s).alu(1);
    if (barrier)
        b.barrier();
    if (rng.nextBelow(2) == 0)
        b.store(s);
    b.endLoop();
    k.program = b.build();
    k.validate();
    return k;
}

// --- Property 1: instruction conservation across all policies ----------

using PolicyParam = std::tuple<WarpSchedKind, CtaSchedKind>;

class PolicyCross : public ::testing::TestWithParam<PolicyParam>
{};

TEST_P(PolicyCross, EveryDynamicInstructionIssuesExactlyOnce)
{
    const auto [warp, cta] = GetParam();
    const GpuConfig config = smallMachine(warp, cta);
    for (std::uint64_t seed : {1ull, 7ull}) {
        const KernelInfo k = randomKernel(seed);
        Gpu gpu(config);
        gpu.launchKernel(k);
        gpu.run();
        EXPECT_EQ(gpu.totalInstrsIssued(), k.totalDynamicInstrs())
            << "seed " << seed;
    }
}

TEST_P(PolicyCross, AllCtasCompleteExactlyOnce)
{
    const auto [warp, cta] = GetParam();
    const GpuConfig config = smallMachine(warp, cta);
    const KernelInfo k = randomKernel(3);
    Gpu gpu(config);
    const int id = gpu.launchKernel(k);
    gpu.run();
    EXPECT_EQ(gpu.kernel(id).ctasDone, k.gridCtas());
    const StatSet stats = gpu.stats();
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".ctas_launched"),
                     static_cast<double>(k.gridCtas()));
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".ctas_done"),
                     static_cast<double>(k.gridCtas()));
}

TEST_P(PolicyCross, DeterministicCycleCount)
{
    const auto [warp, cta] = GetParam();
    const GpuConfig config = smallMachine(warp, cta);
    const KernelInfo k = randomKernel(11);
    Gpu a(config);
    a.launchKernel(k);
    a.run();
    Gpu b(config);
    b.launchKernel(k);
    b.run();
    EXPECT_EQ(a.cycle(), b.cycle());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyCross,
    ::testing::Combine(::testing::Values(WarpSchedKind::LRR,
                                         WarpSchedKind::GTO,
                                         WarpSchedKind::BAWS),
                       ::testing::Values(CtaSchedKind::RoundRobin,
                                         CtaSchedKind::Lazy,
                                         CtaSchedKind::Block,
                                         CtaSchedKind::LazyBlock)),
    [](const ::testing::TestParamInfo<PolicyParam>& info) {
        std::string name =
            std::string(toString(std::get<0>(info.param))) + "_" +
            toString(std::get<1>(info.param));
        for (char& ch : name) {
            if (ch == '+')
                ch = 'x';
        }
        return name;
    });

// --- Property 2: cache hierarchy conservation over random kernels -------

class RandomKernelSeeds : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomKernelSeeds, MemoryHierarchyConservation)
{
    const GpuConfig config =
        smallMachine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const KernelInfo k = randomKernel(GetParam());
    Gpu gpu(config);
    gpu.launchKernel(k);
    gpu.run();
    const StatSet stats = gpu.stats();
    // L1 hits + misses == L1 accesses.
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".l1d.access"),
                     stats.sumBySuffix(".l1d.hit") +
                         stats.sumBySuffix(".l1d.miss"));
    // Every partition read request either hits L2 or allocates an MSHR
    // fetch; DRAM reads == L2 primary misses (read + write-allocate).
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".dram.read"),
                     stats.sumBySuffix(".l2mshr.alloc"));
    // Interconnect conservation: requests sent equal requests received
    // at partitions.
    EXPECT_DOUBLE_EQ(stats.get("icnt.requests"),
                     stats.sumBySuffix(".req_read") +
                         stats.sumBySuffix(".req_write"));
    // Row hits + row misses == DRAM reads + writes.
    EXPECT_DOUBLE_EQ(stats.sumBySuffix(".dram.row_hit") +
                         stats.sumBySuffix(".dram.row_miss"),
                     stats.sumBySuffix(".dram.read") +
                         stats.sumBySuffix(".dram.write"));
}

TEST_P(RandomKernelSeeds, IpcWithinMachineBounds)
{
    const GpuConfig config =
        smallMachine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    const KernelInfo k = randomKernel(GetParam());
    const RunResult r = runKernel(config, k);
    EXPECT_GT(r.ipc, 0.0);
    // Peak: numCores x numSchedulersPerCore instructions per cycle.
    EXPECT_LE(r.ipc, config.numCores * config.numSchedulersPerCore + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelSeeds,
                         ::testing::Range<std::uint64_t>(100, 112));

// --- Property 3: static CTA limits bound residency ----------------------

class CtaLimitSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(CtaLimitSweep, ResidencyNeverExceedsLimit)
{
    GpuConfig config =
        smallMachine(WarpSchedKind::GTO, CtaSchedKind::RoundRobin);
    config.staticCtaLimit = GetParam();
    const KernelInfo k = randomKernel(42);
    Gpu gpu(config);
    gpu.launchKernel(k);
    std::uint32_t max_seen = 0;
    while (gpu.stepCycle()) {
        for (const auto& core : gpu.cores())
            max_seen = std::max(max_seen, core->residentCtas());
    }
    EXPECT_LE(max_seen, GetParam());
    EXPECT_GE(max_seen, 1u);
}

INSTANTIATE_TEST_SUITE_P(Limits, CtaLimitSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// --- Property 4: shared-memory conflict factor bounds -------------------

class BankStrideSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(BankStrideSweep, ConflictFactorDividesEvenly)
{
    MemPattern p;
    p.kind = AccessKind::SharedBank;
    p.space = MemSpace::Shared;
    p.bankStride = GetParam();
    const std::uint32_t f = sharedConflictFactor(p, kWarpSize);
    EXPECT_GE(f, 1u);
    EXPECT_LE(f, 32u);
    // For power-of-two strides the conflict degree is gcd-driven:
    // factor = min(stride, 32) for pow2 strides.
    const std::uint32_t stride = GetParam();
    if ((stride & (stride - 1)) == 0) {
        EXPECT_EQ(f, std::min(stride, 32u));
    }
}

INSTANTIATE_TEST_SUITE_P(Strides, BankStrideSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u, 16u,
                                           17u, 32u, 33u, 64u));

} // namespace
} // namespace bsched
