file(REMOVE_RECURSE
  "CMakeFiles/fig_lcs_estimators.dir/fig_lcs_estimators.cc.o"
  "CMakeFiles/fig_lcs_estimators.dir/fig_lcs_estimators.cc.o.d"
  "fig_lcs_estimators"
  "fig_lcs_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lcs_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
