file(REMOVE_RECURSE
  "CMakeFiles/fig_lcs_speedup.dir/fig_lcs_speedup.cc.o"
  "CMakeFiles/fig_lcs_speedup.dir/fig_lcs_speedup.cc.o.d"
  "fig_lcs_speedup"
  "fig_lcs_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lcs_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
