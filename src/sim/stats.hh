/**
 * @file
 * Flat, hierarchical-by-name statistics collection. Components populate a
 * StatSet with dotted names ("core0.l1d.miss"), and the harness queries,
 * aggregates and prints them.
 */

#ifndef BSCHED_SIM_STATS_HH
#define BSCHED_SIM_STATS_HH

#include <map>
#include <string>
#include <vector>

namespace bsched {

/** An ordered mapping from dotted stat names to values. */
class StatSet
{
  public:
    /** Add @p value to the named stat (creating it at 0). */
    void add(const std::string& name, double value);

    /** Set the named stat, overwriting any previous value. */
    void set(const std::string& name, double value);

    /** True if the stat exists. */
    bool has(const std::string& name) const;

    /** Value of the stat; 0 if absent. */
    double get(const std::string& name) const;

    /** Value of the stat; @p fallback if absent. */
    double getOr(const std::string& name, double fallback) const;

    /** Value of the stat; fatal() if absent (for harness assertions). */
    double require(const std::string& name) const;

    /** Sum of all stats whose name ends with @p suffix. */
    double sumBySuffix(const std::string& suffix) const;

    /** All (name, value) pairs in name order. */
    const std::map<std::string, double>& entries() const { return map_; }

    /** Names matching a ".suffix" query, in order. */
    std::vector<std::string> namesBySuffix(const std::string& suffix) const;

    /** Merge another StatSet, adding values for duplicate names. */
    void merge(const StatSet& other);

    /** Render as "name = value" lines. */
    std::string toString() const;

    std::size_t size() const { return map_.size(); }
    void clear() { map_.clear(); }

  private:
    std::map<std::string, double> map_;
};

/** Geometric mean of @p values; fatal() on empty or non-positive input. */
double geomean(const std::vector<double>& values);

/** Harmonic mean of @p values; fatal() on empty or non-positive input. */
double harmonicMean(const std::vector<double>& values);

/**
 * Nearest-rank percentile of @p values (taken by value: sorted
 * internally). @p p is in [0, 100]; p=0 gives the minimum, p=100 the
 * maximum. Nearest-rank (no interpolation) keeps the result an actual
 * sample, so latency quantiles in artifacts stay integral and
 * byte-stable. Fatal() on empty input or p outside [0, 100].
 */
double percentile(std::vector<double> values, double p);

} // namespace bsched

#endif // BSCHED_SIM_STATS_HH
