/**
 * @file
 * E14 (ablation) — the LCS estimator: the paper's issue-ratio formula
 * N_opt = ceil(I_total/I_greedy) against the threshold variant that
 * counts CTAs contributing >= 40% of the greedy CTA's issue. Both read
 * only the monitored instruction counts; they differ in how they treat
 * the long tail of barely-progressing CTAs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const unsigned jobs = bench::parseJobs(argc, argv);
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);

    // Config 0 is the baseline; 1..3 the estimator variants.
    std::vector<GpuConfig> configs = {base};
    for (const auto& [est, pct] :
         std::vector<std::pair<LcsEstimator, std::uint32_t>>{
             {LcsEstimator::IssueRatio, 0},
             {LcsEstimator::Threshold, 40},
             {LcsEstimator::Threshold, 60}}) {
        GpuConfig cfg = makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);
        cfg.lcs.estimator = est;
        if (pct)
            cfg.lcs.thresholdPct = pct;
        configs.push_back(cfg);
    }

    std::printf("E14: LCS estimator ablation (speedup over baseline; "
                "%u jobs)\n\n",
                jobs);
    Table table("issue-ratio vs threshold estimator");
    table.setHeader({"workload", "issue-ratio", "threshold-40",
                     "threshold-60"});
    std::vector<std::vector<double>> speedups(3);
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, configs, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const double base_ipc = grid.at(w, 0).ipc;
        std::vector<std::string> row = {names[w]};
        for (std::size_t v = 0; v < 3; ++v) {
            const double s = grid.at(w, v + 1).ipc / base_ipc;
            speedups[v].push_back(s);
            row.push_back(fmt(s, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"geomean"};
    for (auto& s : speedups)
        last.push_back(fmt(geomean(s), 3));
    table.addRow(last);
    std::printf("%s", table.toText().c_str());
    return 0;
}
