/**
 * @file
 * E19 — serving-layer observability: the decision audit and predictor
 * accuracy behind every (trace, policy) point of E18. Each of the 15
 * runs carries a ServeTrace bundle, and the figure reports the decision
 * breakdown (admissions, deferrals, preemptions, drain cancels), the
 * CTA-drain cost counters, and the runtime predictor's absolute error
 * per point. `--emit-json` writes the full `bsched-servetrace-v1`
 * artifact — every decision with its inputs, every request lifecycle,
 * every predictor error histogram — and bench/BENCH_servetrace.json is
 * the committed baseline CI byte-gates against (the audit is pure
 * observation, so the bytes are identical for any --jobs and with
 * fast-forward on or off).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "serve/engine.hh"
#include "serve/serve_trace.hh"
#include "serve/traffic.hh"
#include "serve_traces.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

/** One audited (trace, policy) point. */
struct AuditedRun
{
    ServingRunResult result;
    ServeTrace trace;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig config =
        makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);

    const std::vector<bench::ServeTraceDef> traces =
        bench::makeServeTraces();
    const std::vector<ServePolicy> policies = allServePolicies();

    std::printf("E19: serving decision audit and predictor accuracy\n"
                "(per-policy decision breakdown; %u jobs)\n\n",
                jobs);

    const ParallelRunner runner(jobs);
    const std::size_t points = traces.size() * policies.size();
    const auto results =
        runner.map<AuditedRun>(points, [&](std::size_t i) {
            const bench::ServeTraceDef& def =
                traces[i / policies.size()];
            ServeConfig serve;
            serve.policy = policies[i % policies.size()];
            AuditedRun run;
            ServingEngine engine(config, serve);
            engine.setTrace(&run.trace);
            run.result = engine.run(generateTrace(def.spec));
            return run;
        });

    ServeTraceReport report("fig_serve_trace");
    Table table("serving decisions");
    table.setHeader({"trace", "policy", "admits", "defers", "preempts",
                     "cancels", "drains", "drain-lat", "pred-err",
                     "samples"});
    for (std::size_t i = 0; i < points; ++i) {
        const bench::ServeTraceDef& def = traces[i / policies.size()];
        const ServePolicy policy = policies[i % policies.size()];
        const AuditedRun& run = results[i];
        report.addRun(toString(policy), def.name, run.result, run.trace);
        const ServeAudit& audit = run.trace.audit;
        const PredictorAccuracy& acc = run.trace.accuracy;
        table.addRow({def.name, toString(policy),
                      std::to_string(audit.admits),
                      std::to_string(audit.defers),
                      std::to_string(audit.preempts),
                      std::to_string(audit.drainCancels),
                      std::to_string(run.result.drainsCompleted),
                      std::to_string(run.result.drainLatencyCycles),
                      fmt(acc.meanAbsError(), 0),
                      std::to_string(acc.samples())});
    }
    std::printf("%s\n", table.toText().c_str());

    std::printf("Reading: every admission the engine grants and every\n"
                "one it defers is in the audit with the inputs that\n"
                "drove it — queue depth, LCS headroom, predicted\n"
                "runtime, deadline slack. The preempt rows name the\n"
                "drained victim and its predicted remainder; pred-err\n"
                "is the predictor's mean |predicted - actual| in\n"
                "cycles, which converges as the per-workload EWMA\n"
                "absorbs completed launches.\n");

    if (!opts.emitJsonPath.empty()) {
        const std::size_t bytes =
            writeFile(opts.emitJsonPath, [&](std::ostream& os) {
                report.writeJson(os);
            });
        std::printf("wrote %s (%zu bytes)\n", opts.emitJsonPath.c_str(),
                    bytes);
    }
    bench::writeRunArtifacts(opts, config, makeWorkload("lud"),
                             "lud/serve_trace");
    return 0;
}
