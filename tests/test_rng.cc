/**
 * @file
 * Tests for the deterministic hashing / PRNG utilities — in particular
 * that nextBelow() is unbiased (it used the modulo reduction before,
 * which over-represents small values for bounds that don't divide 2^64).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hh"

namespace bsched {
namespace {

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(42);
    for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL,
                                      (1ULL << 33) + 5, ~0ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowBoundOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextBelow(97), b.nextBelow(97));
}

TEST(Rng, NextBelowIsUniform)
{
    // Chi-square goodness-of-fit over a bound that doesn't divide 2^64.
    // With k=13 buckets and n=130000 draws the 99.9% critical value for
    // 12 degrees of freedom is ~32.9; a biased modulo reduction or a
    // broken rejection loop blows well past that.
    constexpr std::uint64_t kBuckets = 13;
    constexpr int kDraws = 130000;
    Rng rng(0xdecafbad);
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    const double expected = double(kDraws) / double(kBuckets);
    double chi2 = 0.0;
    for (const int c : counts) {
        const double d = c - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 32.9);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, Mix64IsStableAndDispersive)
{
    // Stateless hash: same input, same output, across calls and builds.
    EXPECT_EQ(mix64(0), mix64(0));
    EXPECT_NE(mix64(0), mix64(1));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

} // namespace
} // namespace bsched
