#include "core/warp_sched.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

std::unique_ptr<WarpScheduler>
WarpScheduler::create(WarpSchedKind kind, std::uint32_t two_level_active)
{
    switch (kind) {
      case WarpSchedKind::LRR:
        return std::make_unique<LrrScheduler>();
      case WarpSchedKind::GTO:
        return std::make_unique<GtoScheduler>();
      case WarpSchedKind::TwoLevel:
        return std::make_unique<TwoLevelScheduler>(two_level_active);
      case WarpSchedKind::BAWS:
        return std::make_unique<BawsScheduler>();
    }
    panic("unknown warp scheduler kind");
}

namespace {

/** Age key: older CTA first, then lower warp index. */
std::pair<std::uint64_t, std::uint32_t>
ageKey(const Warp& warp)
{
    return {warp.ctaSeq, warp.warpInCta};
}

/** Oldest ready warp by (ctaSeq, warpInCta). */
int
oldest(const std::vector<int>& ready, const std::vector<Warp>& warps)
{
    int best = ready.front();
    for (std::size_t i = 1; i < ready.size(); ++i) {
        if (ageKey(warps[static_cast<std::size_t>(ready[i])]) <
            ageKey(warps[static_cast<std::size_t>(best)])) {
            best = ready[i];
        }
    }
    return best;
}

bool
contains(const std::vector<int>& ready, int warp_id)
{
    return std::find(ready.begin(), ready.end(), warp_id) != ready.end();
}

} // namespace

// --- LRR ---------------------------------------------------------------

int
LrrScheduler::pick(const std::vector<int>& ready,
                   const std::vector<Warp>& warps)
{
    (void)warps;
    // Documented precondition of every pick(): non-empty ready set —
    // ready.front() below is UB otherwise.
    BSCHED_CHECK(!ready.empty(), "lrr: pick() with empty ready set");
    // Smallest ready id strictly greater than the last issued, wrapping.
    for (int id : ready) {
        if (id > lastIssued_)
            return id;
    }
    return ready.front();
}

void
LrrScheduler::notifyIssued(int warp_id, const std::vector<Warp>& warps)
{
    (void)warps;
    lastIssued_ = warp_id;
}

// --- GTO ---------------------------------------------------------------

int
GtoScheduler::pick(const std::vector<int>& ready,
                   const std::vector<Warp>& warps)
{
    BSCHED_CHECK(!ready.empty(), "gto: pick() with empty ready set");
    if (lastIssued_ >= 0 && contains(ready, lastIssued_))
        return lastIssued_;
    return oldest(ready, warps);
}

void
GtoScheduler::notifyIssued(int warp_id, const std::vector<Warp>& warps)
{
    (void)warps;
    lastIssued_ = warp_id;
}

// --- Two-level ----------------------------------------------------------

void
TwoLevelScheduler::reset()
{
    active_.clear();
    lastIssued_ = -1;
}

int
TwoLevelScheduler::pick(const std::vector<int>& ready,
                        const std::vector<Warp>& warps)
{
    BSCHED_CHECK(!ready.empty(),
                 "two-level: pick() with empty ready set");
    // Drop demoted warps (invalid slots) from the active set lazily.
    std::erase_if(active_, [&](int id) {
        return !warps[static_cast<std::size_t>(id)].live();
    });

    // Round-robin among ready members of the active set.
    int first_active = -1;
    for (int id : ready) {
        if (std::find(active_.begin(), active_.end(), id) ==
            active_.end()) {
            continue;
        }
        if (first_active < 0)
            first_active = id;
        if (id > lastIssued_)
            return id;
    }
    if (first_active >= 0)
        return first_active;

    // No active warp is ready: promote the oldest ready outsider,
    // demoting the set's oldest member if it is full.
    const int promoted = oldest(ready, warps);
    if (active_.size() >= activeSize_)
        active_.erase(active_.begin());
    active_.push_back(promoted);
    return promoted;
}

void
TwoLevelScheduler::notifyIssued(int warp_id, const std::vector<Warp>& warps)
{
    (void)warps;
    lastIssued_ = warp_id;
    if (std::find(active_.begin(), active_.end(), warp_id) == active_.end())
        active_.push_back(warp_id);
}

// --- BAWS --------------------------------------------------------------

void
BawsScheduler::reset()
{
    lastBlock_ = kNoBlock;
    rotate_.clear();
}

int
BawsScheduler::pickWithinBlock(std::uint64_t block,
                               const std::vector<int>& ready,
                               const std::vector<Warp>& warps)
{
    // Within a block, serve the *laggard* CTA first so the paired CTAs
    // stay at even progress (the shared halo lines are still resident
    // when the partner needs them), but stay greedy *within* the chosen
    // CTA so its memory priority remains concentrated.
    // One pass over the warp table: per-CTA progress for this block.
    // Ordered map: the laggard scan below must not see hash order.
    std::map<std::uint64_t, std::uint64_t> progress;
    for (const Warp& peer : warps) {
        if (peer.valid && peer.blockSeq == block)
            progress[peer.ctaSeq] += peer.instrsIssued;
    }
    std::uint64_t best_cta = ~0ULL;
    std::uint64_t best_progress = ~0ULL;
    for (int id : ready) {
        const Warp& warp = warps[static_cast<std::size_t>(id)];
        if (warp.blockSeq != block)
            continue;
        const std::uint64_t p = progress[warp.ctaSeq];
        if (p < best_progress ||
            (p == best_progress && warp.ctaSeq < best_cta)) {
            best_progress = p;
            best_cta = warp.ctaSeq;
        }
    }
    if (best_cta == ~0ULL)
        return -1;
    // Greedy-then-oldest within the laggard CTA.
    const int last = rotate_.count(block) ? rotate_[block] : -1;
    int oldest_id = -1;
    std::uint32_t oldest_win = ~0u;
    for (int id : ready) {
        const Warp& warp = warps[static_cast<std::size_t>(id)];
        if (warp.blockSeq != block || warp.ctaSeq != best_cta)
            continue;
        if (id == last)
            return id; // greedy warp still ready
        if (warp.warpInCta < oldest_win) {
            oldest_win = warp.warpInCta;
            oldest_id = id;
        }
    }
    return oldest_id;
}

int
BawsScheduler::pick(const std::vector<int>& ready,
                    const std::vector<Warp>& warps)
{
    BSCHED_CHECK(!ready.empty(), "baws: pick() with empty ready set");
    // Greedy at block granularity: stick with the last block if any of
    // its warps is ready.
    if (lastBlock_ != kNoBlock) {
        const int id = pickWithinBlock(lastBlock_, ready, warps);
        if (id >= 0)
            return id;
    }
    // Otherwise the oldest ready block.
    std::uint64_t best_block = kNoBlock;
    for (int id : ready) {
        const Warp& warp = warps[static_cast<std::size_t>(id)];
        if (warp.blockSeq < best_block)
            best_block = warp.blockSeq;
    }
    const int id = pickWithinBlock(best_block, ready, warps);
    if (id >= 0)
        return id;
    // Returning -1 to the issue stage panics the core. Every ready warp
    // belongs to some block, so best_block normally matches at least one
    // candidate — but if every ready warp carries the kNoBlock sentinel
    // (best_block stayed kNoBlock) or block bookkeeping ever disagrees,
    // degrade to plain greedy-then-oldest instead of crashing.
    return oldest(ready, warps);
}

void
BawsScheduler::notifyIssued(int warp_id, const std::vector<Warp>& warps)
{
    const Warp& warp = warps[static_cast<std::size_t>(warp_id)];
    lastBlock_ = warp.blockSeq;
    rotate_[lastBlock_] = warp_id;
}

void
BawsScheduler::notifyBlockRetired(std::uint64_t block)
{
    rotate_.erase(block);
    if (lastBlock_ == block)
        lastBlock_ = kNoBlock;
}

} // namespace bsched
