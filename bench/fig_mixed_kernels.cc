/**
 * @file
 * E11 — mixed concurrent kernel execution: resource-complementary
 * kernel pairs (a peaked/memory kernel with an increasing/compute
 * kernel) run (a) sequentially, (b) spatially partitioned, and (c)
 * mixed on every core with LCS carving out the space. Reports total
 * runtime speedup over sequential, STP, ANTT, and the per-kernel
 * fairness view (max slowdown, min-max fairness) that ANTT's mean
 * hides. Isolated baselines are deduplicated across pairs through the
 * shared content-keyed IsolatedCycleCache.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hh"
#include "gpu/multi_kernel.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig config = makeConfig(WarpSchedKind::GTO,
                                        CtaSchedKind::RoundRobin);

    // Resource-complementary pairs first (the kernels are limited by
    // different resources, so both fit on one core), then conflicting
    // pairs (both register/thread-limited) as the partner-selection
    // ablation: MCK only pays off when the pair is complementary.
    const std::vector<std::tuple<std::string, std::string, bool>> pairs = {
        {"kmeans", "lud", true}, {"sc", "lud", true},
        {"bfs", "lud", true},    {"nn", "lavamd", true},
        {"kmeans", "gemm", false}, {"srad", "gemm", false},
    };

    std::printf("E11: mixed concurrent kernel execution on kernel pairs\n"
                "(speedup = sequential total cycles / policy total "
                "cycles; %u jobs)\n\n",
                jobs);
    Table table("multi-kernel policies");
    table.setHeader({"pair", "fit", "seq-cycles", "spatial-speedup",
                     "mixed-speedup", "spatial-STP", "mixed-STP",
                     "spatial-ANTT", "mixed-ANTT", "mixed-maxslow",
                     "mixed-fair"});
    std::vector<double> spatial_speedups;
    std::vector<double> mixed_speedups;

    const ParallelRunner runner(jobs);

    // Isolated runtimes are policy-independent; compute each unique
    // workload once, fanned out across the pool.
    std::vector<std::string> uniq;
    for (const auto& [a, b, complementary] : pairs) {
        (void)complementary;
        for (const std::string& name : {a, b}) {
            if (std::find(uniq.begin(), uniq.end(), name) == uniq.end())
                uniq.push_back(name);
        }
    }
    // Warm the shared content-keyed cache in parallel; every policy
    // point below then hits it instead of re-simulating its pair's
    // isolated baselines. Cached values equal fresh runs, so the
    // artifact bytes don't depend on the cache at all.
    IsolatedCycleCache cache;
    runner.map<Cycle>(uniq.size(), [&](std::size_t i) {
        const KernelInfo k = makeWorkload(uniq[i]);
        Gpu gpu(config);
        const int id = gpu.launchKernel(k);
        gpu.run();
        const Cycle cycles = gpu.kernelCycles(id);
        cache.insert(IsolatedCycleCache::key(config, k), cycles);
        return cycles;
    });

    // One independent point per (pair, policy); each owns its kernels.
    const std::vector<MultiKernelPolicy> policies = {
        MultiKernelPolicy::Sequential, MultiKernelPolicy::Spatial,
        MultiKernelPolicy::Mixed};
    const auto reports = runner.map<MultiKernelReport>(
        pairs.size() * policies.size(), [&](std::size_t i) {
            const auto& [a, b, complementary] = pairs[i / policies.size()];
            (void)complementary;
            const KernelInfo ka = makeWorkload(a);
            const KernelInfo kb = makeWorkload(b);
            const std::vector<const KernelInfo*> kernels = {&ka, &kb};
            return runMultiKernel(config, kernels,
                                  policies[i % policies.size()], {},
                                  nullptr, &cache);
        });

    BenchReport report("fig_mixed_kernels");
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        const auto& [a, b, complementary] = pairs[p];
        const MultiKernelReport& seq = reports[p * policies.size() + 0];
        const MultiKernelReport& spa = reports[p * policies.size() + 1];
        const MultiKernelReport& mix = reports[p * policies.size() + 2];
        const double s_spatial = static_cast<double>(seq.totalCycles) /
            static_cast<double>(spa.totalCycles);
        const double s_mixed = static_cast<double>(seq.totalCycles) /
            static_cast<double>(mix.totalCycles);
        if (complementary) {
            spatial_speedups.push_back(s_spatial);
            mixed_speedups.push_back(s_mixed);
        }
        const std::string pair = a + "+" + b;
        report.addMetric(pair + ".seq_cycles", seq.totalCycles);
        report.addMetric(pair + ".speedup_spatial", s_spatial);
        report.addMetric(pair + ".speedup_mixed", s_mixed);
        report.addMetric(pair + ".stp_spatial", spa.stp());
        report.addMetric(pair + ".stp_mixed", mix.stp());
        report.addMetric(pair + ".antt_spatial", spa.antt());
        report.addMetric(pair + ".antt_mixed", mix.antt());
        report.addMetric(pair + ".max_slowdown_spatial", spa.maxSlowdown());
        report.addMetric(pair + ".max_slowdown_mixed", mix.maxSlowdown());
        report.addMetric(pair + ".fairness_spatial", spa.fairness());
        report.addMetric(pair + ".fairness_mixed", mix.fairness());
        table.addRow({a + "+" + b, complementary ? "compl." : "conflict",
                      std::to_string(seq.totalCycles),
                      fmt(s_spatial, 3), fmt(s_mixed, 3),
                      fmt(spa.stp(), 2), fmt(mix.stp(), 2),
                      fmt(spa.antt(), 2), fmt(mix.antt(), 2),
                      fmt(mix.maxSlowdown(), 2), fmt(mix.fairness(), 3)});
    }
    table.addRow({"geomean (compl.)", "", "",
                  fmt(geomean(spatial_speedups), 3),
                  fmt(geomean(mixed_speedups), 3), "", "", "", "", "",
                  ""});
    std::printf("%s\n", table.toText().c_str());
    std::printf("isolated-baseline cache: %zu entries, %llu hits\n\n",
                cache.size(),
                static_cast<unsigned long long>(cache.hits()));
    std::printf("Reading: mixing pays off when the pair is limited by\n"
                "different resources (memory kernel + smem/SFU kernel);\n"
                "pairing two register/thread-limited kernels shrinks the\n"
                "compute kernel's occupancy and loses to sequential;\n"
                "max-slowdown and min-max fairness expose the starved\n"
                "partner that ANTT's mean averages away.\n");

    report.addMetric("geomean.speedup_spatial", geomean(spatial_speedups));
    report.addMetric("geomean.speedup_mixed", geomean(mixed_speedups));
    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, config, makeWorkload("kmeans"),
                              "kmeans/base");
    return 0;
}
