#include "serve/serve_trace.hh"

#include <ostream>
#include <sstream>

#include "obs/sink.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

namespace {

/** kCycleNever serializes as -1 (JSON has no "never" sentinel). */
std::string
cycleJson(Cycle cycle)
{
    return cycle == kCycleNever ? "-1" : std::to_string(cycle);
}

void
writeDecisionJson(std::ostream& os, const ServeDecision& d)
{
    os << "{\"cycle\": " << d.cycle << ", \"kind\": \"" << toString(d.kind)
       << "\", \"seq\": " << d.seq << ", \"tenant\": " << d.tenant
       << ", \"workload\": \"" << jsonEscape(d.workload) << "\","
       << " \"queue_depth\": " << d.queueDepth
       << ", \"running\": " << d.running
       << ", \"headroom_slots\": " << d.headroomSlots
       << ", \"predicted_total\": " << d.predictedTotal
       << ", \"deadline\": " << cycleJson(d.deadline)
       << ", \"urgent\": " << (d.urgent ? "true" : "false")
       << ", \"reordered\": " << (d.reordered ? "true" : "false")
       << ", \"reason\": \"" << jsonEscape(d.reason) << "\""
       << ", \"victim\": " << d.victim
       << ", \"victim_predicted_remaining\": "
       << d.victimPredictedRemaining << "}";
}

void
writeRequestJson(std::ostream& os, const RequestOutcome& outcome)
{
    os << "{\"seq\": " << outcome.req.seq
       << ", \"tenant\": " << outcome.req.tenant
       << ", \"workload\": \"" << jsonEscape(outcome.req.workload)
       << "\", \"release\": " << outcome.release
       << ", \"admit\": " << cycleJson(outcome.admit)
       << ", \"first_dispatch\": " << cycleJson(outcome.firstDispatch)
       << ", \"finish\": " << cycleJson(outcome.finish)
       << ", \"deadline\": " << cycleJson(outcome.deadline)
       << ", \"predicted_total\": " << outcome.predictedTotal << "}";
}

void
writePredictorJson(std::ostream& os, const PredictorAccuracy& accuracy)
{
    const LatencyHistogram& hist = accuracy.errorHistogram();
    os << "{\"samples\": " << accuracy.samples()
       << ", \"over\": " << accuracy.overpredictions()
       << ", \"under\": " << accuracy.underpredictions()
       << ", \"exact\": " << accuracy.exactPredictions()
       << ",\n      \"mean_abs_error\": " << jsonNumber(hist.mean())
       << ", \"error_min\": " << hist.min()
       << ", \"error_max\": " << hist.max()
       << ", \"error_sum\": " << hist.sum()
       << ",\n      \"error_buckets\": [";
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        if (i != 0)
            os << ", ";
        os << hist.bucket(i);
    }
    os << "],\n      \"series\": {";
    bool first_series = true;
    for (const auto& [workload, samples] : accuracy.byWorkload()) {
        if (!first_series)
            os << ",";
        first_series = false;
        os << "\n        \"" << jsonEscape(workload) << "\": [";
        for (std::size_t i = 0; i < samples.size(); ++i) {
            if (i != 0)
                os << ", ";
            os << "{\"predicted\": " << samples[i].predicted
               << ", \"actual\": " << samples[i].actual << "}";
        }
        os << "]";
    }
    os << (first_series ? "" : "\n      ") << "}}";
}

} // namespace

const char*
toString(ServeDecisionKind kind)
{
    switch (kind) {
      case ServeDecisionKind::Admit: return "admit";
      case ServeDecisionKind::Defer: return "defer";
      case ServeDecisionKind::Preempt: return "preempt";
      case ServeDecisionKind::DrainCancel: return "drain_cancel";
    }
    panic("unknown ServeDecisionKind");
}

void
ServeAudit::record(const ServeDecision& decision)
{
    // The audit is an append-only log in decision order; out-of-order
    // records would mean the engine audited a decision after the fact
    // and the exported timeline would lie.
    BSCHED_CHECK(decisions.empty() ||
                     decision.cycle >= decisions.back().cycle,
                 "serve audit: decision at cycle ", decision.cycle,
                 " recorded after cycle ", decisions.back().cycle);
    decisions.push_back(decision);
    switch (decision.kind) {
      case ServeDecisionKind::Admit: ++admits; break;
      case ServeDecisionKind::Defer: ++defers; break;
      case ServeDecisionKind::Preempt: ++preempts; break;
      case ServeDecisionKind::DrainCancel: ++drainCancels; break;
    }
}

ServeTraceReport::ServeTraceReport(std::string bench_name)
    : name_(std::move(bench_name))
{
    if (name_.empty())
        fatal("ServeTraceReport: empty bench name");
}

void
ServeTraceReport::addRun(const std::string& policy,
                         const std::string& trace,
                         const ServingRunResult& result,
                         const ServeTrace& serve_trace)
{
    for (const Run& existing : runs_) {
        if (existing.policy == policy && existing.trace == trace) {
            fatal("ServeTraceReport: duplicate run ", policy, "/",
                  trace);
        }
    }
    Run run;
    run.policy = policy;
    run.trace = trace;
    run.result = result;
    run.serveTrace = serve_trace;
    runs_.push_back(std::move(run));
}

void
ServeTraceReport::writeJson(std::ostream& os) const
{
    os << "{\n  \"schema\": \"bsched-servetrace-v1\",\n";
    os << "  \"bench\": \"" << jsonEscape(name_) << "\",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const Run& run = runs_[i];
        const ServeAudit& audit = run.serveTrace.audit;
        os << "    {\"policy\": \"" << jsonEscape(run.policy)
           << "\", \"trace\": \"" << jsonEscape(run.trace) << "\",\n"
           << "     \"requests\": " << run.result.outcomes.size()
           << ", \"total_cycles\": " << run.result.totalCycles << ",\n"
           << "     \"counts\": {\"admits\": " << audit.admits
           << ", \"defers\": " << audit.defers
           << ", \"preempts\": " << audit.preempts
           << ", \"drain_cancels\": " << audit.drainCancels << "},\n"
           << "     \"drain\": {\"requests\": " << run.result.drainRequests
           << ", \"cancels\": " << run.result.drainCancels
           << ", \"completed\": " << run.result.drainsCompleted
           << ", \"latency_cycles\": " << run.result.drainLatencyCycles
           << "},\n     \"decisions\": [";
        for (std::size_t d = 0; d < audit.decisions.size(); ++d) {
            os << (d == 0 ? "\n      " : ",\n      ");
            writeDecisionJson(os, audit.decisions[d]);
        }
        os << (audit.decisions.empty() ? "" : "\n     ")
           << "],\n     \"request_spans\": [";
        for (std::size_t r = 0; r < run.result.outcomes.size(); ++r) {
            os << (r == 0 ? "\n      " : ",\n      ");
            writeRequestJson(os, run.result.outcomes[r]);
        }
        os << (run.result.outcomes.empty() ? "" : "\n     ")
           << "],\n     \"predictor\": ";
        writePredictorJson(os, run.serveTrace.accuracy);
        os << "}";
        os << (i + 1 < runs_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

std::string
ServeTraceReport::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace bsched
