#include "obs/mem_profile.hh"

#include <ostream>

#include "obs/sink.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

const char*
toString(MemStage stage)
{
    switch (stage) {
      case MemStage::CoreQueue:
        return "core_q";
      case MemStage::NocRequest:
        return "noc_req";
      case MemStage::L2Queue:
        return "l2_q";
      case MemStage::DramQueue:
        return "dram_q";
      case MemStage::DramService:
        return "dram_svc";
      case MemStage::L2Mshr:
        return "l2_mshr";
      case MemStage::L2Return:
        return "l2_ret";
      case MemStage::NocResponse:
        return "noc_resp";
    }
    return "?";
}

const char*
toString(MemLevel level)
{
    switch (level) {
      case MemLevel::L1:
        return "l1";
      case MemLevel::L2:
        return "l2";
    }
    return "?";
}

void
MemProfiler::onAttach(std::uint32_t num_cores)
{
    if (!cores_.empty() && cores_.size() != num_cores) {
        fatal("mem profiler: reattached to a different machine shape (",
              cores_.size(), " vs ", num_cores, " cores)");
    }
    cores_.resize(num_cores);
}

std::uint32_t
MemProfiler::beginRequest(Cycle now, std::uint32_t core, int kernel_id,
                          std::int64_t cta_key)
{
    const std::uint32_t id = nextReqId_++;
    Record& rec = outstanding_[id];
    rec.begin = now;
    rec.stageStart = now;
    rec.stage = MemStage::CoreQueue;
    rec.core = core;
    rec.kernelId = kernel_id;
    rec.ctaKey = cta_key;
    ++begun_;
    return id;
}

void
MemProfiler::enterStage(std::uint32_t req_id, MemStage stage, Cycle now)
{
    if (req_id == 0)
        return;
    auto it = outstanding_.find(req_id);
    BSCHED_CHECK(it != outstanding_.end(), "mem profiler: stage ",
                 toString(stage), " for unknown request ", req_id);
    if (it == outstanding_.end())
        return;
    Record& rec = it->second;
    rec.stageCycles[static_cast<std::size_t>(rec.stage)] +=
        now - rec.stageStart;
    rec.stage = stage;
    rec.stageStart = now;
}

void
MemProfiler::endRequest(std::uint32_t req_id, Cycle now)
{
    if (req_id == 0)
        return;
    auto it = outstanding_.find(req_id);
    BSCHED_CHECK(it != outstanding_.end(),
                 "mem profiler: completion for unknown request ", req_id);
    if (it == outstanding_.end())
        return;
    Record& rec = it->second;
    // Contract: a request completes out of its final (response-network)
    // stage — anything else means a component skipped its stage hook.
    BSCHED_CHECK(rec.stage == MemStage::NocResponse,
                 "mem profiler: request ", req_id,
                 " completed with unclosed stage ", toString(rec.stage));
    rec.stageCycles[static_cast<std::size_t>(rec.stage)] +=
        now - rec.stageStart;

    const std::uint64_t e2e = now - rec.begin;
    std::uint64_t stage_sum = 0;
    for (std::uint64_t cycles : rec.stageCycles)
        stage_sum += cycles;
    // Conservation by construction: every cycle of the request's life
    // was attributed to exactly one stage.
    BSCHED_INVARIANT(stage_sum == e2e, "mem profiler: request ", req_id,
                     " stage cycles (", stage_sum,
                     ") diverge from end-to-end latency (", e2e, ")");

    if (rec.core >= cores_.size())
        fatal("mem profiler: request from core ", rec.core,
              " but attached with ", cores_.size(), " cores");
    StageProfile& core_prof = cores_[rec.core];
    core_prof.endToEnd.record(e2e);
    for (std::size_t s = 0; s < kNumMemStages; ++s)
        core_prof.stages[s].record(rec.stageCycles[s]);
    if (rec.kernelId != kInvalidId) {
        StageProfile& kern_prof = kernels_[rec.kernelId];
        kern_prof.endToEnd.record(e2e);
        for (std::size_t s = 0; s < kNumMemStages; ++s)
            kern_prof.stages[s].record(rec.stageCycles[s]);
    }
    ++completed_;
    outstanding_.erase(it);
}

std::int64_t
MemProfiler::ctaKeyOf(std::uint32_t req_id) const
{
    auto it = outstanding_.find(req_id);
    return it != outstanding_.end() ? it->second.ctaKey : -1;
}

void
MemProfiler::onEviction(MemLevel level, std::int64_t evictor,
                        std::int64_t victim, std::uint32_t distinct_owners)
{
    InterferenceCounts& counts =
        interference_[static_cast<std::size_t>(level)];
    ++counts.evictions;
    if (victim >= 0 && evictor >= 0 && victim != evictor)
        ++counts.crossCtaEvictions;
    counts.setOccupancy.record(distinct_owners);
}

StageProfile
MemProfiler::total() const
{
    StageProfile sum;
    for (const StageProfile& core : cores_)
        sum.accumulate(core);
    return sum;
}

namespace {

void
writeHistogram(std::ostream& os, const LatencyHistogram& h)
{
    os << "{\"total\":" << h.total() << ",\"sum\":" << h.sum()
       << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"mean\":" << jsonNumber(h.mean()) << ",\"buckets\":[";
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        if (i > 0)
            os << ",";
        os << h.bucket(i);
    }
    os << "]}";
}

void
writeStageProfile(std::ostream& os, const StageProfile& prof)
{
    os << "{\"completed\":" << prof.completed() << ",\"end_to_end\":";
    writeHistogram(os, prof.endToEnd);
    os << ",\"stages\":{";
    for (std::size_t s = 0; s < kNumMemStages; ++s) {
        if (s > 0)
            os << ",";
        os << "\"" << toString(static_cast<MemStage>(s)) << "\":";
        writeHistogram(os, prof.stages[s]);
    }
    os << "}}";
}

void
writeInterference(std::ostream& os, const MemProfiler& prof)
{
    os << "{";
    for (std::size_t l = 0; l < kNumMemLevels; ++l) {
        if (l > 0)
            os << ",";
        const MemLevel level = static_cast<MemLevel>(l);
        const InterferenceCounts& c = prof.interference(level);
        os << "\"" << toString(level) << "\":{\"evictions\":" << c.evictions
           << ",\"cross_cta_evictions\":" << c.crossCtaEvictions
           << ",\"cross_cta_fraction\":" << jsonNumber(c.crossCtaFraction())
           << ",\"set_occupancy\":";
        writeHistogram(os, c.setOccupancy);
        os << ",\"mshr_occupancy\":";
        writeHistogram(os, c.mshrOccupancy);
        os << "}";
    }
    os << "}";
}

void
writePoint(std::ostream& os, const MemProfilePoint& point)
{
    const MemProfiler& prof = *point.prof;
    os << "{\"label\":\"" << jsonEscape(point.label) << "\",\"params\":{";
    bool first = true;
    for (const auto& [name, value] : point.params) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
    }
    os << "},\"begun\":" << prof.begunRequests()
       << ",\"completed\":" << prof.completedRequests()
       << ",\"outstanding\":" << prof.outstandingRequests()
       << ",\"total\":";
    writeStageProfile(os, prof.total());
    os << ",\"interference\":";
    writeInterference(os, prof);
    os << ",\"kernels\":[";
    first = true;
    for (const auto& [kernel, kern_prof] : prof.kernels()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"kernel\":" << kernel << ",\"profile\":";
        writeStageProfile(os, kern_prof);
        os << "}";
    }
    os << "],\"cores\":[";
    for (std::uint32_t c = 0; c < prof.numCores(); ++c) {
        if (c > 0)
            os << ",";
        os << "\n{\"core\":" << c << ",\"profile\":";
        writeStageProfile(os, prof.core(c));
        os << "}";
    }
    os << "]}";
}

} // namespace

void
writeMemProfileJson(std::ostream& os,
                    const std::vector<MemProfilePoint>& points,
                    const std::string& label)
{
    os << "{\"schema\":\"bsched-memprofile-v1\",\"label\":\""
       << jsonEscape(label) << "\",\"stages\":[";
    for (std::size_t s = 0; s < kNumMemStages; ++s) {
        if (s > 0)
            os << ",";
        os << "\"" << toString(static_cast<MemStage>(s)) << "\"";
    }
    os << "],\"bucket_bounds\":[";
    for (std::size_t i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
        if (i > 0)
            os << ",";
        os << LatencyHistogram::bound(i);
    }
    os << "],\"points\":[";
    bool first = true;
    for (const MemProfilePoint& point : points) {
        if (point.prof == nullptr)
            fatal("writeMemProfileJson: point '", point.label,
                  "' has no profiler");
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        writePoint(os, point);
    }
    os << "]}\n";
}

void
writeMemProfileJson(std::ostream& os, const MemProfiler& prof,
                    const std::string& label)
{
    MemProfilePoint point;
    point.label = label;
    point.prof = &prof;
    writeMemProfileJson(os, {point}, label);
}

} // namespace bsched
