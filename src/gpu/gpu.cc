#include "gpu/gpu.hh"

#include <algorithm>

#include "obs/mem_profile.hh"
#include "obs/phase/phase.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

Gpu::Gpu(const GpuConfig& config, Observer obs)
    : obs_(obs), config_(config), icnt_(config)
{
    config_.validate();
    for (std::uint32_t c = 0; c < config_.numCores; ++c)
        cores_.push_back(std::make_unique<SimtCore>(config_, c));
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p)
        partitions_.push_back(std::make_unique<MemPartition>(config_, p));
    ctaSched_ = CtaScheduler::create(config_);

    if (obs_.tracer != nullptr) {
        for (auto& core : cores_)
            core->setTracer(obs_.tracer);
        for (auto& part : partitions_)
            part->setTracer(obs_.tracer);
        ctaSched_->setTracer(obs_.tracer);
    }
    if (obs_.profiler != nullptr) {
        obs_.profiler->onAttach(config_.numCores,
                                config_.numSchedulersPerCore,
                                toString(config_.warpSched));
        for (auto& core : cores_)
            core->setProfiler(obs_.profiler);
    }
    if (obs_.memProfiler != nullptr) {
        obs_.memProfiler->onAttach(config_.numCores);
        for (auto& core : cores_)
            core->setMemProfiler(obs_.memProfiler);
        for (auto& part : partitions_)
            part->setMemProfiler(obs_.memProfiler);
        icnt_.setMemProfiler(obs_.memProfiler);
    }
    if (obs_.phase != nullptr)
        obs_.phase->onAttach(config_.numCores, obs_.tracer);
}

int
Gpu::launchKernel(const KernelInfo& kernel, int core_begin, int core_end,
                  int priority)
{
    kernel.validate();
    if (core_begin < 0 || core_begin >= static_cast<int>(config_.numCores))
        fatal("launchKernel: bad core_begin ", core_begin);
    if (core_end > static_cast<int>(config_.numCores))
        fatal("launchKernel: bad core_end ", core_end);
    // An explicit end at or before the begin leaves no core the kernel
    // may run on: its CTAs could never dispatch and run() would burn
    // maxCycles before dying. Reject the launch instead.
    if (core_end >= 0 && core_end <= core_begin)
        fatal("launchKernel: empty core range [", core_begin, ", ",
              core_end, ")");
    // Ensure at least one CTA can ever be placed.
    maxCtasPerCore(config_, kernel);

    KernelInstance inst;
    inst.info = &kernel;
    inst.id = static_cast<int>(kernels_.size());
    inst.launchCycle = cycle_;
    inst.coreBegin = core_begin;
    inst.coreEnd = core_end;
    inst.priority = priority;
    kernels_.push_back(inst);

    if (obs_.tracer != nullptr) {
        TraceEvent event;
        event.cycle = cycle_;
        event.kind = TraceEventKind::KernelLaunch;
        event.kernelId = inst.id;
        event.arg0 = kernel.gridCtas();
        obs_.tracer->record(obs_.tracer->gpuTrack(), event);
    }
    return inst.id;
}

void
Gpu::requestDrain(int kernel_id, bool draining)
{
    // Serving-layer entry point: the id must name a launched kernel
    // (fatal is the always-on backup).
    BSCHED_CHECK(kernel_id >= 0 &&
                     kernel_id < static_cast<int>(kernels_.size()),
                 "requestDrain: bad kernel id ", kernel_id);
    if (kernel_id < 0 || kernel_id >= static_cast<int>(kernels_.size()))
        fatal("requestDrain: bad kernel id ", kernel_id);
    const bool was_draining = ctaSched_->isDraining(kernel_id);
    ctaSched_->setDraining(kernel_id, draining);
    if (draining && !was_draining) {
        if (kernelResidentCtas(kernel_id) == 0) {
            // Nothing in flight: the drain completes the moment it is
            // requested.
            noteDrainComplete(kernel_id, cycle_, 0);
        } else {
            drainStart_.emplace(kernel_id, cycle_);
        }
    } else if (!draining) {
        // Only an *in-progress* drain counts as cancelled: if residency
        // already hit zero the drain completed and this merely clears
        // the flag.
        if (drainStart_.erase(kernel_id) != 0)
            ++drainCancels_;
    }
    if (obs_.tracer != nullptr) {
        TraceEvent event;
        event.cycle = cycle_;
        event.kind = TraceEventKind::DrainRequest;
        event.kernelId = kernel_id;
        event.arg0 = draining ? 1 : 0;
        event.arg1 = kernels_[static_cast<std::size_t>(kernel_id)].nextCta;
        obs_.tracer->record(obs_.tracer->gpuTrack(), event);
    }
}

bool
Gpu::kernelDraining(int kernel_id) const
{
    return ctaSched_->isDraining(kernel_id);
}

std::uint32_t
Gpu::kernelResidentCtas(int kernel_id) const
{
    std::uint32_t resident = 0;
    for (const auto& core : cores_)
        resident += core->residentCtas(kernel_id);
    return resident;
}

void
Gpu::noteDrainComplete(int kernel_id, Cycle now, Cycle latency)
{
    ++drainsCompleted_;
    drainLatencyCycles_ += latency;
    if (obs_.tracer != nullptr) {
        const KernelInstance& kernel =
            kernels_.at(static_cast<std::size_t>(kernel_id));
        TraceEvent event;
        event.cycle = now;
        event.duration = latency;
        event.kind = TraceEventKind::DrainComplete;
        event.kernelId = kernel_id;
        event.arg0 = static_cast<std::int64_t>(kernel.info->gridCtas() -
                                               kernel.nextCta);
        obs_.tracer->record(obs_.tracer->gpuTrack(), event);
    }
}

bool
Gpu::finished() const
{
    for (const KernelInstance& kernel : kernels_) {
        if (!kernel.finished())
            return false;
    }
    return true;
}

bool
Gpu::moveMemoryTraffic()
{
    const Cycle now = cycle_;
    bool moved = false;

    // Partition replies -> interconnect (bounded injection per cycle).
    // The visiting order rotates with the cycle: a core whose response
    // queue fills every cycle would otherwise let partition 0 inject
    // forever while higher-numbered partitions sit head-of-line blocked
    // behind it. Cycle-derived rotation keeps the order identical
    // whether or not quiet spans were elided.
    const std::uint32_t np = static_cast<std::uint32_t>(partitions_.size());
    const std::uint32_t first = static_cast<std::uint32_t>(now % np);
    for (std::uint32_t i = 0; i < np; ++i) {
        MemPartition& part = *partitions_[(first + i) % np];
        for (std::uint32_t k = 0; k < config_.icntFlitsPerCycle; ++k) {
            if (!part.responseReady())
                break;
            const MemResponse& resp = part.peekResponse();
            if (!icnt_.canSendResponse(resp.coreId))
                break; // head-of-line blocked; retry next cycle
            icnt_.sendResponse(now, resp.coreId, resp);
            part.popResponse();
            moved = true;
        }
    }

    // Interconnect -> partitions (ejection bandwidth + input capacity).
    for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
        while (icnt_.requestReady(p, now) &&
               partitions_[p]->canAcceptRequest() &&
               icnt_.ejectBudget(p, now)) {
            partitions_[p]->pushRequest(now, icnt_.popRequest(p, now));
            moved = true;
        }
    }

    // Interconnect -> cores (fill responses).
    for (std::uint32_t c = 0; c < cores_.size(); ++c) {
        while (icnt_.responseReady(c, now) &&
               icnt_.responseEjectBudget(c, now)) {
            cores_[c]->deliverResponse(now, icnt_.popResponse(c, now));
            moved = true;
        }
    }

    // Cores -> interconnect (requests).
    for (auto& core : cores_) {
        for (std::uint32_t k = 0; k < config_.icntFlitsPerCycle; ++k) {
            if (!core->hasOutgoing())
                break;
            const std::uint32_t p =
                icnt_.partitionFor(core->peekOutgoing().lineAddr);
            if (!icnt_.canSendRequest(p))
                break; // head-of-line blocked
            icnt_.sendRequest(now, core->popOutgoing());
            moved = true;
        }
    }
    return moved;
}

bool
Gpu::stepCycle()
{
    const Cycle now = cycle_;
    bool did_work = false;

    for (auto& part : partitions_)
        did_work |= part->tick(now);

    did_work |= moveMemoryTraffic();

    for (auto& core : cores_)
        did_work |= core->tick(now);

    // Collect CTA completions and update kernel instances.
    for (auto& core : cores_) {
        for (const CtaDoneEvent& event : core->drainCompletedCtas()) {
            did_work = true;
            KernelInstance& kernel =
                kernels_.at(static_cast<std::size_t>(event.kernelId));
            ++kernel.ctasDone;
            // Kernel-level conservation: completions are dispatched CTAs
            // coming back, so done can never outrun dispatched, and
            // neither can overrun the grid.
            BSCHED_INVARIANT(kernel.ctasDone <= kernel.nextCta &&
                                 kernel.nextCta <= kernel.info->gridCtas(),
                             "gpu: kernel ", kernel.id,
                             " completed more CTAs than were dispatched");
            if (kernel.finished() && kernel.doneCycle == kCycleNever) {
                kernel.doneCycle = now;
                if (obs_.tracer != nullptr) {
                    TraceEvent trace;
                    trace.cycle = now;
                    trace.duration = now - kernel.launchCycle;
                    trace.kind = TraceEventKind::KernelRetire;
                    trace.kernelId = kernel.id;
                    trace.arg0 = kernel.ctasDone;
                    obs_.tracer->record(obs_.tracer->gpuTrack(), trace);
                }
            }
            ctaSched_->notifyCtaDone(now, event, cores_);
            // Drain-latency endpoint: the victim's last in-flight CTA
            // just retired.
            if (!drainStart_.empty()) {
                const auto ds = drainStart_.find(event.kernelId);
                if (ds != drainStart_.end() &&
                    kernelResidentCtas(event.kernelId) == 0) {
                    noteDrainComplete(event.kernelId, now,
                                      now - ds->second);
                    drainStart_.erase(ds);
                }
            }
        }
    }

    const std::uint64_t dispatches_before = ctaSched_->dispatches();
    ctaSched_->tick(now, kernels_, cores_);
    did_work |= ctaSched_->dispatches() != dispatches_before;

    // Phase windows close before the sample is taken, so the sampled
    // phase gauges always reflect every window up to `now`.
    if (obs_.phase != nullptr && obs_.phase->due(now))
        closePhaseWindow(now);
    if (obs_.sampler != nullptr && obs_.sampler->due(now))
        collectSample(now);

    ++cycle_;
    if (cycle_ >= config_.maxCycles)
        fatal("gpu: exceeded maxCycles (", config_.maxCycles,
              ") — likely deadlock or undersized budget");

    // A quiet cycle proves every component is waiting on a future
    // event; jump straight to the earliest one instead of re-proving it
    // one cycle at a time.
    if (!did_work && config_.fastForward)
        fastForward();

    return !finished();
}

void
Gpu::fastForward()
{
    const Cycle now = cycle_; // first candidate cycle to elide

    Cycle next = ctaSched_->nextEventCycle(now, kernels_, cores_);
    for (const auto& core : cores_)
        next = std::min(next, core->nextWorkCycle(now));
    next = std::min(next, icnt_.nextEventCycle(now));
    for (const auto& part : partitions_)
        next = std::min(next, part->nextEventCycle(now));
    if (obs_.sampler != nullptr)
        next = std::min(next, obs_.sampler->nextDue());
    // Phase-window boundaries are fenced exactly like sampler cycles:
    // windows close on the same cycles whether or not spans are elided.
    if (obs_.phase != nullptr)
        next = std::min(next, obs_.phase->nextDue());
    // External fence (serving engine): an outside agent acts at this
    // cycle, so the quiet span may not be elided past it.
    next = std::min(next, externalEvent_);
    if (next == kCycleNever)
        return; // no future event at all: finished, draining or stuck
    // Never jump past the cycle-budget backstop: the last budgeted
    // cycle must still tick so the overrun fatal() fires on schedule.
    next = std::min(next, config_.maxCycles - 1);
    if (next <= now)
        return;

    // The component estimates promised a quiet span: nothing can be
    // waiting on the traffic mover, or cycle `now` would not have been
    // quiet and the estimates would have pinned `next` at `now`.
    for (const auto& core : cores_) {
        BSCHED_CHECK(!core->hasOutgoing(),
                     "gpu: fast-forward across a pending core request "
                     "on core ", core->id());
    }
    for (const auto& part : partitions_) {
        BSCHED_CHECK(!part->responseReady(),
                     "gpu: fast-forward across a pending partition "
                     "response");
    }

    // Replay the per-cycle counter effects of the elided cycles
    // [now, next): per-core activity/stall classification and the
    // per-cycle MSHR occupancy samples. Both are constant across the
    // span — it ends at or before every wake estimate.
    const std::uint64_t n = next - now;
    for (auto& core : cores_)
        core->accountQuietSpan(now, n, obs_.memProfiler);
    if (obs_.memProfiler != nullptr) {
        for (const auto& part : partitions_) {
            obs_.memProfiler->recordMshrOccupancySpan(
                MemLevel::L2, part->l2Mshr().entriesInUse(), n);
        }
    }
    elided_ += n;
    cycle_ = next;
}

bool
Gpu::drained() const
{
    for (const auto& core : cores_) {
        if (!core->idle())
            return false;
    }
    if (!icnt_.drained())
        return false;
    for (const auto& part : partitions_) {
        if (!part->drained())
            return false;
    }
    return true;
}

void
Gpu::run()
{
    if (kernels_.empty())
        fatal("gpu: run() without any launched kernel");
    while (stepCycle()) {
    }
    // Kernel-boundary fence: drain in-flight stores and write-backs so
    // statistics are conserved and a subsequent launch starts clean.
    while (!drained())
        stepCycle();
    // A closing sample ties off every series at the final cycle so that
    // cumulative counters end exactly at the StatSet totals.
    finalizeSample();
}

void
Gpu::finalizeSample()
{
    // Tie off the partial final phase window first so the closing
    // sample's phase gauges include it.
    if (obs_.phase != nullptr && obs_.phase->finalPending(cycle_))
        closePhaseWindow(cycle_);
    if (obs_.sampler != nullptr &&
        (obs_.sampler->cycles().empty() ||
         obs_.sampler->cycles().back() != cycle_)) {
        collectSample(cycle_);
    }
}

void
Gpu::collectSample(Cycle now)
{
    IntervalSampler& s = *obs_.sampler;
    s.begin(now);

    const std::uint64_t instrs = totalInstrsIssued();
    s.record("gpu.instrs", static_cast<double>(instrs),
             SeriesKind::Counter);
    const Cycle span = now - lastSampleCycle_;
    const double interval_ipc = span == 0
        ? 0.0
        : static_cast<double>(instrs - lastSampleInstrs_) /
            static_cast<double>(span);
    s.record("gpu.interval_ipc", interval_ipc, SeriesKind::Gauge);
    lastSampleCycle_ = now;
    lastSampleInstrs_ = instrs;

    std::uint64_t active = 0;
    std::uint64_t issue = 0, stall_mem = 0, stall_idle = 0;
    std::uint64_t l1_access = 0, l1_miss = 0, l1_mshr = 0;
    for (const auto& core : cores_) {
        active += core->residentCtas();
        issue += core->issueCycles();
        stall_mem += core->memStallCycles();
        stall_idle += core->idleStallCycles();
        l1_access += core->ldst().l1().accesses();
        l1_miss += core->ldst().l1().misses();
        l1_mshr += core->ldst().mshr().entriesInUse();
    }
    s.record("gpu.active_ctas", static_cast<double>(active),
             SeriesKind::Gauge);
    s.record("core.issue_cycles", static_cast<double>(issue),
             SeriesKind::Counter);
    s.record("core.stall_mem", static_cast<double>(stall_mem),
             SeriesKind::Counter);
    s.record("core.stall_idle", static_cast<double>(stall_idle),
             SeriesKind::Counter);
    s.record("l1d.access", static_cast<double>(l1_access),
             SeriesKind::Counter);
    s.record("l1d.miss", static_cast<double>(l1_miss),
             SeriesKind::Counter);
    s.record("l1d.mshr_in_use", static_cast<double>(l1_mshr),
             SeriesKind::Gauge);

    std::uint64_t l2_access = 0, l2_miss = 0, l2_mshr = 0;
    std::uint64_t row_hit = 0, row_miss = 0, row_conflict = 0;
    for (const auto& part : partitions_) {
        l2_access += part->l2().accesses();
        l2_miss += part->l2().misses();
        l2_mshr += part->l2Mshr().entriesInUse();
        row_hit += part->dram().rowHits();
        row_miss += part->dram().rowMisses();
        row_conflict += part->dram().rowConflicts();
    }
    s.record("l2.access", static_cast<double>(l2_access),
             SeriesKind::Counter);
    s.record("l2.miss", static_cast<double>(l2_miss),
             SeriesKind::Counter);
    s.record("l2.mshr_in_use", static_cast<double>(l2_mshr),
             SeriesKind::Gauge);
    s.record("dram.row_hit", static_cast<double>(row_hit),
             SeriesKind::Counter);
    s.record("dram.row_miss", static_cast<double>(row_miss),
             SeriesKind::Counter);
    s.record("dram.row_conflict", static_cast<double>(row_conflict),
             SeriesKind::Counter);

    // Phase-telemetry gauges ride the same fenced sample cycles; the
    // series set is fixed per run because attachment never changes
    // mid-run.
    if (obs_.phase != nullptr) {
        s.record("phase.current", obs_.phase->currentPhaseGauge(),
                 SeriesKind::Gauge);
        s.record("phase.count", obs_.phase->phaseCountGauge(),
                 SeriesKind::Gauge);
    }

    // External series (e.g. serving-engine gauges) land on the same
    // fenced sample cycle as the built-in ones.
    if (obs_.sampleSource != nullptr)
        obs_.sampleSource->recordSample(s, now);
}

void
Gpu::closePhaseWindow(Cycle now)
{
    PhaseSnapshot snap;
    snap.coreInstrs.reserve(cores_.size());
    snap.coreIssue.reserve(cores_.size());
    snap.coreStallMem.reserve(cores_.size());
    snap.coreStallIdle.reserve(cores_.size());
    for (const auto& core : cores_) {
        const std::uint64_t instrs = core->instrsIssued();
        const std::uint64_t issue = core->issueCycles();
        const std::uint64_t stall_mem = core->memStallCycles();
        const std::uint64_t stall_idle = core->idleStallCycles();
        snap.instrs += instrs;
        snap.issueCycles += issue;
        snap.stallMem += stall_mem;
        snap.stallIdle += stall_idle;
        snap.l1Access += core->ldst().l1().accesses();
        snap.l1Miss += core->ldst().l1().misses();
        snap.coreInstrs.push_back(instrs);
        snap.coreIssue.push_back(issue);
        snap.coreStallMem.push_back(stall_mem);
        snap.coreStallIdle.push_back(stall_idle);
    }
    for (const auto& part : partitions_) {
        snap.l2Access += part->l2().accesses();
        snap.l2Miss += part->l2().misses();
        snap.rowHit += part->dram().rowHits();
        snap.rowMiss += part->dram().rowMisses();
        snap.rowConflict += part->dram().rowConflicts();
    }
    snap.kernelInstrs.reserve(kernels_.size());
    for (const KernelInstance& kernel : kernels_)
        snap.kernelInstrs.push_back(kernelInstrsIssued(kernel.id));
    // Interference channels ride along only when the memory profiler is
    // also attached; the detectors never read them, so detected phase
    // boundaries are identical with or without this section.
    if (obs_.memProfiler != nullptr) {
        snap.hasInterference = true;
        snap.l1CrossCta =
            obs_.memProfiler->interference(MemLevel::L1).crossCtaEvictions;
        snap.l2CrossCta =
            obs_.memProfiler->interference(MemLevel::L2).crossCtaEvictions;
        snap.dramQueueCycles = obs_.memProfiler->total()
            .stages[static_cast<std::size_t>(MemStage::DramQueue)].sum();
        snap.l2MshrOccCycles = obs_.memProfiler->interference(MemLevel::L2)
            .mshrOccupancy.sum();
    }
    obs_.phase->closeWindow(now, snap);
}

const KernelInstance&
Gpu::kernel(int id) const
{
    return kernels_.at(static_cast<std::size_t>(id));
}

Cycle
Gpu::kernelCycles(int id) const
{
    const KernelInstance& inst = kernel(id);
    if (inst.doneCycle == kCycleNever)
        fatal("gpu: kernel ", id, " has not finished");
    return inst.doneCycle - inst.launchCycle + 1;
}

std::uint64_t
Gpu::totalInstrsIssued() const
{
    std::uint64_t total = 0;
    for (const auto& core : cores_)
        total += core->instrsIssued();
    return total;
}

double
Gpu::ipc() const
{
    if (cycle_ == 0)
        return 0.0;
    return static_cast<double>(totalInstrsIssued()) /
        static_cast<double>(cycle_);
}

std::uint64_t
Gpu::kernelInstrsIssued(int id) const
{
    std::uint64_t issued = 0;
    for (const auto& core : cores_)
        issued += core->instrsIssued(id);
    return issued;
}

double
Gpu::kernelIpc(int id) const
{
    return static_cast<double>(kernelInstrsIssued(id)) /
        static_cast<double>(kernelCycles(id));
}

StatSet
Gpu::stats() const
{
    StatSet stats;
    stats.set("gpu.cycles", static_cast<double>(cycle_));
    stats.set("gpu.ipc", ipc());
    stats.set("gpu.instrs", static_cast<double>(totalInstrsIssued()));
    for (const auto& core : cores_)
        core->addStats(stats);
    for (const auto& part : partitions_)
        part->addStats(stats);
    icnt_.addStats(stats);
    ctaSched_->addStats(stats);
    for (const KernelInstance& kernel : kernels_) {
        const std::string prefix = "kernel" + std::to_string(kernel.id);
        stats.set(prefix + ".ctas", kernel.info->gridCtas());
        if (kernel.doneCycle != kCycleNever) {
            stats.set(prefix + ".cycles",
                      static_cast<double>(kernelCycles(kernel.id)));
            stats.set(prefix + ".ipc", kernelIpc(kernel.id));
        }
    }
    return stats;
}

} // namespace bsched
