#include "core/ldst_unit.hh"

#include <algorithm>

#include "obs/mem_profile.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

LdstUnit::LdstUnit(const GpuConfig& config, std::uint32_t core_id)
    : name_("core" + std::to_string(core_id) + ".ldst"),
      coreId_(static_cast<std::uint16_t>(core_id)),
      config_(config),
      tags_(config.l1d, name_ + ".l1d"),
      mshr_(config.l1d.mshrEntries, config.l1d.mshrMaxMerged,
            name_ + ".l1mshr"),
      hitQ_(config.l1d.hitLatency, 0)
{
    // Enough batch slots for the queue plus batches whose lines are all
    // dispatched but still outstanding in the memory system.
    const std::size_t slots = config.ldstQueueDepth +
        static_cast<std::size_t>(config.l1d.mshrEntries) *
        config.l1d.mshrMaxMerged;
    batches_.resize(slots);
    for (std::size_t i = 0; i < slots; ++i)
        freeBatches_.push_back(static_cast<std::uint32_t>(slots - 1 - i));
}

std::uint32_t
LdstUnit::allocBatch()
{
    if (freeBatches_.empty())
        panic(name_, ": out of batch slots");
    std::uint32_t id = freeBatches_.back();
    freeBatches_.pop_back();
    return id;
}

void
LdstUnit::pushBatch(Cycle now, int warp_id, std::int8_t reg, bool write,
                    std::vector<Addr> lines, int kernel_id,
                    std::int64_t cta_key)
{
    (void)now;
    // Callers gate on canAcceptBatch(); batches are never empty (the
    // coalescer always produces >= 1 line). Panics are the always-on
    // backup.
    BSCHED_CHECK(canAcceptBatch(), name_, ": batch queue overflow");
    BSCHED_CHECK(!lines.empty(), name_, ": empty access batch");
    if (!canAcceptBatch())
        panic(name_, ": batch queue overflow");
    if (lines.empty())
        panic(name_, ": empty access batch");
    const std::uint32_t id = allocBatch();
    Batch& batch = batches_[id];
    batch.inUse = true;
    batch.warpId = warp_id;
    batch.reg = reg;
    batch.write = write;
    batch.pendingLines.assign(lines.begin(), lines.end());
    batch.outstanding = 0;
    batch.kernelId = kernel_id;
    batch.ctaKey = cta_key;
    batchQ_.push_back(id);
}

void
LdstUnit::maybeComplete(std::uint32_t batch_id, Cycle now)
{
    (void)now;
    Batch& batch = batches_[batch_id];
    if (!batch.inUse || !batch.pendingLines.empty() || batch.outstanding > 0)
        return;
    if (!batch.write)
        completions_.push_back({batch.warpId, batch.reg});
    batch = Batch{};
    freeBatches_.push_back(batch_id);
}

bool
LdstUnit::processLine(Cycle now)
{
    const std::uint32_t batch_id = batchQ_.front();
    Batch& batch = batches_[batch_id];
    const Addr line = batch.pendingLines.front();

    if (batch.write) {
        // Write-through, no-allocate: forward to L2; refresh L1 recency
        // if present (data is clean either way).
        if (outgoing_.size() >= config_.coreMemQueue)
            return false;
        tags_.access(line, now); // counts store hit/miss statistics
        outgoing_.push_back({line, true, coreId_});
        batch.pendingLines.pop_front();
        ++linesProcessed_;
        ++writeLines_;
        return true;
    }

    // Load path.
    if (tags_.access(line, now)) {
        hitQ_.push(now, batch_id);
        ++batch.outstanding;
        batch.pendingLines.pop_front();
        ++linesProcessed_;
        ++hitLines_;
        return true;
    }
    // Miss: primary needs an MSHR entry + outgoing space; secondary merges.
    if (!mshr_.has(line)) {
        if (mshr_.full() || outgoing_.size() >= config_.coreMemQueue) {
            ++retryTagLookups_;
            return false;
        }
        if (mshr_.allocate(line, batch_id) != MshrOutcome::NewEntry)
            panic(name_, ": expected new L1 MSHR entry");
        // A primary L1 read miss is the profiled unit: the record is
        // born here and dies when the fill returns in onFill().
        std::uint32_t req_id = 0;
        if (memProfiler_ != nullptr) {
            req_id = memProfiler_->beginRequest(now, coreId_,
                                                batch.kernelId,
                                                batch.ctaKey);
        }
        outgoing_.push_back({line, false, coreId_, req_id});
    } else {
        if (mshr_.allocate(line, batch_id) != MshrOutcome::Merged) {
            ++retryTagLookups_; // merge list full; retry next cycle
            return false;
        }
    }
    ++batch.outstanding;
    batch.pendingLines.pop_front();
    ++linesProcessed_;
    ++missLines_;
    // Access conservation: every processed line took exactly one of the
    // three paths — L1 hit, miss (MSHR alloc/merge) or write-through
    // bypass — each with one tag access, plus one extra tag access per
    // miss that had to retry on a full MSHR / merge list / mem queue.
    BSCHED_INVARIANT(linesProcessed_ ==
                         hitLines_ + missLines_ + writeLines_,
                     name_, ": line path accounting broken");
    BSCHED_INVARIANT(linesProcessed_ + retryTagLookups_ == tags_.accesses(),
                     name_,
                     ": processed lines diverge from L1 tag accesses");
    return true;
}

bool
LdstUnit::tick(Cycle now)
{
    if (memProfiler_ != nullptr) {
        memProfiler_->recordMshrOccupancy(MemLevel::L1,
                                          mshr_.entriesInUse());
    }
    bool did_work = false;

    // Return L1 hits whose latency elapsed.
    while (hitQ_.ready(now)) {
        const std::uint32_t batch_id = hitQ_.pop(now);
        Batch& batch = batches_[batch_id];
        if (batch.outstanding == 0)
            panic(name_, ": hit return for idle batch");
        --batch.outstanding;
        maybeComplete(batch_id, now);
        did_work = true;
    }

    // One cache-port access per cycle from the head batch.
    if (!batchQ_.empty()) {
        // Whether the head line processes or retries, counters move.
        did_work = true;
        if (processLine(now)) {
            const std::uint32_t head = batchQ_.front();
            if (batches_[head].pendingLines.empty()) {
                batchQ_.pop_front();
                maybeComplete(head, now);
            }
        } else {
            ++stallCycles_;
        }
    }
    return did_work;
}

Cycle
LdstUnit::nextEventCycle(Cycle now) const
{
    // Pending completions must reach the core, and outgoing requests
    // the network, on the very next cycle. A queued batch is also
    // "now": even a blocked head mutates retry/stall counters each
    // cycle, so those cycles are observable and cannot be skipped.
    if (!completions_.empty() || !outgoing_.empty() || !batchQ_.empty())
        return now;
    if (!hitQ_.empty())
        return std::max(hitQ_.nextReady(), now);
    return kCycleNever;
}

void
LdstUnit::onFill(Cycle now, Addr line_addr, std::uint32_t req_id)
{
    // The requester's CTA owns the filled line (interference tracking).
    const std::int64_t owner = memProfiler_ != nullptr
        ? memProfiler_->ctaKeyOf(req_id)
        : -1;
    // Fill the line unless a racing fill already inserted it.
    if (!tags_.probe(line_addr)) {
        const Eviction ev = tags_.fill(line_addr, now, false, owner);
        // Write-through L1: victims are always clean.
        if (ev.valid && ev.dirty)
            panic(name_, ": dirty eviction from write-through L1");
        if (memProfiler_ != nullptr && ev.valid) {
            memProfiler_->onEviction(MemLevel::L1, owner, ev.owner,
                                     ev.distinctOwners);
        }
    }
    for (MshrWaiter waiter : mshr_.complete(line_addr)) {
        const std::uint32_t batch_id = static_cast<std::uint32_t>(waiter);
        Batch& batch = batches_[batch_id];
        if (batch.outstanding == 0)
            panic(name_, ": fill for idle batch");
        --batch.outstanding;
        maybeComplete(batch_id, now);
    }
    // The fill's delivery at the core ends the profiled request.
    if (memProfiler_ != nullptr)
        memProfiler_->endRequest(req_id, now);
}

std::vector<LoadCompletion>
LdstUnit::drainCompletions()
{
    std::vector<LoadCompletion> out;
    out.swap(completions_);
    return out;
}

const MemRequest&
LdstUnit::peekOutgoing() const
{
    if (outgoing_.empty())
        panic(name_, ": peekOutgoing on empty queue");
    return outgoing_.front();
}

MemRequest
LdstUnit::popOutgoing()
{
    if (outgoing_.empty())
        panic(name_, ": popOutgoing on empty queue");
    MemRequest req = outgoing_.front();
    outgoing_.pop_front();
    return req;
}

bool
LdstUnit::drained() const
{
    return batchQ_.empty() && mshr_.empty() && outgoing_.empty() &&
        hitQ_.empty() && completions_.empty();
}

void
LdstUnit::addStats(StatSet& stats) const
{
    tags_.addStats(stats, name_ + ".l1d");
    mshr_.addStats(stats, name_ + ".l1mshr");
    stats.add(name_ + ".stall", static_cast<double>(stallCycles_));
    stats.add(name_ + ".lines", static_cast<double>(linesProcessed_));
    stats.add(name_ + ".retry", static_cast<double>(retryTagLookups_));
}

} // namespace bsched
