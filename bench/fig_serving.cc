/**
 * @file
 * E18 — kernel-launch serving: multi-tenant launch traces (Poisson,
 * bursty, closed-loop) served under the five serving policies —
 * Sequential and Spatial baselines, then shared-core FCFS, reordering
 * (SJF + deadline escalation) and reordering with CTA-drain
 * preemption. Reports throughput, p50/p99 launch-to-finish latency,
 * deadline-miss rate and per-tenant ANTT fairness per (trace, policy),
 * and emits the `bsched-serving-v1` artifact (--emit-json). The
 * artifact is byte-identical for any --jobs and with fast-forward on
 * or off; bench/BENCH_serving.json is the committed baseline CI gates
 * against.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "gpu/multi_kernel.hh"
#include "serve/engine.hh"
#include "serve/serving_report.hh"
#include "serve/traffic.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

namespace {

using namespace bsched;

struct TraceDef
{
    std::string name;
    TrafficSpec spec;
};

/** The three serving scenarios. Gaps are tuned against the suite's
 *  isolated runtimes (about 8k cycles for lud up to 624k for bp) so
 *  queues actually form without the trace running away. */
std::vector<TraceDef>
makeTraces()
{
    std::vector<TraceDef> traces;

    // Steady mixed load: two open-loop tenants, no deadlines.
    {
        TrafficSpec spec;
        spec.seed = 11;
        TenantSpec t0;
        t0.process = ArrivalProcess::Poisson;
        t0.mix = {"kmeans", "sc", "gemm"};
        t0.requests = 8;
        t0.meanGapCycles = 200000;
        TenantSpec t1;
        t1.process = ArrivalProcess::Poisson;
        t1.mix = {"srad", "hs", "lavamd"};
        t1.requests = 8;
        t1.meanGapCycles = 200000;
        spec.tenants = {t0, t1};
        traces.push_back({"poisson_mix", spec});
    }

    // The preemption showcase: a latency tenant firing bursts of short
    // deadline-bound kernels into a batch tenant's long Type-1/3
    // kernels. FCFS strands the bursts behind a long resident pair;
    // reordering admits them first when a slot frees; drain preemption
    // makes room immediately.
    {
        TrafficSpec spec;
        spec.seed = 23;
        TenantSpec latency;
        latency.process = ArrivalProcess::Bursty;
        latency.mix = {"lud", "nw", "lavamd"};
        latency.requests = 12;
        latency.burstLen = 4;
        latency.meanGapCycles = 600000;
        latency.intraBurstGapCycles = 1000;
        latency.deadlineSlack = 150000;
        TenantSpec batch;
        batch.process = ArrivalProcess::Poisson;
        batch.mix = {"bp", "bfs"};
        batch.requests = 4;
        batch.meanGapCycles = 700000;
        spec.tenants = {latency, batch};
        traces.push_back({"bursty_mix", spec});
    }

    // Closed loops: a single-outstanding long-kernel tenant against a
    // depth-2 short-kernel tenant.
    {
        TrafficSpec spec;
        spec.seed = 37;
        TenantSpec t0;
        t0.process = ArrivalProcess::ClosedLoop;
        t0.mix = {"mummer"};
        t0.requests = 4;
        t0.closedDepth = 1;
        t0.meanGapCycles = 20000;
        TenantSpec t1;
        t1.process = ArrivalProcess::ClosedLoop;
        t1.mix = {"lud", "nw", "pf"};
        t1.requests = 10;
        t1.closedDepth = 2;
        t1.meanGapCycles = 10000;
        spec.tenants = {t0, t1};
        traces.push_back({"closed_pair", spec});
    }
    return traces;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig config =
        makeConfig(WarpSchedKind::GTO, CtaSchedKind::Lazy);

    const std::vector<TraceDef> traces = makeTraces();
    const std::vector<ServePolicy> policies = allServePolicies();

    std::printf("E18: kernel-launch serving — traffic x policy\n"
                "(latencies in cycles, launch-to-finish; %u jobs)\n\n",
                jobs);

    const ParallelRunner runner(jobs);

    // Isolated full-machine runtimes (fairness denominators), computed
    // once per distinct workload through the shared content-keyed
    // cache. The parallel warm-up deposits deterministic values, so
    // cache state never shows in the artifact.
    std::vector<std::string> uniq;
    for (const TraceDef& def : traces) {
        for (const TenantSpec& tenant : def.spec.tenants) {
            for (const std::string& name : tenant.mix) {
                if (std::find(uniq.begin(), uniq.end(), name) ==
                    uniq.end()) {
                    uniq.push_back(name);
                }
            }
        }
    }
    IsolatedCycleCache cache;
    const auto iso_cycles =
        runner.map<Cycle>(uniq.size(), [&](std::size_t i) {
            const KernelInfo kernel = makeWorkload(uniq[i]);
            Gpu gpu(config);
            const int id = gpu.launchKernel(kernel);
            gpu.run();
            const Cycle cycles = gpu.kernelCycles(id);
            cache.insert(IsolatedCycleCache::key(config, kernel), cycles);
            return cycles;
        });
    std::map<std::string, Cycle> isolated;
    for (std::size_t i = 0; i < uniq.size(); ++i)
        isolated[uniq[i]] = iso_cycles[i];

    // One independent point per (trace, policy); each engine owns a
    // fresh GPU and kernel pool.
    const std::size_t points = traces.size() * policies.size();
    const auto results =
        runner.map<ServingRunResult>(points, [&](std::size_t i) {
            const TraceDef& def = traces[i / policies.size()];
            ServeConfig serve;
            serve.policy = policies[i % policies.size()];
            ServingEngine engine(config, serve);
            return engine.run(generateTrace(def.spec));
        });

    ServingReport report("fig_serving");
    Table table("serving policies");
    table.setHeader({"trace", "policy", "reqs", "thrpt/Mcyc", "p50",
                     "p99", "miss-rate", "fairness", "preempts"});
    std::map<std::string, std::map<std::string, ServingSummary>> byTrace;
    for (std::size_t i = 0; i < points; ++i) {
        const TraceDef& def = traces[i / policies.size()];
        const ServePolicy policy = policies[i % policies.size()];
        const ServingSummary summary = summarizeServing(
            toString(policy), def.name, results[i], isolated);
        report.addRun(summary);
        byTrace[def.name][summary.policy] = summary;
        table.addRow({def.name, summary.policy,
                      std::to_string(summary.requests),
                      fmt(summary.throughput, 2),
                      std::to_string(static_cast<long long>(
                          summary.p50Latency)),
                      std::to_string(static_cast<long long>(
                          summary.p99Latency)),
                      fmt(summary.missRate, 3),
                      fmt(summary.fairness, 3),
                      std::to_string(summary.preemptions)});
    }
    std::printf("%s\n", table.toText().c_str());

    // Headline: how much p99 latency the smarter policies claw back
    // from FCFS on the bursty deadline trace.
    for (const TraceDef& def : traces) {
        const auto& runs = byTrace.at(def.name);
        const ServingSummary& fcfs = runs.at("fcfs");
        const ServingSummary& reorder = runs.at("reorder");
        const ServingSummary& preempt = runs.at("reorder+preempt");
        if (fcfs.p99Latency > 0.0) {
            report.addMetric(def.name + ".p99_gain_reorder",
                             fcfs.p99Latency / reorder.p99Latency);
            report.addMetric(def.name + ".p99_gain_reorder_preempt",
                             fcfs.p99Latency / preempt.p99Latency);
        }
        report.addMetric(def.name + ".miss_rate_delta_preempt",
                         fcfs.missRate - preempt.missRate);
    }

    std::printf("Reading: FCFS strands short deadline bursts behind\n"
                "long resident kernels; reordering admits them first\n"
                "when a slot frees, and CTA-drain preemption frees the\n"
                "slot instead of waiting — the p99 and deadline-miss\n"
                "columns quantify each step.\n");

    if (!opts.emitJsonPath.empty()) {
        writeFile(opts.emitJsonPath,
                  [&](std::ostream& os) { report.writeJson(os); });
        std::printf("wrote %s\n", opts.emitJsonPath.c_str());
    }
    bench::writeRunArtifacts(opts, config, makeWorkload("lud"),
                             "lud/serving");
    return 0;
}
