"""The pass catalog, in the order passes run and report."""

from __future__ import annotations

from . import (contract_coverage, determinism, ff_soundness,
               observer_guards, schema_drift)

ALL_PASSES = [
    determinism,
    ff_soundness,
    contract_coverage,
    observer_guards,
    schema_drift,
]


def known_rules() -> set[str]:
    return {f"{p.NAME}.{suffix}" for p in ALL_PASSES for suffix in p.RULES}
