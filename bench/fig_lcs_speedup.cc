/**
 * @file
 * E6 — the LCS headline figure: per-workload speedup of LCS over the
 * max-CTA baseline, alongside the oracle (best static per-core CTA
 * limit). The paper's claim: LCS captures most of the oracle's gain on
 * type-3 workloads while never hurting type-1/2.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "harness/runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "workloads/suite.hh"

int
main(int argc, char** argv)
{
    using namespace bsched;
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const unsigned jobs = opts.jobs;
    const GpuConfig base = makeConfig(WarpSchedKind::GTO,
                                      CtaSchedKind::RoundRobin);
    const GpuConfig lcs = makeConfig(WarpSchedKind::GTO,
                                     CtaSchedKind::Lazy);

    std::printf("E6: LCS speedup over max-CTA baseline vs the static "
                "oracle\n(GTO warp scheduler everywhere; %u jobs)\n\n",
                jobs);

    Table table("speedup over baseline");
    table.setHeader({"workload", "type", "base-IPC", "LCS", "oracle",
                     "oracle-N"});
    std::vector<double> lcs_speedups;
    std::vector<double> oracle_speedups;
    std::vector<std::pair<std::string, double>> bars;

    BenchReport report("fig_lcs_speedup");
    const auto names = workloadNames();
    const auto grid = bench::runWorkloadGrid(names, {base, lcs}, jobs);
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string& name = names[w];
        const KernelInfo kernel = makeWorkload(name);
        const RunResult& baseline = grid.at(w, 0);
        const RunResult& lazy = grid.at(w, 1);
        const OracleResult oracle = oracleStaticBest(base, kernel, jobs);
        const double s_lcs = lazy.ipc / baseline.ipc;
        const double s_oracle =
            oracle.byLimit[oracle.bestLimit - 1].ipc / baseline.ipc;
        lcs_speedups.push_back(s_lcs);
        oracle_speedups.push_back(s_oracle);
        report.addRow(name + "/base", baseline);
        report.addRow(name + "/lcs", lazy);
        report.addMetric(name + ".speedup_lcs", s_lcs);
        report.addMetric(name + ".speedup_oracle", s_oracle);
        report.addMetric(name + ".oracle_limit", oracle.bestLimit);
        table.addRow({name, toString(kernel.typeClass),
                      fmt(baseline.ipc, 2), fmt(s_lcs, 3), fmt(s_oracle, 3),
                      std::to_string(oracle.bestLimit)});
        bars.emplace_back(name, s_lcs);
    }
    table.addRow({"geomean", "", "", fmt(geomean(lcs_speedups), 3),
                  fmt(geomean(oracle_speedups), 3), ""});
    std::printf("%s\n", table.toText().c_str());
    std::printf("%s", barChart("LCS speedup over baseline", bars).c_str());

    report.addMetric("geomean.speedup_lcs", geomean(lcs_speedups));
    report.addMetric("geomean.speedup_oracle", geomean(oracle_speedups));
    bench::writeReport(opts, report);
    bench::writeRunArtifacts(opts, lcs, makeWorkload("srad"),
                              "srad/lcs");
    return 0;
}
