/**
 * @file
 * Unit tests for the address generators and the coalescer.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernel/mem_pattern.hh"

namespace bsched {
namespace {

const KernelGeom kGeom{256, 120};

TEST(MemPattern, CoalescedLanesAreContiguous)
{
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    p.base = 0x1000;
    const Addr a0 = laneAddress(p, kGeom, 3, 2, 0, 0);
    const Addr a1 = laneAddress(p, kGeom, 3, 2, 1, 0);
    EXPECT_EQ(a1 - a0, 4u);
}

TEST(MemPattern, CoalescedIterationAdvancesByGridSlab)
{
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    const Addr i0 = laneAddress(p, kGeom, 0, 0, 0, 0);
    const Addr i1 = laneAddress(p, kGeom, 0, 0, 0, 1);
    EXPECT_EQ(i1 - i0, 4ull * 256 * 120);
}

TEST(MemPattern, CoalescedWarpAccessTouchesOneLine)
{
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    const auto lines = coalesce(p, kGeom, 7, 1, 5, kWarpSize, 128);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(MemPattern, StridedAccessAmplifiesLines)
{
    MemPattern p;
    p.kind = AccessKind::Strided;
    p.strideElems = 8; // 32B between lanes: 4 lanes per 128B line
    const auto lines = coalesce(p, kGeom, 0, 0, 0, kWarpSize, 128);
    EXPECT_EQ(lines.size(), 8u);
}

TEST(MemPattern, FullyDivergentStrideTouches32Lines)
{
    MemPattern p;
    p.kind = AccessKind::Strided;
    p.strideElems = 32; // 128B apart: every lane its own line
    const auto lines = coalesce(p, kGeom, 0, 0, 0, kWarpSize, 128);
    EXPECT_EQ(lines.size(), 32u);
}

TEST(MemPattern, CtaTileStaysInsideFootprint)
{
    MemPattern p;
    p.kind = AccessKind::CtaTile;
    p.base = 0x100000;
    p.footprintBytes = 8 * 1024;
    for (std::uint64_t iter = 0; iter < 100; ++iter) {
        for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            const Addr a = laneAddress(p, kGeom, 5, 3, lane, iter);
            EXPECT_GE(a, p.base + 5 * p.footprintBytes);
            EXPECT_LT(a, p.base + 6 * p.footprintBytes);
        }
    }
}

TEST(MemPattern, CtaTileRepeatsAfterFullPass)
{
    MemPattern p;
    p.kind = AccessKind::CtaTile;
    p.footprintBytes = 4 * 1024; // 1024 elems; pass = 4 trips at 256 thr
    const Addr first = laneAddress(p, kGeom, 2, 0, 0, 0);
    const Addr again = laneAddress(p, kGeom, 2, 0, 0, 4);
    EXPECT_EQ(first, again);
}

TEST(MemPattern, HaloRowsSharedBetweenNeighbours)
{
    MemPattern p;
    p.kind = AccessKind::HaloRows;
    p.rowBytes = 1024;
    p.rowsPerCta = 4;
    p.haloRows = 1;
    // Collect rows each CTA touches over one span.
    auto rows_of = [&](std::uint32_t cta) {
        std::set<Addr> rows;
        const std::uint64_t span = p.rowsPerCta + 2 * p.haloRows;
        for (std::uint64_t iter = 0; iter < span; ++iter)
            rows.insert(laneAddress(p, kGeom, cta, 0, 0, iter) / p.rowBytes);
        return rows;
    };
    const auto r1 = rows_of(1);
    const auto r2 = rows_of(2);
    std::set<Addr> shared;
    for (Addr r : r1) {
        if (r2.count(r))
            shared.insert(r);
    }
    EXPECT_EQ(shared.size(), 2u * p.haloRows);
}

TEST(MemPattern, HaloRowsClampAtZero)
{
    MemPattern p;
    p.kind = AccessKind::HaloRows;
    p.rowBytes = 1024;
    p.rowsPerCta = 4;
    p.haloRows = 2;
    // CTA 0's halo would reach row -2; must clamp to row 0.
    const Addr a = laneAddress(p, kGeom, 0, 0, 0, 0);
    EXPECT_EQ(a / p.rowBytes, 0u);
}

TEST(MemPattern, RandomIsDeterministicAndInBounds)
{
    MemPattern p;
    p.kind = AccessKind::Random;
    p.base = 0x4000;
    p.footprintBytes = 1 << 20;
    const Addr a = laneAddress(p, kGeom, 9, 2, 17, 33);
    EXPECT_EQ(a, laneAddress(p, kGeom, 9, 2, 17, 33));
    EXPECT_GE(a, p.base);
    EXPECT_LT(a, p.base + p.footprintBytes);
}

TEST(MemPattern, BroadcastCoalescesToOneLine)
{
    MemPattern p;
    p.kind = AccessKind::Broadcast;
    const auto lines = coalesce(p, kGeom, 0, 0, 0, kWarpSize, 128);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(MemPattern, SharedConflictFreeStride)
{
    MemPattern p;
    p.kind = AccessKind::SharedBank;
    p.space = MemSpace::Shared;
    p.bankStride = 1;
    EXPECT_EQ(sharedConflictFactor(p, kWarpSize), 1u);
}

TEST(MemPattern, SharedEvenStrideConflicts)
{
    MemPattern p;
    p.kind = AccessKind::SharedBank;
    p.space = MemSpace::Shared;
    p.bankStride = 2; // lanes hit 16 banks -> 2-way conflict
    EXPECT_EQ(sharedConflictFactor(p, kWarpSize), 2u);
    p.bankStride = 32; // all lanes in one bank
    EXPECT_EQ(sharedConflictFactor(p, kWarpSize), 32u);
}

TEST(MemPattern, PartialWarpLowersConflicts)
{
    MemPattern p;
    p.kind = AccessKind::SharedBank;
    p.space = MemSpace::Shared;
    p.bankStride = 32;
    EXPECT_EQ(sharedConflictFactor(p, 8), 8u);
}

TEST(MemPattern, ValidationCatchesBadParameters)
{
    MemPattern strided;
    strided.kind = AccessKind::Strided;
    strided.strideElems = 0;
    EXPECT_DEATH(strided.validate(), "strided");

    MemPattern tile;
    tile.kind = AccessKind::CtaTile;
    tile.footprintBytes = 0;
    EXPECT_DEATH(tile.validate(), "footprintBytes");

    MemPattern shared;
    shared.kind = AccessKind::SharedBank;
    shared.space = MemSpace::Global;
    EXPECT_DEATH(shared.validate(), "shared");
}

TEST(MemPattern, CoalesceRejectsBadLaneCount)
{
    MemPattern p;
    p.kind = AccessKind::Coalesced;
    EXPECT_DEATH(coalesce(p, kGeom, 0, 0, 0, 0, 128), "active_lanes");
    EXPECT_DEATH(coalesce(p, kGeom, 0, 0, 0, 33, 128), "active_lanes");
}

} // namespace
} // namespace bsched
