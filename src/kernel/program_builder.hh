/**
 * @file
 * Fluent construction of WarpPrograms. The builder assigns virtual
 * registers so that instruction streams carry realistic RAW dependences:
 * dependent ALU chains consume the previous result, loads define fresh
 * registers, and stores consume the most recent value.
 */

#ifndef BSCHED_KERNEL_PROGRAM_BUILDER_HH
#define BSCHED_KERNEL_PROGRAM_BUILDER_HH

#include <cstdint>

#include "kernel/warp_program.hh"

namespace bsched {

/**
 * Builds a WarpProgram segment by segment.
 *
 * Usage:
 * @code
 *   ProgramBuilder b;
 *   auto in = b.pattern({.kind = AccessKind::Coalesced});
 *   b.loop(100).load(in).alu(6).store(out).endLoop();
 *   WarpProgram prog = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** @param reg_window registers cycled through for destinations. */
    explicit ProgramBuilder(int reg_window = 24);

    /** Register a memory pattern for later load/store emission. */
    std::uint8_t pattern(const MemPattern& p);

    /** Open a looped segment with @p trips iterations. */
    ProgramBuilder& loop(std::uint32_t trips,
                         std::uint32_t trip_jitter_pct = 0);

    /** Close the current segment. */
    ProgramBuilder& endLoop();

    /**
     * Emit @p count ALU instructions. If @p dependent, each consumes the
     * previous result (a latency-exposed chain); otherwise sources are
     * constant registers (ILP).
     */
    ProgramBuilder& alu(int count = 1, bool dependent = true);

    /** Emit @p count SFU instructions (dependent chain). */
    ProgramBuilder& sfu(int count = 1);

    /** Emit a global load from @p pattern_id into a fresh register. */
    ProgramBuilder& load(std::uint8_t pattern_id);

    /** Emit a shared-memory load. */
    ProgramBuilder& loadShared(std::uint8_t pattern_id);

    /** Emit a global store of the most recent result. */
    ProgramBuilder& store(std::uint8_t pattern_id);

    /** Emit a shared-memory store. */
    ProgramBuilder& storeShared(std::uint8_t pattern_id);

    /** Emit a CTA-wide barrier. */
    ProgramBuilder& barrier();

    /** Set the active-lane count applied to subsequent instructions. */
    ProgramBuilder& diverge(std::uint8_t active_lanes);

    /** Restore full-warp execution. */
    ProgramBuilder& converge() { return diverge(kWarpSize); }

    /** Finish: closes any open segment, validates, returns the program. */
    WarpProgram build();

  private:
    static constexpr int kFirstDynReg = 4; ///< r0..r3 are constants

    void ensureOpen();
    std::int8_t allocReg();
    void emit(Instr instr);

    WarpProgram prog_;
    Segment current_;
    bool open_ = false;
    int regWindow_;
    int nextReg_ = kFirstDynReg;
    std::int8_t lastDst_ = 0;
    std::int8_t prevDst_ = 1;
    std::uint8_t activeLanes_ = kWarpSize;
    bool built_ = false;
};

} // namespace bsched

#endif // BSCHED_KERNEL_PROGRAM_BUILDER_HH
