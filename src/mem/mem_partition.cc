#include "mem/mem_partition.hh"

#include <algorithm>

#include "obs/mem_profile.hh"
#include "obs/trace.hh"
#include "sim/check.hh"
#include "sim/log.hh"

namespace bsched {

MemPartition::MemPartition(const GpuConfig& config, std::uint32_t id)
    : id_(id),
      name_("part" + std::to_string(id)),
      config_(config),
      input_(config.l2.hitLatency, kInputCapacity),
      tags_(config.l2, name_ + ".l2"),
      mshr_(config.l2.mshrEntries, config.l2.mshrMaxMerged, name_ + ".l2mshr"),
      dram_(config.dram, config.l2.lineBytes, config.numMemPartitions,
            name_ + ".dram")
{}

void
MemPartition::setTracer(Tracer* tracer)
{
    const std::uint32_t track =
        tracer != nullptr ? tracer->partitionTrack(id_) : 0;
    tags_.setTracer(tracer, track);
    dram_.setTracer(tracer, track);
}

void
MemPartition::setMemProfiler(MemProfiler* prof)
{
    memProfiler_ = prof;
    dram_.setMemProfiler(prof);
}

void
MemPartition::pushRequest(Cycle now, const MemRequest& request)
{
    // The documented protocol: the interconnect gates on
    // canAcceptRequest() before delivering.
    BSCHED_CHECK(canAcceptRequest(),
                 "partition ", name_, ": pushRequest past capacity");
    input_.push(now, request);
    if (request.write)
        ++writeRequests_;
    else
        ++readRequests_;
    if (memProfiler_ != nullptr)
        memProfiler_->enterStage(request.reqId, MemStage::L2Queue, now);
}

void
MemPartition::evictIfDirty(const Eviction& eviction)
{
    if (eviction.valid && eviction.dirty)
        writebacks_.push_back(eviction.lineAddr);
}

bool
MemPartition::handleDramResponses(Cycle now)
{
    bool any = false;
    while (dram_.responseReady(now)) {
        any = true;
        const Addr line = dram_.popResponse(now);
        // Waiters first: the fill's CTA owner (for interference
        // attribution) is the primary requester's, and the primary is
        // the oldest waiter with a tracked request id.
        const std::vector<MshrWaiter> waiters = mshr_.complete(line);
        std::int64_t owner = -1;
        if (memProfiler_ != nullptr) {
            for (MshrWaiter waiter : waiters) {
                if (waiter == kWriteWaiter || waiterReqId(waiter) == 0)
                    continue;
                owner = memProfiler_->ctaKeyOf(waiterReqId(waiter));
                break;
            }
        }
        const Eviction ev = tags_.fill(line, now, false, owner);
        evictIfDirty(ev);
        if (memProfiler_ != nullptr && ev.valid) {
            memProfiler_->onEviction(MemLevel::L2, owner, ev.owner,
                                     ev.distinctOwners);
        }
        for (MshrWaiter waiter : waiters) {
            if (waiter == kWriteWaiter) {
                tags_.markDirty(line);
                continue;
            }
            // The fill closes the primary's dram_svc stage and every
            // merged secondary's l2_mshr stage.
            if (memProfiler_ != nullptr) {
                memProfiler_->enterStage(waiterReqId(waiter),
                                         MemStage::L2Return, now);
            }
            replies_.push_back({line, waiterCore(waiter),
                                waiterReqId(waiter)});
        }
    }
    return any;
}

bool
MemPartition::handleRequest(Cycle now, const MemRequest& req)
{
    const bool hit = tags_.access(req.lineAddr, now);
    if (hit) {
        if (req.write) {
            tags_.markDirty(req.lineAddr);
        } else {
            if (memProfiler_ != nullptr) {
                memProfiler_->enterStage(req.reqId, MemStage::L2Return,
                                         now);
            }
            replies_.push_back({req.lineAddr, req.coreId, req.reqId});
        }
        return true;
    }

    // Miss: reads wait on the fill; writes allocate via fetch-on-write.
    const MshrWaiter waiter =
        req.write ? kWriteWaiter : packWaiter(req.reqId, req.coreId);
    if (!mshr_.has(req.lineAddr)) {
        // Primary miss needs both an MSHR entry and DRAM queue space.
        if (mshr_.full() || !dram_.canAccept()) {
            ++stallCycles_;
            return false;
        }
        if (mshr_.allocate(req.lineAddr, waiter) != MshrOutcome::NewEntry)
            panic("l2 ", name_, ": expected new MSHR entry");
        dram_.push(now, req.lineAddr, false, req.write ? 0 : req.reqId);
        if (memProfiler_ != nullptr && !req.write) {
            memProfiler_->enterStage(req.reqId, MemStage::DramQueue,
                                     now);
        }
        return true;
    }
    switch (mshr_.allocate(req.lineAddr, waiter)) {
      case MshrOutcome::Merged:
        // Secondary miss rides the in-flight fetch.
        if (memProfiler_ != nullptr && !req.write) {
            memProfiler_->enterStage(req.reqId, MemStage::L2Mshr, now);
        }
        return true;
      case MshrOutcome::FullEntry:
        ++stallCycles_;
        return false;
      default:
        panic("l2 ", name_, ": unexpected MSHR outcome");
    }
}

bool
MemPartition::tick(Cycle now)
{
    if (memProfiler_ != nullptr) {
        memProfiler_->recordMshrOccupancy(MemLevel::L2,
                                          mshr_.entriesInUse());
    }
    bool did_work = dram_.tick(now);
    did_work |= handleDramResponses(now);

    for (unsigned port = 0; port < kL2PortsPerCycle; ++port) {
        if (!input_.ready(now))
            break;
        // A head-of-line stall still counts as work: the retry mutates
        // the stall counters, so the cycle is observable.
        did_work = true;
        if (!handleRequest(now, input_.front()))
            break; // head-of-line stall; retry next cycle
        input_.pop(now);
    }

    // Drain buffered dirty victims when DRAM has room.
    while (!writebacks_.empty() && dram_.canAccept()) {
        dram_.push(now, writebacks_.front(), true);
        writebacks_.pop_front();
        did_work = true;
    }
    return did_work;
}

Cycle
MemPartition::nextEventCycle(Cycle now) const
{
    // Buffered replies wait only on the interconnect, which is polled
    // by the GPU's traffic mover — never skip past them.
    if (!replies_.empty())
        return now;
    Cycle next = dram_.nextEventCycle(now);
    if (!input_.empty())
        next = std::min(next, std::max(input_.nextReady(), now));
    // Pending writebacks wake on DRAM queue space, i.e. on a DRAM
    // service, which dram_.nextEventCycle already bounds.
    return next;
}

const MemResponse&
MemPartition::peekResponse() const
{
    if (replies_.empty())
        panic("partition ", name_, ": peekResponse on empty queue");
    return replies_.front();
}

MemResponse
MemPartition::popResponse()
{
    BSCHED_CHECK(responseReady(),
                 "partition ", name_, ": popResponse on empty queue");
    if (replies_.empty())
        panic("partition ", name_, ": popResponse on empty queue");
    MemResponse resp = replies_.front();
    replies_.pop_front();
    return resp;
}

bool
MemPartition::drained() const
{
    return input_.empty() && mshr_.empty() && dram_.idle() &&
        replies_.empty() && writebacks_.empty();
}

void
MemPartition::flush()
{
    if (!drained())
        panic("partition ", name_, ": flush while not drained");
    tags_.flushAll();
}

void
MemPartition::addStats(StatSet& stats) const
{
    tags_.addStats(stats, name_ + ".l2");
    mshr_.addStats(stats, name_ + ".l2mshr");
    dram_.addStats(stats, name_ + ".dram");
    stats.add(name_ + ".req_read", static_cast<double>(readRequests_));
    stats.add(name_ + ".req_write", static_cast<double>(writeRequests_));
    stats.add(name_ + ".l2.stall", static_cast<double>(stallCycles_));
}

} // namespace bsched
