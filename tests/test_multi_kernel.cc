/**
 * @file
 * Tests for the multi-kernel execution policies (sequential / spatial /
 * mixed) and the STP/ANTT metrics.
 */

#include <gtest/gtest.h>

#include "gpu/multi_kernel.hh"
#include "kernel/program_builder.hh"

namespace bsched {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::gtx480();
    c.numCores = 4;
    c.numMemPartitions = 2;
    return c;
}

KernelInfo
kernel(const char* name, std::uint32_t trips)
{
    KernelInfo k;
    k.name = name;
    k.grid = {16, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    ProgramBuilder b;
    b.loop(trips).alu(2, false).endLoop();
    k.program = b.build();
    return k;
}

TEST(MultiKernel, SequentialTotalIsSumOfParts)
{
    const KernelInfo a = kernel("a", 20);
    const KernelInfo b = kernel("b", 40);
    const auto report = runMultiKernel(cfg(), {&a, &b},
                                       MultiKernelPolicy::Sequential);
    ASSERT_EQ(report.sharedCycles.size(), 2u);
    // Back-to-back: total >= each part; parts roughly match isolated.
    EXPECT_GE(report.totalCycles, report.sharedCycles[0]);
    EXPECT_NEAR(static_cast<double>(report.sharedCycles[0]),
                static_cast<double>(report.isolatedCycles[0]),
                0.1 * static_cast<double>(report.isolatedCycles[0]));
}

TEST(MultiKernel, SequentialStpIsNearTwo)
{
    // Each kernel runs alone during its slot: per-kernel slowdown ~1.
    const KernelInfo a = kernel("a", 30);
    const KernelInfo b = kernel("b", 30);
    const auto report = runMultiKernel(cfg(), {&a, &b},
                                       MultiKernelPolicy::Sequential);
    EXPECT_NEAR(report.stp(), 2.0, 0.2);
    EXPECT_NEAR(report.antt(), 1.0, 0.1);
}

TEST(MultiKernel, SpatialSplitsCores)
{
    const KernelInfo a = kernel("a", 30);
    const KernelInfo b = kernel("b", 30);
    const auto report =
        runMultiKernel(cfg(), {&a, &b}, MultiKernelPolicy::Spatial);
    // Each kernel on half the cores: slower than isolated.
    EXPECT_GT(report.sharedCycles[0], report.isolatedCycles[0]);
    EXPECT_GT(report.sharedCycles[1], report.isolatedCycles[1]);
    // But they overlap: total < sum of shared runtimes.
    EXPECT_LT(report.totalCycles,
              report.sharedCycles[0] + report.sharedCycles[1]);
}

TEST(MultiKernel, SpatialHonoursExplicitSplit)
{
    const KernelInfo a = kernel("a", 30);
    const KernelInfo b = kernel("b", 30);
    const auto even =
        runMultiKernel(cfg(), {&a, &b}, MultiKernelPolicy::Spatial, {2});
    const auto skewed =
        runMultiKernel(cfg(), {&a, &b}, MultiKernelPolicy::Spatial, {1});
    // Kernel a with only 1 core is slower than with 2.
    EXPECT_GT(skewed.sharedCycles[0], even.sharedCycles[0]);
}

TEST(MultiKernel, MixedRunsBothKernelsOnEveryCore)
{
    const KernelInfo a = kernel("a", 30);
    const KernelInfo b = kernel("b", 30);
    const auto report =
        runMultiKernel(cfg(), {&a, &b}, MultiKernelPolicy::Mixed);
    EXPECT_EQ(report.sharedCycles.size(), 2u);
    EXPECT_GT(report.totalCycles, 0u);
    // Both kernels finish.
    EXPECT_GT(report.stp(), 0.5);
}

TEST(MultiKernel, FairnessMetricsFromKnownCycles)
{
    MultiKernelReport report;
    report.isolatedCycles = {100, 100};
    report.sharedCycles = {150, 300}; // slowdowns 1.5 and 3.0
    EXPECT_DOUBLE_EQ(report.maxSlowdown(), 3.0);
    // Normalized progress 1/1.5 vs 1/3: min/max = 0.5.
    EXPECT_DOUBLE_EQ(report.fairness(), 0.5);

    report.sharedCycles = {200, 200};
    EXPECT_DOUBLE_EQ(report.maxSlowdown(), 2.0);
    EXPECT_DOUBLE_EQ(report.fairness(), 1.0); // equal slowdown is fair
}

TEST(MultiKernel, SequentialIsFairAndBoundsMaxSlowdown)
{
    const KernelInfo a = kernel("a", 30);
    const KernelInfo b = kernel("b", 30);
    const auto report = runMultiKernel(cfg(), {&a, &b},
                                       MultiKernelPolicy::Sequential);
    // Identical kernels run back-to-back: both slow down alike.
    EXPECT_GT(report.fairness(), 0.8);
    EXPECT_GE(report.maxSlowdown(), report.antt());
}

TEST(IsolatedCycleCache, KeyIsContentBased)
{
    const KernelInfo a1 = kernel("a", 20);
    const KernelInfo a2 = kernel("a", 20);
    const KernelInfo b = kernel("b", 40);
    const GpuConfig c = cfg();
    // Same content -> same key, regardless of object identity.
    EXPECT_EQ(IsolatedCycleCache::key(c, a1),
              IsolatedCycleCache::key(c, a2));
    EXPECT_NE(IsolatedCycleCache::key(c, a1),
              IsolatedCycleCache::key(c, b));
    // The machine configuration is part of the key.
    GpuConfig other = cfg();
    other.numCores = 2;
    EXPECT_NE(IsolatedCycleCache::key(c, a1),
              IsolatedCycleCache::key(other, a1));
}

TEST(IsolatedCycleCache, LookupInsertAndHitAccounting)
{
    IsolatedCycleCache cache;
    Cycle out = 0;
    EXPECT_FALSE(cache.lookup(42, &out));
    EXPECT_EQ(cache.hits(), 0u);
    cache.insert(42, 1234);
    EXPECT_TRUE(cache.lookup(42, &out));
    EXPECT_EQ(out, 1234u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(IsolatedCycleCache, CachedRunsMatchUncachedBaselines)
{
    const KernelInfo a = kernel("a", 20);
    const KernelInfo b = kernel("b", 40);
    const GpuConfig c = cfg();
    const auto plain =
        runMultiKernel(c, {&a, &b}, MultiKernelPolicy::Spatial);

    IsolatedCycleCache cache;
    const auto first = runMultiKernel(c, {&a, &b},
                                      MultiKernelPolicy::Spatial, {},
                                      nullptr, &cache);
    EXPECT_EQ(cache.size(), 2u);
    const std::uint64_t hits_after_first = cache.hits();
    const auto second = runMultiKernel(c, {&a, &b},
                                       MultiKernelPolicy::Mixed, {},
                                       nullptr, &cache);
    // The second run resolved both baselines from the cache.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.hits(), hits_after_first + 2);

    // Cached baselines equal freshly simulated ones, so the derived
    // metrics are identical with and without the cache.
    ASSERT_EQ(first.isolatedCycles.size(), plain.isolatedCycles.size());
    EXPECT_EQ(first.isolatedCycles, plain.isolatedCycles);
    EXPECT_EQ(first.sharedCycles, plain.sharedCycles);
    EXPECT_EQ(second.isolatedCycles, plain.isolatedCycles);
}

TEST(MultiKernel, PolicyNames)
{
    EXPECT_STREQ(toString(MultiKernelPolicy::Sequential), "sequential");
    EXPECT_STREQ(toString(MultiKernelPolicy::Spatial), "spatial");
    EXPECT_STREQ(toString(MultiKernelPolicy::Mixed), "mixed");
}

TEST(MultiKernel, EmptyKernelListDies)
{
    EXPECT_DEATH(
        runMultiKernel(cfg(), {}, MultiKernelPolicy::Sequential),
        "no kernels");
}

TEST(MultiKernel, BadSplitDies)
{
    const KernelInfo a = kernel("a", 10);
    const KernelInfo b = kernel("b", 10);
    EXPECT_DEATH(runMultiKernel(cfg(), {&a, &b},
                                MultiKernelPolicy::Spatial, {1, 2}),
                 "split");
}

} // namespace
} // namespace bsched
