"""Shared engine for the bsched static analysis suite.

Provides what every pass needs and no pass should reimplement:

 - file discovery from the CMake compilation database plus a header
   glob, so passes always see exactly what the build compiles;
 - comment/string stripping that preserves line numbers;
 - the ``Finding`` record and its deterministic ordering;
 - the audited allowlist (per-file, per-rule, justification mandatory,
   stale entries rejected);
 - the deterministic ``bsched-analysis-v1`` findings artifact.

Passes are plain modules exposing ``NAME`` (the pass name), ``RULES``
(dict of rule suffix -> one-line description; the full rule name is
``<NAME>.<suffix>``) and ``run(ctx) -> list[Finding]``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path


class EngineError(Exception):
    """Usage/configuration error: exit status 2, not a finding."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    ``file`` is repo-relative (posix separators); ``line`` is 1-based,
    0 for whole-file findings. ``rule`` is the namespaced
    ``<pass>.<rule>`` name the allowlist keys on.
    """

    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        loc = f"{self.file}:{self.line}" if self.line else self.file
        return f"{loc}: {self.rule}: {self.message}"


COMMENT_STRING_RE = re.compile(
    r"""
      //[^\n]*            # line comment
    | /\*.*?\*/           # block comment
    | "(?:\\.|[^"\\])*"   # string literal
    | '(?:\\.|[^'\\])*'   # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and literals, preserving line numbers."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return COMMENT_STRING_RE.sub(blank, text)


def line_at(text: str, offset: int) -> int:
    """1-based line number of character ``offset`` in ``text``."""
    return text.count("\n", 0, offset) + 1


class SourceFile:
    """One scanned source file: raw text plus a lazily stripped view.

    Passes match code structure against ``stripped`` (comments and
    string literals blanked, line numbers preserved) and extract string
    literals — stat names, JSON keys — from ``raw``.
    """

    def __init__(self, path: Path, repo: Path):
        self.path = path
        self.rel = path.relative_to(repo).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self._stripped: str | None = None

    @property
    def stripped(self) -> str:
        if self._stripped is None:
            self._stripped = strip_comments_and_strings(self.raw)
        return self._stripped


def load_sources(build_dir: Path, repo: Path) -> list[SourceFile]:
    """Compiled src/ translation units plus all src/ headers."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise EngineError(
            f"{db_path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset "
            "does) or pass --build-dir"
        )
    src_root = (repo / "src").resolve()
    paths: set[Path] = set()
    for entry in json.loads(db_path.read_text()):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src_root in path.parents:
            paths.add(path)
    paths.update(p.resolve() for p in src_root.rglob("*.hh"))
    return [SourceFile(p, repo) for p in sorted(paths)]


class Context:
    """Everything a pass may consult: scanned sources plus repo files
    outside the compilation database (docs, tests, bench baselines)."""

    def __init__(self, repo: Path, build_dir: Path,
                 files: list[SourceFile]):
        self.repo = repo
        self.build_dir = build_dir
        self.files = files
        self._extra: dict[str, str | None] = {}

    def in_dirs(self, *prefixes: str) -> list[SourceFile]:
        """Scanned files whose repo-relative path starts with a prefix."""
        return [f for f in self.files
                if any(f.rel.startswith(p) for p in prefixes)]

    def read(self, rel: str) -> str | None:
        """Text of a repo file outside the scan set; None if absent."""
        if rel not in self._extra:
            path = self.repo / rel
            self._extra[rel] = (
                path.read_text(encoding="utf-8", errors="replace")
                if path.is_file() else None)
        return self._extra[rel]

    def glob(self, pattern: str) -> list[Path]:
        return sorted(self.repo.glob(pattern))


class Allowlist:
    """Audited exceptions: ``<path> <pass.rule> <justification...>``.

    The justification is mandatory, the rule must exist, the file must
    exist, and every entry must suppress at least one finding — a
    stale entry is itself an error, so the list can only shrink as the
    code improves.
    """

    def __init__(self, path: Path, repo: Path, known_rules: set[str]):
        self.path = path
        self.entries: dict[tuple[str, str], str] = {}
        self.used: set[tuple[str, str]] = set()
        self.errors: list[str] = []
        if not path.is_file():
            return
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                self.errors.append(
                    f"{path.name}:{lineno}: allowlist entry needs "
                    "'<path> <pass.rule> <justification>'"
                )
                continue
            rel, rule, justification = parts
            if rule not in known_rules:
                self.errors.append(
                    f"{path.name}:{lineno}: unknown rule '{rule}' "
                    f"(known: {', '.join(sorted(known_rules))})"
                )
                continue
            if not (repo / rel).is_file():
                self.errors.append(
                    f"{path.name}:{lineno}: allowlisted file '{rel}' "
                    "does not exist"
                )
                continue
            self.entries[(rel, rule)] = justification

    def allows(self, finding: Finding) -> bool:
        key = (finding.file, finding.rule)
        if key in self.entries:
            self.used.add(key)
            return True
        return False

    def stale(self) -> list[tuple[str, str]]:
        return sorted(set(self.entries) - self.used)


def write_artifact(path: Path, passes: list[str], files_scanned: int,
                   findings: list[Finding], suppressed: int) -> None:
    """Deterministic ``bsched-analysis-v1`` findings artifact: sorted
    findings, no timestamps or absolute paths — byte-identical for
    identical inputs."""
    doc = {
        "schema": "bsched-analysis-v1",
        "passes": passes,
        "files_scanned": files_scanned,
        "suppressed": suppressed,
        "findings": [
            {"file": f.file, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in sorted(findings)
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
