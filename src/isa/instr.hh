/**
 * @file
 * Static instruction record. Warps in a kernel share one program; the
 * per-warp dynamic state (PC, loop iteration) lives in the core's Warp
 * structure.
 */

#ifndef BSCHED_ISA_INSTR_HH
#define BSCHED_ISA_INSTR_HH

#include <cstdint>

#include "isa/opcode.hh"
#include "sim/types.hh"

namespace bsched {

/** Maximum virtual registers trackable per warp by the scoreboard. */
constexpr int kMaxWarpRegs = 64;

/** Sentinel register id meaning "no operand". */
constexpr std::int8_t kNoReg = -1;

/**
 * One static instruction. Register ids are warp-level virtual registers
 * (all lanes move in lock-step, so dependences are tracked per warp).
 */
struct Instr
{
    Opcode op = Opcode::Alu;
    std::int8_t dst = kNoReg;
    std::int8_t src0 = kNoReg;
    std::int8_t src1 = kNoReg;
    /** Index into the program's MemPattern table; memory ops only. */
    std::uint8_t patternId = 0;
    /** Lanes active under SIMT divergence (1..32). */
    std::uint8_t activeLanes = kWarpSize;
};

} // namespace bsched

#endif // BSCHED_ISA_INSTR_HH
