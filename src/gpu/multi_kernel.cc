#include "gpu/multi_kernel.hh"

#include "sim/log.hh"

namespace bsched {

const char*
toString(MultiKernelPolicy policy)
{
    switch (policy) {
      case MultiKernelPolicy::Sequential: return "sequential";
      case MultiKernelPolicy::Spatial: return "spatial";
      case MultiKernelPolicy::Mixed: return "mixed";
    }
    return "?";
}

double
MultiKernelReport::stp() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        sum += static_cast<double>(isolatedCycles[i]) /
            static_cast<double>(sharedCycles[i]);
    }
    return sum;
}

double
MultiKernelReport::antt() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < sharedCycles.size(); ++i) {
        sum += static_cast<double>(sharedCycles[i]) /
            static_cast<double>(isolatedCycles[i]);
    }
    return sum / static_cast<double>(sharedCycles.size());
}

namespace {

Cycle
isolatedRun(const GpuConfig& config, const KernelInfo& kernel)
{
    Gpu gpu(config);
    const int id = gpu.launchKernel(kernel);
    gpu.run();
    return gpu.kernelCycles(id);
}

} // namespace

MultiKernelReport
runMultiKernel(const GpuConfig& config,
               const std::vector<const KernelInfo*>& kernels,
               MultiKernelPolicy policy, std::vector<int> spatial_split,
               const std::vector<Cycle>* isolated_cycles)
{
    if (kernels.empty())
        fatal("runMultiKernel: no kernels");

    MultiKernelReport report;
    report.policy = policy;
    if (isolated_cycles) {
        if (isolated_cycles->size() != kernels.size())
            fatal("runMultiKernel: isolated_cycles size mismatch");
        report.isolatedCycles = *isolated_cycles;
    } else {
        for (const KernelInfo* kernel : kernels)
            report.isolatedCycles.push_back(isolatedRun(config, *kernel));
    }

    switch (policy) {
      case MultiKernelPolicy::Sequential: {
        Gpu gpu(config);
        std::vector<int> ids;
        for (const KernelInfo* kernel : kernels) {
            ids.push_back(gpu.launchKernel(*kernel));
            gpu.run();
        }
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
      case MultiKernelPolicy::Spatial: {
        const int cores = static_cast<int>(config.numCores);
        const int n = static_cast<int>(kernels.size());
        if (spatial_split.empty()) {
            for (int i = 1; i < n; ++i)
                spatial_split.push_back(cores * i / n);
        }
        if (static_cast<int>(spatial_split.size()) != n - 1)
            fatal("runMultiKernel: need ", n - 1, " split points");
        Gpu gpu(config);
        std::vector<int> ids;
        for (int i = 0; i < n; ++i) {
            const int begin = i == 0 ? 0 : spatial_split[i - 1];
            const int end = i == n - 1 ? cores : spatial_split[i];
            if (begin >= end)
                fatal("runMultiKernel: empty core range for kernel ", i);
            ids.push_back(gpu.launchKernel(*kernels[i], begin, end));
        }
        gpu.run();
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
      case MultiKernelPolicy::Mixed: {
        // MCK relies on LCS per-core limits to carve out space for the
        // partner kernel on every core.
        GpuConfig mixed = config;
        if (mixed.ctaSched == CtaSchedKind::RoundRobin)
            mixed.ctaSched = CtaSchedKind::Lazy;
        else if (mixed.ctaSched == CtaSchedKind::Block)
            mixed.ctaSched = CtaSchedKind::LazyBlock;
        Gpu gpu(mixed);
        std::vector<int> ids;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            ids.push_back(gpu.launchKernel(*kernels[i], 0, -1,
                                           static_cast<int>(i)));
        }
        gpu.run();
        for (int id : ids)
            report.sharedCycles.push_back(gpu.kernelCycles(id));
        report.totalCycles = gpu.cycle();
        report.stats = gpu.stats();
        break;
      }
    }
    return report;
}

} // namespace bsched
