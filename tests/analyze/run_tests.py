#!/usr/bin/env python3
"""Self-tests for tools/analyze: seeded-violation fixtures per pass.

Each test builds a throwaway mini-repo (sources + compile_commands.json
+ docs/bench fixtures as needed), runs the analyzer in-process against
it and asserts the expected rule fires — or stays silent — plus the
allowlist lifecycle (suppress, stale, invalid) and artifact
determinism. One subprocess test covers the real entry point
(`python3 tools/analyze`), exit codes and --github annotations.

Runs under plain unittest (no pytest in the image):
    python3 tests/analyze/run_tests.py
"""

from __future__ import annotations

import contextlib
import io
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

from analyze import annotations  # noqa: E402
from analyze.cli import main  # noqa: E402


class MiniRepo:
    """A throwaway repository the analyzer can scan."""

    def __init__(self, root: Path):
        self.root = root
        self.build = root / "build"
        self.build.mkdir(parents=True)
        self.compiled: list[str] = []

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        if rel.startswith("src/") and rel.endswith(".cc"):
            self.compiled.append(rel)

    def finish(self) -> None:
        entries = [
            {"directory": str(self.root),
             "command": f"c++ -std=c++20 -c {rel}", "file": rel}
            for rel in self.compiled
        ]
        (self.build / "compile_commands.json").write_text(
            json.dumps(entries))

    def run(self, *extra: str) -> tuple[int, str]:
        """Invoke the analyzer in-process; returns (exit, stdout)."""
        self.finish()
        argv = ["--repo", str(self.root), "--build-dir", str(self.build),
                "--allowlist", str(self.root / "allowlist.txt"),
                *extra]
        out = io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(out):
            code = main(argv)
        return code, out.getvalue()


class AnalyzeCase(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self._count = 0

    def repo(self) -> MiniRepo:
        self._count += 1
        root = Path(self._tmp.name) / f"repo{self._count}"
        return MiniRepo(root)

    def assertRule(self, output: str, rule: str) -> None:
        self.assertIn(f" {rule}: ", output,
                      f"expected rule {rule} in:\n{output}")


class DeterminismPass(AnalyzeCase):
    def test_seeded_violations_fire(self) -> None:
        repo = self.repo()
        repo.write("src/core/bad.cc", "\n".join([
            "#include <random>",
            "std::mt19937 gen;",
            "int f() { return rand(); }",
            "std::unordered_map<int, int> table;",
            "std::map<Foo*, int> by_ptr;",
            "std::atomic<double> acc;",
            "long t() { return time(nullptr); }",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        for rule in ("determinism.rand", "determinism.wall-clock",
                     "determinism.unordered-container",
                     "determinism.pointer-keyed-container",
                     "determinism.atomic-float"):
            self.assertRule(out, rule)

    def test_comments_and_strings_do_not_fire(self) -> None:
        repo = self.repo()
        repo.write("src/core/ok.cc", "\n".join([
            "// rand() in a comment, std::mt19937 too",
            "/* time(nullptr) */",
            'const char* doc = "calls rand() and srand()";',
            "int seeded(Rng& rng) { return rng.next(); }",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 0, out)


class FfSoundnessPass(AnalyzeCase):
    def test_tick_without_next_event_fires(self) -> None:
        repo = self.repo()
        repo.write("src/mem/ticker.hh", "\n".join([
            "class Ticker",
            "{",
            "  public:",
            "    bool tick(Cycle now);",
            "};",
            "",
        ]))
        repo.write("src/mem/ticker.cc", "int x;\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "ff-soundness.missing-next-event")

    def test_tick_with_next_event_is_clean(self) -> None:
        repo = self.repo()
        repo.write("src/mem/ticker.hh", "\n".join([
            "class Ticker",
            "{",
            "  public:",
            "    bool tick(Cycle now);",
            "    Cycle nextEventCycle(Cycle now) const;",
            "};",
            "",
        ]))
        repo.write("src/mem/ticker.cc", "int x;\n")
        # Isolated run: the contract-coverage pass legitimately flags
        # this contract-free fixture, which is not under test here.
        code, out = repo.run("--passes", "ff-soundness")
        self.assertEqual(code, 0, out)

    def test_scheduler_subclass_must_override(self) -> None:
        repo = self.repo()
        repo.write("src/cta/cta_sched.hh", "\n".join([
            "class CtaScheduler",
            "{",
            "  public:",
            "    virtual void tick(Cycle now);",
            "    virtual Cycle nextEventCycle(Cycle now) const;",
            "};",
            "",
        ]))
        # Directly and transitively derived, neither overrides.
        repo.write("src/cta/silent.hh", "\n".join([
            "class SilentSched : public CtaScheduler",
            "{",
            "  public:",
            "    void tick(Cycle now) override;",
            "};",
            "class DeeperSched : public SilentSched",
            "{",
            "  public:",
            "    void tick(Cycle now) override;",
            "};",
            "",
        ]))
        repo.write("src/cta/silent.cc", "int x;\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertEqual(out.count("ff-soundness.inherited-never"), 2,
                         out)

    def test_explicit_never_override_is_clean(self) -> None:
        repo = self.repo()
        repo.write("src/cta/cta_sched.hh", "\n".join([
            "class CtaScheduler",
            "{",
            "  public:",
            "    virtual void tick(Cycle now);",
            "    virtual Cycle nextEventCycle(Cycle now) const;",
            "};",
            "class GreedySched : public CtaScheduler",
            "{",
            "  public:",
            "    void tick(Cycle now) override;",
            "    Cycle nextEventCycle(Cycle now) const override;",
            "};",
            "",
        ]))
        repo.write("src/cta/cta_sched.cc", "int x;\n")
        code, out = repo.run("--passes", "ff-soundness")
        self.assertEqual(code, 0, out)


class ContractCoveragePass(AnalyzeCase):
    def test_mutating_module_without_contracts_fires(self) -> None:
        repo = self.repo()
        repo.write("src/mem/widget.hh", "\n".join([
            "class Widget",
            "{",
            "  public:",
            "    void setValue(int v);",
            "};",
            "",
        ]))
        repo.write("src/mem/widget.cc", "int x;\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "contract-coverage.uncovered-module")

    def test_contract_without_armed_test_fires(self) -> None:
        repo = self.repo()
        repo.write("src/mem/checked.hh", "class Checked {};\n")
        repo.write("src/mem/checked.cc",
                   'void f() { BSCHED_CHECK(true, "ok"); }\n')
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "contract-coverage.untested-contract")

    def test_armed_test_satisfies_both_rules(self) -> None:
        repo = self.repo()
        repo.write("src/mem/checked.hh", "\n".join([
            "class Checked",
            "{",
            "  public:",
            "    void setValue(int v);",
            "};",
            "",
        ]))
        repo.write("src/mem/checked.cc", "\n".join([
            "void Checked::setValue(int v)",
            "{",
            '    BSCHED_CHECK(v >= 0, "negative");',
            "}",
            "",
        ]))
        repo.write("tests/test_checked.cc", "\n".join([
            '#include "mem/checked.hh"',
            "void t() { ScopedContractThrows guard; }",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 0, out)


class ObserverGuardsPass(AnalyzeCase):
    def test_unguarded_dereference_fires(self) -> None:
        repo = self.repo()
        repo.write("src/gpu/model.cc", "\n".join([
            "void Model::emit(Cycle now)",
            "{",
            "    tracer_->record(now);",
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "observer-guards.unguarded-call")

    def test_guarded_dereference_is_clean(self) -> None:
        repo = self.repo()
        repo.write("src/gpu/model.cc", "\n".join([
            "void Model::emit(Cycle now)",
            "{",
            "    if (tracer_)",
            "        tracer_->record(now);",
            "}",
            "void Model::other(Cycle now)",
            "{",
            "    if (obs_.profiler != nullptr)",
            "        obs_.profiler->note(now);",
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 0, out)

    def test_guard_does_not_leak_across_functions(self) -> None:
        repo = self.repo()
        repo.write("src/gpu/model.cc", "\n".join([
            "void Model::guarded(Cycle now)",
            "{",
            "    if (tracer_)",
            "        tracer_->record(now);",
            "}",
            "void Model::unguarded(Cycle now)",
            "{",
            "    tracer_->record(now);",
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertEqual(out.count("observer-guards.unguarded-call"), 1,
                         out)

    def test_due_without_next_due_fires(self) -> None:
        repo = self.repo()
        repo.write("src/core/poller.cc", "\n".join([
            "void Poller::tick(Cycle now)",
            "{",
            "    if (sampler_ && sampler_->due(now))",
            "        sample(now);",
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "observer-guards.unfenced-sampler")

    def test_due_with_next_due_in_module_is_clean(self) -> None:
        repo = self.repo()
        repo.write("src/core/poller.hh", "\n".join([
            "class Poller",
            "{",
            "  public:",
            "    Cycle bound(Cycle now) const",
            "    {",
            "        return sampler_ ? sampler_->nextDue(now) : now;",
            "    }",
            "};",
            "",
        ]))
        repo.write("src/core/poller.cc", "\n".join([
            "void Poller::tick(Cycle now)",
            "{",
            "    if (sampler_ && sampler_->due(now))",
            "        sample(now);",
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 0, out)


class SchemaDriftPass(AnalyzeCase):
    DOC = "\n".join([
        "# Observability",
        "",
        "| series | kind |",
        "|---|---|",
        "| `core.ipc` | gauge |",
        "",
    ])

    def test_undocumented_series_fires(self) -> None:
        repo = self.repo()
        repo.write("docs/OBSERVABILITY.md", self.DOC)
        repo.write("src/core/emit.cc", "\n".join([
            "void f(IntervalSampler& s)",
            "{",
            '    s.record("core.ipc", 1);',
            '    s.record("core.mystery", 2);',
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "schema-drift.undocumented-series")
        self.assertIn("core.mystery", out)

    def test_stale_doc_entry_fires(self) -> None:
        repo = self.repo()
        repo.write("docs/OBSERVABILITY.md", self.DOC)
        repo.write("src/core/emit.cc", "int x;\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "schema-drift.stale-series-doc")
        self.assertIn("core.ipc", out)

    def test_matching_series_is_clean(self) -> None:
        repo = self.repo()
        repo.write("docs/OBSERVABILITY.md", self.DOC)
        repo.write("src/core/emit.cc",
                   'void f(S& s) { s.record("core.ipc", 1); }\n')
        code, out = repo.run()
        self.assertEqual(code, 0, out)

    def test_undocumented_serve_stat_fires(self) -> None:
        repo = self.repo()
        repo.write("docs/SERVING.md", "\n".join([
            "| stat | meaning |",
            "|---|---|",
            "| `serve.requests` | count |",
            "",
        ]))
        repo.write("src/serve/stats.cc", "\n".join([
            "void f(StatSet& s)",
            "{",
            '    s.set("serve.requests", 1);',
            '    s.set("serve.new_thing", 2);',
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "schema-drift.undocumented-stat")
        self.assertIn("serve.new_thing", out)

    def test_unbaselined_json_key_fires(self) -> None:
        repo = self.repo()
        repo.write("bench/BENCH_demo.json", json.dumps(
            {"schema": "bsched-demo-v1", "old_key": 1}))
        repo.write("src/serve/writer.cc", "\n".join([
            "void writeJson(std::ostream& os)",
            "{",
            '    os << "{\\"schema\\": \\"bsched-demo-v1\\",";',
            '    os << "\\"old_key\\": 1,";',
            '    os << "\\"fresh_key\\": 2}";',
            "}",
            "",
        ]))
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "schema-drift.unbaselined-json-key")
        self.assertIn("fresh_key", out)
        self.assertNotIn("'old_key'", out)


class AllowlistLifecycle(AnalyzeCase):
    def seeded(self) -> MiniRepo:
        repo = self.repo()
        repo.write("src/core/bad.cc", "std::mt19937 gen;\n")
        return repo

    def test_justified_entry_suppresses(self) -> None:
        repo = self.seeded()
        repo.write("allowlist.txt",
                   "src/core/bad.cc determinism.rand fixture needs a "
                   "named generator\n")
        code, out = repo.run()
        self.assertEqual(code, 0, out)
        self.assertIn("1 audited suppression", out)

    def test_stale_entry_fails_full_run(self) -> None:
        repo = self.repo()
        repo.write("src/core/fine.cc", "int x;\n")
        repo.write("allowlist.txt",
                   "src/core/fine.cc determinism.rand was fixed long "
                   "ago\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "allowlist.stale")

    def test_stale_check_skipped_on_partial_run(self) -> None:
        repo = self.repo()
        repo.write("src/core/fine.cc", "int x;\n")
        repo.write("allowlist.txt",
                   "src/core/fine.cc contract-coverage.uncovered-module "
                   "justified elsewhere\n")
        code, out = repo.run("--passes", "determinism")
        self.assertEqual(code, 0, out)

    def test_missing_justification_is_invalid(self) -> None:
        repo = self.seeded()
        repo.write("allowlist.txt", "src/core/bad.cc determinism.rand\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "allowlist.invalid")

    def test_unknown_rule_is_invalid(self) -> None:
        repo = self.seeded()
        repo.write("allowlist.txt",
                   "src/core/bad.cc determinism.nope some reason\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "allowlist.invalid")

    def test_nonexistent_file_is_invalid(self) -> None:
        repo = self.seeded()
        repo.write("allowlist.txt",
                   "src/core/gone.cc determinism.rand some reason\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertRule(out, "allowlist.invalid")


class CliBehaviour(AnalyzeCase):
    def test_artifact_is_deterministic_and_sorted(self) -> None:
        repo = self.repo()
        repo.write("src/core/bad.cc",
                   "std::mt19937 gen;\nint f() { return rand(); }\n")
        art1 = repo.root / "a1.json"
        art2 = repo.root / "a2.json"
        repo.run("--artifact", str(art1))
        repo.run("--artifact", str(art2))
        self.assertEqual(art1.read_bytes(), art2.read_bytes())
        doc = json.loads(art1.read_text())
        self.assertEqual(doc["schema"], "bsched-analysis-v1")
        self.assertEqual(doc["files_scanned"], 1)
        findings = doc["findings"]
        self.assertGreaterEqual(len(findings), 2)
        keys = [(f["file"], f["line"], f["rule"]) for f in findings]
        self.assertEqual(keys, sorted(keys))

    def test_artifact_written_on_clean_run(self) -> None:
        repo = self.repo()
        repo.write("src/core/fine.cc", "int x;\n")
        art = repo.root / "clean.json"
        code, _ = repo.run("--artifact", str(art))
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(art.read_text())["findings"], [])

    def test_unknown_pass_is_usage_error(self) -> None:
        repo = self.repo()
        repo.write("src/core/fine.cc", "int x;\n")
        code, out = repo.run("--passes", "nope")
        self.assertEqual(code, 2)
        self.assertIn("unknown pass", out)

    def test_missing_compile_commands_is_usage_error(self) -> None:
        repo = self.repo()
        (repo.root / "src").mkdir(parents=True, exist_ok=True)
        code, out = repo.run("--build-dir", str(repo.root / "nowhere"))
        self.assertEqual(code, 2)
        self.assertIn("compile_commands.json", out)

    def test_headers_scanned_without_compile_entry(self) -> None:
        repo = self.repo()
        repo.write("src/core/only_header.hh", "std::mt19937 gen;\n")
        repo.write("src/core/unit.cc", "int x;\n")
        code, out = repo.run()
        self.assertEqual(code, 1)
        self.assertIn("src/core/only_header.hh", out)


class Annotations(unittest.TestCase):
    def test_format_and_escaping(self) -> None:
        line = annotations.format_annotation(
            "error", "rule:name", "50% done\nnext",
            file="src/a.cc", line=7)
        self.assertTrue(line.startswith("::error "))
        self.assertIn("file=src/a.cc,line=7", line)
        self.assertIn("title=rule%3Aname", line)
        self.assertIn("50%25 done%0Anext", line)

    def test_rejects_unknown_severity(self) -> None:
        with self.assertRaises(ValueError):
            annotations.format_annotation("fatal", "t", "m")


class EndToEnd(AnalyzeCase):
    """The real entry point, as CI invokes it."""

    def test_subprocess_findings_and_github_output(self) -> None:
        repo = self.repo()
        repo.write("src/core/bad.cc", "std::mt19937 gen;\n")
        repo.finish()
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "analyze"),
             "--repo", str(repo.root),
             "--build-dir", str(repo.build),
             "--allowlist", str(repo.root / "allowlist.txt"),
             "--github"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("determinism.rand", proc.stdout)
        self.assertIn("::error file=src/core/bad.cc,line=1", proc.stdout)

    def test_subprocess_clean_exit(self) -> None:
        repo = self.repo()
        repo.write("src/core/fine.cc", "int x;\n")
        repo.finish()
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "analyze"),
             "--repo", str(repo.root),
             "--build-dir", str(repo.build),
             "--allowlist", str(repo.root / "allowlist.txt")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    def test_list_rules_names_every_pass(self) -> None:
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "analyze"),
             "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for name in ("determinism.", "ff-soundness.",
                     "contract-coverage.", "observer-guards.",
                     "schema-drift."):
            self.assertIn(name, proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
