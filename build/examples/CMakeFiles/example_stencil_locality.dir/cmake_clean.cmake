file(REMOVE_RECURSE
  "CMakeFiles/example_stencil_locality.dir/stencil_locality.cpp.o"
  "CMakeFiles/example_stencil_locality.dir/stencil_locality.cpp.o.d"
  "example_stencil_locality"
  "example_stencil_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stencil_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
