file(REMOVE_RECURSE
  "CMakeFiles/tab_lcs_accuracy.dir/tab_lcs_accuracy.cc.o"
  "CMakeFiles/tab_lcs_accuracy.dir/tab_lcs_accuracy.cc.o.d"
  "tab_lcs_accuracy"
  "tab_lcs_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_lcs_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
