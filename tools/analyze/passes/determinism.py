"""determinism — reject nondeterminism sources in model code.

The whole evaluation rests on the simulator being bit-deterministic:
the same configuration must produce byte-identical ``bsched-*-v1``
artifacts for any ``--jobs`` count, machine and process invocation.
This pass rejects, at the source level, the nondeterminism sources
that have bitten timing simulators before they can reach a schedule
decision or an emitted artifact.
"""

from __future__ import annotations

import re

from ..engine import Context, Finding, line_at

NAME = "determinism"

RULES = {
    "rand": "rand()/srand()/std::random_device/std::mt19937 — model "
            "code must draw randomness from the seeded bsched::Rng "
            "(sim/rng.hh)",
    "wall-clock": "time()/clock()/gettimeofday/clock_gettime/"
                  "std::chrono clocks — wall-clock values differ per "
                  "run; anything derived from them is nondeterministic "
                  "by construction",
    "unordered-container": "std::unordered_map/set iteration order "
                           "follows the hash function and libc++/"
                           "libstdc++ disagree; use ordered containers "
                           "or sort before iterating",
    "pointer-keyed-container": "std::map/set keyed by a pointer type "
                               "is ordered by allocation address, "
                               "which ASLR randomizes per process",
    "atomic-float": "std::atomic<float|double> cross-thread "
                    "accumulation commits in nondeterministic order "
                    "and float addition does not associate",
}

PATTERNS = {
    "rand": re.compile(
        r"\bsrand\s*\(|(?<![:\w])rand\s*\(|std::random_device"
        r"|std::mt19937|\bdrand48\b|\blrand48\b"
    ),
    "wall-clock": re.compile(
        r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
        r"|(?<![:\w.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"
        r"|(?<![:\w.>])clock\s*\(\s*\)"
    ),
    "unordered-container": re.compile(
        r"std::unordered_(map|set|multimap|multiset)\b"
    ),
    "pointer-keyed-container": re.compile(
        r"std::(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"
    ),
    "atomic-float": re.compile(
        r"std::atomic\s*<\s*(float|double|long\s+double)\b"
    ),
}


def run(ctx: Context) -> list[Finding]:
    findings: list[Finding] = []
    for src in ctx.files:
        text = src.stripped
        for rule, pattern in PATTERNS.items():
            for match in pattern.finditer(text):
                findings.append(Finding(
                    file=src.rel,
                    line=line_at(text, match.start()),
                    rule=f"{NAME}.{rule}",
                    message=f"'{match.group(0).strip()}' — "
                            f"{RULES[rule]}",
                ))
    return findings
