# Empty compiler generated dependencies file for tab_config.
# This may be replaced when dependencies are built.
