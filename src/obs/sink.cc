#include "obs/sink.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/log.hh"

namespace bsched {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Integral values print exactly (cycle counts, instruction totals);
    // everything else with round-trip precision. snprintf with the
    // default "C" locale keeps the decimal point deterministic.
    if (value == std::rint(value) && std::fabs(value) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
writeStatsJson(std::ostream& os, const StatSet& stats)
{
    os << "{";
    bool first = true;
    for (const auto& [name, value] : stats.entries()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
    }
    os << "}";
}

void
writeStatsCsv(std::ostream& os, const StatSet& stats)
{
    os << "name,value\n";
    for (const auto& [name, value] : stats.entries())
        os << name << "," << jsonNumber(value) << "\n";
}

void
writeSeriesJson(std::ostream& os, const IntervalSampler& sampler)
{
    os << "{\"period\":" << sampler.period() << ",\"cycles\":[";
    bool first = true;
    for (Cycle c : sampler.cycles()) {
        if (!first)
            os << ",";
        first = false;
        os << c;
    }
    os << "],\"data\":{";
    first = true;
    for (const auto& [name, series] : sampler.series()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":{\"kind\":\""
           << toString(series.kind) << "\",\"values\":[";
        bool v_first = true;
        for (double v : series.values) {
            if (!v_first)
                os << ",";
            v_first = false;
            os << jsonNumber(v);
        }
        os << "]}";
    }
    os << "}}";
}

void
writeRunJson(std::ostream& os, const RunResult& result,
             const std::string& label, const IntervalSampler* sampler)
{
    os << "{\"schema\":\"bsched-run-v1\",\"label\":\"" << jsonEscape(label)
       << "\",\"cycles\":" << result.cycles
       << ",\"instrs\":" << result.instrs
       << ",\"ipc\":" << jsonNumber(result.ipc) << ",\"metrics\":{"
       << "\"l1_miss_rate\":" << jsonNumber(result.l1MissRate())
       << ",\"l2_miss_rate\":" << jsonNumber(result.l2MissRate())
       << ",\"dram_row_hit_rate\":" << jsonNumber(result.dramRowHitRate())
       << "},\"stats\":";
    writeStatsJson(os, result.stats);
    if (sampler != nullptr) {
        os << ",\"series\":";
        writeSeriesJson(os, *sampler);
    }
    os << "}\n";
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name))
{}

void
BenchReport::addRow(const std::string& label, const RunResult& result)
{
    for (const Row& row : rows_) {
        if (row.label == label)
            fatal("bench report '", name_, "': duplicate row label '",
                  label, "'");
    }
    rows_.push_back({label, result.cycles, result.instrs, result.ipc,
                     result.l1MissRate(), result.l2MissRate(),
                     result.dramRowHitRate()});
}

void
BenchReport::addMetric(const std::string& name, double value)
{
    metrics_.emplace_back(name, value);
}

void
BenchReport::writeJson(std::ostream& os) const
{
    os << "{\"schema\":\"bsched-bench-v1\",\"bench\":\""
       << jsonEscape(name_) << "\",\"rows\":[";
    bool first = true;
    for (const Row& row : rows_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"label\":\"" << jsonEscape(row.label)
           << "\",\"cycles\":" << row.cycles << ",\"instrs\":" << row.instrs
           << ",\"ipc\":" << jsonNumber(row.ipc)
           << ",\"l1_miss_rate\":" << jsonNumber(row.l1MissRate)
           << ",\"l2_miss_rate\":" << jsonNumber(row.l2MissRate)
           << ",\"dram_row_hit_rate\":" << jsonNumber(row.dramRowHitRate)
           << "}";
    }
    os << "],\"metrics\":{";
    first = true;
    for (const auto& [name, value] : metrics_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
    }
    os << "}}\n";
}

std::string
BenchReport::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

std::size_t
writeFile(const std::string& path,
          const std::function<void(std::ostream&)>& writer)
{
    std::ostringstream buffer;
    writer(buffer);
    const std::string bytes = buffer.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("write to '", path, "' failed");
    return bytes.size();
}

} // namespace bsched
